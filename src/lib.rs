//! # SecNDP — Secure Near-Data Processing with Untrusted Memory
//!
//! A from-scratch Rust reproduction of the HPCA 2022 paper *SecNDP: Secure
//! Near-Data Processing with Untrusted Memory* (Xiong, Ke, et al.): a
//! lightweight encryption and verification scheme that lets a trusted
//! processor offload linear computation (weighted summation / vector–matrix
//! multiplication) to untrusted near-data-processing units, by combining
//! two-party arithmetic secret sharing with counter-mode encryption and a
//! linear modular checksum over `q = 2¹²⁷ − 1`.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`cipher`] | AES-128/256, counter-block OTP generation, AES-engine timing model |
//! | [`arith`]  | ℤ(2^wₑ) ring ops, the Mersenne-127 field, fixed point, 8-bit quantization |
//! | [`core`]   | Arith-E encryption, encrypted linear-checksum tags, the offload protocol, honest & adversarial NDP devices |
//! | [`sim`]    | cycle-level DDR4 + rank-NDP performance/energy simulator, SGX baselines |
//! | [`workloads`] | DLRM recommendation inference, medical analytics, secure wiring |
//! | [`telemetry`] | counters, latency histograms, global registry, Prometheus/JSON export |
//!
//! # Quickstart
//!
//! ```
//! use secndp::core::{SecretKey, TrustedProcessor, HonestNdp};
//!
//! # fn main() -> Result<(), secndp::core::Error> {
//! // The TEE side: owns the key, encrypts, verifies.
//! let mut cpu = TrustedProcessor::new(SecretKey::derive_from_seed(1));
//! // The untrusted side: sees only ciphertext.
//! let mut ndp = HonestNdp::new();
//!
//! let matrix: Vec<u32> = (0..64).collect(); // 8 rows × 8 cols
//! let table = cpu.encrypt_table(&matrix, 8, 8, 0x1000)?;
//! let handle = cpu.publish(&table, &mut ndp)?;
//!
//! // The NDP computes 2·row1 + 3·row4 over ciphertext; the processor
//! // reconstructs and verifies.
//! let res = cpu.weighted_sum(&handle, &ndp, &[1, 4], &[2u32, 3], true)?;
//! assert_eq!(res[0], 2 * matrix[8] + 3 * matrix[32]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use secndp_arith as arith;
pub use secndp_cipher as cipher;
pub use secndp_core as core;
pub use secndp_sim as sim;
pub use secndp_telemetry as telemetry;
pub use secndp_workloads as workloads;
