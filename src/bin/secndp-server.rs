//! Standalone NDP device server: hosts honest NDP device ranks behind a
//! TCP listener, speaking the net framing from `secndp_core::net`.
//!
//! Each client session gets its own device instances (keyed by the
//! session id the client's `TcpEndpoint` stamps on every request), so
//! concurrent clients — or concurrent test processes — never clobber
//! each other's tables. This is the *untrusted* side of the SecNDP
//! boundary: it sees only ciphertext shares and blinded checksum tags,
//! and nothing it can do (including tampering with what it serves)
//! defeats the client-side verification.
//!
//! Run with:
//! `cargo run --bin secndp-server -- [--addr 127.0.0.1:7070] [--serve-metrics 127.0.0.1:9464]`
//!
//! Prints a parseable `SECNDP_SERVER_LISTENING <addr>` line once bound
//! (the cross-process tests scrape it to learn the ephemeral port), then
//! serves until a client sends the shutdown sentinel, draining in-flight
//! connections before exiting.

use secndp_core::device::HonestNdp;
use secndp_core::net::NetServer;
use secndp_telemetry::health::HealthConfig;
use secndp_telemetry::serve::ServerBuilder;
use std::io::Write;

fn main() {
    // Observability first: crash dumps, build-info gauges, the health
    // sampler, and (when requested) the live scrape server.
    secndp_telemetry::install_panic_hook();
    secndp_telemetry::init_process_metrics();
    let monitor = secndp_telemetry::health::monitor();
    monitor.install_default_detectors();
    let _sampler = monitor.start_sampler(secndp_telemetry::global(), HealthConfig::from_env());

    let mut addr = String::from("127.0.0.1:0");
    let mut metrics_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs host:port"),
            "--serve-metrics" => {
                metrics_addr = Some(args.next().expect("--serve-metrics needs host:port"));
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: secndp-server [--addr host:port] [--serve-metrics host:port]");
                std::process::exit(2);
            }
        }
    }

    let _metrics = metrics_addr.map(|addr| {
        let server = ServerBuilder::new(secndp_telemetry::global())
            .bind(&addr)
            .unwrap_or_else(|e| panic!("cannot serve metrics on {addr}: {e}"));
        println!(
            "serving /metrics /healthz on http://{}",
            server.local_addr()
        );
        server
    });

    let mut server = NetServer::host_sessions(|_session, _rank| HonestNdp::new(), addr.as_str())
        .unwrap_or_else(|e| panic!("cannot listen on {addr}: {e}"));
    // Parseable and flushed: child-process tests block on this line to
    // learn the ephemeral port before dialing.
    println!("SECNDP_SERVER_LISTENING {}", server.local_addr());
    std::io::stdout().flush().expect("flush listening line");
    server.wait();
    println!("secndp-server drained, exiting");
}
