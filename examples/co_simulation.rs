//! Co-simulation: one query stream drives BOTH the real cryptographic
//! protocol (verified results out of encrypted tables) and the cycle-level
//! performance model (what those exact accesses cost on the Table II
//! machine).
//!
//! Run with: `cargo run --release --example co_simulation`

use secndp::core::SecretKey;
use secndp::sim::config::{NdpConfig, SimConfig, VerifPlacement};
use secndp::sim::exec::Mode;
use secndp::workloads::dlrm::EmbeddingTable;
use secndp::workloads::Platform;

fn main() -> Result<(), secndp::core::Error> {
    let machine = SimConfig::paper_default(NdpConfig {
        ndp_rank: 8,
        ndp_reg: 8,
    })
    .with_aes_engines(12);
    let mut platform = Platform::new(SecretKey::derive_from_seed(2026), machine);

    // Two embedding tables, stored as fp32 (timing element = 4 bytes).
    let big = EmbeddingTable::random(4096, 32, 1);
    let small = EmbeddingTable::random(512, 32, 2);
    let tb = platform.load_table(big.data(), 4096, 32, 4)?;
    let ts = platform.load_table(small.data(), 512, 32, 4)?;

    // Serve a batch of verified queries; every result is checked against
    // local plaintext recomputation.
    for q in 0..32usize {
        let idx_big: Vec<usize> = (0..80).map(|k| (q * 997 + k * 131) % 4096).collect();
        let idx_small: Vec<usize> = (0..80).map(|k| (q * 313 + k * 17) % 512).collect();
        let w = vec![1.0f32; 80];
        let rb = platform.sls(tb, &idx_big, &w)?;
        let rs = platform.sls(ts, &idx_small, &w)?;
        let want_b = big.sls_unweighted(&idx_big);
        let want_s = small.sls_unweighted(&idx_small);
        for (got, want) in rb.iter().zip(&want_b).chain(rs.iter().zip(&want_s)) {
            assert!((got - want).abs() < 0.05, "query {q}: {got} vs {want}");
        }
    }
    println!(
        "served {} verified queries over encrypted tables ✓",
        platform.logged_queries()
    );

    // Replay the same access stream through the timing model.
    println!("\ntiming of this exact stream on the Table II machine:");
    for mode in [
        Mode::NonNdp,
        Mode::UnprotectedNdp,
        Mode::SecNdpEnc,
        Mode::SecNdpVer(VerifPlacement::Ecc),
    ] {
        let r = platform.timing(mode);
        println!(
            "  {mode:<22} {:>9.1} µs   ({} packets, {:.0}% AES-limited)",
            r.total_ns() / 1000.0,
            r.packets,
            100.0 * r.aes_limited_fraction()
        );
    }
    println!(
        "\nSecNDP Enc+Ver-ECC speedup over non-NDP: {:.2}x",
        platform.speedup(Mode::SecNdpVer(VerifPlacement::Ecc))
    );

    let init = platform.initialization(Mode::SecNdpVer(VerifPlacement::Ecc));
    println!(
        "one-time initialization: {} line writes, {} AES blocks",
        init.dram.writes, init.aes_blocks
    );
    Ok(())
}
