//! Private medical analytics: gene-expression cohort sums computed by an
//! untrusted NDP device over encrypted data, feeding Welch's t-tests on the
//! trusted side (paper §VI-A(2)).
//!
//! Run with: `cargo run --example medical_analytics`

use secndp::core::SecretKey;
use secndp::workloads::medical::ttest::welch_from_moments;
use secndp::workloads::{GeneDataset, SecureSls};

fn main() -> Result<(), secndp::core::Error> {
    // Synthetic study: 600 patients × 64 genes; genes 5 and 40 truly shift
    // with the disease.
    let data = GeneDataset::generate(600, 64, 0.35, vec![5, 40], 0.8, 2024);
    println!(
        "dataset: {} patients × {} genes ({} diseased)",
        data.patients(),
        data.genes(),
        data.diseased_ids().len()
    );

    // Encrypt the expression matrix AND its element-wise square (the
    // squared table lets the NDP return sums of squares for variance
    // estimation — still a linear query).
    let mut engine = SecureSls::new(SecretKey::derive_from_seed(7));
    let squared: Vec<f32> = data.data().iter().map(|&v| v * v).collect();
    let expr = engine.load_table(data.data(), data.patients(), data.genes())?;
    let expr_sq = engine.load_table(&squared, data.patients(), data.genes())?;

    // Researchers submit two cohorts; the NDP sums each over ciphertext.
    let sick = data.diseased_ids();
    let well = data.healthy_ids();
    let sum_sick = engine.cohort_sum(expr, &sick, true)?;
    let sum_well = engine.cohort_sum(expr, &well, true)?;
    let sq_sick = engine.cohort_sum(expr_sq, &sick, true)?;
    let sq_well = engine.cohort_sum(expr_sq, &well, true)?;

    // Trusted side: Welch's t-test per gene from the verified aggregates.
    println!("\ngene   t-stat     p-value    significant?");
    let mut hits = Vec::new();
    for g in 0..data.genes() {
        let r = welch_from_moments(
            sum_sick[g] as f64,
            sq_sick[g] as f64,
            sick.len() as f64,
            sum_well[g] as f64,
            sq_well[g] as f64,
            well.len() as f64,
        );
        let significant = r.p_value < 0.001;
        if significant {
            hits.push(g);
            println!("{g:>4}   {:>8.3}   {:.2e}   yes", r.t, r.p_value);
        }
    }
    println!(
        "\nsignificant genes: {hits:?} (ground truth: {:?})",
        data.affected_genes()
    );
    for g in data.affected_genes() {
        assert!(hits.contains(g), "missed true signal in gene {g}");
    }
    println!("all truly-affected genes recovered from encrypted data ✓");
    Ok(())
}
