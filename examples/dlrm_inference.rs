//! Secure recommendation inference: the embedding (SLS) portion of a DLRM
//! model runs on an untrusted NDP device over ciphertext, while the MLPs
//! stay on the trusted CPU — the paper's primary use case (§VI-A(1)).
//!
//! Run with: `cargo run --example dlrm_inference`

use secndp::core::SecretKey;
use secndp::workloads::dlrm::mlp::Mlp;
use secndp::workloads::dlrm::EmbeddingTable;
use secndp::workloads::SecureSls;

fn main() -> Result<(), secndp::core::Error> {
    // A small DLRM-style model: 3 embedding tables + dense towers.
    let embed_dim = 16;
    let tables: Vec<EmbeddingTable> = (0..3)
        .map(|t| EmbeddingTable::random(500, embed_dim, 42 + t))
        .collect();
    let bottom = Mlp::random(&[8, 32, embed_dim], false, 7);
    let top = Mlp::random(&[embed_dim * 4, 32, 1], true, 8);

    // ── Initialization (T0): encrypt every embedding table and publish it
    // to the untrusted NDP device. ──────────────────────────────────────
    let mut engine = SecureSls::new(SecretKey::derive_from_seed(99));
    let ids: Vec<_> = tables
        .iter()
        .map(|t| engine.load_table(t.data(), t.rows(), t.dim()))
        .collect::<Result<_, _>>()?;
    println!(
        "published {} encrypted embedding tables",
        engine.table_count()
    );

    // ── Inference: one user request. ────────────────────────────────────
    let dense = vec![0.4f32; 8];
    let pooling: Vec<Vec<usize>> = vec![vec![3, 99, 420], vec![7, 7, 123], vec![0, 250]];

    // CPU (TEE): dense tower.
    let mut features = bottom.forward(&dense);

    // NDP (untrusted): verified SLS pooling per table, over ciphertext.
    for (table_id, idx) in ids.iter().zip(&pooling) {
        let weights = vec![1.0f32; idx.len()];
        let pooled = engine.sls(*table_id, idx, &weights, true)?;
        features.extend(pooled);
    }

    // CPU (TEE): interaction + top tower.
    let p_click = top.forward(&features)[0];
    println!("click probability (secure pipeline): {p_click:.6}");

    // ── Cross-check against the fully-plaintext pipeline. ──────────────
    let mut plain_features = bottom.forward(&dense);
    for (table, idx) in tables.iter().zip(&pooling) {
        plain_features.extend(table.sls_unweighted(idx));
    }
    let p_plain = top.forward(&plain_features)[0];
    println!("click probability (plaintext):       {p_plain:.6}");
    assert!(
        (p_click - p_plain).abs() < 1e-3,
        "secure and plaintext pipelines diverged"
    );
    println!("pipelines agree within fixed-point precision ✓");
    Ok(())
}
