//! Tamper detection: a malicious NDP device returns corrupted results, and
//! SecNDP's encrypted linear-checksum verification (Algorithms 2/3/5)
//! catches every attack — including silent ring overflow.
//!
//! Run with: `cargo run --example tamper_detection`

use secndp::core::device::{Tamper, TamperingNdp};
use secndp::core::{Error, HonestNdp, NdpDevice, SecretKey, TrustedProcessor};

fn main() {
    let matrix: Vec<u32> = (0..64).map(|i| i * 7 + 3).collect(); // 8 × 8

    // Reference: an honest device verifies cleanly.
    let mut cpu = TrustedProcessor::new(SecretKey::derive_from_seed(5));
    let mut honest = HonestNdp::new();
    let table = cpu.encrypt_table(&matrix, 8, 8, 0x8000).unwrap();
    let handle = cpu.publish(&table, &mut honest).unwrap();
    let res = cpu
        .weighted_sum(&handle, &honest, &[0, 3, 5], &[1u32, 2, 3], true)
        .expect("honest device must verify");
    println!("honest device: verified result {res:?}\n");

    // Every Trojan in the catalogue is detected.
    let attacks = [
        (
            "flip one result bit",
            Tamper::FlipResultBit { element: 4, bit: 9 },
        ),
        ("swap in another row", Tamper::SwapFirstRow { with: 7 }),
        ("forge the tag", Tamper::ForgeTag),
        ("return zeros", Tamper::ZeroResult),
        (
            "corrupt stored memory (Rowhammer)",
            Tamper::CorruptStoredRow { row: 3 },
        ),
    ];
    for (name, tamper) in attacks {
        let mut cpu = TrustedProcessor::new(SecretKey::derive_from_seed(5));
        let mut evil = TamperingNdp::new(tamper);
        let table = cpu.encrypt_table(&matrix, 8, 8, 0x8000).unwrap();
        let handle = cpu.publish(&table, &mut evil).unwrap();
        match cpu.weighted_sum(&handle, &evil, &[0, 3, 5], &[1u32, 2, 3], true) {
            Err(Error::VerificationFailed { .. }) => {
                println!("attack \"{name}\": DETECTED ✓");
            }
            other => panic!("attack \"{name}\" was not detected: {other:?}"),
        }
    }

    // Overflow detection (paper footnote 1 / Theorem A.2): an honest
    // device, but the query overflows the 8-bit ring — verification
    // refuses the silently-wrapped result.
    let mut cpu = TrustedProcessor::new(SecretKey::derive_from_seed(6));
    let mut ndp = HonestNdp::new();
    let small: Vec<u8> = vec![200; 8]; // 2 rows × 4 cols of u8
    let table = cpu.encrypt_table(&small, 2, 4, 0x100).unwrap();
    let handle = cpu.publish(&table, &mut ndp).unwrap();
    match cpu.weighted_sum(&handle, &ndp, &[0, 1], &[1u8, 1], true) {
        Err(Error::VerificationFailed { .. }) => {
            println!("attack \"ring overflow (200+200 in u8)\": DETECTED ✓")
        }
        other => panic!("overflow was not detected: {other:?}"),
    }

    // Sanity: the device itself never sees plaintext.
    let stored = ndp.read_row(0x100, 0).unwrap();
    assert_ne!(stored, vec![200u8; 4], "ciphertext leaked plaintext!");
    println!("\nstored bytes for row of 200s: {stored:?} (ciphertext) ✓");
}
