//! Performance modelling: size a SecNDP deployment with the cycle-level
//! simulator — how many NDP ranks, registers and AES engines does a given
//! workload need, and what speedup and energy saving should you expect?
//!
//! Run with: `cargo run --release --example performance_model`

use secndp::sim::config::{NdpConfig, SimConfig, VerifPlacement};
use secndp::sim::energy::EnergyModel;
use secndp::sim::exec::{simulate, simulate_initialization, Mode};
use secndp::sim::storage::{simulate_storage, SsdConfig, StorageMode};
use secndp::sim::trace::WorkloadTrace;

fn main() {
    // Your workload: 64 queries, each pooling 80 random 128-byte embedding
    // rows from a 64 MiB table (a small recommendation service).
    let trace = WorkloadTrace::uniform_sls(64 << 20, 128, 80, 64, 42);
    println!(
        "workload: {} queries × PF {} × {} B rows = {:.1} MiB touched per batch\n",
        trace.queries.len(),
        trace.queries[0].pf(),
        trace.tables[0].row_bytes,
        trace.total_data_bytes() as f64 / (1 << 20) as f64
    );

    // ── Sweep the NDP configuration. ────────────────────────────────────
    println!("rank/reg sweep (SecNDP Enc+Ver-ECC vs non-NDP baseline):");
    for (rank, reg) in [(2, 4), (4, 8), (8, 8)] {
        let cfg = SimConfig::paper_default(NdpConfig {
            ndp_rank: rank,
            ndp_reg: reg,
        })
        .with_aes_engines(12);
        let base = simulate(&trace, Mode::NonNdp, &cfg);
        let sec = simulate(&trace, Mode::SecNdpVer(VerifPlacement::Ecc), &cfg);
        println!(
            "  rank={rank} reg={reg}: {:.2}x speedup ({:.1} µs -> {:.1} µs)",
            sec.speedup_vs(&base),
            base.total_ns() / 1000.0,
            sec.total_ns() / 1000.0,
        );
    }

    // ── Find the minimum AES engine count. ──────────────────────────────
    let cfg = SimConfig::paper_default(NdpConfig {
        ndp_rank: 8,
        ndp_reg: 8,
    });
    let engines_needed = (1..=16)
        .find(|&n| {
            simulate(&trace, Mode::SecNdpEnc, &cfg.with_aes_engines(n)).aes_limited_fraction() < 0.1
        })
        .unwrap_or(16);
    println!("\nAES engines needed at rank=8 (≤10% packets bottlenecked): {engines_needed}");

    // ── Energy. ─────────────────────────────────────────────────────────
    let cfg = cfg.with_aes_engines(12);
    let model = EnergyModel;
    let e_base = model.from_report(&simulate(&trace, Mode::NonNdp, &cfg));
    let e_sec = model.from_report(&simulate(&trace, Mode::SecNdpEnc, &cfg));
    println!(
        "memory energy: non-NDP {:.1} µJ, SecNDP-Enc {:.1} µJ ({:.0}% saved)",
        e_base.total_pj() / 1e6,
        e_sec.total_pj() / 1e6,
        100.0 * (1.0 - e_sec.total_pj() / e_base.total_pj()),
    );

    // ── One-time initialization cost (T0: encrypt + write the table). ───
    let init = simulate_initialization(&trace, Mode::SecNdpVer(VerifPlacement::Ecc), &cfg);
    println!(
        "initialization: {:.1} µs ({} line writes, {} AES blocks, {})",
        init.total_cycles as f64 * secndp::sim::config::NS_PER_CYCLE / 1000.0,
        init.dram.writes,
        init.aes_blocks,
        if init.aes_limited {
            "pad-generation bound"
        } else {
            "write-bandwidth bound"
        },
    );

    // ── Near-storage variant (paper §III-A: the same scheme applies to
    // in-SSD processing; large analytics datasets live on storage). ─────
    let scan = WorkloadTrace::sequential_scan(1 << 30, 4096, 10_000, 4, 9);
    let ssd = SsdConfig::default();
    let host = simulate_storage(&scan, StorageMode::HostRead, &ssd);
    let near = simulate_storage(&scan, StorageMode::SecNdpNearStorage, &ssd);
    println!(
        "\nnear-storage analytics (40 MB/query scans on an 8-channel SSD):\n  host-read {:.0} µs -> SecNDP near-storage {:.0} µs ({:.2}x), host traffic {:.1} MB -> {:.3} MB",
        host.total_us,
        near.total_us,
        near.speedup_vs(&host),
        host.bytes_over_host as f64 / 1e6,
        near.bytes_over_host as f64 / 1e6,
    );
}
