//! A SecNDP-backed inference service, end to end: verified pooling over
//! encrypted tables, a device that turns malicious mid-stream (caught and
//! failed over), and capacity planning with the open-loop service
//! simulator.
//!
//! Run with: `cargo run --release --example secure_service`

use secndp::core::device::{Tamper, TamperingNdp};
use secndp::core::{Error, HonestNdp, SecretKey, TrustedProcessor};
use secndp::sim::config::{NdpConfig, SimConfig, VerifPlacement, NS_PER_CYCLE};
use secndp::sim::exec::{simulate, simulate_service, Mode};
use secndp::workloads::dlrm::model::sls_trace;
use secndp::workloads::dlrm::DlrmConfig;

fn main() {
    // ── Phase 1: serve verified queries; survive a Trojan device. ──────
    let pt: Vec<u32> = (0..1024 * 32).map(|x| x % 613).collect();
    let mut cpu = TrustedProcessor::new(SecretKey::derive_from_seed(9));
    let table = cpu.encrypt_table(&pt, 1024, 32, 0x10_0000).unwrap();

    // Primary device develops a Trojan; replica stays honest.
    let mut primary = TamperingNdp::new(Tamper::FlipResultBit { element: 3, bit: 7 });
    let mut replica = HonestNdp::new();
    let h_primary = cpu.publish(&table, &mut primary).unwrap();
    let h_replica = cpu.publish(&table, &mut replica).unwrap();

    let mut served = 0u32;
    let mut failovers = 0u32;
    for q in 0..50usize {
        let idx: Vec<usize> = (0..80).map(|k| (q * 769 + k * 131) % 1024).collect();
        let w = vec![1u32; 80];
        let res = match cpu.weighted_sum(&h_primary, &primary, &idx, &w, true) {
            Ok(r) => r,
            Err(Error::VerificationFailed { .. }) => {
                // Detected: fail over to the replica, verified again.
                failovers += 1;
                cpu.weighted_sum(&h_replica, &replica, &idx, &w, true)
                    .expect("replica must verify")
            }
            Err(e) => panic!("unexpected error: {e}"),
        };
        // Spot-check correctness against plaintext.
        let want: u32 = idx.iter().map(|&i| pt[i * 32]).sum();
        assert_eq!(res[0], want, "query {q} wrong after verification");
        served += 1;
    }
    println!("served {served} queries; {failovers} tampered responses detected and failed over ✓");

    // ── Phase 2: capacity planning for this service. ───────────────────
    let sim = SimConfig::paper_default(NdpConfig {
        ndp_rank: 8,
        ndp_reg: 8,
    })
    .with_aes_engines(12);
    let trace = sls_trace(&DlrmConfig::rmc1_small(), 80, 256, 5);
    let mode = Mode::SecNdpVer(VerifPlacement::Ecc);
    let batch = simulate(&trace, mode, &sim);
    let svc = batch.total_cycles / batch.packets;
    println!(
        "\ncapacity: one packet (8 queries) every {:.1} µs at full tilt",
        svc as f64 * NS_PER_CYCLE / 1000.0
    );
    for load in [50u64, 90, 130] {
        let r = simulate_service(&trace, mode, &sim, (svc * 100 / load).max(1));
        println!(
            "  offered {load:>3}%: p99 response {:.1} µs{}",
            r.response_percentile(0.99) as f64 * NS_PER_CYCLE / 1000.0,
            if r.saturated() {
                "  (SATURATED — shed load)"
            } else {
                ""
            }
        );
    }
}
