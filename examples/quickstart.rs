//! Quickstart: encrypt a matrix, offload a weighted summation to an
//! untrusted NDP device, reconstruct and verify the result.
//!
//! Run with: `cargo run --example quickstart`

use secndp::core::{HonestNdp, SecretKey, TrustedProcessor};

fn main() -> Result<(), secndp::core::Error> {
    // ── The trusted side (a TEE): owns the secret key. ─────────────────
    let mut cpu = TrustedProcessor::new(SecretKey::derive_from_seed(0xC0FFEE));
    // ── The untrusted side: an NDP PU attached to memory. ──────────────
    let mut ndp = HonestNdp::new();

    // A 4×8 matrix of 32-bit values we want to keep confidential.
    let matrix: Vec<u32> = (0..32).map(|i| i * 10 + 1).collect();
    println!("plaintext row 0: {:?}", &matrix[0..8]);

    // Algorithm 1: arithmetic encryption. The ciphertext and the per-row
    // verification tags go to untrusted memory; the pads are regenerable
    // on-chip from (address, version).
    let table = cpu.encrypt_table(&matrix, 4, 8, 0x4000)?;
    println!("ciphertext row 0: {:?}", &table.ciphertext()[0..8]);
    let handle = cpu.publish(&table, &mut ndp).unwrap();

    // Algorithm 4: the NDP computes res = 1·row0 + 2·row2 + 3·row3 over
    // ciphertext; the processor's OTP PU computes the same function over
    // the pads; one wrapping addition reconstructs the plaintext result.
    // Algorithm 5: the combined encrypted tag is checked against a
    // checksum of the reconstructed result.
    let res = cpu.weighted_sum(&handle, &ndp, &[0, 2, 3], &[1u32, 2, 3], true)?;
    println!("verified result: {res:?}");

    // Cross-check against local plaintext computation.
    let expect: Vec<u32> = (0..8)
        .map(|j| matrix[j] + 2 * matrix[16 + j] + 3 * matrix[24 + j])
        .collect();
    assert_eq!(res, expect);
    println!("matches local plaintext computation ✓");
    Ok(())
}
