//! Plain-text serialization of workload traces.
//!
//! The paper's evaluation replays "a query trace from a production model";
//! a released artifact needs a way to ship such traces. The format is a
//! deliberately simple line-oriented text file (no external parser
//! dependencies):
//!
//! ```text
//! secndp-trace v1
//! result_bytes 128
//! table 0 8388608 128        # base rows row_bytes
//! query 0:5 0:17 1:3          # table:row pairs
//! ```
//!
//! Lines starting with `#` and blank lines are ignored; a trailing `#`
//! comment is stripped from any line.

use crate::trace::{Query, RowAccess, TableDef, WorkloadTrace};
use std::fmt::Write as _;

/// Errors from parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The `secndp-trace v1` header is missing or wrong.
    BadHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A query references a table that was never declared.
    UnknownTable {
        /// 1-based line number.
        line: usize,
        /// The undeclared table index.
        table: u32,
    },
    /// Required fields were missing (no tables, or no `result_bytes`).
    Incomplete,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => f.write_str("missing `secndp-trace v1` header"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::UnknownTable { line, table } => {
                write!(f, "line {line}: query references undeclared table {table}")
            }
            ParseError::Incomplete => f.write_str("trace lacks tables or result_bytes"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a trace to the v1 text format.
pub fn to_text(trace: &WorkloadTrace) -> String {
    let mut out = String::new();
    out.push_str("secndp-trace v1\n");
    let _ = writeln!(out, "result_bytes {}", trace.result_bytes);
    for (i, t) in trace.tables.iter().enumerate() {
        let _ = writeln!(out, "table {} {} {}", t.base, t.rows, t.row_bytes);
        let _ = i;
    }
    for q in &trace.queries {
        out.push_str("query");
        for r in &q.rows {
            let _ = write!(out, " {}:{}", r.table, r.row);
        }
        out.push('\n');
    }
    out
}

/// Parses the v1 text format.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending line.
pub fn from_text(text: &str) -> Result<WorkloadTrace, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| {
        let body = l.split('#').next().unwrap_or("").trim();
        (i + 1, body)
    });
    // Header.
    let header = lines
        .by_ref()
        .find(|(_, l)| !l.is_empty())
        .ok_or(ParseError::BadHeader)?;
    if header.1 != "secndp-trace v1" {
        return Err(ParseError::BadHeader);
    }

    let mut result_bytes: Option<u64> = None;
    let mut tables: Vec<TableDef> = Vec::new();
    let mut queries: Vec<Query> = Vec::new();

    for (lineno, body) in lines {
        if body.is_empty() {
            continue;
        }
        let mut parts = body.split_whitespace();
        match parts.next() {
            Some("result_bytes") => {
                let v = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    ParseError::BadLine {
                        line: lineno,
                        reason: "expected `result_bytes <u64>`".into(),
                    }
                })?;
                result_bytes = Some(v);
            }
            Some("table") => {
                let nums: Vec<u64> = parts.map_while(|s| s.parse().ok()).collect();
                if nums.len() != 3 || nums[2] == 0 {
                    return Err(ParseError::BadLine {
                        line: lineno,
                        reason: "expected `table <base> <rows> <row_bytes>`".into(),
                    });
                }
                tables.push(TableDef {
                    base: nums[0],
                    rows: nums[1],
                    row_bytes: nums[2],
                });
            }
            Some("query") => {
                let mut rows = Vec::new();
                for tok in parts {
                    let (t, r) = tok.split_once(':').ok_or_else(|| ParseError::BadLine {
                        line: lineno,
                        reason: format!("bad row access `{tok}` (want table:row)"),
                    })?;
                    let table: u32 = t.parse().map_err(|_| ParseError::BadLine {
                        line: lineno,
                        reason: format!("bad table index `{t}`"),
                    })?;
                    let row: u64 = r.parse().map_err(|_| ParseError::BadLine {
                        line: lineno,
                        reason: format!("bad row index `{r}`"),
                    })?;
                    if table as usize >= tables.len() {
                        return Err(ParseError::UnknownTable {
                            line: lineno,
                            table,
                        });
                    }
                    rows.push(RowAccess { table, row });
                }
                queries.push(Query { rows });
            }
            Some(other) => {
                return Err(ParseError::BadLine {
                    line: lineno,
                    reason: format!("unknown directive `{other}`"),
                })
            }
            None => {}
        }
    }
    let result_bytes = result_bytes.ok_or(ParseError::Incomplete)?;
    if tables.is_empty() {
        return Err(ParseError::Incomplete);
    }
    Ok(WorkloadTrace {
        tables,
        queries,
        result_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::WorkloadTrace;

    #[test]
    fn round_trip_generated_traces() {
        for trace in [
            WorkloadTrace::uniform_sls(1 << 20, 128, 10, 5, 1),
            WorkloadTrace::multi_table_sls(3, 1 << 18, 64, 4, 3, 2),
            WorkloadTrace::sequential_scan(1 << 20, 4096, 32, 2, 3),
        ] {
            let text = to_text(&trace);
            let back = from_text(&text).unwrap();
            assert_eq!(back, trace);
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# a comment\nsecndp-trace v1\n\nresult_bytes 64 # inline\ntable 0 100 64\nquery 0:1 0:2 # two rows\n";
        let t = from_text(text).unwrap();
        assert_eq!(t.result_bytes, 64);
        assert_eq!(t.queries[0].rows.len(), 2);
    }

    #[test]
    fn error_cases() {
        assert_eq!(from_text(""), Err(ParseError::BadHeader));
        assert_eq!(from_text("not a trace\n"), Err(ParseError::BadHeader));
        assert!(matches!(
            from_text("secndp-trace v1\nresult_bytes x\n"),
            Err(ParseError::BadLine { line: 2, .. })
        ));
        assert!(matches!(
            from_text("secndp-trace v1\nresult_bytes 64\ntable 0 10 64\nquery 1:0\n"),
            Err(ParseError::UnknownTable { table: 1, .. })
        ));
        assert_eq!(
            from_text("secndp-trace v1\ntable 0 10 64\n"),
            Err(ParseError::Incomplete)
        );
        assert_eq!(
            from_text("secndp-trace v1\nresult_bytes 64\n"),
            Err(ParseError::Incomplete)
        );
        assert!(matches!(
            from_text("secndp-trace v1\nresult_bytes 64\nfrobnicate\n"),
            Err(ParseError::BadLine { .. })
        ));
        assert!(matches!(
            from_text("secndp-trace v1\nresult_bytes 64\ntable 0 10 0\n"),
            Err(ParseError::BadLine { .. })
        ));
    }

    #[test]
    fn display_messages() {
        let e = ParseError::UnknownTable { line: 7, table: 3 };
        assert!(e.to_string().contains("line 7"));
        assert!(ParseError::BadHeader.to_string().contains("header"));
    }

    #[test]
    fn parsed_trace_simulates() {
        use crate::config::{NdpConfig, SimConfig};
        use crate::exec::{simulate, Mode};
        let trace = WorkloadTrace::uniform_sls(1 << 20, 128, 10, 4, 7);
        let parsed = from_text(&to_text(&trace)).unwrap();
        let cfg = SimConfig::paper_default(NdpConfig {
            ndp_rank: 4,
            ndp_reg: 4,
        });
        assert_eq!(
            simulate(&parsed, Mode::UnprotectedNdp, &cfg),
            simulate(&trace, Mode::UnprotectedNdp, &cfg)
        );
    }
}
