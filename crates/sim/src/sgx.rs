//! Analytic SGX TEE reference model (paper §VI-B, Table III).
//!
//! The paper measures two Intel machines to position SecNDP against running
//! the whole workload inside a CPU enclave:
//!
//! - **CFL** (Xeon E-2288G CoffeeLake, 168 MB EPC, integrity tree): working
//!   sets beyond the EPC page-swap constantly — 6–300× slowdowns; even
//!   EPC-resident memory-bound work pays the integrity tree (~5.75× for the
//!   40 MB analytics set).
//! - **ICL** (Xeon Platinum 8370C IceLake, 96 GB EPC, no integrity tree):
//!   memory encryption alone — 1.8–2.6× slowdown on memory-bound phases,
//!   ~5 % when the working set fits in cache.
//!
//! We cannot measure real enclaves here, so this module is an **analytic
//! stand-in calibrated to the paper's reported slowdowns** (documented
//! substitution in DESIGN.md). It exists to reproduce the SGX rows of
//! Table III, not to model SGX microarchitecture.

/// Which SGX generation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SgxGeneration {
    /// CoffeeLake: small EPC with integrity tree and paging.
    Cfl,
    /// IceLake: large EPC, memory encryption only (no integrity tree).
    Icl,
}

/// Analytic SGX slowdown model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgxModel {
    generation: SgxGeneration,
    /// Enclave page cache capacity in bytes.
    epc_bytes: u64,
    /// Last-level cache size in bytes (working sets below this see almost
    /// no overhead).
    llc_bytes: u64,
}

impl SgxModel {
    /// The paper's CFL machine: 168 MB EPC, 16 MB LLC.
    pub fn cfl() -> Self {
        Self {
            generation: SgxGeneration::Cfl,
            epc_bytes: 168 << 20,
            llc_bytes: 16 << 20,
        }
    }

    /// The paper's ICL machine: 96 GB EPC, 48 MB LLC.
    pub fn icl() -> Self {
        Self {
            generation: SgxGeneration::Icl,
            epc_bytes: 96 << 30,
            llc_bytes: 48 << 20,
        }
    }

    /// The modeled generation.
    pub fn generation(&self) -> SgxGeneration {
        self.generation
    }

    /// EPC capacity in bytes.
    pub fn epc_bytes(&self) -> u64 {
        self.epc_bytes
    }

    /// Estimated slowdown factor (≥ 1) for a memory-bound workload with the
    /// given resident working set.
    ///
    /// Calibration anchors (paper §VII-A and footnotes 6/7):
    /// - ICL, cache-resident: ~1.05×.
    /// - ICL, memory-bound beyond LLC: ~1.7× (reported 1.8–2.6× for DLRM;
    ///   our DLRM point lands there through the memory-bound fraction).
    /// - CFL, EPC-resident memory-bound: ~5.75× (analytics 0.1738×).
    /// - CFL, 1 GB working set (6× EPC): ~263× (RMC1 0.0038×).
    pub fn slowdown(&self, working_set_bytes: u64) -> f64 {
        let ws = working_set_bytes as f64;
        // Cache-resident only when the working set fits comfortably (half
        // the LLC); a streaming set near LLC size still misses constantly.
        if working_set_bytes * 2 <= self.llc_bytes {
            return 1.05;
        }
        match self.generation {
            SgxGeneration::Icl => {
                // Memory encryption on every off-chip access.
                1.7
            }
            SgxGeneration::Cfl => {
                let tree_overhead = 5.75;
                if working_set_bytes <= self.epc_bytes {
                    tree_overhead
                } else {
                    // EPC paging dominates; grows with the miss ratio.
                    let pressure = ws / self.epc_bytes as f64;
                    tree_overhead + 43.0 * pressure
                }
            }
        }
    }

    /// The relative performance versus an unprotected CPU baseline
    /// (`1 / slowdown`) — the form Table III reports.
    pub fn relative_performance(&self, working_set_bytes: u64) -> f64 {
        1.0 / self.slowdown(working_set_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icl_cache_resident_is_cheap() {
        let m = SgxModel::icl();
        assert!((m.slowdown(1 << 20) - 1.05).abs() < 1e-9);
    }

    #[test]
    fn icl_memory_bound_matches_paper_range() {
        let m = SgxModel::icl();
        let s = m.slowdown(1 << 30);
        assert!((1.5..=2.6).contains(&s), "{s}");
        // Table III: SGX-ICL ≈ 0.57–0.60× relative performance.
        let rel = m.relative_performance(1 << 30);
        assert!((0.38..=0.67).contains(&rel), "{rel}");
    }

    #[test]
    fn cfl_epc_resident_matches_analytics_point() {
        // 40 MB analytics set: paper reports 0.1738× ⇒ 5.75× slowdown.
        let m = SgxModel::cfl();
        let rel = m.relative_performance(40 << 20);
        assert!((rel - 0.1738).abs() < 0.01, "{rel}");
    }

    #[test]
    fn cfl_paging_matches_rmc1_point() {
        // 1 GB RMC1 embeddings: paper reports 0.0038× ⇒ ~263× slowdown.
        let m = SgxModel::cfl();
        let s = m.slowdown(1 << 30);
        assert!((230.0..300.0).contains(&s), "{s}");
        let rel = m.relative_performance(1 << 30);
        assert!((rel - 0.0038).abs() < 0.0008, "{rel}");
    }

    #[test]
    fn slowdown_monotonic_in_working_set() {
        let m = SgxModel::cfl();
        let mut prev = 0.0;
        for ws in [
            1u64 << 20,
            32 << 20,
            168 << 20,
            512 << 20,
            1 << 30,
            8u64 << 30,
        ] {
            let s = m.slowdown(ws);
            assert!(s >= prev, "slowdown not monotone at {ws}");
            prev = s;
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(SgxModel::cfl().generation(), SgxGeneration::Cfl);
        assert_eq!(SgxModel::icl().epc_bytes(), 96 << 30);
    }
}
