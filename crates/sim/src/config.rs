//! Simulation parameters and configurations (paper Table II).

use secndp_cipher::engine::EngineConfig;

/// DDR4 timing parameters in memory-clock cycles.
///
/// Values are the paper's Table II DDR4-2400 configuration. The clock runs
/// at 1200 MHz (2400 MT/s double data rate), i.e. `tCK = 0.8333 ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// ACT-to-ACT to the same bank (row cycle).
    pub t_rc: u64,
    /// ACT-to-RD/WR to the same bank.
    pub t_rcd: u64,
    /// RD command to first data (CAS latency).
    pub t_cl: u64,
    /// PRE-to-ACT to the same bank.
    pub t_rp: u64,
    /// Data burst length on the bus (BL8 ⇒ 4 clocks).
    pub t_bl: u64,
    /// RD-to-RD, different bank group.
    pub t_ccd_s: u64,
    /// RD-to-RD, same bank group.
    pub t_ccd_l: u64,
    /// ACT-to-ACT, different bank group, same rank.
    pub t_rrd_s: u64,
    /// ACT-to-ACT, same bank group, same rank.
    pub t_rrd_l: u64,
    /// Four-activate window per rank.
    pub t_faw: u64,
    /// WR command to first data (CAS write latency).
    pub t_cwl: u64,
    /// Write recovery: last write data to PRE on the same bank.
    pub t_wr: u64,
    /// Average refresh interval per rank (0 disables refresh).
    pub t_refi: u64,
    /// Refresh cycle time: the rank is unavailable this long per refresh.
    pub t_rfc: u64,
}

impl DramTiming {
    /// Table II: DDR4-2400.
    pub const DDR4_2400: DramTiming = DramTiming {
        t_rc: 55,
        t_rcd: 16,
        t_cl: 16,
        t_rp: 16,
        t_bl: 4,
        t_ccd_s: 4,
        t_ccd_l: 6,
        t_rrd_s: 4,
        t_rrd_l: 6,
        t_faw: 26,
        // Not in the paper's Table II; standard DDR4-2400 values.
        t_cwl: 14,
        t_wr: 18,
        t_refi: 9360, // 7.8 µs at 1200 MHz
        t_rfc: 420,   // 350 ns for an 8 Gb device
    };

    /// ACT-to-PRE minimum (row-active time), derived as `tRC − tRP`.
    pub fn t_ras(&self) -> u64 {
        self.t_rc - self.t_rp
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::DDR4_2400
    }
}

/// Memory-clock frequency for DDR4-2400: 1200 MHz.
pub const DRAM_CLOCK_GHZ: f64 = 1.2;

/// Nanoseconds per memory-clock cycle.
pub const NS_PER_CYCLE: f64 = 1.0 / DRAM_CLOCK_GHZ;

/// Cache-line (memory transaction) size in bytes.
pub const LINE_BYTES: u64 = 64;

/// DRAM organization of one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramOrg {
    /// Independent memory channels (each with its own command/data bus).
    /// The paper's Table II system has one; more channels are a
    /// sensitivity axis for the non-NDP baseline's bandwidth.
    pub channels: usize,
    /// Ranks per channel (`channels × ranks` = number of rank-NDP PUs).
    pub ranks: usize,
    /// Bank groups per rank (DDR4: 4).
    pub bank_groups: usize,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: usize,
    /// Row-buffer (page) size per bank in bytes as seen by the controller
    /// (8 KiB for an x8 DDR4 rank).
    pub row_bytes: u64,
    /// Rank capacity in bytes (Table II: 8 GiB).
    pub rank_bytes: u64,
    /// Column bits kept below the bank bits in the address mapping:
    /// aligned `2^col_low_bits`-line blocks stay within one bank row, so an
    /// embedding vector costs one activation. `0` stripes every line across
    /// bank groups (the ablation baseline).
    pub col_low_bits: u64,
}

impl DramOrg {
    /// Table II: 8 GiB ranks, standard DDR4 4×4 banking, 8 KiB rows.
    pub const DDR4_8GB: DramOrg = DramOrg {
        channels: 1,
        ranks: 8,
        bank_groups: 4,
        banks_per_group: 4,
        row_bytes: 8192,
        rank_bytes: 8 << 30,
        col_low_bits: 2,
    };

    /// Total banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Total rank-NDP PUs in the system (`channels × ranks`).
    pub fn total_ranks(&self) -> usize {
        self.channels * self.ranks
    }
}

impl Default for DramOrg {
    fn default() -> Self {
        Self::DDR4_8GB
    }
}

/// NDP architecture knobs swept in Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdpConfig {
    /// Number of rank-NDP PUs (`NDP_rank`).
    pub ndp_rank: usize,
    /// Accumulation registers per PU (`NDP_reg`): how many query partial
    /// sums can be in flight simultaneously.
    pub ndp_reg: usize,
}

impl Default for NdpConfig {
    fn default() -> Self {
        Self {
            ndp_rank: 8,
            ndp_reg: 8,
        }
    }
}

/// Placement of verification tags in memory (paper §V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifPlacement {
    /// Tags co-located with each row: fetched in the same (possibly
    /// widened) line window as the data.
    Coloc,
    /// Tags in a separate physical region: one extra line fetch, usually a
    /// row-buffer miss.
    Sep,
    /// Tags carried in the ECC chip: zero extra data-bus traffic, but the
    /// engine still decrypts tag pads.
    Ecc,
}

impl std::fmt::Display for VerifPlacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VerifPlacement::Coloc => "Ver-coloc",
            VerifPlacement::Sep => "Ver-sep",
            VerifPlacement::Ecc => "Ver-ECC",
        })
    }
}

/// Size of one verification tag in bytes (`w_t = 127` bits, stored as 128).
pub const TAG_BYTES: u64 = 16;

/// SecNDP engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecNdpConfig {
    /// AES pipeline bank (number of engines is the Figure 7/8 sweep knob).
    pub engine: EngineConfig,
}

impl SecNdpConfig {
    /// Paper default: engines from the cited 45 nm design.
    pub fn with_engines(n: usize) -> Self {
        Self {
            engine: EngineConfig::paper_default(n),
        }
    }
}

impl Default for SecNdpConfig {
    fn default() -> Self {
        Self::with_engines(12)
    }
}

/// Fixed per-packet NDP overheads (paper §VI-B: "DRAM cycles during
/// initialization to configure memory-mapped control registers and a cycle
/// in the final stage to transfer the sum/partial-sum").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketOverheads {
    /// Cycles to configure the memory-mapped control registers per packet.
    pub init_cycles: u64,
    /// Cycles per 64-byte result line returned by `NDPLd`.
    pub ld_cycles_per_line: u64,
}

impl Default for PacketOverheads {
    fn default() -> Self {
        Self {
            init_cycles: 32,
            ld_cycles_per_line: 4,
        }
    }
}

/// Complete simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// DDR4 timing (Table II).
    pub timing: DramTiming,
    /// Channel organization.
    pub org: DramOrg,
    /// NDP knobs.
    pub ndp: NdpConfig,
    /// SecNDP engine knobs.
    pub secndp: SecNdpConfig,
    /// Per-packet overheads.
    pub overheads: PacketOverheads,
    /// FR-FCFS-style request reordering in the memory controllers. `false`
    /// issues strictly in order (the scheduler ablation).
    pub reorder: bool,
}

impl SimConfig {
    /// The paper's Table II system with the given NDP knobs.
    pub fn paper_default(ndp: NdpConfig) -> Self {
        Self {
            timing: DramTiming::DDR4_2400,
            org: DramOrg {
                ranks: ndp.ndp_rank.max(1),
                ..DramOrg::DDR4_8GB
            },
            ndp,
            secndp: SecNdpConfig::default(),
            overheads: PacketOverheads::default(),
            reorder: true,
        }
    }

    /// Same system with a specific AES-engine count (the Figure 7 sweep).
    pub fn with_aes_engines(mut self, n: usize) -> Self {
        self.secndp = SecNdpConfig::with_engines(n);
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default(NdpConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let t = DramTiming::DDR4_2400;
        assert_eq!(t.t_rc, 55);
        assert_eq!(t.t_rcd, 16);
        assert_eq!(t.t_cl, 16);
        assert_eq!(t.t_rp, 16);
        assert_eq!(t.t_bl, 4);
        assert_eq!(t.t_faw, 26);
        assert_eq!(t.t_ras(), 39);
    }

    #[test]
    fn clock_is_ddr4_2400() {
        // 2400 MT/s DDR ⇒ 1200 MHz clock ⇒ 0.833 ns.
        assert!((NS_PER_CYCLE - 0.8333).abs() < 1e-3);
    }

    #[test]
    fn org_defaults() {
        let o = DramOrg::default();
        assert_eq!(o.banks_per_rank(), 16);
        assert_eq!(o.rank_bytes, 8 << 30);
    }

    #[test]
    fn config_ranks_follow_ndp_rank() {
        let c = SimConfig::paper_default(NdpConfig {
            ndp_rank: 4,
            ndp_reg: 2,
        });
        assert_eq!(c.org.ranks, 4);
        let c = c.with_aes_engines(3);
        assert_eq!(c.secndp.engine.num_engines, 3);
    }

    #[test]
    fn placement_display() {
        assert_eq!(VerifPlacement::Coloc.to_string(), "Ver-coloc");
        assert_eq!(VerifPlacement::Ecc.to_string(), "Ver-ECC");
    }
}
