//! Near-storage processing substrate (paper §I, §III-A).
//!
//! SecNDP's scheme is agnostic to *where* the untrusted PU sits: "offload
//! computation to main memory or even storage" — the paper cites SmartSSD
//! \[45\], Willow \[64\] and RecSSD \[76\]. This module provides the
//! storage-side counterpart of the DRAM model: an SSD with NAND channels,
//! dies and pages, an in-SSD processing unit, and the host link, so the
//! medical-analytics workload (large private datasets) can be evaluated
//! near-storage as well.
//!
//! Timing model: a page read occupies its die for `t_read_us`, then the
//! page crosses the NAND channel at `channel_mbps`; in host mode every
//! page additionally crosses the host link at `host_gbps`, while in
//! near-storage mode only per-query results do. SecNDP over near-storage
//! adds the same OTP-generation constraint as over NDP-DRAM: the host's
//! AES engines must cover every data byte the in-SSD PU consumed.
//!
//! Read amplification is modelled faithfully: a 128-byte embedding row
//! still costs a whole NAND page read, which is why random SLS gains far
//! less from near-storage offload than sequential scans — only the *host
//! link* traffic shrinks, not the NAND work.

use crate::trace::WorkloadTrace;
use secndp_cipher::engine::{AesEngineModel, EngineConfig};

/// SSD organization and timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdConfig {
    /// Independent NAND channels.
    pub channels: usize,
    /// Dies per channel (interleaved within a channel).
    pub dies_per_channel: usize,
    /// NAND page size in bytes.
    pub page_bytes: u64,
    /// Page array-read time (tR) in microseconds.
    pub t_read_us: f64,
    /// Per-channel transfer bandwidth in MB/s (ONFI bus).
    pub channel_mbps: f64,
    /// Host link bandwidth in GB/s (e.g. PCIe).
    pub host_gbps: f64,
    /// AES engines available on the host for SecNDP pad generation.
    pub aes_engines: usize,
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self {
            channels: 8,
            dies_per_channel: 4,
            page_bytes: 16 * 1024,
            t_read_us: 70.0,
            channel_mbps: 1200.0,
            host_gbps: 3.9,
            aes_engines: 12,
        }
    }
}

/// Execution mode of a storage run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageMode {
    /// Host reads every page and computes on the CPU.
    HostRead,
    /// In-SSD PU computes; only results cross the host link.
    NearStorage,
    /// Near-storage over ciphertext: the host regenerates OTPs for every
    /// data byte the in-SSD PU consumed (SecNDP applied to storage).
    SecNdpNearStorage,
}

impl std::fmt::Display for StorageMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StorageMode::HostRead => "host-read",
            StorageMode::NearStorage => "near-storage",
            StorageMode::SecNdpNearStorage => "SecNDP near-storage",
        })
    }
}

/// Outcome of a storage simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageReport {
    /// The simulated mode.
    pub mode: StorageMode,
    /// End-to-end time in microseconds.
    pub total_us: f64,
    /// NAND pages read (includes read amplification).
    pub pages_read: u64,
    /// Bytes that crossed the host link.
    pub bytes_over_host: u64,
    /// Queries whose completion was bounded by host AES pad generation.
    pub aes_limited_queries: u64,
}

impl StorageReport {
    /// Speedup over `baseline`.
    pub fn speedup_vs(&self, baseline: &StorageReport) -> f64 {
        baseline.total_us / self.total_us.max(1e-12)
    }

    /// Read amplification: NAND bytes read per useful data byte.
    pub fn read_amplification(&self, useful_bytes: u64, page_bytes: u64) -> f64 {
        (self.pages_read * page_bytes) as f64 / useful_bytes.max(1) as f64
    }
}

/// Simulates `trace` against an SSD under `mode`.
///
/// Queries are processed as barriers (like NDP packets): a query's pages
/// are read in parallel across channels/dies, then its result (or data)
/// crosses the host link.
///
/// ```
/// use secndp_sim::storage::{simulate_storage, SsdConfig, StorageMode};
/// use secndp_sim::trace::WorkloadTrace;
/// let scan = WorkloadTrace::sequential_scan(1 << 24, 4096, 512, 2, 1);
/// let cfg = SsdConfig::default();
/// let host = simulate_storage(&scan, StorageMode::HostRead, &cfg);
/// let near = simulate_storage(&scan, StorageMode::NearStorage, &cfg);
/// assert!(near.total_us < host.total_us);
/// ```
pub fn simulate_storage(
    trace: &WorkloadTrace,
    mode: StorageMode,
    cfg: &SsdConfig,
) -> StorageReport {
    let ndies = cfg.channels * cfg.dies_per_channel;
    let mut die_free = vec![0.0f64; ndies];
    let mut chan_free = vec![0.0f64; cfg.channels];
    let mut host_free = 0.0f64;
    let page_xfer_us = cfg.page_bytes as f64 / (cfg.channel_mbps * 1e6) * 1e6;
    let host_us_per_byte = 1.0 / (cfg.host_gbps * 1e9) * 1e6;
    let engine = AesEngineModel::new(EngineConfig::paper_default(cfg.aes_engines.max(1)));

    let mut time = 0.0f64;
    let mut pages_read = 0u64;
    let mut bytes_over_host = 0u64;
    let mut aes_limited = 0u64;

    for q in &trace.queries {
        // Distinct pages touched by this query.
        let mut pages: Vec<u64> = q
            .rows
            .iter()
            .flat_map(|r| {
                let t = &trace.tables[r.table as usize];
                let start = t.base + r.row * t.row_bytes;
                let end = start + t.row_bytes;
                (start / cfg.page_bytes)..=((end - 1) / cfg.page_bytes)
            })
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages_read += pages.len() as u64;

        let data_bytes: u64 = q
            .rows
            .iter()
            .map(|r| trace.tables[r.table as usize].row_bytes)
            .sum();

        // NAND phase: pages stripe across channels and dies.
        let mut nand_done = time;
        for &p in &pages {
            let chan = (p % cfg.channels as u64) as usize;
            let die = (p % ndies as u64) as usize;
            let read_done = die_free[die].max(time) + cfg.t_read_us;
            die_free[die] = read_done;
            let xfer_done = read_done.max(chan_free[chan]) + page_xfer_us;
            chan_free[chan] = xfer_done;
            nand_done = nand_done.max(xfer_done);
        }

        // Host-link phase.
        let host_bytes = match mode {
            StorageMode::HostRead => pages.len() as u64 * cfg.page_bytes,
            StorageMode::NearStorage | StorageMode::SecNdpNearStorage => trace.result_bytes,
        };
        bytes_over_host += host_bytes;
        let host_done = nand_done.max(host_free) + host_bytes as f64 * host_us_per_byte;
        host_free = host_done;

        // SecNDP: host pads for all consumed data must be ready.
        let mut done = host_done;
        if mode == StorageMode::SecNdpNearStorage {
            let aes_done = time + engine.time_for_bytes(data_bytes) * 1e-3; // ns → µs
            if aes_done > done {
                aes_limited += 1;
                done = aes_done;
            }
        }
        time = done;
    }

    StorageReport {
        mode,
        total_us: time,
        pages_read,
        bytes_over_host,
        aes_limited_queries: aes_limited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::WorkloadTrace;

    fn scan_trace() -> WorkloadTrace {
        // The medical-analytics shape: 4 queries, each scanning 2 000
        // contiguous 4 KiB patient rows (8 MiB per query).
        WorkloadTrace::sequential_scan(1 << 27, 4096, 2000, 4, 3)
    }

    #[test]
    fn near_storage_beats_host_read_on_scans() {
        let cfg = SsdConfig::default();
        let t = scan_trace();
        let host = simulate_storage(&t, StorageMode::HostRead, &cfg);
        let near = simulate_storage(&t, StorageMode::NearStorage, &cfg);
        let s = near.speedup_vs(&host);
        assert!(s > 1.2, "near-storage speedup {s:.2}×");
        assert!(near.bytes_over_host < host.bytes_over_host / 100);
        assert_eq!(near.pages_read, host.pages_read);
    }

    #[test]
    fn secndp_matches_near_storage_with_enough_engines() {
        let t = scan_trace();
        let cfg = SsdConfig::default();
        let near = simulate_storage(&t, StorageMode::NearStorage, &cfg);
        let sec = simulate_storage(&t, StorageMode::SecNdpNearStorage, &cfg);
        // NAND is slow; even few AES engines keep up with ~GB/s storage.
        assert!(
            sec.total_us < near.total_us * 1.05,
            "SecNDP near-storage {:.1} vs {:.1}",
            sec.total_us,
            near.total_us
        );
        assert_eq!(sec.aes_limited_queries, 0);
        // But a single engine cannot cover an 8-channel SSD burst.
        let starved = SsdConfig {
            aes_engines: 1,
            channels: 16,
            dies_per_channel: 8,
            ..cfg
        };
        let sec1 = simulate_storage(&t, StorageMode::SecNdpNearStorage, &starved);
        let near1 = simulate_storage(&t, StorageMode::NearStorage, &starved);
        assert!(sec1.total_us >= near1.total_us);
    }

    #[test]
    fn random_sls_suffers_read_amplification() {
        // 128-byte rows from random pages: each row costs a 16 KiB page.
        let t = WorkloadTrace::uniform_sls(1 << 28, 128, 40, 8, 9);
        let cfg = SsdConfig::default();
        let host = simulate_storage(&t, StorageMode::HostRead, &cfg);
        let amp = host.read_amplification(t.total_data_bytes(), cfg.page_bytes);
        assert!(amp > 50.0, "amplification {amp:.0}×");
        // Near-storage still cuts host traffic dramatically…
        let near = simulate_storage(&t, StorageMode::NearStorage, &cfg);
        assert!(near.bytes_over_host < host.bytes_over_host / 10);
        // …but cannot cut NAND work, so the speedup is modest compared to
        // the sequential scan case.
        let s_sls = near.speedup_vs(&host);
        let scan = scan_trace();
        let s_scan = simulate_storage(&scan, StorageMode::NearStorage, &cfg)
            .speedup_vs(&simulate_storage(&scan, StorageMode::HostRead, &cfg));
        assert!(s_scan > s_sls, "scan {s_scan:.2}× vs sls {s_sls:.2}×");
    }

    #[test]
    fn more_channels_scale_scans() {
        let t = scan_trace();
        let narrow = SsdConfig {
            channels: 2,
            ..SsdConfig::default()
        };
        let wide = SsdConfig {
            channels: 16,
            ..SsdConfig::default()
        };
        let n = simulate_storage(&t, StorageMode::NearStorage, &narrow);
        let w = simulate_storage(&t, StorageMode::NearStorage, &wide);
        assert!(w.total_us < n.total_us / 2.0);
    }

    #[test]
    fn display_and_report_helpers() {
        assert_eq!(StorageMode::NearStorage.to_string(), "near-storage");
        let r = StorageReport {
            mode: StorageMode::HostRead,
            total_us: 10.0,
            pages_read: 4,
            bytes_over_host: 100,
            aes_limited_queries: 0,
        };
        let r2 = StorageReport {
            total_us: 5.0,
            ..r.clone()
        };
        assert_eq!(r2.speedup_vs(&r), 2.0);
        assert_eq!(r.read_amplification(64, 16), 1.0);
    }

    #[test]
    fn page_transfer_time_is_microseconds_scale() {
        // Guard against unit slips: a 16 KiB page at 1200 MB/s ≈ 13.6 µs
        // of channel time plus the 70 µs array read.
        let cfg = SsdConfig::default();
        let us = cfg.page_bytes as f64 / (cfg.channel_mbps * 1e6) * 1e6;
        assert!((10.0..20.0).contains(&us), "{us}");
    }
}
