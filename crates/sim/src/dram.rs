//! DDR4 bank/rank/channel timing model (Ramulator-lite).
//!
//! The model tracks, per bank: the open row and the earliest cycles at which
//! the next PRE / ACT / RD may issue; per rank: the tRRD and tFAW activate
//! constraints; per channel: data-bus occupancy and the tCCD_S/L
//! read-to-read spacing. Requests are served in arrival order with
//! unlimited request queueing — an open-page FR-FCFS controller whose
//! reordering is approximated by the caller grouping row-local lines
//! together (exactly what both streaming scans and NDP row reads produce).
//!
//! Each call to [`Channel::read_line`] accounts one 64-byte read
//! transaction and returns its data-completion cycle. The channel is the
//! unit of bus sharing: the non-NDP baseline runs all ranks under **one**
//! channel (one shared data bus), while rank-level NDP instantiates one
//! single-rank channel **per rank** (each rank-NDP PU talks to its rank
//! through the buffer chip, giving rank-private bandwidth — the whole point
//! of rank-level NDP, paper §III-A/§V).

use crate::config::{DramOrg, DramTiming};
use crate::mapping::LineLoc;
use crate::stats::DramStats;
use std::collections::VecDeque;

#[derive(Debug, Clone, Default)]
struct BankState {
    open_row: Option<u64>,
    /// Cycle of the most recent ACT.
    act_time: u64,
    /// Earliest cycle the next PRE may issue (tRAS after ACT).
    pre_ready: u64,
    /// Earliest cycle the next ACT may issue (tRP after PRE, tRC after ACT).
    act_ready: u64,
}

#[derive(Debug, Clone)]
struct RankState {
    banks: Vec<BankState>,
    /// Times of the last four ACTs (tFAW window).
    act_window: VecDeque<u64>,
    last_act: Option<(u64, usize)>,
    last_rd: Option<(u64, usize)>,
}

impl RankState {
    fn new(banks: usize) -> Self {
        Self {
            banks: vec![BankState::default(); banks],
            act_window: VecDeque::with_capacity(4),
            last_act: None,
            last_rd: None,
        }
    }

    fn act_constraints(&self, bank_group: usize, t: &DramTiming) -> u64 {
        let rrd = match self.last_act {
            Some((when, bg)) if bg == bank_group => when + t.t_rrd_l,
            Some((when, _)) => when + t.t_rrd_s,
            None => 0,
        };
        let faw = if self.act_window.len() == 4 {
            self.act_window[0] + t.t_faw
        } else {
            0
        };
        rrd.max(faw)
    }

    fn record_act(&mut self, at: u64, bank_group: usize) {
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(at);
        self.last_act = Some((at, bank_group));
    }

    fn rd_constraint(&self, bank_group: usize, t: &DramTiming) -> u64 {
        match self.last_rd {
            Some((when, bg)) if bg == bank_group => when + t.t_ccd_l,
            Some((when, _)) => when + t.t_ccd_s,
            None => 0,
        }
    }
}

/// One memory channel: a shared command/data bus over one or more ranks.
#[derive(Debug, Clone)]
pub struct Channel {
    timing: DramTiming,
    org: DramOrg,
    ranks: Vec<RankState>,
    /// Cycle until which the data bus is occupied.
    bus_free: u64,
    stats: DramStats,
}

impl Channel {
    /// Creates a channel with `ranks` ranks of the given organization.
    ///
    /// # Panics
    ///
    /// Panics if `ranks == 0`.
    pub fn new(timing: DramTiming, org: DramOrg, ranks: usize) -> Self {
        assert!(ranks > 0, "a channel needs at least one rank");
        Self {
            timing,
            org,
            ranks: (0..ranks)
                .map(|_| RankState::new(org.banks_per_rank()))
                .collect(),
            bus_free: 0,
            stats: DramStats::default(),
        }
    }

    /// Accumulated command/locality statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Number of ranks on this channel.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Pushes `t` out of any refresh window: every `tREFI`, the rank is
    /// unavailable for the first `tRFC` cycles (all-bank refresh).
    fn skip_refresh(&mut self, t: u64) -> u64 {
        let (refi, rfc) = (self.timing.t_refi, self.timing.t_rfc);
        // The first refresh fires one full tREFI after power-up, so early
        // requests (t < tREFI) are never stalled.
        if refi == 0 || t < refi {
            return t;
        }
        let phase = t % refi;
        if phase < rfc {
            self.stats.refresh_stalls += 1;
            t - phase + rfc
        } else {
            t
        }
    }

    /// Issues one 64-byte read to `loc`, not earlier than cycle `earliest`,
    /// and returns the cycle at which its data burst completes.
    ///
    /// `loc.rank` is taken modulo the channel's rank count, so per-rank NDP
    /// channels can reuse globally decoded locations.
    pub fn read_line(&mut self, loc: LineLoc, earliest: u64) -> u64 {
        let t = self.timing;
        let earliest = self.skip_refresh(earliest);
        let rank_idx = loc.rank % self.ranks.len();
        let bank_idx = loc.bank_group * self.org.banks_per_group + loc.bank;

        // --- Row-buffer management (open-page policy). ---
        let rank_act_con = self.ranks[rank_idx].act_constraints(loc.bank_group, &t);
        let rank_rd_con = self.ranks[rank_idx].rd_constraint(loc.bank_group, &t);
        let rank = &mut self.ranks[rank_idx];
        let bank = &mut rank.banks[bank_idx];
        let rd_min;
        let mut new_act = None;
        match bank.open_row {
            Some(r) if r == loc.row => {
                self.stats.row_hits += 1;
                rd_min = bank.act_time + t.t_rcd;
            }
            other => {
                self.stats.row_misses += 1;
                let mut act_lower = earliest;
                if other.is_some() {
                    // Precharge the conflicting row.
                    let pre_at = earliest.max(bank.pre_ready);
                    self.stats.precharges += 1;
                    act_lower = act_lower.max(pre_at + t.t_rp);
                }
                let act_at = act_lower.max(bank.act_ready).max(rank_act_con);
                bank.open_row = Some(loc.row);
                bank.act_time = act_at;
                bank.pre_ready = act_at + t.t_ras();
                bank.act_ready = act_at + t.t_rc;
                new_act = Some(act_at);
                self.stats.activates += 1;
                rd_min = act_at + t.t_rcd;
            }
        }
        if let Some(act_at) = new_act {
            rank.record_act(act_at, loc.bank_group);
        }

        // --- Read command: CCD spacing plus data-bus availability. ---
        let rd_at = earliest
            .max(rd_min)
            .max(rank_rd_con)
            .max(self.bus_free.saturating_sub(t.t_cl));
        rank.last_rd = Some((rd_at, loc.bank_group));
        let data_start = rd_at + t.t_cl;
        let done = data_start + t.t_bl;
        self.bus_free = done;
        self.stats.reads += 1;
        done
    }

    /// Issues one 64-byte write to `loc`, not earlier than cycle
    /// `earliest`, and returns the cycle at which its data burst completes.
    /// Used by the initialization phase (`ArithEnc` writing ciphertext back
    /// to memory, paper §V-E1).
    pub fn write_line(&mut self, loc: LineLoc, earliest: u64) -> u64 {
        let t = self.timing;
        let earliest = self.skip_refresh(earliest);
        let rank_idx = loc.rank % self.ranks.len();
        let bank_idx = loc.bank_group * self.org.banks_per_group + loc.bank;

        // Row management is identical to the read path.
        let rank_act_con = self.ranks[rank_idx].act_constraints(loc.bank_group, &t);
        let rank_col_con = self.ranks[rank_idx].rd_constraint(loc.bank_group, &t);
        let rank = &mut self.ranks[rank_idx];
        let bank = &mut rank.banks[bank_idx];
        let wr_min;
        let mut new_act = None;
        match bank.open_row {
            Some(r) if r == loc.row => {
                self.stats.row_hits += 1;
                wr_min = bank.act_time + t.t_rcd;
            }
            other => {
                self.stats.row_misses += 1;
                let mut act_lower = earliest;
                if other.is_some() {
                    let pre_at = earliest.max(bank.pre_ready);
                    self.stats.precharges += 1;
                    act_lower = act_lower.max(pre_at + t.t_rp);
                }
                let act_at = act_lower.max(bank.act_ready).max(rank_act_con);
                bank.open_row = Some(loc.row);
                bank.act_time = act_at;
                bank.pre_ready = act_at + t.t_ras();
                bank.act_ready = act_at + t.t_rc;
                new_act = Some(act_at);
                self.stats.activates += 1;
                wr_min = act_at + t.t_rcd;
            }
        }
        let wr_at = earliest
            .max(wr_min)
            .max(rank_col_con)
            .max(self.bus_free.saturating_sub(t.t_cwl));
        let data_end = wr_at + t.t_cwl + t.t_bl;
        // Write recovery pushes out the earliest precharge of this bank.
        let bank = &mut rank.banks[bank_idx];
        bank.pre_ready = bank.pre_ready.max(data_end + t.t_wr);
        if let Some(act_at) = new_act {
            rank.record_act(act_at, loc.bank_group);
        }
        rank.last_rd = Some((wr_at, loc.bank_group));
        self.bus_free = data_end;
        self.stats.writes += 1;
        data_end
    }

    /// Serves a batch of reads that may all issue from `earliest`, returning
    /// the completion cycle of the last one.
    ///
    /// When [`secndp_telemetry::trace::set_io_spans`] is on, each burst
    /// records a `dram_burst` span (opt-in: hot simulation loops would
    /// otherwise wrap the span journal in milliseconds).
    pub fn read_lines(&mut self, locs: &[LineLoc], earliest: u64) -> u64 {
        let sp = secndp_telemetry::trace::io_spans_enabled().then(|| {
            let mut s = secndp_telemetry::trace::span("dram_burst");
            s.attr_u64("lines", locs.len() as u64);
            s
        });
        let done = locs
            .iter()
            .map(|&l| self.read_line(l, earliest))
            .max()
            .unwrap_or(earliest);
        if let Some(mut s) = sp {
            s.attr_u64("done_cycle", done);
        }
        done
    }

    /// Peak data-bus bandwidth in bytes per cycle (64 bytes per tBL).
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        64.0 / self.timing.t_bl as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DramOrg, DramTiming, LINE_BYTES};
    use crate::mapping::AddressMapper;

    fn chan(ranks: usize) -> Channel {
        Channel::new(DramTiming::DDR4_2400, DramOrg::DDR4_8GB, ranks)
    }

    fn loc(bg: usize, bank: usize, row: u64, col: u64) -> LineLoc {
        LineLoc {
            channel: 0,
            rank: 0,
            bank_group: bg,
            bank,
            row,
            col,
        }
    }

    #[test]
    fn first_read_latency_is_act_rcd_cl_bl() {
        let mut c = chan(1);
        let done = c.read_line(loc(0, 0, 5, 0), 0);
        let t = DramTiming::DDR4_2400;
        assert_eq!(done, t.t_rcd + t.t_cl + t.t_bl);
        assert_eq!(c.stats().activates, 1);
        assert_eq!(c.stats().row_misses, 1);
    }

    #[test]
    fn row_hit_is_faster_than_row_conflict() {
        let mut c = chan(1);
        c.read_line(loc(0, 0, 5, 0), 0);
        let hit_done = c.read_line(loc(0, 0, 5, 1), 0);
        let mut c2 = chan(1);
        c2.read_line(loc(0, 0, 5, 0), 0);
        let conflict_done = c2.read_line(loc(0, 0, 6, 0), 0);
        assert!(hit_done < conflict_done);
        assert_eq!(c.stats().row_hits, 1);
        assert_eq!(c2.stats().row_misses, 2);
        assert_eq!(c2.stats().precharges, 1);
    }

    #[test]
    fn row_conflict_waits_for_tras_and_trp() {
        let mut c = chan(1);
        c.read_line(loc(0, 0, 5, 0), 0);
        let done = c.read_line(loc(0, 0, 6, 0), 0);
        let t = DramTiming::DDR4_2400;
        // ACT@0; PRE ≥ tRAS; second ACT ≥ tRAS+tRP = tRC; RD; data.
        assert_eq!(done, t.t_rc + t.t_rcd + t.t_cl + t.t_bl);
    }

    #[test]
    fn streaming_same_row_is_bus_limited() {
        // 64 hits to one open row: throughput = one burst per tCCD_L.
        let mut c = chan(1);
        c.read_line(loc(0, 0, 1, 0), 0);
        let mut last = 0;
        for i in 1..64 {
            last = c.read_line(loc(0, 0, 1, i), 0);
        }
        let t = DramTiming::DDR4_2400;
        // 63 follow-up reads, spaced ≥ tCCD_L apart within one bank group.
        let lower = t.t_rcd + t.t_cl + t.t_bl + 63 * t.t_ccd_l - t.t_ccd_l;
        assert!(last >= lower, "last={last} lower={lower}");
        assert_eq!(c.stats().row_hits, 63);
    }

    #[test]
    fn interleaved_bank_groups_beat_single_bank_group() {
        // Alternating bank groups uses tCCD_S (4) instead of tCCD_L (6).
        let mut same = chan(1);
        let mut alt = chan(1);
        let mut done_same = 0;
        let mut done_alt = 0;
        for i in 0..32 {
            done_same = same.read_line(loc(0, 0, 1, i), 0);
            done_alt = alt.read_line(loc((i % 4) as usize, 0, 1, i / 4), 0);
        }
        assert!(done_alt < done_same);
    }

    #[test]
    fn tfaw_limits_activation_bursts() {
        // 8 row misses to 8 different banks: the 5th ACT must wait for the
        // tFAW window even though all banks are idle.
        let mut c = chan(1);
        let mut acts = Vec::new();
        for b in 0..8 {
            c.read_line(loc(b % 4, b / 4, 1, 0), 0);
            acts.push(c.stats().activates);
        }
        // Reconstruct ACT times through a fresh run tracking completion.
        let mut c = chan(1);
        let mut times = Vec::new();
        for b in 0..8 {
            let done = c.read_line(loc(b % 4, b / 4, 1, 0), 0);
            let t = DramTiming::DDR4_2400;
            times.push(done - t.t_rcd - t.t_cl - t.t_bl); // == ACT time
        }
        let t = DramTiming::DDR4_2400;
        assert!(times[4] >= times[0] + t.t_faw, "tFAW violated: {times:?}");
    }

    #[test]
    fn two_ranks_share_one_bus() {
        // Same traffic over 1 vs 2 ranks on ONE channel: row-hit streams are
        // bus-bound, so two ranks cannot double throughput.
        let m = AddressMapper::new(DramOrg::DDR4_8GB);
        let locs: Vec<LineLoc> = (0..512u64).map(|i| m.decode(i * LINE_BYTES)).collect();
        let mut one = chan(1);
        let done_one = one.read_lines(&locs, 0);
        let mut two = chan(2);
        // Spread across both ranks.
        let locs2: Vec<LineLoc> = locs
            .iter()
            .enumerate()
            .map(|(i, &l)| LineLoc { rank: i % 2, ..l })
            .collect();
        let done_two = two.read_lines(&locs2, 0);
        // Far from 2×: the shared data bus is the bottleneck either way.
        // (A modest gain remains because alternating ranks breaks up
        // same-bank-group runs, turning tCCD_L spacing into tCCD_S.)
        let ratio = done_one as f64 / done_two as f64;
        assert!(ratio < 1.6, "ratio {ratio}");
    }

    #[test]
    fn separate_channels_scale_bandwidth() {
        // The NDP configuration: the same 512-line stream split over 8
        // per-rank channels finishes ~8× faster than over one channel.
        let m = AddressMapper::new(DramOrg::DDR4_8GB);
        let locs: Vec<LineLoc> = (0..512u64).map(|i| m.decode(i * LINE_BYTES)).collect();
        let mut single = chan(8);
        let done_single = single.read_lines(&locs, 0);
        let mut per_rank: Vec<Channel> = (0..8).map(|_| chan(1)).collect();
        let mut done_ndp = 0;
        for (i, &l) in locs.iter().enumerate() {
            let d = per_rank[i % 8].read_line(l, 0);
            done_ndp = done_ndp.max(d);
        }
        let speedup = done_single as f64 / done_ndp as f64;
        assert!(speedup > 4.0, "rank-parallel speedup only {speedup:.2}×");
    }

    #[test]
    fn earliest_is_respected() {
        let mut c = chan(1);
        let done = c.read_line(loc(0, 0, 1, 0), 1000);
        assert!(done > 1000);
        let t = DramTiming::DDR4_2400;
        assert_eq!(done, 1000 + t.t_rcd + t.t_cl + t.t_bl);
    }

    #[test]
    fn empty_batch_returns_earliest() {
        let mut c = chan(1);
        assert_eq!(c.read_lines(&[], 77), 77);
    }

    #[test]
    fn write_then_read_same_row_hits() {
        let mut c = chan(1);
        c.write_line(loc(0, 0, 3, 0), 0);
        let before_hits = c.stats().row_hits;
        c.read_line(loc(0, 0, 3, 1), 0);
        assert_eq!(c.stats().row_hits, before_hits + 1);
        assert_eq!(c.stats().writes, 1);
        assert_eq!(c.stats().reads, 1);
        assert_eq!(c.stats().bytes_written(), 64);
    }

    #[test]
    fn write_recovery_delays_row_conflict() {
        // A write followed by a conflicting activation must wait tWR after
        // the write data, making the conflict slower than after a read.
        let t = DramTiming::DDR4_2400;
        let mut wrote = chan(1);
        wrote.write_line(loc(0, 0, 3, 0), 0);
        let after_write = wrote.read_line(loc(0, 0, 4, 0), 0);
        let mut read = chan(1);
        read.read_line(loc(0, 0, 3, 0), 0);
        let after_read = read.read_line(loc(0, 0, 4, 0), 0);
        assert!(
            after_write >= after_read + t.t_wr - t.t_rc.min(t.t_wr),
            "write recovery not applied: {after_write} vs {after_read}"
        );
        assert!(after_write > after_read);
    }

    #[test]
    fn refresh_window_pushes_requests_out() {
        let t = DramTiming::DDR4_2400;
        let mut c = chan(1);
        // A request landing inside the second refresh window is delayed to
        // its end.
        let inside = t.t_refi + t.t_rfc / 2;
        let done = c.read_line(loc(0, 0, 1, 0), inside);
        assert!(done >= t.t_refi + t.t_rfc + t.t_rcd + t.t_cl + t.t_bl);
        assert_eq!(c.stats().refresh_stalls, 1);
        // A request outside the window is unaffected.
        let outside = t.t_refi + 2 * t.t_rfc;
        let done = c.read_line(loc(1, 0, 1, 0), outside);
        assert_eq!(done, outside + t.t_rcd + t.t_cl + t.t_bl);
    }

    #[test]
    fn refresh_can_be_disabled() {
        let mut timing = DramTiming::DDR4_2400;
        timing.t_refi = 0;
        let mut c = Channel::new(timing, DramOrg::DDR4_8GB, 1);
        let done = c.read_line(loc(0, 0, 1, 0), 5);
        assert_eq!(done, 5 + timing.t_rcd + timing.t_cl + timing.t_bl);
        assert_eq!(c.stats().refresh_stalls, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_loc() -> impl Strategy<Value = LineLoc> {
            (0usize..4, 0usize..4, 0u64..8, 0u64..128).prop_map(|(bg, bank, row, col)| LineLoc {
                channel: 0,
                rank: 0,
                bank_group: bg,
                bank,
                row,
                col,
            })
        }

        proptest! {
            /// Data bursts never overlap on the channel bus, and reads
            /// never complete before the physical minimum latency.
            #[test]
            fn bursts_are_disjoint_and_latency_bounded(
                locs in proptest::collection::vec(arb_loc(), 1..80),
            ) {
                let t = DramTiming::DDR4_2400;
                let mut c = chan(1);
                let mut intervals: Vec<(u64, u64)> = Vec::new();
                for &l in &locs {
                    let done = c.read_line(l, 0);
                    prop_assert!(done >= t.t_rcd + t.t_cl + t.t_bl || done >= t.t_cl + t.t_bl);
                    intervals.push((done - t.t_bl, done));
                }
                intervals.sort();
                for w in intervals.windows(2) {
                    prop_assert!(w[0].1 <= w[1].0, "bus overlap: {:?} vs {:?}", w[0], w[1]);
                }
            }

            /// Completion times respect `earliest`, and serving the same
            /// request later never finishes earlier (monotonicity).
            #[test]
            fn earliest_monotonicity(
                locs in proptest::collection::vec(arb_loc(), 1..40),
                offset in 0u64..10_000,
            ) {
                let mut base = chan(1);
                let mut shifted = chan(1);
                for &l in &locs {
                    let d0 = base.read_line(l, 0);
                    let d1 = shifted.read_line(l, offset);
                    prop_assert!(d1 >= offset);
                    prop_assert!(d1 >= d0, "shifting later finished earlier: {d1} < {d0}");
                }
            }

            /// Command accounting is consistent: every read is either a hit
            /// or a miss, and activations equal misses.
            #[test]
            fn stats_are_consistent(locs in proptest::collection::vec(arb_loc(), 1..100)) {
                let mut c = chan(1);
                for &l in &locs {
                    c.read_line(l, 0);
                }
                let s = *c.stats();
                prop_assert_eq!(s.reads, locs.len() as u64);
                prop_assert_eq!(s.row_hits + s.row_misses, s.reads);
                prop_assert_eq!(s.activates, s.row_misses);
                prop_assert!(s.precharges <= s.activates);
            }

            /// The FR-FCFS-style reordering never changes WHAT is read,
            /// only the order: schedule_lines is a permutation.
            #[test]
            fn schedule_is_a_permutation(locs in proptest::collection::vec(arb_loc(), 0..120)) {
                let scheduled = crate::ndp::schedule_lines(&locs, 64);
                prop_assert_eq!(scheduled.len(), locs.len());
                let key = |l: &LineLoc| (l.rank, l.bank_group, l.bank, l.row, l.col);
                let mut a: Vec<_> = locs.iter().map(key).collect();
                let mut b: Vec<_> = scheduled.iter().map(key).collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b);
            }

            /// Reordering helps (or at least never hurts) total latency on
            /// a single-rank channel.
            #[test]
            fn reordering_never_hurts(locs in proptest::collection::vec(arb_loc(), 1..80)) {
                let mut inorder = chan(1);
                let mut reordered = chan(1);
                let d0 = inorder.read_lines(&locs, 0);
                let sched = crate::ndp::schedule_lines(&locs, usize::MAX);
                let d1 = reordered.read_lines(&sched, 0);
                // Allow a tiny slack: the greedy round-robin is a heuristic.
                prop_assert!(d1 <= d0 + d0 / 10 + 50, "reordering hurt: {d1} vs {d0}");
            }
        }
    }

    #[test]
    fn peak_bandwidth_is_ddr4_2400() {
        // 64 B / 4 cycles at 1.2 GHz = 19.2 GB/s.
        let c = chan(1);
        let gbps = c.peak_bytes_per_cycle() * crate::config::DRAM_CLOCK_GHZ;
        assert!((gbps - 19.2).abs() < 1e-9);
    }
}
