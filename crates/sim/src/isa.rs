//! ISA extensions for NDP and SecNDP (paper Figure 5, §V-B).
//!
//! The processor issues special instructions that the memory controller
//! turns into NDP command packets:
//!
//! | instruction | purpose | extra fields vs baseline |
//! |-------------|---------|--------------------------|
//! | `NDPInst`    | offload one vector operation | — |
//! | `NDPLd`      | load an NDP PU register back | — |
//! | `SecNDPInst` | `NDPInst` + OTP regeneration | version `v`, verify bit |
//! | `SecNDPLd`   | `NDPLd` + decrypt (+ verify) | verify bit |
//! | `ArithEnc`   | initial encryption + tag generation | version, verify bit |
//!
//! This module defines the operand records and a dense 128-bit binary
//! encoding (two 64-bit words) with exact round-tripping — the form in
//! which commands cross the memory-mapped control registers. The encoding
//! is ours (the paper specifies fields, not bit positions); field widths
//! follow the paper's constraints (38-bit addresses, §IV-A Table VI).

/// Arithmetic operation performed by the NDP PU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NdpOp {
    /// Multiply a vector by the immediate and accumulate into the register
    /// (the SLS building block: `reg += Imm · M[addr..]`).
    MulAcc,
    /// Accumulate a vector into the register (`reg += M[addr..]`).
    Acc,
    /// Clear the destination register.
    Clear,
}

impl NdpOp {
    fn code(self) -> u64 {
        match self {
            NdpOp::MulAcc => 0,
            NdpOp::Acc => 1,
            NdpOp::Clear => 2,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(NdpOp::MulAcc),
            1 => Some(NdpOp::Acc),
            2 => Some(NdpOp::Clear),
            _ => None,
        }
    }
}

/// Element width selector (`dsize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSize {
    /// 8-bit elements.
    B1,
    /// 16-bit elements.
    B2,
    /// 32-bit elements.
    B4,
    /// 64-bit elements.
    B8,
}

impl DataSize {
    /// Element width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            DataSize::B1 => 1,
            DataSize::B2 => 2,
            DataSize::B4 => 4,
            DataSize::B8 => 8,
        }
    }

    fn code(self) -> u64 {
        match self {
            DataSize::B1 => 0,
            DataSize::B2 => 1,
            DataSize::B4 => 2,
            DataSize::B8 => 3,
        }
    }

    fn from_code(c: u64) -> Self {
        match c & 3 {
            0 => DataSize::B1,
            1 => DataSize::B2,
            2 => DataSize::B4,
            _ => DataSize::B8,
        }
    }
}

/// Maximum encodable physical address (38 bits, per the paper's Table VI).
pub const MAX_INST_ADDR: u64 = (1 << 38) - 1;
/// Maximum encodable vector size in elements (16 bits).
pub const MAX_VSIZE: u16 = u16::MAX;
/// Maximum register id (6 bits, up to 64 PU registers).
pub const MAX_REG: u8 = 63;

/// One NDP compute command (`NDPInst`), or its SecNDP variant when
/// [`SecNdpExt`] is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NdpInst {
    /// Physical address of the vector operand.
    pub paddr: u64,
    /// The operation.
    pub op: NdpOp,
    /// Vector length in elements.
    pub vsize: u16,
    /// Element width.
    pub dsize: DataSize,
    /// Immediate operand (`aᵢ`, the weight).
    pub imm: u32,
    /// Destination/accumulation register.
    pub reg: u8,
}

/// SecNDP extension fields carried by `SecNDPInst` (paper §V-B: "two extra
/// fields: the version number v and one extra bit indicating whether
/// verification is needed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecNdpExt {
    /// Version number forwarded to the encryption engine (48 bits encoded).
    pub version: u64,
    /// Whether the verification engine processes this command's tag.
    pub verify: bool,
}

/// A fully-formed command as written to the memory-mapped control
/// registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Baseline NDP compute command.
    Inst(NdpInst),
    /// SecNDP compute command (OTP PU mirrors it on-chip).
    SecInst(NdpInst, SecNdpExt),
    /// Load PU register `reg` back to the processor.
    Ld {
        /// Source register.
        reg: u8,
    },
    /// Load + decrypt (+ verify) a PU register.
    SecLd {
        /// Source register.
        reg: u8,
        /// Whether to verify on load.
        verify: bool,
    },
}

const KIND_INST: u64 = 0;
const KIND_SECINST: u64 = 1;
const KIND_LD: u64 = 2;
const KIND_SECLD: u64 = 3;

/// Errors from decoding a command word pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode field.
    BadOp,
    /// Reserved bits were set.
    ReservedBits,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOp => f.write_str("unknown operation code"),
            DecodeError::ReservedBits => f.write_str("reserved bits set"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Command {
    /// Encodes into the 128-bit control-register image.
    ///
    /// Word 0 (low → high): `kind:2 | op:2 | dsize:2 | reg:6 | vsize:16 |
    /// addr:36 hi-bits…` — address bits 0..38 split across the words;
    /// word 1: `addr_hi:2 | imm:32 | version_lo:…`. Exact layout is an
    /// implementation detail; [`decode`](Self::decode) inverts it.
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds its encodable width ([`MAX_INST_ADDR`],
    /// [`MAX_REG`]).
    pub fn encode(&self) -> [u64; 2] {
        match *self {
            Command::Ld { reg } => {
                assert!(reg <= MAX_REG);
                [KIND_LD | ((reg as u64) << 2), 0]
            }
            Command::SecLd { reg, verify } => {
                assert!(reg <= MAX_REG);
                [KIND_SECLD | ((reg as u64) << 2) | ((verify as u64) << 8), 0]
            }
            Command::Inst(i) => Self::encode_inst(KIND_INST, i, 0, false),
            Command::SecInst(i, ext) => Self::encode_inst(KIND_SECINST, i, ext.version, ext.verify),
        }
    }

    fn encode_inst(kind: u64, i: NdpInst, version: u64, verify: bool) -> [u64; 2] {
        assert!(i.paddr <= MAX_INST_ADDR, "address exceeds 38 bits");
        assert!(i.reg <= MAX_REG, "register id exceeds 6 bits");
        assert!(
            version < (1 << 29),
            "version exceeds the 29-bit command field"
        );
        let w0 = kind
            | (i.op.code() << 2)
            | (i.dsize.code() << 4)
            | ((i.reg as u64) << 6)
            | ((i.vsize as u64) << 12)
            | ((i.paddr & 0xF_FFFF_FFFF) << 28); // low 36 address bits
        let w1 = (i.paddr >> 36) // high 2 address bits
            | ((i.imm as u64) << 2)
            | (version << 34)
            | ((verify as u64) << 63);
        [w0, w1]
    }

    /// Decodes a control-register image.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes or set reserved bits.
    pub fn decode(words: [u64; 2]) -> Result<Command, DecodeError> {
        let [w0, w1] = words;
        match w0 & 3 {
            KIND_LD => {
                if w0 >> 8 != 0 || w1 != 0 {
                    return Err(DecodeError::ReservedBits);
                }
                Ok(Command::Ld {
                    reg: ((w0 >> 2) & 0x3F) as u8,
                })
            }
            KIND_SECLD => {
                if w0 >> 9 != 0 || w1 != 0 {
                    return Err(DecodeError::ReservedBits);
                }
                Ok(Command::SecLd {
                    reg: ((w0 >> 2) & 0x3F) as u8,
                    verify: (w0 >> 8) & 1 == 1,
                })
            }
            kind => {
                let op = NdpOp::from_code((w0 >> 2) & 3).ok_or(DecodeError::BadOp)?;
                let inst = NdpInst {
                    op,
                    dsize: DataSize::from_code(w0 >> 4),
                    reg: ((w0 >> 6) & 0x3F) as u8,
                    vsize: ((w0 >> 12) & 0xFFFF) as u16,
                    paddr: ((w0 >> 28) & 0xF_FFFF_FFFF) | ((w1 & 3) << 36),
                    imm: ((w1 >> 2) & 0xFFFF_FFFF) as u32,
                };
                if kind == KIND_INST {
                    if w1 >> 34 != 0 {
                        return Err(DecodeError::ReservedBits);
                    }
                    Ok(Command::Inst(inst))
                } else {
                    Ok(Command::SecInst(
                        inst,
                        SecNdpExt {
                            version: (w1 >> 34) & ((1 << 29) - 1),
                            verify: w1 >> 63 == 1,
                        },
                    ))
                }
            }
        }
    }
}

/// Builds the `SecNDPInst` command sequence for one weighted-summation
/// query: one `MulAcc` per row, then a verified `SecLd` (the dispatch shape
/// of Figure 5's example `a × P`).
pub fn secndp_query_commands(
    row_addrs: &[u64],
    weights: &[u32],
    vsize: u16,
    dsize: DataSize,
    reg: u8,
    version: u64,
    verify: bool,
) -> Vec<Command> {
    assert_eq!(row_addrs.len(), weights.len());
    let mut out = Vec::with_capacity(row_addrs.len() + 1);
    for (&paddr, &imm) in row_addrs.iter().zip(weights) {
        out.push(Command::SecInst(
            NdpInst {
                paddr,
                op: NdpOp::MulAcc,
                vsize,
                dsize,
                imm,
                reg,
            },
            SecNdpExt { version, verify },
        ));
    }
    out.push(Command::SecLd { reg, verify });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ld_round_trip() {
        for reg in [0u8, 1, 63] {
            let c = Command::Ld { reg };
            assert_eq!(Command::decode(c.encode()).unwrap(), c);
            let c = Command::SecLd { reg, verify: true };
            assert_eq!(Command::decode(c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn inst_round_trip_extremes() {
        let i = NdpInst {
            paddr: MAX_INST_ADDR,
            op: NdpOp::MulAcc,
            vsize: MAX_VSIZE,
            dsize: DataSize::B8,
            imm: u32::MAX,
            reg: MAX_REG,
        };
        let c = Command::Inst(i);
        assert_eq!(Command::decode(c.encode()).unwrap(), c);
    }

    #[test]
    fn secinst_preserves_extension() {
        let c = Command::SecInst(
            NdpInst {
                paddr: 0x3_0000_1234,
                op: NdpOp::Acc,
                vsize: 32,
                dsize: DataSize::B4,
                imm: 7,
                reg: 5,
            },
            SecNdpExt {
                version: 12345,
                verify: true,
            },
        );
        let d = Command::decode(c.encode()).unwrap();
        assert_eq!(d, c);
    }

    #[test]
    fn reserved_bits_rejected() {
        let mut w = Command::Ld { reg: 1 }.encode();
        w[1] = 1;
        assert_eq!(Command::decode(w), Err(DecodeError::ReservedBits));
    }

    #[test]
    fn bad_op_rejected() {
        // kind=Inst with op code 3.
        let w0 = KIND_INST | (3 << 2);
        assert_eq!(Command::decode([w0, 0]), Err(DecodeError::BadOp));
    }

    #[test]
    #[should_panic(expected = "38 bits")]
    fn oversized_address_panics() {
        Command::Inst(NdpInst {
            paddr: MAX_INST_ADDR + 1,
            op: NdpOp::Clear,
            vsize: 0,
            dsize: DataSize::B1,
            imm: 0,
            reg: 0,
        })
        .encode();
    }

    #[test]
    fn query_command_shape() {
        let cmds = secndp_query_commands(
            &[0x100, 0x200, 0x300],
            &[1, 2, 3],
            32,
            DataSize::B4,
            2,
            9,
            true,
        );
        assert_eq!(cmds.len(), 4);
        assert!(matches!(cmds[0], Command::SecInst(i, e) if i.imm == 1 && e.verify));
        assert!(matches!(
            cmds[3],
            Command::SecLd {
                reg: 2,
                verify: true
            }
        ));
        // Every command encodes and decodes.
        for c in cmds {
            assert_eq!(Command::decode(c.encode()).unwrap(), c);
        }
    }

    proptest! {
        #[test]
        fn inst_round_trip_random(
            paddr in 0u64..=MAX_INST_ADDR,
            opc in 0u64..3,
            vsize in any::<u16>(),
            ds in 0u64..4,
            imm in any::<u32>(),
            reg in 0u8..=MAX_REG,
            version in 0u64..(1 << 28),
            verify in any::<bool>(),
            sec in any::<bool>(),
        ) {
            let inst = NdpInst {
                paddr,
                op: NdpOp::from_code(opc).unwrap(),
                vsize,
                dsize: DataSize::from_code(ds),
                imm,
                reg,
            };
            let c = if sec {
                Command::SecInst(inst, SecNdpExt { version, verify })
            } else {
                Command::Inst(inst)
            };
            prop_assert_eq!(Command::decode(c.encode()).unwrap(), c);
        }
    }
}
