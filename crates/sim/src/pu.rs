//! NDP processing-unit register model (paper Figure 5, §V).
//!
//! Each rank-NDP PU contains a small register file holding intermediate
//! pooling results: "multiple registers allow multiple NDP operations to
//! overlap without sending intermediate results back to a CPU. For
//! workloads that need to store a number of intermediate results
//! simultaneously, the number of NDP PU registers can become the
//! bottleneck." The OTP PU mirrors the same register file on-chip (§V-C2),
//! so one allocation governs both sides.
//!
//! The packet generator allocates one register per in-flight query; when
//! the file is exhausted the current packet must be flushed (`NDPLd` drains
//! every register) before new queries can be admitted — which is exactly
//! why `NDP_reg` bounds the queries per packet.

/// Identifier of one PU register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegId(pub u8);

/// The accumulation register file of one NDP PU (mirrored by the OTP PU).
#[derive(Debug, Clone)]
pub struct RegisterFile {
    /// `Some(query)` = register accumulating that query's partial sum.
    slots: Vec<Option<u64>>,
}

impl RegisterFile {
    /// A file of `n` registers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (every PU has at least one accumulator) or
    /// `n > 64` (the ISA encodes 6-bit register ids).
    pub fn new(n: usize) -> Self {
        assert!((1..=64).contains(&n), "NDP_reg must be in 1..=64");
        Self {
            slots: vec![None; n],
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Registers currently accumulating a query.
    pub fn in_use(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Allocates a register for `query`, or `None` if the file is full.
    /// Re-requesting a query that already holds a register returns its
    /// existing allocation (a query accumulates across many commands).
    pub fn alloc(&mut self, query: u64) -> Option<RegId> {
        if let Some(i) = self.slots.iter().position(|s| *s == Some(query)) {
            return Some(RegId(i as u8));
        }
        let free = self.slots.iter().position(Option::is_none)?;
        self.slots[free] = Some(query);
        Some(RegId(free as u8))
    }

    /// The register held by `query`, if any.
    pub fn lookup(&self, query: u64) -> Option<RegId> {
        self.slots
            .iter()
            .position(|s| *s == Some(query))
            .map(|i| RegId(i as u8))
    }

    /// Drains every register (the `NDPLd` flush at a packet boundary),
    /// returning the queries whose partial results were shipped.
    pub fn flush(&mut self) -> Vec<u64> {
        self.slots.iter_mut().filter_map(Option::take).collect()
    }
}

/// Groups a query stream into packets by explicit register allocation:
/// a packet closes when the register file cannot admit the next query.
#[derive(Debug)]
pub struct PacketAllocator {
    regs: RegisterFile,
    current: Vec<u64>,
}

impl PacketAllocator {
    /// An allocator over a fresh register file of `ndp_reg` registers.
    pub fn new(ndp_reg: usize) -> Self {
        Self {
            regs: RegisterFile::new(ndp_reg),
            current: Vec::new(),
        }
    }

    /// Admits `query`; returns the flushed packet (query ids, in admission
    /// order) if the register file was full and had to be drained first.
    pub fn admit(&mut self, query: u64) -> Option<Vec<u64>> {
        if self.regs.alloc(query).is_some() {
            if !self.current.contains(&query) {
                self.current.push(query);
            }
            return None;
        }
        // File full: flush, then admit into the empty file.
        let packet = self.finish();
        self.regs
            .alloc(query)
            .expect("empty register file must admit");
        self.current.push(query);
        Some(packet)
    }

    /// Flushes the in-flight packet (end of stream or an explicit barrier).
    pub fn finish(&mut self) -> Vec<u64> {
        self.regs.flush();
        std::mem::take(&mut self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut rf = RegisterFile::new(2);
        assert_eq!(rf.capacity(), 2);
        let a = rf.alloc(10).unwrap();
        let b = rf.alloc(20).unwrap();
        assert_ne!(a, b);
        assert_eq!(rf.in_use(), 2);
        assert!(rf.alloc(30).is_none(), "over-allocation");
        // Re-requesting an admitted query reuses its register.
        assert_eq!(rf.alloc(10), Some(a));
        assert_eq!(rf.lookup(20), Some(b));
        let mut drained = rf.flush();
        drained.sort_unstable();
        assert_eq!(drained, vec![10, 20]);
        assert_eq!(rf.in_use(), 0);
        assert!(rf.alloc(30).is_some());
    }

    #[test]
    fn packet_allocator_chunks_by_capacity() {
        let mut pa = PacketAllocator::new(3);
        let mut packets = Vec::new();
        for q in 0..8u64 {
            if let Some(p) = pa.admit(q) {
                packets.push(p);
            }
        }
        packets.push(pa.finish());
        assert_eq!(packets, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7]]);
    }

    #[test]
    fn repeated_admissions_do_not_consume_registers() {
        let mut pa = PacketAllocator::new(2);
        assert!(pa.admit(1).is_none());
        assert!(pa.admit(1).is_none()); // same query: same register
        assert!(pa.admit(2).is_none());
        let flushed = pa.admit(3).expect("file full");
        assert_eq!(flushed, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_registers_rejected() {
        RegisterFile::new(0);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn too_many_registers_rejected() {
        RegisterFile::new(65);
    }
}
