//! End-to-end execution of a workload trace under each system mode.
//!
//! The mode set mirrors the paper's Figures 7 and 9:
//!
//! | mode | memory path | protection |
//! |------|-------------|------------|
//! | [`Mode::NonNdp`] | all data streams over the shared channel to the CPU | none |
//! | [`Mode::NonNdpEnc`] | same, with counter-mode decryption on-chip | confidentiality |
//! | [`Mode::UnprotectedNdp`] | rank-NDP PUs compute locally, only results return | none |
//! | [`Mode::SecNdpEnc`] | NDP over ciphertext; processor regenerates OTPs | confidentiality |
//! | [`Mode::SecNdpVer`] | + encrypted tag combine and check | confidentiality + integrity |
//!
//! The NDP path models the paper's packet semantics: the packet generator
//! groups `NDP_reg` queries; the packet's commands dispatch to all ranks in
//! parallel; the packet finishes when its slowest rank finishes ("the
//! latency is bounded by the slowest rank", §VI-B), plus initialization
//! cycles and the `NDPLd` result transfer. SecNDP adds the AES-engine
//! constraint: a packet cannot complete before the engine bank has produced
//! every pad the OTP PU needs — packets where the engine finishes last are
//! counted as *decryption-bottlenecked* (Figures 8 and 10).

use crate::config::{SimConfig, VerifPlacement, LINE_BYTES, NS_PER_CYCLE, TAG_BYTES};
use crate::dram::Channel;
use crate::ndp::{build_packets, AddressResolver};
use crate::stats::DramStats;
use crate::trace::WorkloadTrace;
use secndp_cipher::engine::AesEngineModel;

/// Execution mode of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Unprotected baseline: the CPU pulls every row over the memory
    /// channel.
    NonNdp,
    /// A TEE without NDP: same traffic, with counter-mode decryption on the
    /// way in (timing-neutral given enough engines; costs engine energy).
    NonNdpEnc,
    /// A conventional TEE with full memory protection (Figure 2(a)+(b)):
    /// every line is decrypted AND its MAC is fetched from a separate tag
    /// region and verified — the mechanistic version of the SGX-style
    /// baseline (the analytic calibration lives in [`crate::sgx`]).
    NonNdpMacTee,
    /// Native NDP with no protection.
    UnprotectedNdp,
    /// SecNDP, encryption only (`Enc-only`).
    SecNdpEnc,
    /// SecNDP with verification under the given tag placement.
    SecNdpVer(VerifPlacement),
}

impl Mode {
    /// Whether this mode offloads computation to the rank-NDP PUs.
    pub fn uses_ndp(self) -> bool {
        !matches!(self, Mode::NonNdp | Mode::NonNdpEnc | Mode::NonNdpMacTee)
    }

    /// Whether the SecNDP engine generates pads in this mode.
    pub fn uses_engine(self) -> bool {
        matches!(
            self,
            Mode::NonNdpEnc | Mode::NonNdpMacTee | Mode::SecNdpEnc | Mode::SecNdpVer(_)
        )
    }

    /// The tag placement, if verification is on.
    pub fn placement(self) -> Option<VerifPlacement> {
        match self {
            Mode::SecNdpVer(p) => Some(p),
            _ => None,
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::NonNdp => f.write_str("non-NDP"),
            Mode::NonNdpEnc => f.write_str("non-NDP Enc"),
            Mode::NonNdpMacTee => f.write_str("non-NDP Enc+MAC TEE"),
            Mode::UnprotectedNdp => f.write_str("NDP"),
            Mode::SecNdpEnc => f.write_str("SecNDP Enc"),
            Mode::SecNdpVer(p) => write!(f, "SecNDP Enc+{p}"),
        }
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The simulated mode.
    pub mode: Mode,
    /// End-to-end memory-clock cycles for the whole trace.
    pub total_cycles: u64,
    /// Number of NDP packets issued (0 for non-NDP modes).
    pub packets: u64,
    /// Packets whose completion was limited by AES pad generation.
    pub aes_limited_packets: u64,
    /// Merged DRAM command statistics across all channels.
    pub dram: DramStats,
    /// Bytes crossing the DIMM interface toward the processor.
    pub bytes_over_io: u64,
    /// 16-byte AES blocks produced by the SecNDP engine.
    pub aes_blocks: u64,
    /// Queries executed.
    pub queries: u64,
    /// Mean over packets of (busiest rank's lines / average rank's lines):
    /// 1.0 = perfectly balanced. Irregular SLS with small packets shows
    /// high imbalance; more `NDP_reg` smooths it (the paper's §VII-A
    /// explanation for the register sweep). 0 for non-NDP modes.
    pub rank_imbalance: f64,
    /// Per-packet service times in cycles (dispatch to completion),
    /// for latency-percentile reporting. Empty for non-NDP modes.
    pub packet_cycles: Vec<u64>,
}

impl SimReport {
    /// Wall-clock nanoseconds for the run.
    pub fn total_ns(&self) -> f64 {
        self.total_cycles as f64 * NS_PER_CYCLE
    }

    /// Fraction of packets bottlenecked by decryption bandwidth (Fig 8/10).
    pub fn aes_limited_fraction(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.aes_limited_packets as f64 / self.packets as f64
        }
    }

    /// Speedup of this run relative to `baseline` (ratio of cycle counts).
    pub fn speedup_vs(&self, baseline: &SimReport) -> f64 {
        baseline.total_cycles as f64 / self.total_cycles.max(1) as f64
    }

    /// Packet-latency percentile in cycles (`p ∈ [0, 1]`, nearest-rank),
    /// or `None` for non-NDP runs.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.packet_cycles.is_empty() {
            return None;
        }
        let mut sorted = self.packet_cycles.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

/// Simulates `trace` under `mode` and `cfg`.
pub fn simulate(trace: &WorkloadTrace, mode: Mode, cfg: &SimConfig) -> SimReport {
    if mode.uses_ndp() {
        simulate_ndp(trace, mode, cfg)
    } else {
        simulate_cpu(trace, mode, cfg)
    }
}

/// Outcome of the initialization phase (`T0` in Figure 4): encrypting every
/// table and writing the ciphertext (and tags) into NDP memory.
#[derive(Debug, Clone, PartialEq)]
pub struct InitReport {
    /// The mode initialization was performed for.
    pub mode: Mode,
    /// Memory-clock cycles to write all tables.
    pub total_cycles: u64,
    /// DRAM command statistics (writes, activations, …).
    pub dram: DramStats,
    /// AES blocks produced (pads + tag pads + secrets).
    pub aes_blocks: u64,
    /// Whether pad generation, not the write bandwidth, bounded the phase.
    pub aes_limited: bool,
}

/// Simulates the one-time initialization: every row of every table is
/// encrypted (for SecNDP modes) and written over the memory channel
/// (`ArithEnc` behaving like a cache-line flush, paper §V-E1).
pub fn simulate_initialization(trace: &WorkloadTrace, mode: Mode, cfg: &SimConfig) -> InitReport {
    let placement = mode.placement();
    let mut resolver = AddressResolver::new(cfg, placement, &trace.tables, 0x5ec0de);
    let mut chans: Vec<Channel> = (0..cfg.org.channels)
        .map(|_| Channel::new(cfg.timing, cfg.org, cfg.org.ranks))
        .collect();
    let mut lines = Vec::new();
    let mut aes_blocks = 0u64;
    for (t, table) in trace.tables.iter().enumerate() {
        for row in 0..table.rows {
            lines.extend(resolver.row_lines(t, row));
            if mode.uses_engine() {
                aes_blocks += table.row_bytes.div_ceil(16);
                if placement.is_some() {
                    aes_blocks += 1; // tag pad per row (Alg 3)
                }
            }
        }
        if mode.uses_engine() && placement.is_some() {
            aes_blocks += 1; // the checksum secret s (Alg 2)
        }
    }
    let mut write_done = 0u64;
    for loc in crate::ndp::schedule_lines(&lines, crate::ndp::CPU_REORDER_WINDOW) {
        let chan = &mut chans[loc.channel % cfg.org.channels];
        write_done = write_done.max(chan.write_line(loc, 0));
    }
    let engine = AesEngineModel::new(cfg.secndp.engine);
    let aes_cycles = (engine.time_for_blocks(aes_blocks) / NS_PER_CYCLE).ceil() as u64;
    let mut dram = DramStats::default();
    for c in &chans {
        dram.merge(c.stats());
    }
    InitReport {
        mode,
        total_cycles: write_done.max(aes_cycles),
        dram,
        aes_blocks,
        aes_limited: aes_cycles > write_done,
    }
}

/// Outcome of a service-mode (open-loop) simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// The underlying batch-mode report (service timing overrides
    /// `total_cycles`).
    pub report: SimReport,
    /// Per-packet **response times** in cycles: arrival (not dispatch) to
    /// completion, i.e. queueing delay included.
    pub response_cycles: Vec<u64>,
    /// Offered interarrival gap between packets, in cycles.
    pub interarrival_cycles: u64,
}

impl ServiceReport {
    /// Response-time percentile in cycles (nearest rank).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or no packets ran.
    pub fn response_percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p));
        assert!(!self.response_cycles.is_empty(), "no packets served");
        let mut sorted = self.response_cycles.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Whether the offered load exceeded capacity: under a stable queue,
    /// response times plateau; under overload they grow with every
    /// arrival, so the last quarter's mean response dwarfs the first
    /// quarter's.
    pub fn saturated(&self) -> bool {
        let n = self.response_cycles.len();
        if n < 8 {
            return false;
        }
        let quarter = n / 4;
        let mean = |s: &[u64]| s.iter().sum::<u64>() as f64 / s.len() as f64;
        let head = mean(&self.response_cycles[..quarter]);
        let tail = mean(&self.response_cycles[n - quarter..]);
        tail > 2.0 * head + self.interarrival_cycles as f64
    }
}

/// Open-loop service simulation: packets *arrive* every
/// `interarrival_cycles` (an inference service receiving requests at a
/// fixed rate) instead of being dispatched back-to-back. Response time =
/// queueing + service; percentiles come from [`ServiceReport`].
///
/// Only meaningful for NDP modes (the batch path serves non-NDP modes).
///
/// # Panics
///
/// Panics if `mode` is not an NDP mode.
pub fn simulate_service(
    trace: &WorkloadTrace,
    mode: Mode,
    cfg: &SimConfig,
    interarrival_cycles: u64,
) -> ServiceReport {
    assert!(mode.uses_ndp(), "service simulation is for NDP modes");
    let mut report = simulate_ndp_paced(trace, mode, cfg, Some(interarrival_cycles));
    let response_cycles = std::mem::take(&mut report.service_response);
    ServiceReport {
        report: report.report,
        response_cycles,
        interarrival_cycles,
    }
}

/// Non-NDP path: every row streams over one shared channel. The MAC-TEE
/// mode lays tags out in a separate region (like Ver-sep) and fetches one
/// tag line per row, modelling Figure 2(b)'s per-access integrity check.
fn simulate_cpu(trace: &WorkloadTrace, mode: Mode, cfg: &SimConfig) -> SimReport {
    let placement = if mode == Mode::NonNdpMacTee {
        Some(VerifPlacement::Sep)
    } else {
        None
    };
    let mut resolver = AddressResolver::new(cfg, placement, &trace.tables, 0x5ec0de);
    let mut chans: Vec<Channel> = (0..cfg.org.channels)
        .map(|_| Channel::new(cfg.timing, cfg.org, cfg.org.ranks))
        .collect();
    let mut lines = Vec::new();
    let mut aes_blocks = 0u64;
    for q in &trace.queries {
        for r in &q.rows {
            lines.extend(resolver.row_lines(r.table as usize, r.row));
            if mode.uses_engine() {
                let bytes = trace.tables[r.table as usize].row_bytes;
                aes_blocks += bytes.div_ceil(16);
                if mode == Mode::NonNdpMacTee {
                    aes_blocks += 1; // tag pad per row (CWC-style verify)
                }
            }
        }
    }
    let lines = if cfg.reorder {
        crate::ndp::schedule_lines(&lines, crate::ndp::CPU_REORDER_WINDOW)
    } else {
        lines
    };
    let mut done = 0u64;
    for loc in lines {
        let chan = &mut chans[loc.channel % cfg.org.channels];
        done = done.max(chan.read_line(loc, 0));
    }
    let mut dram = DramStats::default();
    for c in &chans {
        dram.merge(c.stats());
    }
    SimReport {
        mode,
        total_cycles: done,
        packets: 0,
        aes_limited_packets: 0,
        bytes_over_io: dram.bytes_read(),
        dram,
        aes_blocks,
        queries: trace.queries.len() as u64,
        rank_imbalance: 0.0,
        packet_cycles: Vec::new(),
    }
}

/// NDP path: per-rank channels, packet barriers, optional AES constraint.
fn simulate_ndp(trace: &WorkloadTrace, mode: Mode, cfg: &SimConfig) -> SimReport {
    simulate_ndp_paced(trace, mode, cfg, None).report
}

struct PacedOutcome {
    report: SimReport,
    service_response: Vec<u64>,
}

/// The NDP engine shared by batch mode (`pacing = None`, packets dispatch
/// back-to-back) and service mode (`pacing = Some(gap)`, packet `i` arrives
/// at cycle `i·gap` and may queue).
fn simulate_ndp_paced(
    trace: &WorkloadTrace,
    mode: Mode,
    cfg: &SimConfig,
    pacing: Option<u64>,
) -> PacedOutcome {
    let placement = mode.placement();
    let verify = placement.is_some();
    let packets = build_packets(trace, cfg, placement, verify);
    let engine = AesEngineModel::new(cfg.secndp.engine);
    let single_rank_org = cfg.org;
    let mut chans: Vec<Channel> = (0..cfg.org.total_ranks())
        .map(|_| Channel::new(cfg.timing, single_rank_org, 1))
        .collect();

    let mut time = 0u64;
    let mut io_free = 0u64;
    let mut aes_limited = 0u64;
    let mut aes_blocks_total = 0u64;
    let mut bytes_over_io = 0u64;
    let mut imbalance_sum = 0.0f64;
    let mut packet_cycles = Vec::with_capacity(packets.len());
    let mut service_response = Vec::new();
    for (pi, p) in packets.iter().enumerate() {
        // Service mode: the packet cannot start before it arrives.
        let arrival = pacing.map(|gap| pi as u64 * gap);
        if let Some(a) = arrival {
            time = time.max(a);
        }
        let dispatch = time;
        let start = time + cfg.overheads.init_cycles;
        // Load-balance metric: busiest rank vs the average.
        let total_lines: usize = p.per_rank.iter().map(Vec::len).sum();
        if total_lines > 0 {
            let max_lines = p.per_rank.iter().map(Vec::len).max().unwrap_or(0);
            let avg = total_lines as f64 / cfg.org.total_ranks() as f64;
            imbalance_sum += max_lines as f64 / avg.max(f64::MIN_POSITIVE);
        } else {
            imbalance_sum += 1.0;
        }
        // Dispatch to all ranks in parallel; packet bounded by slowest rank.
        let mut ndp_done = start;
        for (rank, lines) in p.per_rank.iter().enumerate() {
            let mut rank_done = start;
            for &loc in lines {
                rank_done = rank_done.max(chans[rank].read_line(loc, start));
            }
            ndp_done = ndp_done.max(rank_done);
        }
        // SecNDP: the engine must produce all pads for this packet.
        let mut done = ndp_done;
        if mode.uses_engine() {
            let blocks = p.otp_data_bytes.div_ceil(16) + p.otp_tag_blocks;
            aes_blocks_total += blocks;
            let aes_cycles = (engine.time_for_blocks(blocks) / NS_PER_CYCLE).ceil() as u64;
            let aes_done = start + aes_cycles;
            if aes_done > ndp_done {
                aes_limited += 1;
                done = aes_done;
            }
        }
        // NDPLd: pull one partial result (plus tag) per touched rank per
        // query back over the channel. The transfer occupies the channel
        // bus but overlaps with the next packet's rank-local reads — only
        // the bus occupancy is serialized.
        let result_unit = trace.result_bytes + if verify { TAG_BYTES } else { 0 };
        let result_lines = p.rank_results * result_unit.div_ceil(LINE_BYTES);
        bytes_over_io += p.rank_results * result_unit;
        io_free = done.max(io_free) + result_lines * cfg.overheads.ld_cycles_per_line;
        packet_cycles.push(io_free - dispatch);
        if let Some(a) = arrival {
            service_response.push(io_free - a);
        }
        time = done;
    }
    let time = time.max(io_free);

    let mut dram = DramStats::default();
    for c in &chans {
        dram.merge(c.stats());
    }
    let report = SimReport {
        mode,
        total_cycles: time,
        packets: packets.len() as u64,
        aes_limited_packets: aes_limited,
        dram,
        bytes_over_io,
        aes_blocks: aes_blocks_total,
        queries: trace.queries.len() as u64,
        rank_imbalance: if packets.is_empty() {
            0.0
        } else {
            imbalance_sum / packets.len() as f64
        },
        packet_cycles,
    };
    PacedOutcome {
        report,
        service_response,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NdpConfig;

    fn cfg(rank: usize, reg: usize, aes: usize) -> SimConfig {
        SimConfig::paper_default(NdpConfig {
            ndp_rank: rank,
            ndp_reg: reg,
        })
        .with_aes_engines(aes)
    }

    fn sls_trace() -> WorkloadTrace {
        WorkloadTrace::uniform_sls(1 << 26, 128, 80, 32, 7)
    }

    #[test]
    fn ndp_beats_non_ndp_on_sls() {
        let t = sls_trace();
        let c = cfg(8, 8, 12);
        let cpu = simulate(&t, Mode::NonNdp, &c);
        let ndp = simulate(&t, Mode::UnprotectedNdp, &c);
        let s = ndp.speedup_vs(&cpu);
        assert!(s > 2.0, "NDP speedup only {s:.2}×");
        assert!(s < 8.5, "NDP speedup implausibly high {s:.2}×");
    }

    #[test]
    fn analytics_speedup_higher_than_sls() {
        let c = cfg(8, 8, 12);
        let sls = sls_trace();
        let scan = WorkloadTrace::sequential_scan(1 << 26, 4096, 512, 8, 3);
        let s_sls =
            simulate(&sls, Mode::UnprotectedNdp, &c).speedup_vs(&simulate(&sls, Mode::NonNdp, &c));
        let s_scan = simulate(&scan, Mode::UnprotectedNdp, &c).speedup_vs(&simulate(
            &scan,
            Mode::NonNdp,
            &c,
        ));
        assert!(
            s_scan > s_sls,
            "regular scan ({s_scan:.2}×) should beat irregular SLS ({s_sls:.2}×)"
        );
    }

    #[test]
    fn more_ranks_more_speedup() {
        let t = sls_trace();
        let s2 = {
            let c = cfg(2, 8, 12);
            simulate(&t, Mode::UnprotectedNdp, &c).speedup_vs(&simulate(&t, Mode::NonNdp, &c))
        };
        let s8 = {
            let c = cfg(8, 8, 12);
            simulate(&t, Mode::UnprotectedNdp, &c).speedup_vs(&simulate(&t, Mode::NonNdp, &c))
        };
        assert!(
            s8 > s2,
            "rank scaling broken: 8 ranks {s8:.2}× vs 2 ranks {s2:.2}×"
        );
    }

    #[test]
    fn more_registers_help_irregular_sls() {
        let t = sls_trace();
        let r1 = simulate(&t, Mode::UnprotectedNdp, &cfg(8, 1, 12));
        let r8 = simulate(&t, Mode::UnprotectedNdp, &cfg(8, 8, 12));
        assert!(
            r8.total_cycles < r1.total_cycles,
            "NDP_reg=8 ({}) not faster than NDP_reg=1 ({})",
            r8.total_cycles,
            r1.total_cycles
        );
        // The mechanism: bigger packets average out per-rank load.
        assert!(
            r8.rank_imbalance < r1.rank_imbalance,
            "imbalance not smoothed: reg=1 {:.2} vs reg=8 {:.2}",
            r1.rank_imbalance,
            r8.rank_imbalance
        );
        assert!(r1.rank_imbalance >= 1.0);
    }

    #[test]
    fn few_aes_engines_bottleneck_secndp() {
        let t = sls_trace();
        let starved = simulate(&t, Mode::SecNdpEnc, &cfg(8, 8, 1));
        let fed = simulate(&t, Mode::SecNdpEnc, &cfg(8, 8, 16));
        assert!(starved.total_cycles > fed.total_cycles);
        assert!(starved.aes_limited_fraction() > 0.9);
        assert!(fed.aes_limited_fraction() < 0.3);
        // With ample engines, SecNDP-Enc matches unprotected NDP timing.
        let unprot = simulate(&t, Mode::UnprotectedNdp, &cfg(8, 8, 16));
        let overhead = fed.total_cycles as f64 / unprot.total_cycles as f64;
        assert!(
            overhead < 1.05,
            "SecNDP overhead {overhead:.3}× with 16 engines"
        );
    }

    #[test]
    fn verification_placements_ordering() {
        // Fig 9: Ecc ≈ Enc-only ≤ Coloc ≤ Sep for unquantized SLS.
        let t = sls_trace();
        let c = cfg(8, 8, 12);
        let enc = simulate(&t, Mode::SecNdpEnc, &c).total_cycles;
        let ecc = simulate(&t, Mode::SecNdpVer(VerifPlacement::Ecc), &c).total_cycles;
        let coloc = simulate(&t, Mode::SecNdpVer(VerifPlacement::Coloc), &c).total_cycles;
        let sep = simulate(&t, Mode::SecNdpVer(VerifPlacement::Sep), &c).total_cycles;
        assert!(ecc <= coloc, "ecc {ecc} vs coloc {coloc}");
        assert!(coloc <= sep, "coloc {coloc} vs sep {sep}");
        // ECC adds no DRAM traffic: within a whisker of Enc-only.
        let ratio = ecc as f64 / enc as f64;
        assert!(ratio < 1.10, "Ver-ECC overhead {ratio:.3}× over Enc-only");
    }

    #[test]
    fn more_channels_speed_up_the_baseline_not_ndp() {
        // Channel count is a baseline-bandwidth axis: the non-NDP stream
        // doubles its bus, while rank-private NDP bandwidth was never
        // channel-bound — so the NDP *speedup* shrinks with channels.
        let t = sls_trace();
        let one = cfg(8, 8, 12);
        let mut two = cfg(8, 8, 12);
        two.org.channels = 2;
        two.org.ranks = 4; // same total ranks / capacity
        let base1 = simulate(&t, Mode::NonNdp, &one);
        let base2 = simulate(&t, Mode::NonNdp, &two);
        assert!(
            (base2.total_cycles as f64) < base1.total_cycles as f64 * 0.65,
            "2 channels: {} vs {}",
            base2.total_cycles,
            base1.total_cycles
        );
        let s1 = simulate(&t, Mode::UnprotectedNdp, &one).speedup_vs(&base1);
        let s2 = simulate(&t, Mode::UnprotectedNdp, &two).speedup_vs(&base2);
        assert!(
            s2 < s1,
            "NDP speedup should shrink with channels: {s2:.2} vs {s1:.2}"
        );
        assert!(s2 > 1.0);
    }

    #[test]
    fn mac_tee_pays_for_integrity() {
        // Figure 2(b) mechanistically: per-line MAC fetches slow the
        // conventional TEE below the plain baseline, and SecNDP (which
        // verifies with ONE combined tag per query) stays far ahead.
        let t = sls_trace();
        let c = cfg(8, 8, 12);
        let plain = simulate(&t, Mode::NonNdp, &c);
        let enc = simulate(&t, Mode::NonNdpEnc, &c);
        let tee = simulate(&t, Mode::NonNdpMacTee, &c);
        let sec = simulate(&t, Mode::SecNdpVer(VerifPlacement::Ecc), &c);
        assert_eq!(
            enc.total_cycles, plain.total_cycles,
            "decrypt-on-fetch is free"
        );
        assert!(
            tee.total_cycles > plain.total_cycles,
            "MAC fetches must cost DRAM time"
        );
        assert!(tee.dram.reads > plain.dram.reads);
        assert!(sec.total_cycles * 3 < tee.total_cycles);
        // MAC pads: one extra block per row on top of the data pads.
        assert!(tee.aes_blocks > enc.aes_blocks);
    }

    #[test]
    fn non_ndp_io_equals_all_data() {
        let t = sls_trace();
        let c = cfg(8, 8, 12);
        let cpu = simulate(&t, Mode::NonNdp, &c);
        // Rows are 128 B = 2 lines; unaligned pages may add a line.
        assert!(cpu.bytes_over_io >= t.total_data_bytes());
        // NDP IO carries only results — orders of magnitude less.
        let ndp = simulate(&t, Mode::UnprotectedNdp, &c);
        assert!(ndp.bytes_over_io < cpu.bytes_over_io / 4);
    }

    #[test]
    fn engine_blocks_counted() {
        let t = WorkloadTrace::uniform_sls(1 << 22, 128, 10, 4, 1);
        let c = cfg(8, 8, 12);
        assert_eq!(simulate(&t, Mode::UnprotectedNdp, &c).aes_blocks, 0);
        let enc = simulate(&t, Mode::SecNdpEnc, &c);
        // 40 rows × 128 B / 16 = 320 pad blocks.
        assert_eq!(enc.aes_blocks, 320);
        let ver = simulate(&t, Mode::SecNdpVer(VerifPlacement::Ecc), &c);
        // + one tag block per row + one secret per query.
        assert_eq!(ver.aes_blocks, 320 + 40 + 4);
    }

    #[test]
    fn initialization_writes_every_table_line() {
        let t = WorkloadTrace::uniform_sls(1 << 20, 128, 10, 2, 1);
        let c = cfg(8, 8, 12);
        let unprot = simulate_initialization(&t, Mode::UnprotectedNdp, &c);
        // 1 MiB of 128-byte rows = 16 Ki lines written.
        assert_eq!(unprot.dram.writes, (1 << 20) / 64);
        assert_eq!(unprot.aes_blocks, 0);
        assert!(unprot.total_cycles > 0);
        // SecNDP pays pad generation: one block per 16 bytes.
        let sec = simulate_initialization(&t, Mode::SecNdpEnc, &c);
        assert_eq!(sec.aes_blocks, (1 << 20) / 16);
        assert!(sec.total_cycles >= unprot.total_cycles);
        // Verification adds a tag pad per row plus one secret.
        let ver = simulate_initialization(&t, Mode::SecNdpVer(VerifPlacement::Ecc), &c);
        assert_eq!(ver.aes_blocks, (1 << 20) / 16 + (1 << 20) / 128 + 1);
    }

    #[test]
    fn initialization_aes_limited_with_one_engine() {
        let t = WorkloadTrace::uniform_sls(1 << 20, 128, 10, 2, 1);
        let starved = simulate_initialization(&t, Mode::SecNdpEnc, &cfg(8, 8, 1));
        // One engine: 13.9 GB/s < 19.2 GB/s channel write bandwidth.
        assert!(starved.aes_limited);
        let fed = simulate_initialization(&t, Mode::SecNdpEnc, &cfg(8, 8, 8));
        assert!(!fed.aes_limited);
        assert!(fed.total_cycles < starved.total_cycles);
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::NonNdp.to_string(), "non-NDP");
        assert_eq!(
            Mode::SecNdpVer(VerifPlacement::Sep).to_string(),
            "SecNDP Enc+Ver-sep"
        );
    }

    #[test]
    fn service_mode_queueing_behaviour() {
        // Enough packets (128 queries / 8 regs = 16) for a backlog to show.
        let t = WorkloadTrace::uniform_sls(1 << 26, 128, 80, 128, 7);
        let c = cfg(8, 8, 12);
        // Service time per packet from the batch run.
        let batch = simulate(&t, Mode::UnprotectedNdp, &c);
        let per_packet = batch.total_cycles / batch.packets;
        // Generous interarrival gap: responses ≈ service time, no queueing.
        let light = simulate_service(&t, Mode::UnprotectedNdp, &c, per_packet * 4);
        assert!(!light.saturated(), "light load must not saturate");
        let light_p99 = light.response_percentile(0.99);
        // Overload: packets arrive 10× faster than they can be served.
        let heavy = simulate_service(&t, Mode::UnprotectedNdp, &c, (per_packet / 10).max(1));
        assert!(heavy.saturated(), "overload must saturate the queue");
        assert!(
            heavy.response_percentile(0.99) > light_p99,
            "queueing must inflate tail latency"
        );
        // Response time can never be below the unqueued service time.
        assert!(light.response_percentile(0.0) >= *batch.packet_cycles.iter().min().unwrap() / 2);
    }

    #[test]
    fn service_dram_stats_are_per_run_deltas() {
        // Every simulate_service call builds fresh channels, so the DRAM
        // stats in its report are THIS run's deltas, not an accumulation
        // across calls — and they must respond to pacing. 32 queries with
        // NDP_reg = 8 → 4 packets.
        let t = WorkloadTrace::uniform_sls(1 << 22, 128, 8, 32, 7);
        let c = cfg(8, 8, 12);
        let mode = Mode::SecNdpVer(VerifPlacement::Ecc);
        let fast = simulate_service(&t, mode, &c, 2);
        let fast_again = simulate_service(&t, mode, &c, 2);
        // Interarrival = tREFI: packets 1..4 arrive exactly when a refresh
        // starts and dispatch at phase `init_cycles` < tRFC, so their
        // reads all stall behind the refresh.
        let slow = simulate_service(&t, mode, &c, c.timing.t_refi);
        // Repeatable (per-run, not accumulated)...
        assert_eq!(fast.report.dram.reads, fast_again.report.dram.reads);
        assert_eq!(
            fast.report.dram.refresh_stalls,
            fast_again.report.dram.refresh_stalls
        );
        // ...with a load-independent access sequence...
        assert_eq!(fast.report.dram.reads, slow.report.dram.reads);
        // ...but pacing-dependent refresh interference.
        assert!(
            slow.report.dram.refresh_stalls > fast.report.dram.refresh_stalls,
            "refresh stalls must track pacing (fast={}, slow={})",
            fast.report.dram.refresh_stalls,
            slow.report.dram.refresh_stalls
        );
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let t = sls_trace();
        let c = cfg(8, 8, 12);
        let r = simulate(&t, Mode::UnprotectedNdp, &c);
        let p50 = r.latency_percentile(0.5).unwrap();
        let p99 = r.latency_percentile(0.99).unwrap();
        let p0 = r.latency_percentile(0.0).unwrap();
        assert!(p0 <= p50 && p50 <= p99, "{p0} / {p50} / {p99}");
        assert_eq!(r.packet_cycles.len() as u64, r.packets);
        // Non-NDP runs have no packet latencies.
        assert_eq!(simulate(&t, Mode::NonNdp, &c).latency_percentile(0.5), None);
    }

    #[test]
    fn report_helpers() {
        let t = WorkloadTrace::uniform_sls(1 << 22, 128, 10, 2, 1);
        let c = cfg(4, 2, 8);
        let r = simulate(&t, Mode::UnprotectedNdp, &c);
        assert!(r.total_ns() > 0.0);
        assert_eq!(r.aes_limited_fraction(), 0.0);
        assert_eq!(r.queries, 2);
        assert_eq!(r.packets, 1);
    }
}
