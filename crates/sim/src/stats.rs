//! Counters collected during simulation.

/// DRAM command and row-buffer-locality counters for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued (explicit row conflicts; idle banks activate
    /// without a precharge).
    pub precharges: u64,
    /// RD commands issued (64-byte transactions).
    pub reads: u64,
    /// WR commands issued (64-byte transactions, initialization phase).
    pub writes: u64,
    /// Column accesses that hit an open row.
    pub row_hits: u64,
    /// Column accesses that required an activation.
    pub row_misses: u64,
    /// Requests delayed by an in-progress refresh (tRFC window).
    pub refresh_stalls: u64,
}

impl DramStats {
    /// Bytes read from the DRAM devices.
    pub fn bytes_read(&self) -> u64 {
        self.reads * crate::config::LINE_BYTES
    }

    /// Bytes written to the DRAM devices.
    pub fn bytes_written(&self) -> u64 {
        self.writes * crate::config::LINE_BYTES
    }

    /// Row-buffer hit rate in `[0, 1]`; zero for an idle channel.
    ///
    /// The denominator is hits + misses — the column accesses that were
    /// classified either way — not RD + WR command counts, which drift
    /// from the classification totals (e.g. under refresh interleaving)
    /// and can push the ratio outside `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let classified = self.row_hits + self.row_misses;
        if classified == 0 {
            0.0
        } else {
            self.row_hits as f64 / classified as f64
        }
    }

    /// Publishes this channel's counters into the global telemetry
    /// registry (a no-op when telemetry is compiled out).
    pub fn export_telemetry(&self) {
        secndp_telemetry::counter!("secndp_dram_activates_total", "DRAM ACT commands issued.")
            .add(self.activates);
        secndp_telemetry::counter!("secndp_dram_reads_total", "DRAM RD commands issued.")
            .add(self.reads);
        secndp_telemetry::counter!("secndp_dram_writes_total", "DRAM WR commands issued.")
            .add(self.writes);
        secndp_telemetry::counter!(
            "secndp_dram_row_hits_total",
            "Column accesses hitting an open row."
        )
        .add(self.row_hits);
        secndp_telemetry::counter!(
            "secndp_dram_row_misses_total",
            "Column accesses requiring activation."
        )
        .add(self.row_misses);
        secndp_telemetry::counter!(
            "secndp_dram_refresh_stalls_total",
            "Requests delayed by refresh."
        )
        .add(self.refresh_stalls);
        secndp_telemetry::float_gauge!("secndp_dram_hit_rate", "Row-buffer hit rate in [0, 1].")
            .set(self.hit_rate());
    }

    /// Accumulates another channel's counters (used to merge the per-rank
    /// NDP channels into one report).
    pub fn merge(&mut self, other: &DramStats) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.refresh_stalls += other.refresh_stalls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_edge_cases() {
        let s = DramStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        // Command counts (reads + writes) deliberately disagree with the
        // classification totals (hits + misses): the rate must follow the
        // classification — 7/(7+3), not 7/(10+90).
        let s = DramStats {
            reads: 10,
            writes: 90,
            row_hits: 7,
            row_misses: 3,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
        assert_eq!(s.bytes_read(), 640);
        // All-miss traffic is 0.0, not NaN; all-hit is exactly 1.0 even
        // when write commands would inflate the old denominator.
        let s = DramStats {
            reads: 4,
            row_misses: 4,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.0);
        let s = DramStats {
            reads: 2,
            writes: 6,
            row_hits: 8,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 1.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = DramStats {
            activates: 1,
            precharges: 2,
            reads: 3,
            writes: 4,
            row_hits: 1,
            row_misses: 2,
            refresh_stalls: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.activates, 2);
        assert_eq!(a.reads, 6);
        assert_eq!(a.writes, 8);
        assert_eq!(a.refresh_stalls, 10);
    }
}
