//! Cycle-level DRAM + near-data-processing performance simulator for SecNDP.
//!
//! This crate rebuilds, from scratch, the evaluation infrastructure of the
//! paper's §VI-B: a Ramulator-style DDR4 timing model, the rank-level NDP
//! architecture of Figure 5 (PUs, registers, packets, `NDPInst`/`NDPLd`),
//! the SecNDP engine's AES-bandwidth accounting, memory/engine energy
//! models, and analytic SGX baselines. It simulates **timing and energy
//! only** — addresses, not data; the functional/cryptographic behaviour
//! lives in `secndp-core`.
//!
//! # Architecture
//!
//! - [`config`] — DDR4-2400 Table II parameters, NDP and SecNDP knobs.
//! - [`mapping`] — physical address decoding and the OS random-page mapper.
//! - [`dram`] — bank/bank-group/rank state machines with
//!   tRC/tRCD/tCL/tRP/tBL/tCCD/tRRD/tFAW constraint tracking.
//! - [`ndp`] — rank-NDP packet generation and dispatch; latency of a packet
//!   is bounded by its slowest rank (paper §VI-B).
//! - [`exec`] — end-to-end execution of a workload trace under each mode:
//!   unprotected non-NDP, unprotected NDP, SecNDP encryption-only, and
//!   SecNDP with each verification-tag placement (Ver-coloc / Ver-sep /
//!   Ver-ECC).
//! - [`energy`] — DRAM device, DIMM-IO and SecNDP-engine energy (Table V).
//! - [`sgx`] — analytic CFL/ICL SGX slowdown reference model (Table III).
//!
//! # Examples
//!
//! ```
//! use secndp_sim::config::{NdpConfig, SimConfig};
//! use secndp_sim::exec::{simulate, Mode};
//! use secndp_sim::trace::WorkloadTrace;
//!
//! // 100 queries, each pooling 16 random 128-byte rows from a 1 GiB table.
//! let trace = WorkloadTrace::uniform_sls(1 << 30, 128, 16, 100, 42);
//! let cfg = SimConfig::paper_default(NdpConfig { ndp_rank: 8, ndp_reg: 8 });
//! let ndp = simulate(&trace, Mode::UnprotectedNdp, &cfg);
//! let cpu = simulate(&trace, Mode::NonNdp, &cfg);
//! assert!(ndp.total_cycles < cpu.total_cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dram;
pub mod energy;
pub mod exec;
pub mod isa;
pub mod mapping;
pub mod ndp;
pub mod pu;
pub mod sgx;
pub mod stats;
pub mod storage;
pub mod trace;
pub mod trace_io;

pub use config::{NdpConfig, SecNdpConfig, SimConfig, VerifPlacement};
pub use exec::{simulate, Mode, SimReport};
pub use trace::{Query, RowAccess, WorkloadTrace};
