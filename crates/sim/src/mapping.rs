//! Physical-address decoding and the OS page mapper (paper §VI-B).
//!
//! The simulator feeds Ramulator-style decoded locations to the DRAM model.
//! Two pieces cooperate:
//!
//! - [`PageMapper`] emulates the OS: each 4 KiB logical page of a table is
//!   assigned a *random free physical page* ("we apply a standard page
//!   mapping method to generate the physical addresses … by assuming that
//!   the OS randomly selects free physical pages for each logical page
//!   frame").
//! - [`AddressMapper`] decodes a physical address into
//!   (rank, bank group, bank, row, column line). Rank bits sit **above the
//!   page offset** so one page never straddles ranks — the property
//!   rank-level NDP relies on (a PU must find whole rows in its own rank).
//!   Below the page offset, consecutive lines stripe across bank groups and
//!   banks for intra-rank parallelism.

use crate::config::{DramOrg, LINE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// OS page size.
pub const PAGE_BYTES: u64 = 4096;

/// A fully decoded DRAM location for one cache-line transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineLoc {
    /// Memory channel.
    pub channel: usize,
    /// Rank index on the channel.
    pub rank: usize,
    /// Bank group within the rank.
    pub bank_group: usize,
    /// Bank within the bank group.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Column (line index within the open row).
    pub col: u64,
}

/// Decodes physical addresses under a fixed interleaving policy.
#[derive(Debug, Clone, Copy)]
pub struct AddressMapper {
    org: DramOrg,
}

impl AddressMapper {
    /// Builds a mapper for the given organization.
    ///
    /// # Panics
    ///
    /// Panics unless bank-group and bank counts are powers of two (true for
    /// all DDR4 parts).
    pub fn new(org: DramOrg) -> Self {
        assert!(org.channels.is_power_of_two());
        assert!(org.bank_groups.is_power_of_two());
        assert!(org.banks_per_group.is_power_of_two());
        assert!(org.row_bytes.is_power_of_two());
        Self { org }
    }

    /// The organization this mapper decodes for.
    pub fn org(&self) -> DramOrg {
        self.org
    }

    /// Decodes the cache line containing physical byte address `addr`.
    ///
    /// Bit layout (low → high):
    /// `[6: line offset][col_lo][bg][bank][col_hi][rank][rest: row]` — the
    /// two low column bits keep each aligned 256-byte block (an embedding
    /// vector and its neighbours) inside one bank row, so a 128-byte vector
    /// costs one activation, while 256-byte-aligned blocks still stripe
    /// across bank groups and banks for parallelism. The rank field sits
    /// above the column field, i.e. above the page offset, so a 4 KiB page
    /// never straddles ranks.
    pub fn decode(&self, addr: u64) -> LineLoc {
        let line = addr / LINE_BYTES;
        let bg_bits = self.org.bank_groups.trailing_zeros() as u64;
        let bank_bits = self.org.banks_per_group.trailing_zeros() as u64;
        let lines_per_row = self.org.row_bytes / LINE_BYTES;
        let col_bits = lines_per_row.trailing_zeros() as u64;
        let col_lo_bits = self.org.col_low_bits.min(col_bits);
        let col_hi_bits = col_bits - col_lo_bits;

        let mut rest = line;
        let col_lo = rest & ((1 << col_lo_bits) - 1);
        rest >>= col_lo_bits;
        let bank_group = (rest & ((1 << bg_bits) - 1)) as usize;
        rest >>= bg_bits;
        let bank = (rest & ((1 << bank_bits) - 1)) as usize;
        rest >>= bank_bits;
        // Channel bits sit at the page-offset boundary: consecutive 4 KiB
        // pages round-robin across channels, but one page (and therefore
        // one table row) never straddles a channel.
        let channel = (rest % self.org.channels as u64) as usize;
        rest /= self.org.channels as u64;
        let col = ((rest & ((1 << col_hi_bits) - 1)) << col_lo_bits) | col_lo;
        rest >>= col_hi_bits;
        // Rank bits sit above the column field (bit 17 for the default
        // organization), so every aligned 128 KiB block — and therefore
        // every 4 KiB OS page — lives in exactly one rank. The random page
        // mapper provides the cross-rank spreading.
        let rank = (rest % self.org.ranks as u64) as usize;
        let row = rest / self.org.ranks as u64;
        LineLoc {
            channel,
            rank,
            bank_group,
            bank,
            row,
            col,
        }
    }

    /// Decodes every line of the byte range `[addr, addr + bytes)`.
    pub fn decode_range(&self, addr: u64, bytes: u64) -> Vec<LineLoc> {
        if bytes == 0 {
            return Vec::new();
        }
        let first = addr / LINE_BYTES;
        let last = (addr + bytes - 1) / LINE_BYTES;
        (first..=last)
            .map(|l| self.decode(l * LINE_BYTES))
            .collect()
    }
}

/// Emulates the OS assigning random free physical pages to logical pages.
#[derive(Debug)]
pub struct PageMapper {
    map: HashMap<u64, u64>,
    used: HashSet<u64>,
    total_pages: u64,
    rng: StdRng,
}

impl PageMapper {
    /// A mapper over a physical memory of `capacity_bytes`, seeded for
    /// reproducibility.
    pub fn new(capacity_bytes: u64, seed: u64) -> Self {
        Self {
            map: HashMap::new(),
            used: HashSet::new(),
            total_pages: (capacity_bytes / PAGE_BYTES).max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Translates a logical byte address to its physical byte address,
    /// allocating a random physical page on first touch.
    pub fn translate(&mut self, logical: u64) -> u64 {
        let vpage = logical / PAGE_BYTES;
        let offset = logical % PAGE_BYTES;
        let ppage = match self.map.get(&vpage) {
            Some(&p) => p,
            None => {
                let p = self.alloc_page();
                self.map.insert(vpage, p);
                p
            }
        };
        ppage * PAGE_BYTES + offset
    }

    /// Number of physical pages allocated so far.
    pub fn allocated_pages(&self) -> usize {
        self.map.len()
    }

    fn alloc_page(&mut self) -> u64 {
        assert!(
            (self.used.len() as u64) < self.total_pages,
            "physical memory exhausted"
        );
        loop {
            let p = self.rng.random_range(0..self.total_pages);
            if self.used.insert(p) {
                return p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramOrg;

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramOrg::DDR4_8GB)
    }

    #[test]
    fn adjacent_lines_stay_in_one_bank_row() {
        // A 128-byte embedding vector = 2 lines in the same bank and row:
        // one activation, one row hit.
        let m = mapper();
        let a = m.decode(0);
        let b = m.decode(64);
        assert_eq!(
            (a.rank, a.bank_group, a.bank, a.row),
            (b.rank, b.bank_group, b.bank, b.row)
        );
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn aligned_256b_blocks_stripe_across_bank_groups() {
        let m = mapper();
        let a = m.decode(0);
        let b = m.decode(256);
        assert_ne!(
            a.bank_group, b.bank_group,
            "256-byte blocks share a bank group"
        );
    }

    #[test]
    fn page_stays_within_one_rank() {
        let m = mapper();
        for base in [0u64, 1 << 20, 123 * PAGE_BYTES] {
            let rank0 = m.decode(base).rank;
            for off in (0..PAGE_BYTES).step_by(64) {
                assert_eq!(m.decode(base + off).rank, rank0, "page split across ranks");
            }
        }
    }

    #[test]
    fn rank_blocks_cover_all_ranks() {
        // Rank interleaving happens at 128 KiB granularity (above the
        // column field); consecutive 128 KiB blocks round-robin the ranks.
        let m = mapper();
        let ranks: std::collections::HashSet<usize> =
            (0..8u64).map(|b| m.decode(b << 17).rank).collect();
        assert_eq!(ranks.len(), DramOrg::DDR4_8GB.ranks);
    }

    #[test]
    fn decode_range_counts_lines() {
        let m = mapper();
        assert_eq!(m.decode_range(0, 0).len(), 0);
        assert_eq!(m.decode_range(0, 64).len(), 1);
        assert_eq!(m.decode_range(0, 65).len(), 2);
        // Unaligned 128 bytes straddles three lines.
        assert_eq!(m.decode_range(32, 128).len(), 3);
    }

    #[test]
    fn decode_fields_in_range() {
        let m = mapper();
        let org = DramOrg::DDR4_8GB;
        for i in 0..10_000u64 {
            let loc = m.decode(i * 64 * 7919);
            assert!(loc.rank < org.ranks);
            assert!(loc.bank_group < org.bank_groups);
            assert!(loc.bank < org.banks_per_group);
            assert!(loc.col < org.row_bytes / LINE_BYTES);
        }
    }

    #[test]
    fn page_mapper_is_deterministic_and_consistent() {
        let mut a = PageMapper::new(1 << 30, 7);
        let mut b = PageMapper::new(1 << 30, 7);
        for addr in [0u64, 5000, 4096, 0, 1 << 20] {
            assert_eq!(a.translate(addr), b.translate(addr));
        }
        // Same page twice → same frame; offsets preserved.
        let p1 = a.translate(8192);
        let p2 = a.translate(8192 + 100);
        assert_eq!(p2 - p1, 100);
    }

    #[test]
    fn page_mapper_randomizes_adjacent_pages() {
        let mut m = PageMapper::new(1 << 34, 11);
        let p0 = m.translate(0) / PAGE_BYTES;
        let p1 = m.translate(PAGE_BYTES) / PAGE_BYTES;
        let p2 = m.translate(2 * PAGE_BYTES) / PAGE_BYTES;
        // Overwhelmingly unlikely to be contiguous under random placement.
        assert!(!(p1 == p0 + 1 && p2 == p1 + 1), "pages not randomized");
        assert_eq!(m.allocated_pages(), 3);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn page_mapper_capacity_enforced() {
        let mut m = PageMapper::new(PAGE_BYTES, 3); // one physical page
        m.translate(0);
        m.translate(PAGE_BYTES); // second page cannot fit
    }
}
