//! Memory-system and SecNDP-engine energy model (paper Table V).
//!
//! Two layers, cross-checked against each other in tests:
//!
//! 1. **Command-level** ([`EnergyModel::from_report`]): DRAM device energy
//!    from ACT/RD command counts (DRAMPower-style), DIMM-IO energy per bit
//!    crossing the interface (CACTI-IO-style), and engine energy per AES
//!    block / OTP operation. The per-command constants are calibrated so a
//!    row-hit-heavy streaming read costs the paper's 27.42 pJ/bit at the
//!    devices and 7.3 pJ/bit at the DIMM IO.
//! 2. **Coefficient-level** ([`table5_row`]): the paper's own pJ/bit
//!    accounting, parameterized by the pooling factor, reproducing Table V
//!    exactly (100 / 79.2 / 101.5 / 81.83 / 92.09 % at `PF = 80`).

use crate::exec::{Mode, SimReport};
use crate::VerifPlacement;

/// DIMM IO energy per bit crossing the interface (CACTI-IO estimate used in
/// Table V).
pub const IO_PJ_PER_BIT: f64 = 7.3;

/// DRAM device (chips + on-DIMM transfer to the buffer/NDP PU) energy per
/// bit for a streaming read — Table V's 27.42 pJ/bit coefficient.
pub const DEVICE_PJ_PER_BIT: f64 = 27.42;

/// Energy of one ACT/PRE pair (row activation), pJ. Chosen so that
/// activation-heavy random traffic lands a few percent above the streaming
/// coefficient, as DRAMPower reports for DDR4-2400 x8 parts.
pub const ACT_PJ: f64 = 1300.0;

/// Energy of one 64-byte read burst out of the devices, pJ. Calibrated:
/// `(RD + ACT/lines_per_row) / 512 bit = 27.42 pJ/bit` for full-row streams
/// (128 lines per 8 KiB row).
pub const RD_PJ: f64 = DEVICE_PJ_PER_BIT * 512.0 - ACT_PJ / 128.0;

/// AES pad generation, pJ per bit of pad (Table V's non-NDP Enc row: the
/// engine contribution is 0.5 pJ/bit when only decrypting inbound data).
pub const AES_PJ_PER_BIT: f64 = 0.5;

/// OTP-PU arithmetic on the processor's share, pJ per bit (the difference
/// between SecNDP Enc's 0.9 pJ/bit engine coefficient and the 0.5 pJ/bit
/// AES-only cost).
pub const OTP_PU_PJ_PER_BIT: f64 = 0.4;

/// Verification engine (field multiply-accumulate over tags + checksum of
/// the result), pJ per tag bit processed.
pub const VERIF_PJ_PER_BIT: f64 = 0.85;

/// Background (standby + peripheral) power per rank, in pJ per memory
/// cycle. DRAMPower reports ~60 mW standby per x8 DDR4-2400 rank:
/// 60 mW / 1.2 GHz = 50 pJ/cycle.
pub const BACKGROUND_PJ_PER_CYCLE_PER_RANK: f64 = 50.0;

/// Energy breakdown of one simulation run, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// DRAM device + intra-DIMM transfer energy (dynamic).
    pub dimm_pj: f64,
    /// DIMM interface (channel) energy.
    pub io_pj: f64,
    /// SecNDP engine energy (AES + OTP PU + verification engine).
    pub engine_pj: f64,
    /// DRAM background/standby energy over the run's duration.
    pub background_pj: f64,
}

impl EnergyBreakdown {
    /// Total memory-system energy.
    pub fn total_pj(&self) -> f64 {
        self.dimm_pj + self.io_pj + self.engine_pj + self.background_pj
    }

    /// Energy per useful result bit, given the number of result bytes the
    /// workload produced.
    pub fn pj_per_result_bit(&self, result_bytes: u64) -> f64 {
        self.total_pj() / (result_bytes as f64 * 8.0)
    }
}

/// Command-level energy model.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyModel;

impl EnergyModel {
    /// Computes the energy breakdown of a finished run.
    pub fn from_report(&self, r: &SimReport) -> EnergyBreakdown {
        let dimm_pj =
            r.dram.activates as f64 * ACT_PJ + (r.dram.reads + r.dram.writes) as f64 * RD_PJ;
        let io_pj = r.bytes_over_io as f64 * 8.0 * IO_PJ_PER_BIT;
        let pad_bits = r.aes_blocks as f64 * 128.0;
        let engine_pj = match r.mode {
            Mode::NonNdp | Mode::UnprotectedNdp => 0.0,
            // Decrypt-on-fetch: XOR is free, AES dominates.
            Mode::NonNdpEnc => pad_bits * AES_PJ_PER_BIT,
            // + per-line MAC verification in the TEE's integrity engine.
            Mode::NonNdpMacTee => pad_bits * (AES_PJ_PER_BIT + VERIF_PJ_PER_BIT * 0.12),
            // SecNDP: AES + the OTP PU replicating the NDP arithmetic.
            Mode::SecNdpEnc => pad_bits * (AES_PJ_PER_BIT + OTP_PU_PJ_PER_BIT),
            Mode::SecNdpVer(_) => {
                pad_bits * (AES_PJ_PER_BIT + OTP_PU_PJ_PER_BIT) + pad_bits * VERIF_PJ_PER_BIT * 0.12
            }
        };
        EnergyBreakdown {
            dimm_pj,
            io_pj,
            engine_pj,
            background_pj: r.total_cycles as f64 * BACKGROUND_PJ_PER_CYCLE_PER_RANK * 8.0, // eight ranks are powered regardless of mode
        }
    }
}

/// One row of the paper's Table V, in pJ per result bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table5Row {
    /// System configuration label.
    pub name: &'static str,
    /// DIMM (device) energy coefficient.
    pub dimm: f64,
    /// DIMM IO energy coefficient.
    pub io: f64,
    /// SecNDP engine energy coefficient.
    pub engine: f64,
}

impl Table5Row {
    /// Total pJ per result bit.
    pub fn total(&self) -> f64 {
        self.dimm + self.io + self.engine
    }

    /// Energy normalized to the unprotected non-NDP baseline at the same
    /// pooling factor (the paper's rightmost column).
    pub fn normalized(&self, pf: f64) -> f64 {
        self.total() / table5_row(Mode::NonNdp, pf).total()
    }
}

/// The paper's coefficient-level Table V accounting for a pooling factor of
/// `pf`: every result bit requires `pf` data bits to be read.
///
/// Verification rows assume Ver-coloc/Ver-sep-style tag fetches: tags add
/// `16 B / 128 B = 12.5 %` device traffic (the paper's 30.85 vs 27.42) and
/// proportionally more engine work.
pub fn table5_row(mode: Mode, pf: f64) -> Table5Row {
    match mode {
        Mode::NonNdp => Table5Row {
            name: "unprotected non-NDP",
            dimm: DEVICE_PJ_PER_BIT * pf,
            io: IO_PJ_PER_BIT * pf,
            engine: 0.0,
        },
        Mode::UnprotectedNdp => Table5Row {
            name: "unprotected NDP",
            dimm: DEVICE_PJ_PER_BIT * pf,
            io: IO_PJ_PER_BIT,
            engine: 0.0,
        },
        Mode::NonNdpEnc => Table5Row {
            name: "non-NDP Enc",
            dimm: DEVICE_PJ_PER_BIT * pf,
            io: IO_PJ_PER_BIT * pf,
            engine: AES_PJ_PER_BIT * pf,
        },
        Mode::NonNdpMacTee => {
            // Per-line tag fetch: +12.5 % traffic plus MAC verification.
            let tag_ratio = 1.125;
            Table5Row {
                name: "non-NDP Enc+MAC",
                dimm: DEVICE_PJ_PER_BIT * tag_ratio * pf,
                io: IO_PJ_PER_BIT * tag_ratio * pf,
                engine: (AES_PJ_PER_BIT + VERIF_PJ_PER_BIT * 0.12) * tag_ratio * pf,
            }
        }
        Mode::SecNdpEnc => Table5Row {
            name: "SecNDP Enc",
            dimm: DEVICE_PJ_PER_BIT * pf,
            io: IO_PJ_PER_BIT,
            engine: (AES_PJ_PER_BIT + OTP_PU_PJ_PER_BIT) * pf,
        },
        Mode::SecNdpVer(_) => {
            // Tags widen each 128-byte row fetch by 16 bytes (12.5 %).
            let tag_ratio = 1.125;
            Table5Row {
                name: "SecNDP Enc+ver",
                dimm: DEVICE_PJ_PER_BIT * tag_ratio * pf,
                io: IO_PJ_PER_BIT * tag_ratio,
                engine: (AES_PJ_PER_BIT + OTP_PU_PJ_PER_BIT) * tag_ratio * pf
                    + VERIF_PJ_PER_BIT * 1.125
                    + OTP_PU_PJ_PER_BIT * tag_ratio, // tag combine on chip
            }
        }
    }
}

/// Convenience: the full Table V at pooling factor `pf`.
pub fn table5(pf: f64) -> Vec<Table5Row> {
    vec![
        table5_row(Mode::NonNdp, pf),
        table5_row(Mode::UnprotectedNdp, pf),
        table5_row(Mode::NonNdpEnc, pf),
        table5_row(Mode::SecNdpEnc, pf),
        table5_row(Mode::SecNdpVer(VerifPlacement::Coloc), pf),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NdpConfig, SimConfig};
    use crate::exec::simulate;
    use crate::trace::WorkloadTrace;

    #[test]
    fn streaming_read_hits_paper_coefficient() {
        // A full-row stream: 128 lines per activation.
        // pJ/bit = (RD + ACT/128) / 512 must equal 27.42 by construction.
        let per_line = RD_PJ + ACT_PJ / 128.0;
        assert!((per_line / 512.0 - DEVICE_PJ_PER_BIT).abs() < 1e-9);
    }

    #[test]
    fn table5_normalized_matches_paper_at_pf80() {
        let pf = 80.0;
        let expect = [
            (Mode::NonNdp, 1.0),
            (Mode::UnprotectedNdp, 0.792),
            (Mode::NonNdpEnc, 1.015),
            (Mode::SecNdpEnc, 0.8183),
            (Mode::SecNdpVer(VerifPlacement::Coloc), 0.9209),
        ];
        for (mode, want) in expect {
            let got = table5_row(mode, pf).normalized(pf);
            assert!(
                (got - want).abs() < 0.01,
                "{mode}: normalized {got:.4} vs paper {want}"
            );
        }
    }

    #[test]
    fn secndp_enc_saves_18_percent_at_pf80() {
        let r = table5_row(Mode::SecNdpEnc, 80.0).normalized(80.0);
        assert!((1.0 - r - 0.18).abs() < 0.01, "saving {:.3}", 1.0 - r);
    }

    #[test]
    fn enc_ver_saves_8_percent_at_pf80() {
        let r = table5_row(Mode::SecNdpVer(VerifPlacement::Coloc), 80.0).normalized(80.0);
        assert!((1.0 - r - 0.08).abs() < 0.01, "saving {:.3}", 1.0 - r);
    }

    #[test]
    fn report_energy_orders_modes_like_table5() {
        // The command-level model must reproduce the ordering:
        // NDP < SecNDP-Enc < SecNDP+ver < non-NDP < non-NDP Enc.
        let t = WorkloadTrace::uniform_sls(1 << 24, 128, 80, 16, 5);
        let c = SimConfig::paper_default(NdpConfig {
            ndp_rank: 8,
            ndp_reg: 8,
        });
        let m = EnergyModel;
        let e = |mode| m.from_report(&simulate(&t, mode, &c)).total_pj();
        let ndp = e(Mode::UnprotectedNdp);
        let sec = e(Mode::SecNdpEnc);
        let ver = e(Mode::SecNdpVer(VerifPlacement::Ecc));
        let cpu = e(Mode::NonNdp);
        let cpue = e(Mode::NonNdpEnc);
        assert!(ndp < sec && sec < ver, "ndp {ndp} sec {sec} ver {ver}");
        assert!(ver < cpu, "ver {ver} cpu {cpu}");
        assert!(cpu < cpue);
    }

    #[test]
    fn command_level_close_to_coefficient_level() {
        // For PF=80 SLS, the two layers should agree within ~15 %.
        let t = WorkloadTrace::uniform_sls(1 << 24, 128, 80, 16, 5);
        let c = SimConfig::paper_default(NdpConfig {
            ndp_rank: 8,
            ndp_reg: 8,
        });
        let m = EnergyModel;
        let cpu = simulate(&t, Mode::NonNdp, &c);
        let got = m.from_report(&cpu).total_pj();
        let result_bits = (t.queries.len() as u64 * t.result_bytes) as f64 * 8.0;
        let want = table5_row(Mode::NonNdp, 80.0).total() * result_bits;
        let ratio = got / want;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio:.3}");
    }

    #[test]
    fn breakdown_helpers() {
        let b = EnergyBreakdown {
            dimm_pj: 10.0,
            io_pj: 5.0,
            engine_pj: 1.0,
            background_pj: 8.0,
        };
        assert_eq!(b.total_pj(), 24.0);
        assert_eq!(b.pj_per_result_bit(1), 3.0);
    }

    #[test]
    fn table5_has_five_rows() {
        let rows = table5(80.0);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].name, "unprotected non-NDP");
    }

    #[test]
    fn line_constant_consistency() {
        assert_eq!(crate::config::LINE_BYTES, 64);
    }
}
