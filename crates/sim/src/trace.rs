//! Workload traces: the address-level view of SLS and analytics queries.
//!
//! A trace is a list of queries against one or more tables. Each query
//! pools `PF` rows (the paper's *pooling factor*) into one result vector.
//! Traces carry **row indices**, not raw addresses: the execution model
//! lays tables out per verification placement (tags in-line for Ver-coloc,
//! in a separate region for Ver-sep) before translating to physical
//! addresses through the OS page mapper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A table of `rows` rows of `row_bytes` bytes, at logical base address
/// `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableDef {
    /// Logical base address of the table's data region.
    pub base: u64,
    /// Number of rows.
    pub rows: u64,
    /// Bytes per row (vector dimension × element size).
    pub row_bytes: u64,
}

impl TableDef {
    /// Total logical size of the data region in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.rows * self.row_bytes
    }
}

/// One row read within a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowAccess {
    /// Index into [`WorkloadTrace::tables`].
    pub table: u32,
    /// Row index within that table.
    pub row: u64,
}

/// One pooling query: a weighted summation over `rows.len() = PF` rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The rows pooled by this query.
    pub rows: Vec<RowAccess>,
}

impl Query {
    /// The pooling factor of this query.
    pub fn pf(&self) -> usize {
        self.rows.len()
    }
}

/// A complete workload trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// Table definitions referenced by queries.
    pub tables: Vec<TableDef>,
    /// The query stream.
    pub queries: Vec<Query>,
    /// Bytes of result vector returned per query (`m × wₑ/8`).
    pub result_bytes: u64,
}

impl WorkloadTrace {
    /// Total number of row reads in the trace.
    pub fn total_row_accesses(&self) -> usize {
        self.queries.iter().map(Query::pf).sum()
    }

    /// Total data bytes touched by the trace (rows × row size).
    pub fn total_data_bytes(&self) -> u64 {
        self.queries
            .iter()
            .flat_map(|q| &q.rows)
            .map(|r| self.tables[r.table as usize].row_bytes)
            .sum()
    }

    /// Uniform-random SLS over a single table: `nqueries` queries, each
    /// pooling `pf` uniformly chosen rows — the paper's randomly generated
    /// query trace (§VI-A(1)).
    ///
    /// ```
    /// use secndp_sim::trace::WorkloadTrace;
    /// let t = WorkloadTrace::uniform_sls(1 << 20, 128, 40, 10, 42);
    /// assert_eq!(t.queries.len(), 10);
    /// assert_eq!(t.total_row_accesses(), 400);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `table_bytes < row_bytes` or `row_bytes == 0`.
    pub fn uniform_sls(
        table_bytes: u64,
        row_bytes: u64,
        pf: usize,
        nqueries: usize,
        seed: u64,
    ) -> Self {
        assert!(row_bytes > 0 && table_bytes >= row_bytes);
        let rows = table_bytes / row_bytes;
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..nqueries)
            .map(|_| Query {
                rows: (0..pf)
                    .map(|_| RowAccess {
                        table: 0,
                        row: rng.random_range(0..rows),
                    })
                    .collect(),
            })
            .collect();
        Self {
            tables: vec![TableDef {
                base: 0,
                rows,
                row_bytes,
            }],
            queries,
            result_bytes: row_bytes,
        }
    }

    /// Production-like SLS trace: Zipfian row popularity (a few hot
    /// embeddings dominate) and a pooling factor drawn uniformly from
    /// `pf_range`, following the paper's production trace with PF ∈
    /// \[50, 100\].
    ///
    /// # Panics
    ///
    /// Panics on an empty `pf_range` or zero-sized table.
    pub fn production_sls(
        table_bytes: u64,
        row_bytes: u64,
        pf_range: std::ops::RangeInclusive<usize>,
        nqueries: usize,
        seed: u64,
    ) -> Self {
        assert!(row_bytes > 0 && table_bytes >= row_bytes);
        assert!(pf_range.start() <= pf_range.end() && *pf_range.start() > 0);
        let rows = table_bytes / row_bytes;
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..nqueries)
            .map(|_| {
                let pf = rng.random_range(pf_range.clone());
                Query {
                    rows: (0..pf)
                        .map(|_| RowAccess {
                            table: 0,
                            row: zipf_sample(&mut rng, rows, 0.9),
                        })
                        .collect(),
                }
            })
            .collect();
        Self {
            tables: vec![TableDef {
                base: 0,
                rows,
                row_bytes,
            }],
            queries,
            result_bytes: row_bytes,
        }
    }

    /// Contiguous-scan analytics trace (§VI-A(2)): each query sums `pf`
    /// consecutive patient rows starting at a random aligned offset —
    /// "usually the queried patient IDs are not sparse".
    ///
    /// # Panics
    ///
    /// Panics if the table holds fewer than `pf` rows.
    pub fn sequential_scan(
        table_bytes: u64,
        row_bytes: u64,
        pf: usize,
        nqueries: usize,
        seed: u64,
    ) -> Self {
        assert!(row_bytes > 0);
        let rows = table_bytes / row_bytes;
        assert!(rows >= pf as u64, "table smaller than one query");
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..nqueries)
            .map(|_| {
                let start = rng.random_range(0..=(rows - pf as u64));
                Query {
                    rows: (0..pf as u64)
                        .map(|k| RowAccess {
                            table: 0,
                            row: start + k,
                        })
                        .collect(),
                }
            })
            .collect();
        Self {
            tables: vec![TableDef {
                base: 0,
                rows,
                row_bytes,
            }],
            queries,
            result_bytes: row_bytes,
        }
    }

    /// Multi-table production-like SLS: Zipfian row popularity per table
    /// and a per-query pooling factor drawn from `pf_range` (the paper's
    /// production trace has PF ∈ \[50, 100\]).
    pub fn multi_table_production_sls(
        ntables: usize,
        table_bytes: u64,
        row_bytes: u64,
        pf_range: std::ops::RangeInclusive<usize>,
        nqueries: usize,
        seed: u64,
    ) -> Self {
        assert!(ntables > 0 && row_bytes > 0 && table_bytes >= row_bytes);
        assert!(*pf_range.start() > 0 && pf_range.start() <= pf_range.end());
        let rows = table_bytes / row_bytes;
        let tables: Vec<TableDef> = (0..ntables as u64)
            .map(|t| TableDef {
                base: t * table_bytes,
                rows,
                row_bytes,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..nqueries)
            .map(|_| {
                let pf = rng.random_range(pf_range.clone());
                Query {
                    rows: (0..ntables)
                        .flat_map(|t| {
                            (0..pf)
                                .map(|_| RowAccess {
                                    table: t as u32,
                                    row: zipf_sample(&mut rng, rows, 0.9),
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect(),
                }
            })
            .collect();
        Self {
            tables,
            queries,
            result_bytes: row_bytes,
        }
    }

    /// Multi-table SLS: each query pools `pf` random rows from **each** of
    /// `ntables` tables (a DLRM batch element touches every embedding
    /// table).
    pub fn multi_table_sls(
        ntables: usize,
        table_bytes: u64,
        row_bytes: u64,
        pf: usize,
        nqueries: usize,
        seed: u64,
    ) -> Self {
        assert!(ntables > 0 && row_bytes > 0 && table_bytes >= row_bytes);
        let rows = table_bytes / row_bytes;
        let tables: Vec<TableDef> = (0..ntables as u64)
            .map(|t| TableDef {
                base: t * table_bytes,
                rows,
                row_bytes,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..nqueries)
            .map(|_| Query {
                rows: (0..ntables)
                    .flat_map(|t| {
                        (0..pf)
                            .map(|_| RowAccess {
                                table: t as u32,
                                row: rng.random_range(0..rows),
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect(),
            })
            .collect();
        Self {
            tables,
            queries,
            result_bytes: row_bytes,
        }
    }
}

/// Approximate Zipf(θ) sampling over `[0, n)` via inverse-power transform
/// of a uniform draw — cheap and adequate for popularity skew.
fn zipf_sample(rng: &mut StdRng, n: u64, theta: f64) -> u64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    let x = u.powf(1.0 / (1.0 - theta)); // heavy head at small values
    let idx = (x * n as f64) as u64;
    // Scramble so "hot" rows are spread over the table rather than packed
    // at the front (popular embeddings are arbitrary rows).
    (idx.wrapping_mul(0x9e3779b97f4a7c15)) % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sls_shape() {
        let t = WorkloadTrace::uniform_sls(1 << 20, 128, 40, 10, 1);
        assert_eq!(t.queries.len(), 10);
        assert!(t.queries.iter().all(|q| q.pf() == 40));
        assert_eq!(t.total_row_accesses(), 400);
        assert_eq!(t.total_data_bytes(), 400 * 128);
        assert_eq!(t.tables[0].rows, (1 << 20) / 128);
        assert!(t
            .queries
            .iter()
            .flat_map(|q| &q.rows)
            .all(|r| r.row < t.tables[0].rows));
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = WorkloadTrace::uniform_sls(1 << 20, 128, 8, 5, 42);
        let b = WorkloadTrace::uniform_sls(1 << 20, 128, 8, 5, 42);
        assert_eq!(a, b);
        let c = WorkloadTrace::uniform_sls(1 << 20, 128, 8, 5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn production_pf_within_range() {
        let t = WorkloadTrace::production_sls(1 << 22, 128, 50..=100, 50, 7);
        for q in &t.queries {
            assert!((50..=100).contains(&q.pf()));
        }
    }

    #[test]
    fn production_trace_is_skewed() {
        // Zipfian popularity: the most popular row should appear far more
        // often than under a uniform draw.
        let t = WorkloadTrace::production_sls(1 << 24, 128, 80..=80, 200, 9);
        let mut counts = std::collections::HashMap::new();
        for r in t.queries.iter().flat_map(|q| &q.rows) {
            *counts.entry(r.row).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let accesses = t.total_row_accesses() as u64;
        let nrows = t.tables[0].rows;
        let uniform_expect = (accesses / nrows).max(1);
        assert!(max > uniform_expect * 10, "max {max} not skewed");
    }

    #[test]
    fn sequential_scan_is_contiguous() {
        let t = WorkloadTrace::sequential_scan(1 << 22, 4096, 100, 5, 3);
        for q in &t.queries {
            for w in q.rows.windows(2) {
                assert_eq!(w[1].row, w[0].row + 1);
            }
        }
    }

    #[test]
    fn multi_table_queries_touch_every_table() {
        let t = WorkloadTrace::multi_table_sls(4, 1 << 20, 128, 10, 3, 5);
        assert_eq!(t.tables.len(), 4);
        for q in &t.queries {
            assert_eq!(q.pf(), 40);
            let tables: std::collections::HashSet<u32> = q.rows.iter().map(|r| r.table).collect();
            assert_eq!(tables.len(), 4);
        }
        // Tables do not overlap.
        for w in t.tables.windows(2) {
            assert!(w[0].base + w[0].size_bytes() <= w[1].base);
        }
    }

    #[test]
    #[should_panic(expected = "smaller")]
    fn scan_too_small_rejected() {
        WorkloadTrace::sequential_scan(4096, 4096, 2, 1, 0);
    }
}
