//! NDP packet formation and table placement (paper Figure 5, §V, §VI-B).
//!
//! The packet generator divides the query stream into NDP packets: one
//! packet carries up to `NDP_reg` queries (each query's partial sums occupy
//! one accumulation register in every rank-NDP PU it touches, so the
//! register count bounds the number of in-flight queries). Commands in a
//! packet are dispatched to all ranks in parallel and the packet's latency
//! is bounded by its slowest rank.
//!
//! [`AddressResolver`] turns `(table, row)` indices into decoded line
//! locations, applying the verification-tag placement (§V-D):
//!
//! - **Ver-coloc** — each row is widened by 16 tag bytes, changing the row
//!   stride (and breaking cache-line alignment, as the paper notes);
//! - **Ver-sep**  — tags live in a separate region after the data, costing
//!   one extra line fetch per row;
//! - **Ver-ECC**  — tags ride the ECC pins: no extra line fetches at all.

use crate::config::{SimConfig, VerifPlacement, LINE_BYTES, TAG_BYTES};
use crate::mapping::{AddressMapper, LineLoc, PageMapper, PAGE_BYTES};
use crate::trace::{TableDef, WorkloadTrace};

/// Placement of one table in the simulator's logical address space after
/// accounting for tag storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableImage {
    /// Base of the data region.
    pub data_base: u64,
    /// Distance between consecutive rows (row bytes, plus the in-line tag
    /// under Ver-coloc).
    pub row_stride: u64,
    /// Bytes fetched per row access (data, plus in-line tag under
    /// Ver-coloc).
    pub fetch_bytes: u64,
    /// Base of the separate tag region (Ver-sep only).
    pub tag_base: Option<u64>,
}

/// Resolves `(table, row)` to physical line locations under a given tag
/// placement, going through the OS random page mapper.
#[derive(Debug)]
pub struct AddressResolver {
    mapper: AddressMapper,
    pages: PageMapper,
    images: Vec<TableImage>,
}

impl AddressResolver {
    /// Lays out `tables` (packed, page-aligned) under `placement` and
    /// prepares the page mapper. `placement = None` models unprotected or
    /// encryption-only execution (no tags in memory).
    pub fn new(
        cfg: &SimConfig,
        placement: Option<VerifPlacement>,
        tables: &[TableDef],
        seed: u64,
    ) -> Self {
        let mut images = Vec::with_capacity(tables.len());
        let mut cursor = 0u64;
        for t in tables {
            let (stride, fetch) = match placement {
                Some(VerifPlacement::Coloc) => (t.row_bytes + TAG_BYTES, t.row_bytes + TAG_BYTES),
                _ => (t.row_bytes, t.row_bytes),
            };
            let data_base = cursor;
            let data_size = page_round(t.rows * stride);
            cursor += data_size;
            let tag_base = match placement {
                Some(VerifPlacement::Sep) => {
                    let b = cursor;
                    cursor += page_round(t.rows * TAG_BYTES);
                    Some(b)
                }
                _ => None,
            };
            images.push(TableImage {
                data_base,
                row_stride: stride,
                fetch_bytes: fetch,
                tag_base,
            });
        }
        let capacity = (cursor.max(PAGE_BYTES) * 4).max(cfg.org.rank_bytes);
        Self {
            mapper: AddressMapper::new(cfg.org),
            pages: PageMapper::new(capacity, seed),
            images,
        }
    }

    /// The computed placement of table `t`.
    pub fn image(&self, t: usize) -> TableImage {
        self.images[t]
    }

    /// Line locations fetched for one row access (data, plus in-line tag
    /// under Ver-coloc, plus the separate tag line under Ver-sep).
    pub fn row_lines(&mut self, table: usize, row: u64) -> Vec<LineLoc> {
        let img = self.images[table];
        let logical = img.data_base + row * img.row_stride;
        let mut locs = self.lines_for_range(logical, img.fetch_bytes);
        if let Some(tag_base) = img.tag_base {
            locs.extend(self.lines_for_range(tag_base + row * TAG_BYTES, TAG_BYTES));
        }
        locs
    }

    /// Decoded lines covering logical byte range `[addr, addr+bytes)`,
    /// translated page-by-page through the OS mapper.
    fn lines_for_range(&mut self, addr: u64, bytes: u64) -> Vec<LineLoc> {
        let mut out = Vec::with_capacity((bytes / LINE_BYTES + 2) as usize);
        let first = addr / LINE_BYTES;
        let last = (addr + bytes - 1) / LINE_BYTES;
        for line in first..=last {
            let physical = self.pages.translate(line * LINE_BYTES);
            out.push(self.mapper.decode(physical));
        }
        out
    }
}

fn page_round(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES
}

/// One NDP packet: the rows of a contiguous group of queries, with data
/// grouped per rank for parallel dispatch.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Decoded line locations, grouped by serving rank.
    pub per_rank: Vec<Vec<LineLoc>>,
    /// Number of queries folded into this packet (≤ `NDP_reg`).
    pub queries: usize,
    /// Total row accesses in the packet.
    pub rows: usize,
    /// Data bytes the processor must generate OTPs for (Alg 1 pads).
    pub otp_data_bytes: u64,
    /// Tag pads (one AES block per row) plus checksum secrets the engine
    /// must additionally produce when verification is on.
    pub otp_tag_blocks: u64,
    /// Number of distinct ranks holding any data for each query (determines
    /// how many partial results `NDPLd` pulls back).
    pub rank_results: u64,
}

/// Reorders lines the way an FR-FCFS controller drains its queue, within a
/// reorder window of `window` requests: per-bank request order is preserved
/// (so same-row lines stay adjacent in their bank and hit the open row),
/// while emission round-robins one line per bank per turn, alternating bank
/// groups, so `tRC` chains and `tCCD_L` spacing overlap across banks
/// instead of serializing the stream.
pub fn schedule_lines(lines: &[LineLoc], window: usize) -> Vec<LineLoc> {
    use std::collections::{BTreeMap, VecDeque};
    let mut out = Vec::with_capacity(lines.len());
    for chunk in lines.chunks(window.max(1)) {
        // Keyed (bank, bank_group) so the round-robin alternates bank
        // groups between consecutive emissions (tCCD_S instead of tCCD_L).
        let mut banks: BTreeMap<(usize, usize), VecDeque<LineLoc>> = BTreeMap::new();
        for &l in chunk {
            banks
                .entry((l.bank, l.bank_group))
                .or_default()
                .push_back(l);
        }
        let mut queues: Vec<VecDeque<LineLoc>> = banks.into_values().collect();
        loop {
            let mut emitted = false;
            for q in &mut queues {
                if let Some(l) = q.pop_front() {
                    out.push(l);
                    emitted = true;
                }
            }
            if !emitted {
                break;
            }
        }
    }
    out
}

/// Reorder window of the CPU-side memory controller (requests in flight).
pub const CPU_REORDER_WINDOW: usize = 128;

/// Splits `trace` into packets of `cfg.ndp.ndp_reg` queries and resolves
/// all addresses. `verify` selects tag placement (and the extra OTP work).
pub fn build_packets(
    trace: &WorkloadTrace,
    cfg: &SimConfig,
    placement: Option<VerifPlacement>,
    verify: bool,
) -> Vec<Packet> {
    let mut resolver = AddressResolver::new(cfg, placement, &trace.tables, 0x5ec0de);
    let nranks = cfg.org.total_ranks();
    let reg = cfg.ndp.ndp_reg.clamp(1, 64);

    // Register allocation determines the packet boundaries: a packet
    // closes when the PU register file cannot admit the next query.
    let mut allocator = crate::pu::PacketAllocator::new(reg);
    let mut groups: Vec<Vec<u64>> = Vec::new();
    for qid in 0..trace.queries.len() as u64 {
        if let Some(flushed) = allocator.admit(qid) {
            groups.push(flushed);
        }
    }
    let last = allocator.finish();
    if !last.is_empty() {
        groups.push(last);
    }

    let mut packets = Vec::new();
    for group in groups {
        let chunk: Vec<&crate::trace::Query> =
            group.iter().map(|&q| &trace.queries[q as usize]).collect();
        let mut per_rank: Vec<Vec<LineLoc>> = vec![Vec::new(); nranks];
        let mut rows = 0usize;
        let mut otp_data_bytes = 0u64;
        let mut otp_tag_blocks = 0u64;
        let mut rank_results = 0u64;
        for q in &chunk {
            let mut touched = vec![false; nranks];
            for r in &q.rows {
                let img = resolver.image(r.table as usize);
                otp_data_bytes += img.fetch_bytes.min(
                    trace.tables[r.table as usize].row_bytes, // pads cover data only
                );
                if verify {
                    otp_tag_blocks += 1; // E_{T_i}: one block per row
                }
                for loc in resolver.row_lines(r.table as usize, r.row) {
                    let pu = (loc.channel * cfg.org.ranks + loc.rank) % nranks;
                    touched[pu] = true;
                    per_rank[pu].push(loc);
                }
            }
            if verify {
                otp_tag_blocks += 1; // the checksum secret s for the query
            }
            rank_results += touched.iter().filter(|&&t| t).count() as u64;
        }
        rows += chunk.iter().map(|q| q.rows.len()).sum::<usize>();
        let per_rank = if cfg.reorder {
            per_rank
                .iter()
                .map(|lines| schedule_lines(lines, usize::MAX))
                .collect()
        } else {
            per_rank
        };
        packets.push(Packet {
            per_rank,
            queries: chunk.len(),
            rows,
            otp_data_bytes,
            otp_tag_blocks,
            rank_results,
        });
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NdpConfig, SimConfig};
    use crate::trace::WorkloadTrace;

    fn cfg(rank: usize, reg: usize) -> SimConfig {
        SimConfig::paper_default(NdpConfig {
            ndp_rank: rank,
            ndp_reg: reg,
        })
    }

    #[test]
    fn packets_chunk_by_register_count() {
        let trace = WorkloadTrace::uniform_sls(1 << 22, 128, 10, 10, 1);
        let p = build_packets(&trace, &cfg(8, 4), None, false);
        assert_eq!(p.len(), 3); // 4 + 4 + 2
        assert_eq!(p[0].queries, 4);
        assert_eq!(p[2].queries, 2);
        assert_eq!(p[0].rows, 40);
    }

    #[test]
    fn data_bytes_counted_without_tags() {
        let trace = WorkloadTrace::uniform_sls(1 << 22, 128, 10, 4, 1);
        let p = build_packets(&trace, &cfg(8, 4), None, false);
        assert_eq!(p[0].otp_data_bytes, 4 * 10 * 128);
        assert_eq!(p[0].otp_tag_blocks, 0);
    }

    #[test]
    fn verify_adds_tag_blocks() {
        let trace = WorkloadTrace::uniform_sls(1 << 22, 128, 10, 4, 1);
        let p = build_packets(&trace, &cfg(8, 4), Some(VerifPlacement::Ecc), true);
        // One tag block per row + one secret per query.
        assert_eq!(p[0].otp_tag_blocks, 4 * 10 + 4);
        // ECC adds no line fetches relative to unprotected.
        let unprot = build_packets(&trace, &cfg(8, 4), None, false);
        let lines = |pk: &Packet| pk.per_rank.iter().map(Vec::len).sum::<usize>();
        assert_eq!(lines(&p[0]), lines(&unprot[0]));
    }

    #[test]
    fn sep_fetches_more_lines_than_ecc() {
        let trace = WorkloadTrace::uniform_sls(1 << 22, 128, 10, 4, 1);
        let lines = |placement| {
            let p = build_packets(&trace, &cfg(8, 4), placement, true);
            p.iter()
                .flat_map(|pk| pk.per_rank.iter())
                .map(Vec::len)
                .sum::<usize>()
        };
        let ecc = lines(Some(VerifPlacement::Ecc));
        let sep = lines(Some(VerifPlacement::Sep));
        let coloc = lines(Some(VerifPlacement::Coloc));
        assert!(sep > ecc, "sep {sep} vs ecc {ecc}");
        // 128B rows + 16B tag = 144B: always 3 lines vs 2-3 for data alone,
        // still cheaper than a separate tag line per row.
        assert!(coloc > ecc);
        assert!(coloc <= sep);
    }

    #[test]
    fn coloc_changes_row_stride() {
        let trace = WorkloadTrace::uniform_sls(1 << 22, 128, 4, 1, 1);
        let mut r = AddressResolver::new(&cfg(8, 8), Some(VerifPlacement::Coloc), &trace.tables, 1);
        assert_eq!(r.image(0).row_stride, 144);
        assert_eq!(r.image(0).fetch_bytes, 144);
        assert!(r.image(0).tag_base.is_none());
        // 144 bytes can straddle up to 4 lines but at least 3.
        let n = r.row_lines(0, 1).len();
        assert!((3..=4).contains(&n), "{n} lines");
    }

    #[test]
    fn rank_results_bounded_by_ranks_and_rows() {
        let trace = WorkloadTrace::uniform_sls(1 << 26, 128, 40, 8, 2);
        let p = build_packets(&trace, &cfg(8, 8), None, false);
        assert_eq!(p.len(), 1);
        assert!(p[0].rank_results <= 8 * 8);
        assert!(p[0].rank_results >= 8); // every query touches ≥ 1 rank
    }

    #[test]
    fn quantized_rows_fit_one_line() {
        // 32-byte quantized rows: ~1 line per row without tags.
        let trace = WorkloadTrace::uniform_sls(1 << 22, 32, 10, 2, 3);
        let p = build_packets(&trace, &cfg(8, 8), None, false);
        let total: usize = p
            .iter()
            .flat_map(|pk| pk.per_rank.iter())
            .map(Vec::len)
            .sum();
        // 20 rows at 32 B: 1–2 lines each.
        assert!((20..=40).contains(&total), "{total}");
    }
}
