//! The integer ring ℤ(2^wₑ) that SecNDP shares and computes in.
//!
//! Arithmetic secret sharing (paper §III-C) splits a secret `x ∈ ℤ(2^wₑ)`
//! into shares whose *wrapping* sum equals `x`. All element arithmetic in
//! Algorithms 1, 4 and 5 — pad subtraction, weighted summation, share
//! reconstruction — is therefore modular arithmetic on fixed-width unsigned
//! words. [`RingWord`] abstracts over the element width `wₑ ∈ {8,16,32,64}`
//! so the encryption and protocol code is written once.
//!
//! Signed workload values (embedding weights, gene-expression levels) are
//! carried in two's-complement: quantization maps `iN → uN` bit-patterns and
//! the wrapping ring arithmetic is exactly two's-complement arithmetic, so a
//! weighted sum of signed values decrypts correctly as long as it fits the
//! signed range (overflow beyond ℤ(2^wₑ) is caught by verification,
//! Theorem A.2).

use std::fmt::Debug;
use std::hash::Hash;

/// An unsigned machine word serving as an element of ℤ(2^wₑ).
///
/// This trait is sealed: the ring widths SecNDP supports are exactly the
/// power-of-two machine widths 8–64 (the paper requires `wₑ` to be a power of
/// two no larger than a cache line).
pub trait RingWord:
    Copy + Clone + Debug + Default + PartialEq + Eq + Hash + Send + Sync + private::Sealed + 'static
{
    /// Element width `wₑ` in bits.
    const BITS: u32;
    /// Element width in bytes (`wₑ / 8`).
    const BYTES: usize;
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Wrapping addition in the ring.
    fn wadd(self, rhs: Self) -> Self;
    /// Wrapping subtraction in the ring.
    fn wsub(self, rhs: Self) -> Self;
    /// Wrapping multiplication in the ring.
    fn wmul(self, rhs: Self) -> Self;
    /// Additive inverse (wrapping negation).
    fn wneg(self) -> Self;

    /// Reads one element from little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() < Self::BYTES`.
    fn from_le_slice(bytes: &[u8]) -> Self;
    /// Writes the element into `out` as little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < Self::BYTES`.
    fn write_le(self, out: &mut [u8]);

    /// Reinterprets the unsigned word as a signed value (two's complement).
    fn as_i64(self) -> i64;
    /// Builds an element from a signed value, truncating to `wₑ` bits
    /// (two's-complement wrap).
    fn from_i64(v: i64) -> Self;
    /// Widens to `u64` (zero-extension).
    fn as_u64(self) -> u64;
    /// Truncates a `u64` to this width.
    fn from_u64(v: u64) -> Self;
    /// Widens to `u128` (zero-extension) — used when embedding ring elements
    /// in the checksum field.
    fn as_u128(self) -> u128 {
        self.as_u64() as u128
    }
}

macro_rules! impl_ring_word {
    ($t:ty, $signed:ty) => {
        impl private::Sealed for $t {}
        impl RingWord for $t {
            const BITS: u32 = <$t>::BITS;
            const BYTES: usize = (<$t>::BITS / 8) as usize;
            const ZERO: Self = 0;
            const ONE: Self = 1;

            #[inline]
            fn wadd(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }
            #[inline]
            fn wsub(self, rhs: Self) -> Self {
                self.wrapping_sub(rhs)
            }
            #[inline]
            fn wmul(self, rhs: Self) -> Self {
                self.wrapping_mul(rhs)
            }
            #[inline]
            fn wneg(self) -> Self {
                self.wrapping_neg()
            }

            #[inline]
            fn from_le_slice(bytes: &[u8]) -> Self {
                Self::from_le_bytes(bytes[..Self::BYTES].try_into().unwrap())
            }
            #[inline]
            fn write_le(self, out: &mut [u8]) {
                out[..Self::BYTES].copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn as_i64(self) -> i64 {
                self as $signed as i64
            }
            #[inline]
            fn from_i64(v: i64) -> Self {
                v as $t
            }
            #[inline]
            fn as_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    };
}

impl_ring_word!(u8, i8);
impl_ring_word!(u16, i16);
impl_ring_word!(u32, i32);
impl_ring_word!(u64, i64);

mod private {
    pub trait Sealed {}
}

/// Weighted sum `Σ aₖ · xₖ` in ℤ(2^wₑ) — the core NDP/OTP-PU operation of
/// Algorithm 4.
///
/// ```
/// use secndp_arith::ring::weighted_sum;
/// assert_eq!(weighted_sum(&[2u32, 3], &[10, 100]), 320);
/// // Arithmetic wraps in the ring: 200·2 mod 256 = 144.
/// assert_eq!(weighted_sum(&[2u8], &[200]), 144);
/// ```
///
/// # Panics
///
/// Panics if `weights` and `values` differ in length.
pub fn weighted_sum<W: RingWord>(weights: &[W], values: &[W]) -> W {
    assert_eq!(
        weights.len(),
        values.len(),
        "weighted_sum: {} weights vs {} values",
        weights.len(),
        values.len()
    );
    let mut acc = W::ZERO;
    for (&a, &x) in weights.iter().zip(values) {
        acc = acc.wadd(a.wmul(x));
    }
    acc
}

/// Element-wise wrapping subtraction `a − b` (pad subtraction of Alg 1).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub_elementwise<W: RingWord>(a: &[W], b: &[W]) -> Vec<W> {
    assert_eq!(a.len(), b.len(), "sub_elementwise: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x.wsub(y)).collect()
}

/// Element-wise wrapping addition `a + b` (share reconstruction of Alg 4).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_elementwise<W: RingWord>(a: &[W], b: &[W]) -> Vec<W> {
    assert_eq!(a.len(), b.len(), "add_elementwise: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x.wadd(y)).collect()
}

/// Reinterprets a little-endian byte buffer as ring elements.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of the element size.
pub fn words_from_le_bytes<W: RingWord>(bytes: &[u8]) -> Vec<W> {
    assert_eq!(
        bytes.len() % W::BYTES,
        0,
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        W::BYTES
    );
    bytes.chunks_exact(W::BYTES).map(W::from_le_slice).collect()
}

/// Serializes ring elements to little-endian bytes.
pub fn words_to_le_bytes<W: RingWord>(words: &[W]) -> Vec<u8> {
    let mut out = vec![0u8; words.len() * W::BYTES];
    for (w, chunk) in words.iter().zip(out.chunks_exact_mut(W::BYTES)) {
        w.write_le(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn widths_and_identities() {
        assert_eq!(u8::BITS, 8);
        assert_eq!(u64::BYTES, 8);
        assert_eq!(u32::ZERO.wadd(u32::ONE), 1u32);
    }

    #[test]
    fn twos_complement_signed_round_trip() {
        assert_eq!(u8::from_i64(-1).as_i64(), -1);
        assert_eq!(u8::from_i64(-128).as_i64(), -128);
        assert_eq!(u16::from_i64(-300).as_i64(), -300);
        assert_eq!(u32::from_i64(i32::MIN as i64).as_i64(), i32::MIN as i64);
    }

    #[test]
    fn weighted_sum_matches_reference() {
        let w = [2u32, 3, 5];
        let x = [10u32, 20, 30];
        assert_eq!(weighted_sum(&w, &x), 2 * 10 + 3 * 20 + 5 * 30);
    }

    #[test]
    fn weighted_sum_wraps() {
        let w = [2u8];
        let x = [200u8];
        assert_eq!(weighted_sum(&w, &x), 400u64 as u8);
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn weighted_sum_length_mismatch_panics() {
        weighted_sum(&[1u8], &[1u8, 2]);
    }

    #[test]
    fn byte_round_trip_all_widths() {
        let v32 = vec![1u32, 0xdead_beef, u32::MAX];
        assert_eq!(words_from_le_bytes::<u32>(&words_to_le_bytes(&v32)), v32);
        let v8 = vec![0u8, 127, 255];
        assert_eq!(words_from_le_bytes::<u8>(&words_to_le_bytes(&v8)), v8);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn misaligned_bytes_panic() {
        words_from_le_bytes::<u32>(&[0u8; 6]);
    }

    proptest! {
        /// Share reconstruction: (a − b) + b == a for every pair (Alg 1 ∘ Alg 4).
        #[test]
        fn sub_then_add_is_identity(a in proptest::collection::vec(any::<u32>(), 0..64),
                                    b_seed in any::<u64>()) {
            let b: Vec<u32> = a.iter().enumerate()
                .map(|(i, _)| (b_seed.wrapping_mul(i as u64 + 1) >> 7) as u32)
                .collect();
            let c = sub_elementwise(&a, &b);
            prop_assert_eq!(add_elementwise(&c, &b), a);
        }

        /// Linearity: weighted_sum distributes over share addition.
        #[test]
        fn weighted_sum_is_linear(pairs in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..32)) {
            let w: Vec<u16> = pairs.iter().map(|p| p.0).collect();
            let x: Vec<u16> = pairs.iter().map(|p| p.1).collect();
            let y: Vec<u16> = pairs.iter().map(|p| p.2).collect();
            let lhs = weighted_sum(&w, &add_elementwise(&x, &y));
            let rhs = weighted_sum(&w, &x).wadd(weighted_sum(&w, &y));
            prop_assert_eq!(lhs, rhs);
        }

        /// words round trip through bytes at width 16.
        #[test]
        fn words_bytes_round_trip(v in proptest::collection::vec(any::<u16>(), 0..64)) {
            prop_assert_eq!(words_from_le_bytes::<u16>(&words_to_le_bytes(&v)), v);
        }
    }
}
