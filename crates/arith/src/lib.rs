//! Arithmetic substrates for SecNDP.
//!
//! Everything SecNDP computes lives in one of two algebraic structures:
//!
//! - the **integer ring** ℤ(2^wₑ) in which data elements, ciphertexts and
//!   one-time pads are added and multiplied (paper §III-C, §IV) — module
//!   [`ring`];
//! - the **Mersenne prime field** 𝔽_q with `q = 2¹²⁷ − 1` in which linear
//!   checksums and verification tags are computed (paper §IV-F, §V-D) —
//!   module [`mersenne`].
//!
//! Because arithmetic sharing only works over integers, floating-point
//! workload data must be quantized first (paper §III-C, §VI-A). Module
//! [`fixed`] provides fixed-point conversion and [`quant`] the row-wise,
//! column-wise and table-wise 8-bit quantization schemes the paper evaluates
//! in Figure 6 and Table IV.
//!
//! # Examples
//!
//! ```
//! use secndp_arith::mersenne::Fq;
//!
//! let a = Fq::new(12345);
//! let b = a.inv().expect("nonzero");
//! assert_eq!(a * b, Fq::ONE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixed;
pub mod mersenne;
pub mod quant;
pub mod ring;
pub mod smallfield;

pub use fixed::Fixed32;
pub use mersenne::Fq;
pub use ring::RingWord;
