//! The Mersenne prime field 𝔽_q with `q = 2¹²⁷ − 1`.
//!
//! SecNDP's verification tags are linear modular checksums over a prime
//! field (paper §IV-F). The paper chooses `q = 2¹²⁷ − 1` — the largest
//! 127-bit Mersenne prime — "considering both security and performance"
//! (§IV-G): reduction modulo a Mersenne prime is a shift-and-add, so the
//! verification engine is ordinary integer arithmetic plus a fold on
//! overflow (the paper cites Bernstein's hash127 \[13\] for this trick).
//!
//! Elements are kept in canonical form `0 ≤ x < q` inside a `u128`.
//! Multiplication forms the full 254-bit product via 64-bit limbs and folds
//! with `2¹²⁷ ≡ 1 (mod q)`.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus `q = 2¹²⁷ − 1` (a Mersenne prime, `w_t = 127`).
pub const Q: u128 = (1u128 << 127) - 1;

/// An element of 𝔽_q, stored in canonical form `0 ≤ x < q`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Fq(u128);

impl Fq {
    /// The additive identity.
    pub const ZERO: Fq = Fq(0);
    /// The multiplicative identity.
    pub const ONE: Fq = Fq(1);

    /// Builds an element from any `u128`, reducing modulo `q`.
    pub fn new(v: u128) -> Self {
        Fq(reduce(v))
    }

    /// Builds an element from a signed value (negative values map to
    /// `q − |v|`).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Fq(v as u128)
        } else {
            Fq(Q - (v.unsigned_abs() as u128))
        }
    }

    /// The canonical representative in `[0, q)`.
    pub fn value(self) -> u128 {
        self.0
    }

    /// `self^exp` by square-and-multiply.
    pub fn pow(self, mut exp: u128) -> Self {
        let mut base = self;
        let mut acc = Fq::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// The multiplicative inverse, or `None` for zero.
    ///
    /// Uses Fermat's little theorem: `x⁻¹ = x^(q−2)`.
    pub fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(Q - 2))
        }
    }

    /// True iff this is the additive identity.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Inverts every element of `values` with Montgomery's batch-inversion
    /// trick: one field inversion plus `3(n−1)` multiplications.
    ///
    /// Returns `None` if any element is zero (nothing is modified then).
    pub fn batch_inv(values: &mut [Fq]) -> Option<()> {
        if values.iter().any(|v| v.is_zero()) {
            return None;
        }
        // Prefix products: prefix[i] = v0·…·v(i−1).
        let mut prefix = Vec::with_capacity(values.len());
        let mut acc = Fq::ONE;
        for &v in values.iter() {
            prefix.push(acc);
            acc *= v;
        }
        // One inversion of the total product, then peel backwards.
        let mut inv_acc = acc.inv()?;
        for i in (0..values.len()).rev() {
            let orig = values[i];
            values[i] = inv_acc * prefix[i];
            inv_acc *= orig;
        }
        Some(())
    }
}

/// Reduces an arbitrary `u128` modulo `q = 2¹²⁷ − 1`.
#[inline]
fn reduce(x: u128) -> u128 {
    // x = hi·2¹²⁷ + lo ≡ hi + lo, with hi ∈ {0, 1}; one extra fold suffices.
    let folded = (x & Q) + (x >> 127);
    if folded >= Q {
        folded - Q
    } else {
        folded
    }
}

/// Full 128×128 → 256-bit multiply returning `(hi, lo)`.
#[inline]
fn mul_wide(a: u128, b: u128) -> (u128, u128) {
    let (a_hi, a_lo) = ((a >> 64) as u64, a as u64);
    let (b_hi, b_lo) = ((b >> 64) as u64, b as u64);

    let ll = (a_lo as u128) * (b_lo as u128);
    let lh = (a_lo as u128) * (b_hi as u128);
    let hl = (a_hi as u128) * (b_lo as u128);
    let hh = (a_hi as u128) * (b_hi as u128);

    // mid = lh + hl, tracking the carry out of 128 bits.
    let (mid, mid_carry) = lh.overflowing_add(hl);
    let mid_carry = (mid_carry as u128) << 64;

    let (lo, c1) = ll.overflowing_add(mid << 64);
    let hi = hh + (mid >> 64) + mid_carry + c1 as u128;
    (hi, lo)
}

impl Add for Fq {
    type Output = Fq;
    #[inline]
    fn add(self, rhs: Fq) -> Fq {
        // Both operands < q < 2¹²⁷, so the sum fits in u128.
        Fq(reduce(self.0 + rhs.0))
    }
}

impl Sub for Fq {
    type Output = Fq;
    #[inline]
    fn sub(self, rhs: Fq) -> Fq {
        Fq(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + Q - rhs.0
        })
    }
}

impl Neg for Fq {
    type Output = Fq;
    #[inline]
    fn neg(self) -> Fq {
        if self.0 == 0 {
            self
        } else {
            Fq(Q - self.0)
        }
    }
}

impl Mul for Fq {
    type Output = Fq;
    #[inline]
    fn mul(self, rhs: Fq) -> Fq {
        let (hi, lo) = mul_wide(self.0, rhs.0);
        // hi·2¹²⁸ + lo ≡ 2·hi + lo (mod q), since 2¹²⁷ ≡ 1.
        // a, b < 2¹²⁷ ⇒ product < 2²⁵⁴ ⇒ hi < 2¹²⁶ ⇒ 2·hi fits in u128.
        Fq(reduce(reduce(lo) + reduce(hi << 1)))
    }
}

impl AddAssign for Fq {
    fn add_assign(&mut self, rhs: Fq) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fq {
    fn sub_assign(&mut self, rhs: Fq) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fq {
    fn mul_assign(&mut self, rhs: Fq) {
        *self = *self * rhs;
    }
}

impl Sum for Fq {
    fn sum<I: Iterator<Item = Fq>>(iter: I) -> Fq {
        iter.fold(Fq::ZERO, |a, b| a + b)
    }
}

impl Product for Fq {
    fn product<I: Iterator<Item = Fq>>(iter: I) -> Fq {
        iter.fold(Fq::ONE, |a, b| a * b)
    }
}

impl From<u64> for Fq {
    fn from(v: u64) -> Fq {
        Fq(v as u128)
    }
}

impl From<u128> for Fq {
    fn from(v: u128) -> Fq {
        Fq::new(v)
    }
}

impl fmt::Debug for Fq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fq({:#x})", self.0)
    }
}

impl fmt::Display for Fq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Horner evaluation of `Σ_j coeffs[j] · s^(m−j)` — the checksum polynomial
/// shape of Algorithm 2 (coefficient `j` is paired with power `m − j`, so the
/// constant term is never used and a trailing zero row changes the tag).
pub fn horner_high_to_low(coeffs: &[Fq], s: Fq) -> Fq {
    // T = (((c₀·s + c₁)·s + c₂)·s + …)·s — all m coefficients, final ×s.
    let mut acc = Fq::ZERO;
    for &c in coeffs {
        acc = acc * s + c;
    }
    acc * s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn q_is_the_mersenne_prime() {
        assert_eq!(Q, 170141183460469231731687303715884105727u128);
    }

    #[test]
    fn canonical_reduction() {
        assert_eq!(Fq::new(Q).value(), 0);
        assert_eq!(Fq::new(Q + 5).value(), 5);
        assert_eq!(Fq::new(u128::MAX).value(), u128::MAX - 2 * Q);
    }

    #[test]
    fn add_sub_neg_basics() {
        let a = Fq::new(Q - 1);
        assert_eq!((a + Fq::ONE).value(), 0);
        assert_eq!((Fq::ZERO - Fq::ONE).value(), Q - 1);
        assert_eq!((-Fq::ONE).value(), Q - 1);
        assert_eq!(-Fq::ZERO, Fq::ZERO);
    }

    #[test]
    fn mul_small_and_large() {
        assert_eq!((Fq::new(3) * Fq::new(5)).value(), 15);
        // (q-1)² = q² - 2q + 1 ≡ 1 (mod q): (-1)² = 1.
        assert_eq!((Fq::new(Q - 1) * Fq::new(Q - 1)), Fq::ONE);
        // 2^126 · 2 = 2^127 ≡ 1.
        assert_eq!(Fq::new(1 << 126) * Fq::new(2), Fq::ONE);
    }

    #[test]
    fn mul_wide_known_values() {
        let (hi, lo) = mul_wide(u128::MAX, u128::MAX);
        // (2¹²⁸−1)² = 2²⁵⁶ − 2¹²⁹ + 1.
        assert_eq!(lo, 1);
        assert_eq!(hi, u128::MAX - 1);
        let (hi, lo) = mul_wide(1 << 127, 2);
        assert_eq!((hi, lo), (1, 0));
    }

    #[test]
    fn fermat_inverse() {
        for v in [1u128, 2, 3, 12345, Q - 1, 1 << 126] {
            let x = Fq::new(v);
            assert_eq!(x * x.inv().unwrap(), Fq::ONE, "inverse of {v}");
        }
        assert!(Fq::ZERO.inv().is_none());
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(Fq::new(7).pow(0), Fq::ONE);
        assert_eq!(Fq::new(7).pow(1), Fq::new(7));
        // Fermat: x^(q-1) = 1.
        assert_eq!(Fq::new(987654321).pow(Q - 1), Fq::ONE);
    }

    #[test]
    fn from_i64_signed_embedding() {
        assert_eq!(Fq::from_i64(-1), -Fq::ONE);
        assert_eq!(Fq::from_i64(-1) + Fq::ONE, Fq::ZERO);
        assert_eq!(Fq::from_i64(i64::MIN) + Fq::new(1u128 << 63), Fq::ZERO);
    }

    #[test]
    fn horner_matches_naive_power_sum() {
        let coeffs: Vec<Fq> = (1..=5u64).map(Fq::from).collect();
        let s = Fq::new(123456789);
        let m = coeffs.len() as u128;
        let naive: Fq = coeffs
            .iter()
            .enumerate()
            .map(|(j, &c)| c * s.pow(m - j as u128))
            .sum();
        assert_eq!(horner_high_to_low(&coeffs, s), naive);
    }

    #[test]
    fn horner_empty_is_zero() {
        assert_eq!(horner_high_to_low(&[], Fq::new(5)), Fq::ZERO);
    }

    #[test]
    fn sum_and_product_iterators() {
        let v = [Fq::new(1), Fq::new(2), Fq::new(3)];
        assert_eq!(v.iter().copied().sum::<Fq>(), Fq::new(6));
        assert_eq!(v.iter().copied().product::<Fq>(), Fq::new(6));
    }

    #[test]
    fn batch_inv_matches_individual() {
        let mut v: Vec<Fq> = (1u64..20).map(Fq::from).collect();
        let expect: Vec<Fq> = v.iter().map(|x| x.inv().unwrap()).collect();
        Fq::batch_inv(&mut v).unwrap();
        assert_eq!(v, expect);
    }

    #[test]
    fn batch_inv_rejects_zero_without_modifying() {
        let mut v = vec![Fq::new(3), Fq::ZERO, Fq::new(7)];
        let orig = v.clone();
        assert!(Fq::batch_inv(&mut v).is_none());
        assert_eq!(v, orig);
        // Empty batch is trivially fine.
        assert!(Fq::batch_inv(&mut []).is_some());
    }

    fn arb_fq() -> impl Strategy<Value = Fq> {
        any::<u128>().prop_map(Fq::new)
    }

    proptest! {
        #[test]
        fn addition_commutes_and_associates(a in arb_fq(), b in arb_fq(), c in arb_fq()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn multiplication_commutes_and_associates(a in arb_fq(), b in arb_fq(), c in arb_fq()) {
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn distributivity(a in arb_fq(), b in arb_fq(), c in arb_fq()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn sub_is_add_neg(a in arb_fq(), b in arb_fq()) {
            prop_assert_eq!(a - b, a + (-b));
        }

        #[test]
        fn inverse_round_trip(a in arb_fq()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a * a.inv().unwrap(), Fq::ONE);
        }

        #[test]
        fn reduce_is_canonical(x in any::<u128>()) {
            let r = Fq::new(x).value();
            prop_assert!(r < Q);
            // x and r differ by a multiple of q.
            prop_assert_eq!(x % Q, r % Q);
        }

        /// Checksum linearity (the property Theorem A.2 relies on):
        /// h(a·x + b·y) = a·h(x) + b·h(y) where h is the Horner polynomial.
        #[test]
        fn horner_is_linear(x in proptest::collection::vec(arb_fq(), 1..16),
                            y_seed in any::<u64>(), a in arb_fq(), b in arb_fq(),
                            s in arb_fq()) {
            let y: Vec<Fq> = (0..x.len())
                .map(|i| Fq::new((y_seed as u128).wrapping_mul(i as u128 + 7)))
                .collect();
            let combo: Vec<Fq> = x.iter().zip(&y).map(|(&xi, &yi)| a * xi + b * yi).collect();
            let lhs = horner_high_to_low(&combo, s);
            let rhs = a * horner_high_to_low(&x, s) + b * horner_high_to_low(&y, s);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
