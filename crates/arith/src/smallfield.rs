//! Small prime fields `𝔽_p` for *empirically* validating the checksum
//! security bound.
//!
//! Theorem 2's information-theoretic term says a forger defeats the linear
//! checksum with probability at most `m/q`. With `q = 2¹²⁷ − 1` that event
//! is unobservable, so the production field cannot be tested statistically.
//! [`Fp`] instantiates the *same* construction over a small prime, where
//! forgeries are frequent enough to count — letting a test confirm both
//! directions:
//!
//! - forgeries *do* occur (the bound is not vacuous), at a rate consistent
//!   with the root-counting argument (≈ expected-roots/p for random
//!   perturbations, ≤ m/p always);
//! - scaling `p` up drives the rate down proportionally.
//!
//! `P` must be an odd prime below `2³²` so products fit in `u64`.

/// An element of the prime field `𝔽_P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Fp<const P: u64>(u64);

impl<const P: u64> Fp<P> {
    /// The additive identity.
    pub const ZERO: Self = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Self = Fp(1 % P);

    /// Builds an element, reducing modulo `P`.
    ///
    /// # Panics
    ///
    /// Panics (at first use) if `P < 2` or `P ≥ 2³²`.
    pub fn new(v: u64) -> Self {
        assert!(P >= 2 && P < (1 << 32), "P must be a prime below 2^32");
        Fp(v % P)
    }

    /// The canonical representative in `[0, P)`.
    pub fn value(self) -> u64 {
        self.0
    }

    /// `self^exp` by square-and-multiply.
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat, or `None` for zero.
    pub fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(P - 2))
        }
    }
}

impl<const P: u64> std::ops::Add for Fp<P> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fp((self.0 + rhs.0) % P)
    }
}

impl<const P: u64> std::ops::Sub for Fp<P> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp((self.0 + P - rhs.0) % P)
    }
}

impl<const P: u64> std::ops::Mul for Fp<P> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Fp(self.0 * rhs.0 % P)
    }
}

/// The linear checksum of Algorithm 2 instantiated over `𝔽_P`:
/// `h_s(row) = Σⱼ rowⱼ · s^(m−j)`.
pub fn checksum_fp<const P: u64>(row: &[u64], s: Fp<P>) -> Fp<P> {
    let mut acc = Fp::<P>::ZERO;
    for &c in row {
        acc = acc * s + Fp::new(c);
    }
    acc * s
}

/// Runs the downscaled forgery experiment: for `trials` random
/// `(perturbation, secret)` pairs, count how often a non-zero perturbation
/// of the result collides with the original checksum (a successful
/// forgery). Returns `(successes, trials)`.
///
/// The deterministic xorshift generator makes the experiment reproducible.
pub fn forgery_rate_experiment<const P: u64>(m: usize, trials: u64, seed: u64) -> (u64, u64) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut successes = 0;
    for _ in 0..trials {
        // Random non-zero perturbation Δ of the m result elements.
        let mut delta: Vec<u64> = (0..m).map(|_| next() % P).collect();
        if delta.iter().all(|&d| d == 0) {
            delta[0] = 1;
        }
        // Secret s drawn uniformly (unknown to the forger).
        let s = Fp::<P>::new(next());
        // The forgery passes iff h_s(Δ) = 0 (linearity of the checksum).
        if checksum_fp(&delta, s) == Fp::ZERO {
            successes += 1;
        }
    }
    (successes, trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    type F251 = Fp<251>;
    type F65521 = Fp<65521>;

    #[test]
    fn field_axioms_spotcheck() {
        let a = F251::new(200);
        let b = F251::new(100);
        assert_eq!((a + b).value(), 49);
        assert_eq!((a - b).value(), 100);
        assert_eq!((F251::new(16) * F251::new(16)).value(), 5);
        assert_eq!(a * a.inv().unwrap(), F251::ONE);
        assert!(F251::ZERO.inv().is_none());
        assert_eq!(F251::new(7).pow(250), F251::ONE); // Fermat
    }

    #[test]
    fn checksum_is_linear_and_keyed() {
        let s = F65521::new(1234);
        let a = [5u64, 10, 15];
        let b = [1u64, 2, 3];
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x + y) % 65521).collect();
        let lhs = checksum_fp(&sum, s);
        let rhs = checksum_fp(&a, s) + checksum_fp(&b, s);
        assert_eq!(lhs, rhs);
        assert_ne!(checksum_fp(&a, s), checksum_fp(&a, F65521::new(1235)));
    }

    #[test]
    fn forgery_rate_matches_root_counting() {
        // m = 16, p = 251: a random degree-16 perturbation polynomial has
        // ~1 root on average, so the forgery rate should sit near 1/p
        // (0.4 %) and never exceed the worst-case bound m/p (6.4 %).
        const P: u64 = 251;
        let m = 16;
        let trials = 200_000;
        let (hits, n) = forgery_rate_experiment::<P>(m, trials, 0xF0F0);
        let rate = hits as f64 / n as f64;
        let avg_expect = 1.0 / P as f64;
        let worst_case = m as f64 / P as f64;
        assert!(hits > 0, "bound should not be vacuous at p = {P}");
        assert!(
            rate <= worst_case,
            "rate {rate:.5} exceeds m/p {worst_case:.5}"
        );
        assert!(
            (avg_expect / 3.0..avg_expect * 3.0).contains(&rate),
            "rate {rate:.5} far from 1/p {avg_expect:.5}"
        );
    }

    #[test]
    fn bigger_field_fewer_forgeries() {
        // Scaling p by ~261× scales the forgery rate down accordingly.
        let (h_small, n) = forgery_rate_experiment::<251>(16, 100_000, 7);
        let (h_big, _) = forgery_rate_experiment::<65521>(16, 100_000, 7);
        let r_small = h_small as f64 / n as f64;
        let r_big = h_big as f64 / n as f64;
        assert!(
            r_big < r_small / 20.0 || h_big == 0,
            "small {r_small:.5} vs big {r_big:.6}"
        );
    }

    #[test]
    fn zero_perturbation_never_generated() {
        // The experiment must test *forgeries* (Δ ≠ 0), not identity.
        let (hits, n) = forgery_rate_experiment::<251>(1, 10_000, 3);
        // With m = 1, h_s(Δ) = Δ·s = 0 only when s = 0: rate ≈ 1/p.
        let rate = hits as f64 / n as f64;
        assert!(rate < 3.0 / 251.0, "rate {rate}");
    }
}
