//! 8-bit quantization of embedding tables: row-wise, column-wise and
//! table-wise scale/bias schemes.
//!
//! Row-wise quantization (Figure 6 right) stores a `(scale, bias)` pair per
//! table row: `P_{i,j} = Pq_{i,j} · scaleᵢ + biasᵢ`. That per-row scale sits
//! *inside* the SLS sum, so computation over ciphertext needs an extra
//! multiply per element — which is why the paper proposes **table-wise** and
//! **column-wise** quantization (§VI-A(1)): with a shared scale the quantized
//! SLS is a plain weighted summation `resqⱼ = Σ aₖ · Pq_{iₖ,j}` that NDP can
//! run over ciphertext, and the scale/bias are applied once at the end:
//! `resⱼ = resqⱼ · scaleⱼ + biasⱼ · Σ aₖ`.
//!
//! Table IV evaluates the accuracy impact of each scheme; this module is the
//! substrate for that experiment.

use std::fmt;

/// Scale/bias granularity of an 8-bit quantized table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One `(scale, bias)` per row — the production default, but breaks
    /// ciphertext linearity of SLS.
    RowWise,
    /// One `(scale, bias)` per column — SLS stays linear over ciphertext.
    ColumnWise,
    /// A single `(scale, bias)` for the whole table — SLS stays linear.
    TableWise,
}

impl Granularity {
    /// Whether SLS over this scheme is a *linear* function of the quantized
    /// values (and can therefore run over SecNDP ciphertext unchanged).
    pub fn is_linear_over_ciphertext(self) -> bool {
        !matches!(self, Granularity::RowWise)
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Granularity::RowWise => "row-wise",
            Granularity::ColumnWise => "column-wise",
            Granularity::TableWise => "table-wise",
        })
    }
}

/// An 8-bit quantized `rows × cols` matrix with scale/bias metadata.
///
/// ```
/// use secndp_arith::quant::{Quantized8, Granularity};
/// let matrix = vec![0.0f32, 1.0, 2.0, 3.0];
/// let q = Quantized8::quantize(&matrix, 2, 2, Granularity::TableWise);
/// let back = q.dequantize();
/// for (a, b) in matrix.iter().zip(&back) {
///     assert!((a - b).abs() < 0.01);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized8 {
    granularity: Granularity,
    rows: usize,
    cols: usize,
    /// Row-major quantized codes.
    data: Vec<u8>,
    /// One per row (row-wise), per column (column-wise), or exactly one
    /// (table-wise).
    scales: Vec<f32>,
    biases: Vec<f32>,
}

impl Quantized8 {
    /// Quantizes a row-major `rows × cols` matrix of `f32` under the given
    /// granularity.
    ///
    /// Codes are affine: `code = round((x − bias) / scale)` clamped to
    /// `[0, 255]`, with `bias = min` and `scale = (max − min)/255` over the
    /// granularity group (degenerate groups get `scale = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `matrix.len() != rows * cols` or the matrix is empty.
    pub fn quantize(matrix: &[f32], rows: usize, cols: usize, granularity: Granularity) -> Self {
        assert_eq!(matrix.len(), rows * cols, "matrix shape mismatch");
        assert!(rows > 0 && cols > 0, "cannot quantize an empty matrix");
        let group_of = |i: usize, j: usize| match granularity {
            Granularity::RowWise => i,
            Granularity::ColumnWise => j,
            Granularity::TableWise => 0,
        };
        let ngroups = match granularity {
            Granularity::RowWise => rows,
            Granularity::ColumnWise => cols,
            Granularity::TableWise => 1,
        };
        let mut mins = vec![f32::INFINITY; ngroups];
        let mut maxs = vec![f32::NEG_INFINITY; ngroups];
        for i in 0..rows {
            for j in 0..cols {
                let g = group_of(i, j);
                let v = matrix[i * cols + j];
                mins[g] = mins[g].min(v);
                maxs[g] = maxs[g].max(v);
            }
        }
        let scales: Vec<f32> = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| {
                let s = (hi - lo) / 255.0;
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        let biases = mins;
        let mut data = vec![0u8; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                let g = group_of(i, j);
                let code = ((matrix[i * cols + j] - biases[g]) / scales[g]).round();
                data[i * cols + j] = code.clamp(0.0, 255.0) as u8;
            }
        }
        Self {
            granularity,
            rows,
            cols,
            data,
            scales,
            biases,
        }
    }

    /// The quantization granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The raw 8-bit codes, row-major (this is what Algorithm 1 encrypts
    /// with `wₑ = 8`).
    pub fn codes(&self) -> &[u8] {
        &self.data
    }

    /// Per-group scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Per-group biases.
    pub fn biases(&self) -> &[f32] {
        &self.biases
    }

    /// Dequantizes element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn dequantize_at(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let g = match self.granularity {
            Granularity::RowWise => i,
            Granularity::ColumnWise => j,
            Granularity::TableWise => 0,
        };
        self.data[i * self.cols + j] as f32 * self.scales[g] + self.biases[g]
    }

    /// Dequantizes the whole matrix (row-major).
    pub fn dequantize(&self) -> Vec<f32> {
        (0..self.rows)
            .flat_map(|i| (0..self.cols).map(move |j| (i, j)))
            .map(|(i, j)| self.dequantize_at(i, j))
            .collect()
    }

    /// Weighted pooling `resⱼ = Σₖ aₖ · P_{iₖ,j}` over the *dequantized*
    /// values — the reference SLS used for accuracy evaluation.
    ///
    /// For column-wise and table-wise granularity this is computed the way
    /// SecNDP computes it: integer weighted sum of codes first, then one
    /// affine correction (`resqⱼ · scaleⱼ + biasⱼ · Σ aₖ`), which is exactly
    /// equivalent. For row-wise granularity the per-row scale is applied
    /// inside the sum.
    ///
    /// # Panics
    ///
    /// Panics if `indices` and `weights` differ in length or any index is
    /// out of bounds.
    pub fn sls(&self, indices: &[usize], weights: &[f32]) -> Vec<f32> {
        assert_eq!(indices.len(), weights.len(), "indices/weights mismatch");
        let mut out = vec![0.0f32; self.cols];
        match self.granularity {
            Granularity::RowWise => {
                for (&i, &a) in indices.iter().zip(weights) {
                    assert!(i < self.rows, "row index {i} out of bounds");
                    let scale = self.scales[i];
                    let bias = self.biases[i];
                    let row = &self.data[i * self.cols..(i + 1) * self.cols];
                    for (o, &code) in out.iter_mut().zip(row) {
                        *o += a * (code as f32 * scale + bias);
                    }
                }
            }
            Granularity::ColumnWise | Granularity::TableWise => {
                // Integer-linear part: resqⱼ = Σ aₖ · codes[iₖ][j].
                let mut resq = vec![0.0f32; self.cols];
                let mut wsum = 0.0f32;
                for (&i, &a) in indices.iter().zip(weights) {
                    assert!(i < self.rows, "row index {i} out of bounds");
                    wsum += a;
                    let row = &self.data[i * self.cols..(i + 1) * self.cols];
                    for (r, &code) in resq.iter_mut().zip(row) {
                        *r += a * code as f32;
                    }
                }
                for j in 0..self.cols {
                    let g = if self.granularity == Granularity::TableWise {
                        0
                    } else {
                        j
                    };
                    out[j] = resq[j] * self.scales[g] + self.biases[g] * wsum;
                }
            }
        }
        out
    }

    /// The memory footprint in bytes: codes plus scale/bias metadata
    /// (used by the simulator to size quantized tables).
    pub fn footprint_bytes(&self) -> usize {
        self.data.len() + (self.scales.len() + self.biases.len()) * 4
    }
}

/// Root-mean-square quantization error of a scheme over `matrix`.
pub fn rms_error(matrix: &[f32], q: &Quantized8) -> f64 {
    let deq = q.dequantize();
    let sum: f64 = matrix
        .iter()
        .zip(&deq)
        .map(|(&a, &b)| ((a - b) as f64).powi(2))
        .sum();
    (sum / matrix.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_matrix(rows: usize, cols: usize) -> Vec<f32> {
        // Deterministic pseudo-random values in [-2, 2) with per-row offset,
        // so row-wise ranges genuinely differ from column-wise ranges.
        (0..rows * cols)
            .map(|k| {
                let i = k / cols;
                let x = ((k as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 40) as f32 / 16777216.0;
                (x * 4.0 - 2.0) + i as f32 * 0.1
            })
            .collect()
    }

    #[test]
    fn quantize_dequantize_error_bounded() {
        let m = sample_matrix(8, 16);
        for g in [
            Granularity::RowWise,
            Granularity::ColumnWise,
            Granularity::TableWise,
        ] {
            let q = Quantized8::quantize(&m, 8, 16, g);
            let deq = q.dequantize();
            for (a, b) in m.iter().zip(&deq) {
                // Max error is half a code step; steps here are ≤ (range)/255.
                assert!((a - b).abs() <= 0.02, "{g}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn rowwise_usually_tighter_than_tablewise() {
        // Rows with very different ranges: row-wise must fit better.
        let mut m = vec![0.0f32; 4 * 8];
        for j in 0..8 {
            m[j] = j as f32 * 0.001; // row 0: tiny range
            m[8 + j] = j as f32 * 100.0; // row 1: huge range
            m[16 + j] = -(j as f32); // row 2
            m[24 + j] = j as f32 * 0.5; // row 3
        }
        let qr = Quantized8::quantize(&m, 4, 8, Granularity::RowWise);
        let qt = Quantized8::quantize(&m, 4, 8, Granularity::TableWise);
        assert!(rms_error(&m, &qr) < rms_error(&m, &qt));
    }

    #[test]
    fn constant_matrix_is_exact() {
        let m = vec![3.25f32; 6 * 4];
        for g in [
            Granularity::RowWise,
            Granularity::ColumnWise,
            Granularity::TableWise,
        ] {
            let q = Quantized8::quantize(&m, 6, 4, g);
            assert_eq!(q.dequantize(), m, "{g}");
        }
    }

    #[test]
    fn sls_linear_schemes_match_direct_pooling() {
        let m = sample_matrix(10, 8);
        let idx = [0usize, 3, 7, 3];
        let w = [1.0f32, -0.5, 2.0, 0.25];
        for g in [Granularity::ColumnWise, Granularity::TableWise] {
            let q = Quantized8::quantize(&m, 10, 8, g);
            let got = q.sls(&idx, &w);
            // Reference: pool the dequantized rows directly.
            let mut want = vec![0.0f32; 8];
            for (&i, &a) in idx.iter().zip(&w) {
                for (j, slot) in want.iter_mut().enumerate() {
                    *slot += a * q.dequantize_at(i, j);
                }
            }
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-3, "{g}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn linearity_flag() {
        assert!(!Granularity::RowWise.is_linear_over_ciphertext());
        assert!(Granularity::ColumnWise.is_linear_over_ciphertext());
        assert!(Granularity::TableWise.is_linear_over_ciphertext());
    }

    #[test]
    fn metadata_sizes_follow_granularity() {
        let m = sample_matrix(5, 3);
        assert_eq!(
            Quantized8::quantize(&m, 5, 3, Granularity::RowWise)
                .scales()
                .len(),
            5
        );
        assert_eq!(
            Quantized8::quantize(&m, 5, 3, Granularity::ColumnWise)
                .scales()
                .len(),
            3
        );
        assert_eq!(
            Quantized8::quantize(&m, 5, 3, Granularity::TableWise)
                .scales()
                .len(),
            1
        );
    }

    #[test]
    fn footprint_smaller_than_f32() {
        let m = sample_matrix(100, 32);
        let q = Quantized8::quantize(&m, 100, 32, Granularity::TableWise);
        assert!(q.footprint_bytes() < m.len() * 4 / 3);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn shape_mismatch_panics() {
        Quantized8::quantize(&[0.0; 7], 2, 4, Granularity::TableWise);
    }

    proptest! {
        #[test]
        fn codes_reconstruct_within_half_step(
            vals in proptest::collection::vec(-1000.0f32..1000.0, 12..60)
        ) {
            let cols = 4;
            let rows = vals.len() / cols;
            let m = &vals[..rows * cols];
            for g in [Granularity::RowWise, Granularity::ColumnWise, Granularity::TableWise] {
                let q = Quantized8::quantize(m, rows, cols, g);
                for i in 0..rows {
                    for j in 0..cols {
                        let gidx = match g {
                            Granularity::RowWise => i,
                            Granularity::ColumnWise => j,
                            Granularity::TableWise => 0,
                        };
                        let step = q.scales()[gidx];
                        let err = (m[i * cols + j] - q.dequantize_at(i, j)).abs();
                        // Half a step plus float slack.
                        prop_assert!(err <= step * 0.5 + step * 1e-3 + 1e-4);
                    }
                }
            }
        }
    }
}
