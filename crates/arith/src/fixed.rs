//! Fixed-point representation for carrying real-valued workload data through
//! the integer ring.
//!
//! Arithmetic sharing works over ℤ(2^wₑ) only, so floating-point inputs are
//! quantized into fixed-point numbers first (paper §III-C). Table IV of the
//! paper shows 32-bit fixed point changes DLRM LogLoss by only −3.6·10⁻¹⁰;
//! [`Fixed`] is the type that evaluation uses.
//!
//! `Fixed<FRAC>` stores `round(x · 2^FRAC)` in an `i32`. Addition is exact;
//! multiplication rescales through an `i64` intermediate. The bit pattern of
//! the underlying `i32` is what gets encrypted (two's complement maps
//! directly onto the ring, see [`crate::ring`]).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A 32-bit two's-complement fixed-point number with `FRAC` fractional bits.
///
/// ```
/// use secndp_arith::fixed::Fixed32;
/// let a = Fixed32::from_f64(1.5);
/// let b = Fixed32::from_f64(-0.25);
/// assert_eq!((a + b).to_f64(), 1.25);
/// assert_eq!((a * b).to_f64(), -0.375);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Fixed<const FRAC: u32>(i32);

/// The default evaluation format: Q15.16 (16 integer bits, 16 fractional).
pub type Fixed32 = Fixed<16>;

impl<const FRAC: u32> Fixed<FRAC> {
    /// Zero.
    pub const ZERO: Self = Fixed(0);
    /// One (`2^FRAC` raw).
    pub const ONE: Self = Fixed(1 << FRAC);
    /// The quantization step, `2^(−FRAC)`.
    pub const EPSILON: f64 = 1.0 / (1u64 << FRAC) as f64;

    /// Builds from the raw underlying `i32`.
    pub const fn from_raw(raw: i32) -> Self {
        Fixed(raw)
    }

    /// The raw underlying `i32` (the bit pattern that is encrypted).
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Converts from `f64`, rounding to nearest.
    ///
    /// Values outside the representable range saturate to the extremes.
    pub fn from_f64(v: f64) -> Self {
        let scaled = (v * (1u64 << FRAC) as f64).round();
        Fixed(scaled.clamp(i32::MIN as f64, i32::MAX as f64) as i32)
    }

    /// Converts from `f32`, rounding to nearest.
    pub fn from_f32(v: f32) -> Self {
        Self::from_f64(v as f64)
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 * Self::EPSILON
    }

    /// Converts to `f32` (may round).
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Saturating multiplication with rescaling through an `i64`.
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = (self.0 as i64 * rhs.0 as i64) >> FRAC;
        Fixed(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }
}

impl<const FRAC: u32> Add for Fixed<FRAC> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fixed(self.0.wrapping_add(rhs.0))
    }
}

impl<const FRAC: u32> AddAssign for Fixed<FRAC> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const FRAC: u32> Sub for Fixed<FRAC> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fixed(self.0.wrapping_sub(rhs.0))
    }
}

impl<const FRAC: u32> Neg for Fixed<FRAC> {
    type Output = Self;
    fn neg(self) -> Self {
        Fixed(self.0.wrapping_neg())
    }
}

impl<const FRAC: u32> Mul for Fixed<FRAC> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Fixed(((self.0 as i64 * rhs.0 as i64) >> FRAC) as i32)
    }
}

impl<const FRAC: u32> fmt::Debug for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed<{FRAC}>({})", self.to_f64())
    }
}

impl<const FRAC: u32> fmt::Display for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

/// Quantizes a slice of `f32` into fixed-point raw `i32` bit patterns
/// (the representation Algorithm 1 encrypts for 32-bit elements).
pub fn quantize_f32_slice<const FRAC: u32>(values: &[f32]) -> Vec<i32> {
    values
        .iter()
        .map(|&v| Fixed::<FRAC>::from_f32(v).raw())
        .collect()
}

/// Reverses [`quantize_f32_slice`].
pub fn dequantize_i32_slice<const FRAC: u32>(raw: &[i32]) -> Vec<f32> {
    raw.iter()
        .map(|&r| Fixed::<FRAC>::from_raw(r).to_f32())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants() {
        assert_eq!(Fixed32::ONE.to_f64(), 1.0);
        assert_eq!(Fixed32::ZERO.to_f64(), 0.0);
        assert!((Fixed32::EPSILON - 1.0 / 65536.0).abs() < 1e-12);
    }

    #[test]
    fn conversion_round_trip_within_epsilon() {
        for v in [-100.5, -0.25, 0.0, 0.1, 3.25, 1000.75] {
            let f = Fixed32::from_f64(v);
            assert!(
                (f.to_f64() - v).abs() <= Fixed32::EPSILON / 2.0 + 1e-12,
                "{v}"
            );
        }
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(Fixed32::from_f64(1e12).raw(), i32::MAX);
        assert_eq!(Fixed32::from_f64(-1e12).raw(), i32::MIN);
    }

    #[test]
    fn multiplication_rescales() {
        let a = Fixed32::from_f64(1.5);
        let b = Fixed32::from_f64(2.0);
        assert_eq!((a * b).to_f64(), 3.0);
        let half = Fixed32::from_f64(0.5);
        assert_eq!((half * half).to_f64(), 0.25);
    }

    #[test]
    fn negation_and_subtraction() {
        let a = Fixed32::from_f64(2.5);
        assert_eq!((-a).to_f64(), -2.5);
        assert_eq!((a - a).to_f64(), 0.0);
    }

    #[test]
    fn slice_round_trip() {
        let vals = vec![0.0f32, -1.5, 2.25, 100.0];
        let raw = quantize_f32_slice::<16>(&vals);
        let back = dequantize_i32_slice::<16>(&raw);
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() <= Fixed32::EPSILON as f32);
        }
    }

    proptest! {
        #[test]
        fn add_matches_f64_within_error(a in -1e4f64..1e4, b in -1e4f64..1e4) {
            let fa = Fixed32::from_f64(a);
            let fb = Fixed32::from_f64(b);
            prop_assert!(((fa + fb).to_f64() - (a + b)).abs() <= Fixed32::EPSILON * 1.5);
        }

        #[test]
        fn mul_matches_f64_within_error(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let fa = Fixed32::from_f64(a);
            let fb = Fixed32::from_f64(b);
            // Error bound: rounding of inputs propagates through the product.
            let bound = Fixed32::EPSILON * (a.abs() + b.abs() + 2.0);
            prop_assert!(((fa * fb).to_f64() - a * b).abs() <= bound);
        }

        #[test]
        fn raw_round_trip(raw in any::<i32>()) {
            prop_assert_eq!(Fixed32::from_raw(raw).raw(), raw);
        }
    }
}
