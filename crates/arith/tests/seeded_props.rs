//! Seeded property-based differential tests for the arithmetic substrates.
//!
//! A pure-std SplitMix64 generator drives every case, so there is no
//! dependency on an external PRNG crate and a failing run replays exactly:
//! **every assertion message carries the master seed** (override it with
//! `SECNDP_PROP_SEED=<n>` to reproduce a reported failure verbatim).
//!
//! The properties are differential where possible: the ring share
//! arithmetic is checked against plain wrapping integer arithmetic, the
//! quantizers against a plain f32 reference, the field against its own
//! axioms — the same oracle style the chaos harness uses end to end.

use secndp_arith::fixed::{dequantize_i32_slice, quantize_f32_slice, Fixed32};
use secndp_arith::mersenne::{Fq, Q};
use secndp_arith::quant::{Granularity, Quantized8};
use secndp_arith::ring::{
    add_elementwise, sub_elementwise, weighted_sum, words_from_le_bytes, words_to_le_bytes,
    RingWord,
};

/// SplitMix64 — identical constants to `secndp_core::fault::SplitMix64`,
/// re-implemented here because integration tests of `secndp-arith` must
/// not depend on a downstream crate.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.next_u64() as f32 / u64::MAX as f32) * (hi - lo)
    }
}

/// The master seed: fixed by default, overridable for replay.
fn master_seed() -> u64 {
    std::env::var("SECNDP_PROP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EC_4D9)
}

/// Boundary values every width-generic ring property also visits: the
/// overflow edges Theorem A.2's verification argument cares about.
fn boundary_values<W: RingWord>() -> Vec<W> {
    vec![
        W::ZERO,
        W::ONE,
        W::from_u64(u64::MAX), // truncates to the width's MAX
        W::from_u64(u64::MAX - 1),
        W::from_u64(1u64 << (W::BITS - 1)), // sign bit alone
        W::from_u64((1u64 << (W::BITS - 1)).wrapping_sub(1)), // signed MAX
    ]
}

/// Core SecNDP identity, differentially against plain wrapping ops:
/// shares `c = p − e` reconstruct (`c + e = p`), and weighted sums
/// distribute over the shares exactly (Algorithm 4's correctness).
fn ring_share_props<W: RingWord>(seed: u64) {
    let mut rng = Rng(seed ^ W::BITS as u64);
    for case in 0..2000 {
        let n = 1 + rng.below(8) as usize;
        let mut plain: Vec<W> = (0..n).map(|_| W::from_u64(rng.next_u64())).collect();
        // Splice boundary values in so edges are hit every run.
        let boundaries = boundary_values::<W>();
        plain[0] = boundaries[case % boundaries.len()];
        let pads: Vec<W> = (0..n).map(|_| W::from_u64(rng.next_u64())).collect();
        let weights: Vec<W> = (0..n).map(|_| W::from_u64(rng.next_u64())).collect();

        let cipher = sub_elementwise(&plain, &pads);
        assert_eq!(
            add_elementwise(&cipher, &pads),
            plain,
            "share reconstruction failed (seed {seed}, width {}, case {case})",
            W::BITS
        );
        // Σ aᵢcᵢ + Σ aᵢeᵢ = Σ aᵢpᵢ in ℤ(2^wₑ).
        let s_c = weighted_sum(&weights, &cipher);
        let s_e = weighted_sum(&weights, &pads);
        let s_p = weighted_sum(&weights, &plain);
        assert_eq!(
            s_c.wadd(s_e),
            s_p,
            "weighted-sum share linearity failed (seed {seed}, width {}, case {case})",
            W::BITS
        );
        // Byte serialization round-trips.
        assert_eq!(
            words_from_le_bytes::<W>(&words_to_le_bytes(&plain)),
            plain,
            "byte round-trip failed (seed {seed}, width {}, case {case})",
            W::BITS
        );
        // Two's-complement embedding: as_i64 → from_i64 is the identity.
        for &x in &plain {
            assert_eq!(
                W::from_i64(x.as_i64()),
                x,
                "i64 round-trip failed for {x:?} (seed {seed}, width {})",
                W::BITS
            );
        }
    }
}

#[test]
fn ring_share_props_all_widths() {
    let seed = master_seed();
    ring_share_props::<u8>(seed);
    ring_share_props::<u16>(seed);
    ring_share_props::<u32>(seed);
    ring_share_props::<u64>(seed);
}

#[test]
fn fixed_point_round_trips_and_saturates() {
    let seed = master_seed();
    let mut rng = Rng(seed ^ 0xF1);
    for case in 0..4000 {
        // Representable range of Q15.16 is ±32768 with 2⁻¹⁶ resolution.
        let v = rng.f32_in(-30_000.0, 30_000.0) as f64;
        let f = Fixed32::from_f64(v);
        assert!(
            (f.to_f64() - v).abs() <= Fixed32::EPSILON / 2.0 + 1e-9,
            "from/to f64 drifted past half a ulp: {v} → {} (seed {seed}, case {case})",
            f.to_f64()
        );
        // Raw bit-pattern round-trip (the pattern that gets encrypted).
        assert_eq!(
            Fixed32::from_raw(f.raw()),
            f,
            "raw round-trip (seed {seed})"
        );
        // Addition is exact in fixed point.
        let w = rng.f32_in(-1_000.0, 1_000.0) as f64;
        let g = Fixed32::from_f64(w);
        assert_eq!(
            (f + g).raw(),
            f.raw().wrapping_add(g.raw()),
            "addition is raw wrapping add (seed {seed}, case {case})"
        );
    }
    // Saturation boundaries: the extremes clamp instead of wrapping.
    assert_eq!(Fixed32::from_f64(1e12).raw(), i32::MAX);
    assert_eq!(Fixed32::from_f64(-1e12).raw(), i32::MIN);
    let big = Fixed32::from_raw(i32::MAX);
    assert_eq!(
        big.saturating_mul(Fixed32::from_f64(4.0)).raw(),
        i32::MAX,
        "saturating_mul must clamp at +MAX (seed {seed})"
    );
    assert_eq!(
        Fixed32::from_raw(i32::MIN)
            .saturating_mul(Fixed32::from_f64(4.0))
            .raw(),
        i32::MIN,
        "saturating_mul must clamp at −MIN (seed {seed})"
    );
}

#[test]
fn fixed_slice_quantization_round_trips() {
    let seed = master_seed();
    let mut rng = Rng(seed ^ 0x51);
    for case in 0..200 {
        let n = 1 + rng.below(64) as usize;
        let values: Vec<f32> = (0..n).map(|_| rng.f32_in(-100.0, 100.0)).collect();
        let raw = quantize_f32_slice::<16>(&values);
        let back = dequantize_i32_slice::<16>(&raw);
        for (i, (&v, &b)) in values.iter().zip(&back).enumerate() {
            assert!(
                (v - b).abs() <= Fixed32::EPSILON as f32,
                "slice quantization drifted: {v} → {b} at {i} (seed {seed}, case {case})"
            );
        }
    }
}

#[test]
fn quantized8_sls_matches_f32_reference() {
    let seed = master_seed();
    let mut rng = Rng(seed ^ 0x08);
    for granularity in [
        Granularity::RowWise,
        Granularity::ColumnWise,
        Granularity::TableWise,
    ] {
        for case in 0..60 {
            let rows = 2 + rng.below(12) as usize;
            let cols = 1 + rng.below(12) as usize;
            let matrix: Vec<f32> = (0..rows * cols).map(|_| rng.f32_in(-8.0, 8.0)).collect();
            let q = Quantized8::quantize(&matrix, rows, cols, granularity);
            // dequantize_at agrees with the bulk dequantizer.
            let dq = q.dequantize();
            for i in 0..rows {
                for j in 0..cols {
                    assert_eq!(
                        q.dequantize_at(i, j),
                        dq[i * cols + j],
                        "dequantize_at disagrees at ({i},{j}) \
                         (seed {seed}, {granularity:?}, case {case})"
                    );
                }
            }
            // Differential: sls over codes == weighted sum of the
            // *dequantized* matrix (the affine-correction identity the
            // SecNDP offload relies on), within f32 accumulation noise.
            let k = 1 + rng.below(6) as usize;
            let indices: Vec<usize> = (0..k).map(|_| rng.below(rows as u64) as usize).collect();
            let weights: Vec<f32> = (0..k).map(|_| rng.f32_in(-4.0, 4.0)).collect();
            let got = q.sls(&indices, &weights);
            for j in 0..cols {
                let want: f32 = indices
                    .iter()
                    .zip(&weights)
                    .map(|(&i, &a)| a * dq[i * cols + j])
                    .sum();
                let tol = 1e-3 * (1.0 + want.abs());
                assert!(
                    (got[j] - want) / (1.0 + want.abs()) < 1e-3
                        && (got[j] - want).abs() <= tol + 1e-3,
                    "sls diverged from reference at col {j}: {} vs {want} \
                     (seed {seed}, {granularity:?}, case {case})",
                    got[j]
                );
            }
        }
    }
}

#[test]
fn mersenne_field_axioms_hold_on_random_and_boundary_values() {
    let seed = master_seed();
    let mut rng = Rng(seed ^ 0xF9);
    let sample = |rng: &mut Rng| Fq::new(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);
    let boundaries = [
        Fq::ZERO,
        Fq::ONE,
        Fq::new(Q - 1),
        Fq::new(Q),     // ≡ 0: the modulus itself reduces
        Fq::new(Q + 1), // ≡ 1
        Fq::new(u128::MAX),
    ];
    for case in 0..2000 {
        let a = if case < boundaries.len() {
            boundaries[case]
        } else {
            sample(&mut rng)
        };
        let b = sample(&mut rng);
        let c = sample(&mut rng);
        assert!(
            a.value() < Q,
            "non-canonical value (seed {seed}, case {case})"
        );
        // Distributivity — what tag linearity (Algorithm 5) rests on.
        assert_eq!(
            (a + b) * c,
            a * c + b * c,
            "distributivity failed (seed {seed}, case {case})"
        );
        // Additive inverse through the ring embedding.
        assert_eq!(
            a + (Fq::ZERO - a),
            Fq::ZERO,
            "additive inverse (seed {seed})"
        );
        // Multiplicative inverse for nonzero elements.
        match a.inv() {
            Some(ai) => assert_eq!(a * ai, Fq::ONE, "inverse failed (seed {seed}, case {case})"),
            None => assert!(a.is_zero(), "only zero lacks an inverse (seed {seed})"),
        }
    }
    assert_eq!(Fq::new(Q), Fq::ZERO);
    assert_eq!(
        Fq::new(Q - 1) + Fq::ONE,
        Fq::ZERO,
        "wraparound at q (seed {seed})"
    );
}
