//! Physical layout of an encrypted table in NDP-attached memory.
//!
//! The paper indexes pads by the *physical byte address* of each cipher
//! block (Alg 1 line 6), so the layout — base address, shape, element width
//! — determines every pad. Rows are stored contiguously, row-major, exactly
//! as an embedding table lives in DRAM.

use crate::error::Error;
use secndp_arith::ring::RingWord;
use secndp_cipher::otp::MAX_ADDR;

/// Shape and placement of an `n × m` matrix of `wₑ`-bit elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableLayout {
    base_addr: u64,
    rows: usize,
    cols: usize,
    elem_bytes: usize,
}

impl TableLayout {
    /// Describes a `rows × cols` table of elements of `W` starting at byte
    /// address `base_addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOverflow`] if the table extent would exceed
    /// the 62-bit address field of the counter block, and
    /// [`Error::ShapeMismatch`] for an empty shape.
    pub fn new<W: RingWord>(base_addr: u64, rows: usize, cols: usize) -> Result<Self, Error> {
        if rows == 0 || cols == 0 {
            return Err(Error::ShapeMismatch {
                got: 0,
                expected: 1,
            });
        }
        let size = (rows as u64)
            .checked_mul(cols as u64)
            .and_then(|e| e.checked_mul(W::BYTES as u64))
            .ok_or(Error::AddressOverflow)?;
        let end = base_addr.checked_add(size).ok_or(Error::AddressOverflow)?;
        if end > MAX_ADDR {
            return Err(Error::AddressOverflow);
        }
        Ok(Self {
            base_addr,
            rows,
            cols,
            elem_bytes: W::BYTES,
        })
    }

    /// Base byte address of the table (`paddr(P)` in the paper).
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Number of rows `n`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `m` (the vector dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element width in bytes (`wₑ / 8`).
    pub fn elem_bytes(&self) -> usize {
        self.elem_bytes
    }

    /// Bytes in one row.
    pub fn row_bytes(&self) -> usize {
        self.cols * self.elem_bytes
    }

    /// Total table size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.rows * self.row_bytes()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True iff the table has no elements (never true for a constructed
    /// layout).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Byte address of row `i` (`paddr(P_i)`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_addr(&self, i: usize) -> u64 {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        self.base_addr + (i * self.row_bytes()) as u64
    }

    /// Byte address of element `(i, j)` (`paddr(P_{i,j})`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn element_addr(&self, i: usize, j: usize) -> u64 {
        assert!(j < self.cols, "col {j} out of bounds ({} cols)", self.cols);
        self.row_addr(i) + (j * self.elem_bytes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing_is_row_major() {
        let l = TableLayout::new::<u32>(0x1000, 4, 8).unwrap();
        assert_eq!(l.row_bytes(), 32);
        assert_eq!(l.row_addr(0), 0x1000);
        assert_eq!(l.row_addr(1), 0x1020);
        assert_eq!(l.element_addr(1, 2), 0x1028);
        assert_eq!(l.size_bytes(), 128);
        assert_eq!(l.len(), 32);
        assert!(!l.is_empty());
    }

    #[test]
    fn eight_bit_elements() {
        let l = TableLayout::new::<u8>(0, 2, 3).unwrap();
        assert_eq!(l.elem_bytes(), 1);
        assert_eq!(l.element_addr(1, 1), 4);
    }

    #[test]
    fn extent_overflow_rejected() {
        assert_eq!(
            TableLayout::new::<u64>(MAX_ADDR - 8, 2, 2),
            Err(Error::AddressOverflow)
        );
    }

    #[test]
    fn empty_shape_rejected() {
        assert!(TableLayout::new::<u32>(0, 0, 4).is_err());
        assert!(TableLayout::new::<u32>(0, 4, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_bounds_checked() {
        TableLayout::new::<u32>(0, 2, 2).unwrap().row_addr(2);
    }
}
