//! Linear modular checksums over 𝔽_q (Algorithm 2 and the Appendix-D
//! variant, Algorithm 8).
//!
//! The checksum of a row `Pᵢ = (P_{i,0}, …, P_{i,m−1})` is the polynomial
//! `Tᵢ = Σ_j P_{i,j} · s^(m−j) mod q` evaluated at a secret point `s`
//! derived from the block cipher (`E(K, 01 ‖ paddr(P) ‖ v)`). Two properties
//! make it the right MAC for SecNDP:
//!
//! - **Almost-universality**: a forger who does not know `s` succeeds with
//!   probability at most `m/q` (a degree-`m` polynomial has at most `m`
//!   roots) — Theorem A.4.
//! - **Linearity**: `h(Σ aₖ Pₖ) = Σ aₖ h(Pₖ)`, so the NDP can combine
//!   *encrypted* tags with the same weights it applies to data.
//!
//! Appendix D's Algorithm 8 strengthens the bound to `m/(cnt_s · q)` by
//! using `cnt_s` independent secrets round-robin across coefficients, which
//! divides the polynomial degree per secret. The paper slices the secrets
//! out of one cipher block; since our `w_t = 127` fills the block, we derive
//! each extra secret from its own cipher call, tweaking the version field's
//! top byte (documented substitution — the secrets stay independent
//! pseudo-random values, which is all the proof uses).

use secndp_arith::mersenne::Fq;
use secndp_arith::ring::RingWord;
use secndp_cipher::aes::BlockCipher;
use secndp_cipher::otp::{Domain, OtpGenerator, PadPlanner, PadRange};

/// Which checksum construction to use for verification tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChecksumScheme {
    /// Algorithm 2: a single secret `s`, forgery bound `m/q`.
    #[default]
    SingleS,
    /// Algorithm 8: `cnt` secrets used round-robin, forgery bound
    /// `m/(cnt · q)`.
    MultiS {
        /// Number of independent secrets (`cnt_s` in the paper).
        cnt: usize,
    },
}

impl ChecksumScheme {
    /// Number of secret points this scheme evaluates at.
    pub fn num_secrets(self) -> usize {
        match self {
            ChecksumScheme::SingleS => 1,
            ChecksumScheme::MultiS { cnt } => cnt.max(1),
        }
    }

    /// The forgery probability bound `m / (cnt_s · q)` numerator scale —
    /// i.e. the effective polynomial degree for a row of `m` columns.
    pub fn effective_degree(self, m: usize) -> usize {
        m.div_ceil(self.num_secrets())
    }

    /// Stable scheme name for telemetry and audit records.
    pub fn name(self) -> &'static str {
        match self {
            ChecksumScheme::SingleS => "single_s",
            ChecksumScheme::MultiS { .. } => "multi_s",
        }
    }
}

/// Derives the checksum secrets for a table at `table_addr` under `version`.
///
/// Secret `k` is the first 127 bits of
/// `E(K, 01 ‖ table_addr ‖ (version | k·2⁵⁶))`; `k = 0` reproduces
/// Algorithm 2's `s` exactly.
///
/// # Panics
///
/// Panics if `version` uses the top byte (reserved for the secret index).
pub fn derive_secrets<C: BlockCipher>(
    otp: &OtpGenerator<C>,
    table_addr: u64,
    version: u64,
    scheme: ChecksumScheme,
) -> Vec<Fq> {
    assert_eq!(
        version >> 56,
        0,
        "top version byte reserved for multi-s index"
    );
    (0..scheme.num_secrets())
        .map(|k| {
            let tweaked = version | ((k as u64) << 56);
            Fq::new(otp.checksum_secret(table_addr, tweaked))
        })
        .collect()
}

/// Plans the cipher blocks behind [`derive_secrets`] on a [`PadPlanner`]
/// without executing them, so secret derivation can share one batched
/// (and pad-cache-probed) `execute` with the query's data and tag pads.
///
/// Returns one [`PadRange`] per secret; pass them to [`secrets_from_plan`]
/// after the planner has executed.
///
/// # Panics
///
/// Panics if `version` uses the top byte (reserved for the secret index).
pub fn plan_secrets(
    planner: &mut PadPlanner,
    table_addr: u64,
    version: u64,
    scheme: ChecksumScheme,
) -> Vec<PadRange> {
    assert_eq!(
        version >> 56,
        0,
        "top version byte reserved for multi-s index"
    );
    (0..scheme.num_secrets())
        .map(|k| {
            let tweaked = version | ((k as u64) << 56);
            planner.request_block(Domain::ChecksumSecret, table_addr, tweaked)
        })
        .collect()
}

/// Resolves the secrets planned by [`plan_secrets`] from an executed
/// planner. Produces exactly the same field elements as [`derive_secrets`]
/// for the same `(table_addr, version, scheme)`.
pub fn secrets_from_plan(planner: &PadPlanner, ranges: &[PadRange]) -> Vec<Fq> {
    ranges
        .iter()
        .map(|r| Fq::new(planner.pad_first_127_bits(r)))
        .collect()
}

/// Computes the row checksum `Tᵢ` (Algorithm 2 for one secret, Algorithm 8
/// for several).
///
/// Elements are embedded into 𝔽_q as their *unsigned* residues — the same
/// convention Theorem A.2's overflow analysis uses.
///
/// # Panics
///
/// Panics if `secrets.len()` does not match a supported scheme (must be
/// ≥ 1).
pub fn row_checksum<W: RingWord>(row: &[W], secrets: &[Fq]) -> Fq {
    assert!(!secrets.is_empty(), "need at least one checksum secret");
    let m = row.len();
    if secrets.len() == 1 {
        // Horner form of Σ_j P_j · s^(m−j).
        let s = secrets[0];
        let mut acc = Fq::ZERO;
        for &p in row {
            acc = acc * s + Fq::new(p.as_u128());
        }
        return acc * s;
    }
    // Multi-secret: coefficient j pairs with s_{(m−j) mod cnt}^{⌊(m−j)/cnt⌋}.
    let cnt = secrets.len();
    let mut acc = Fq::ZERO;
    for (j, &p) in row.iter().enumerate() {
        let e = m - j; // exponent index (m−j), ranges m..1
        let s = secrets[e % cnt];
        acc += Fq::new(p.as_u128()) * s.pow((e / cnt) as u128);
    }
    acc
}

/// Weighted combination of checksums: `Σₖ aₖ · Tₖ mod q` with weights
/// embedded as unsigned residues. This is what the verification engine
/// computes on the reconstructed tags (Alg 5 line 14/15 shape).
pub fn combine_weighted<W: RingWord>(weights: &[W], tags: &[Fq]) -> Fq {
    debug_assert_eq!(weights.len(), tags.len());
    weights
        .iter()
        .zip(tags)
        .map(|(&a, &t)| Fq::new(a.as_u128()) * t)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use secndp_arith::ring::weighted_sum;

    use secndp_cipher::aes::Aes128;

    fn otp() -> OtpGenerator<Aes128> {
        OtpGenerator::new(Aes128::new(&[0x42; 16]))
    }

    #[test]
    fn single_s_matches_naive_polynomial() {
        let row = [3u32, 1, 4, 1, 5];
        let s = Fq::new(0xdead_beef_cafe);
        let m = row.len() as u128;
        let naive: Fq = row
            .iter()
            .enumerate()
            .map(|(j, &p)| Fq::new(p as u128) * s.pow(m - j as u128))
            .sum();
        assert_eq!(row_checksum(&row, &[s]), naive);
    }

    #[test]
    fn multi_s_matches_alg8_formula() {
        let row = [7u32, 11, 13, 17, 19, 23];
        let secrets = [Fq::new(123), Fq::new(456), Fq::new(789)];
        let m = row.len();
        let cnt = secrets.len();
        let naive: Fq = row
            .iter()
            .enumerate()
            .map(|(j, &p)| {
                let e = m - j;
                Fq::new(p as u128) * secrets[e % cnt].pow((e / cnt) as u128)
            })
            .sum();
        assert_eq!(row_checksum(&row, &secrets), naive);
    }

    #[test]
    fn secrets_differ_per_index_address_version() {
        let g = otp();
        let multi = derive_secrets(&g, 0x100, 3, ChecksumScheme::MultiS { cnt: 3 });
        assert_eq!(multi.len(), 3);
        assert_ne!(multi[0], multi[1]);
        assert_ne!(multi[1], multi[2]);
        let single = derive_secrets(&g, 0x100, 3, ChecksumScheme::SingleS);
        // k = 0 of multi-s reproduces Algorithm 2's secret.
        assert_eq!(single[0], multi[0]);
        assert_ne!(
            derive_secrets(&g, 0x200, 3, ChecksumScheme::SingleS),
            single
        );
        assert_ne!(
            derive_secrets(&g, 0x100, 4, ChecksumScheme::SingleS),
            single
        );
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn huge_version_rejected() {
        derive_secrets(&otp(), 0, 1 << 60, ChecksumScheme::SingleS);
    }

    #[test]
    fn planned_secrets_match_derive_secrets() {
        let g = otp();
        for scheme in [ChecksumScheme::SingleS, ChecksumScheme::MultiS { cnt: 3 }] {
            let mut p = PadPlanner::new();
            let ranges = plan_secrets(&mut p, 0x3000, 9, scheme);
            p.execute(g.cipher());
            assert_eq!(
                secrets_from_plan(&p, &ranges),
                derive_secrets(&g, 0x3000, 9, scheme)
            );
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn plan_secrets_rejects_huge_version() {
        plan_secrets(&mut PadPlanner::new(), 0, 1 << 60, ChecksumScheme::SingleS);
    }

    #[test]
    fn effective_degree_shrinks_with_secrets() {
        assert_eq!(ChecksumScheme::SingleS.effective_degree(1024), 1024);
        assert_eq!(
            ChecksumScheme::MultiS { cnt: 4 }.effective_degree(1024),
            256
        );
    }

    #[test]
    fn trailing_zero_changes_checksum() {
        // Because coefficient j pairs with s^(m−j), appending a zero shifts
        // all powers: h([1]) ≠ h([1, 0]). This defeats length-extension.
        let s = [Fq::new(99999)];
        assert_ne!(row_checksum(&[1u32], &s), row_checksum(&[1u32, 0], &s));
    }

    proptest! {
        /// The linearity property Theorem A.2 relies on:
        /// h(Σ aₖ Pₖ) ≡ Σ aₖ h(Pₖ) whenever no ring overflow occurs.
        /// We test it in the field (no mod-2^wₑ reduction): weighted sums of
        /// small values with small weights never overflow u32.
        #[test]
        fn checksum_commutes_with_weighted_sum(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..1000, 8), 1..6),
            weights_raw in proptest::collection::vec(0u32..100, 6),
            s_seed in any::<u128>(),
            cnt in 1usize..4,
        ) {
            let n = rows.len();
            let weights = &weights_raw[..n];
            let secrets: Vec<Fq> = (0..cnt)
                .map(|k| Fq::new(s_seed.wrapping_add(k as u128 * 0x1234_5678_9abc)))
                .collect();
            // Element-wise weighted sum (no overflow: < 6·1000·100 < 2^32).
            let m = rows[0].len();
            let mut res = vec![0u32; m];
            for j in 0..m {
                let col: Vec<u32> = rows.iter().map(|r| r[j]).collect();
                res[j] = weighted_sum(weights, &col);
            }
            let lhs = row_checksum(&res, &secrets);
            let tags: Vec<Fq> = rows.iter().map(|r| row_checksum(r, &secrets)).collect();
            let rhs = combine_weighted(weights, &tags);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
