//! Deterministic fault injection: the chaos harness's ground layer.
//!
//! SecNDP's safety argument (paper §II, Theorems 2/A.4) is conditional:
//! *whatever* the untrusted device does, the trusted side either gets the
//! correct result or a verification failure. The unit adversaries in
//! [`device`](crate::device) each probe one attack; this module turns the
//! argument into a **soak-testable invariant** — schedule a randomized mix
//! of faults against real queries (including under the concurrent
//! [`AsyncEndpoint`](crate::transport::AsyncEndpoint) path) and prove that
//! every injected fault was either
//!
//! - **masked**: the query still returned the correct, verified result
//!   (retries, replication or fault-free luck absorbed it), or
//! - **detected**: the query failed with a typed error, and — for
//!   integrity-class errors — an audit event in the *same trace*.
//!
//! Anything else is a **silent corruption**: the invariant the whole
//! scheme exists to rule out.
//!
//! # Determinism
//!
//! Everything is driven by a [`FaultPlan`] seeded [SplitMix64] generator —
//! no wall clock, no OS entropy. `fault_for(op)` is a *pure function* of
//! `(seed, op)`, so a failing run's seed replays the identical fault
//! schedule, and violations print the seed plus the schedule for
//! one-command reproduction.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Pieces
//!
//! - [`FaultPlan`] — pure seeded schedule: which op gets which
//!   [`FaultKind`] on which rank.
//! - [`FaultInjector`] — the armed-fault mailbox shared between the
//!   harness (which arms) and the injection sites (which consume by
//!   [`FaultClass`] and journal to the telemetry
//!   [fault log](secndp_telemetry::faultlog)).
//! - [`FaultyNdp`] — a device wrapper landing data-class faults inside
//!   the serve path, with stale-image tracking for replay attacks.
//! - [`InvariantChecker`] — reconciles the fault journal against query
//!   outcomes and the audit log into an [`InvariantReport`].
//!
//! Frame-class faults (drops, duplicates, stalls, crashes…) are landed by
//! the transport worker loop itself — see
//! [`AsyncEndpoint::new_with_faults`](crate::transport::AsyncEndpoint::new_with_faults)
//! — so they hit under real submit/poll/wait concurrency.

use crate::device::{HonestNdp, NdpDevice, NdpResponse};
use crate::error::Error;
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::RingWord;
use secndp_telemetry::audit::AuditEvent;
use secndp_telemetry::faultlog::{fault_log, FaultRecord};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Weyl-sequence increment shared by SplitMix64 and the repo's jitter
/// decorrelation constant.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 generator: tiny, seedable, full-period, and — unlike
/// `rand` — dependency-free. Used for every scheduling decision so runs
/// replay exactly from their seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose whole output stream is a function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction: biased by < 2⁻⁴⁰ for our tiny bounds,
        // and branch-free — determinism matters here, statistics do not.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Which layer of the stack an injected fault lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Device-computation faults, applied by [`FaultyNdp`] inside the
    /// serve path (bit flips, swaps, stale replays…).
    Data,
    /// Transport-frame faults, applied by the endpoint's worker loop
    /// (drops, duplicates, stalls, crashes…).
    Frame,
    /// Trusted-side faults, applied by the harness itself (pad-cache
    /// corruption).
    Host,
}

/// One kind of injectable fault, with its materialized parameters.
///
/// Each variant maps to a concrete adversary from the paper's threat
/// model (or, for [`CorruptPadCache`](Self::CorruptPadCache), a
/// trusted-side SRAM failure the verification scheme happens to cover) —
/// see `DESIGN.md` § Fault injection & chaos for the full mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of one element of the weighted-sum response (or one
    /// bit of one byte of a row read) — a Trojan corrupting results.
    FlipResponseBit {
        /// Element (or byte) index, reduced mod the response length.
        element: u32,
        /// Bit to flip, reduced mod the element width.
        bit: u32,
    },
    /// Substitute a different row for the first requested index — the
    /// "copy valid ciphertext from another address" attack.
    SwapValue {
        /// Row-index offset added mod the table's row count (≥ 1).
        offset: u32,
    },
    /// Return the correct result with a forged combined tag.
    SwapTag,
    /// Serve the query from the table image *before* the latest load —
    /// a stale-version replay against the OTP versioning scheme.
    ReplayStale,
    /// Return all-zero results (lazy / denial-of-quality device).
    ZeroResult,
    /// Never complete the reply frame — the request must time out.
    DropReply,
    /// Complete the reply twice; the second must be dropped as a late
    /// completion, never double-settled.
    DuplicateReply,
    /// Complete the reply only after `delay_ms` — past the deadline, so a
    /// retry races the straggler.
    LateReply {
        /// Sleep before completing, in milliseconds.
        delay_ms: u32,
    },
    /// XOR the first byte of the encoded reply — an undecodable frame.
    MalformedReply {
        /// Nonzero mask XORed into the reply's first byte.
        mask: u8,
    },
    /// Hold the frame busy for `stall_ms` before serving — long enough to
    /// trip the health monitor's stall detector, short enough to recover.
    RankStall {
        /// Busy-sleep before serving, in milliseconds.
        stall_ms: u32,
    },
    /// The rank's worker exits without replying and never comes back.
    RankCrash,
    /// XOR a mask into a cached OTP pad on the *trusted* side.
    CorruptPadCache {
        /// Nonzero mask XORed into every byte of the cached pad.
        mask: u8,
    },
}

impl FaultKind {
    /// Static snake-case name, journaled with every injection.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::FlipResponseBit { .. } => "flip_response_bit",
            FaultKind::SwapValue { .. } => "swap_value",
            FaultKind::SwapTag => "swap_tag",
            FaultKind::ReplayStale => "replay_stale",
            FaultKind::ZeroResult => "zero_result",
            FaultKind::DropReply => "drop_reply",
            FaultKind::DuplicateReply => "duplicate_reply",
            FaultKind::LateReply { .. } => "late_reply",
            FaultKind::MalformedReply { .. } => "malformed_reply",
            FaultKind::RankStall { .. } => "rank_stall",
            FaultKind::RankCrash => "rank_crash",
            FaultKind::CorruptPadCache { .. } => "corrupt_pad_cache",
        }
    }

    /// The stack layer this fault is injected at.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::FlipResponseBit { .. }
            | FaultKind::SwapValue { .. }
            | FaultKind::SwapTag
            | FaultKind::ReplayStale
            | FaultKind::ZeroResult => FaultClass::Data,
            FaultKind::DropReply
            | FaultKind::DuplicateReply
            | FaultKind::LateReply { .. }
            | FaultKind::MalformedReply { .. }
            | FaultKind::RankStall { .. }
            | FaultKind::RankCrash => FaultClass::Frame,
            FaultKind::CorruptPadCache { .. } => FaultClass::Host,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::FlipResponseBit { element, bit } => {
                write!(f, "flip_response_bit(element={element},bit={bit})")
            }
            FaultKind::SwapValue { offset } => write!(f, "swap_value(offset={offset})"),
            FaultKind::LateReply { delay_ms } => write!(f, "late_reply(delay_ms={delay_ms})"),
            FaultKind::MalformedReply { mask } => write!(f, "malformed_reply(mask={mask:#04x})"),
            FaultKind::RankStall { stall_ms } => write!(f, "rank_stall(stall_ms={stall_ms})"),
            FaultKind::CorruptPadCache { mask } => {
                write!(f, "corrupt_pad_cache(mask={mask:#04x})")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// A parameter-free fault selector — the unit of the plan's kind mix and
/// of the `SECNDP_FAULT_KINDS` environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSel {
    /// → [`FaultKind::FlipResponseBit`]
    Flip,
    /// → [`FaultKind::SwapValue`]
    Swap,
    /// → [`FaultKind::SwapTag`]
    SwapTag,
    /// → [`FaultKind::ReplayStale`]
    Stale,
    /// → [`FaultKind::ZeroResult`]
    Zero,
    /// → [`FaultKind::DropReply`]
    Drop,
    /// → [`FaultKind::DuplicateReply`]
    Duplicate,
    /// → [`FaultKind::LateReply`]
    Late,
    /// → [`FaultKind::MalformedReply`]
    Malformed,
    /// → [`FaultKind::RankStall`]
    Stall,
    /// → [`FaultKind::RankCrash`]
    Crash,
    /// → [`FaultKind::CorruptPadCache`]
    PadCache,
}

impl FaultSel {
    /// Every selector, in the canonical order the plan indexes into.
    pub const ALL: &'static [FaultSel] = &[
        FaultSel::Flip,
        FaultSel::Swap,
        FaultSel::SwapTag,
        FaultSel::Stale,
        FaultSel::Zero,
        FaultSel::Drop,
        FaultSel::Duplicate,
        FaultSel::Late,
        FaultSel::Malformed,
        FaultSel::Stall,
        FaultSel::Crash,
        FaultSel::PadCache,
    ];

    /// Parses one `SECNDP_FAULT_KINDS` entry (the snake-case
    /// [`FaultKind::name`] strings).
    pub fn parse(s: &str) -> Option<FaultSel> {
        match s.trim() {
            "flip_response_bit" => Some(FaultSel::Flip),
            "swap_value" => Some(FaultSel::Swap),
            "swap_tag" => Some(FaultSel::SwapTag),
            "replay_stale" => Some(FaultSel::Stale),
            "zero_result" => Some(FaultSel::Zero),
            "drop_reply" => Some(FaultSel::Drop),
            "duplicate_reply" => Some(FaultSel::Duplicate),
            "late_reply" => Some(FaultSel::Late),
            "malformed_reply" => Some(FaultSel::Malformed),
            "rank_stall" => Some(FaultSel::Stall),
            "rank_crash" => Some(FaultSel::Crash),
            "corrupt_pad_cache" => Some(FaultSel::PadCache),
            _ => None,
        }
    }
}

/// One scheduled fault: which op, which rank the plan *suggested*, and the
/// fully materialized kind. The rank is advisory — the consuming site
/// journals the rank the fault actually landed on, since the transport's
/// round-robin decides which rank serves an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Harness-assigned operation index.
    pub op: u64,
    /// Rank the plan drew (informational; see above).
    pub rank: u32,
    /// The materialized fault.
    pub kind: FaultKind,
}

impl std::fmt::Display for PlannedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op={} rank={} kind={}", self.op, self.rank, self.kind)
    }
}

/// A pure, seeded fault schedule: `fault_for(op)` depends only on
/// `(plan, op)`, never on wall clock or prior calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed; the whole schedule is a function of it.
    pub seed: u64,
    /// Injection probability per op, in permille (0 = never, 1000 =
    /// every op).
    pub rate_permille: u32,
    /// Kinds the plan draws from, uniformly.
    pub mix: Vec<FaultSel>,
    /// Ranks the plan draws the (advisory) landing rank from.
    pub ranks: u32,
    /// `delay_ms` for [`FaultKind::LateReply`].
    pub late_ms: u32,
    /// `stall_ms` for [`FaultKind::RankStall`].
    pub stall_ms: u32,
}

impl FaultPlan {
    /// A plan with the full kind mix and the soak defaults: 8 ‰ rate,
    /// late replies past a 150 ms deadline, stalls past a 40 ms grace but
    /// under the deadline.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rate_permille: 8,
            mix: FaultSel::ALL.to_vec(),
            ranks: 1,
            late_ms: 350,
            stall_ms: 60,
        }
    }

    /// Overrides from the environment: `SECNDP_FAULT_SEED`,
    /// `SECNDP_FAULT_RATE` (permille), `SECNDP_FAULT_KINDS`
    /// (comma-separated [`FaultKind::name`]s; unknown names are ignored),
    /// `SECNDP_FAULT_LATE_MS`, `SECNDP_FAULT_STALL_MS`.
    pub fn from_env(seed_default: u64) -> Self {
        fn parse<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let mut plan = Self::new(parse("SECNDP_FAULT_SEED", seed_default));
        plan.rate_permille = parse("SECNDP_FAULT_RATE", plan.rate_permille).min(1000);
        plan.late_ms = parse("SECNDP_FAULT_LATE_MS", plan.late_ms);
        plan.stall_ms = parse("SECNDP_FAULT_STALL_MS", plan.stall_ms);
        if let Ok(kinds) = std::env::var("SECNDP_FAULT_KINDS") {
            let mix: Vec<FaultSel> = kinds.split(',').filter_map(FaultSel::parse).collect();
            if !mix.is_empty() {
                plan.mix = mix;
            }
        }
        plan
    }

    /// The fault (if any) scheduled for operation `op` — a pure function
    /// of `(self, op)`.
    pub fn fault_for(&self, op: u64) -> Option<PlannedFault> {
        if self.rate_permille == 0 || self.mix.is_empty() {
            return None;
        }
        // Per-op generator: decorrelate ops by folding the op index into
        // the seed, so the schedule is random-access (pure), not a stream.
        let mut rng = SplitMix64::new(self.seed ^ op.wrapping_mul(GOLDEN).wrapping_add(op));
        if rng.below(1000) >= self.rate_permille as u64 {
            return None;
        }
        let sel = self.mix[rng.below(self.mix.len() as u64) as usize];
        let rank = rng.below(self.ranks.max(1) as u64) as u32;
        let kind = match sel {
            FaultSel::Flip => FaultKind::FlipResponseBit {
                element: rng.below(64) as u32,
                bit: rng.below(64) as u32,
            },
            FaultSel::Swap => FaultKind::SwapValue {
                offset: 1 + rng.below(7) as u32,
            },
            FaultSel::SwapTag => FaultKind::SwapTag,
            FaultSel::Stale => FaultKind::ReplayStale,
            FaultSel::Zero => FaultKind::ZeroResult,
            FaultSel::Drop => FaultKind::DropReply,
            FaultSel::Duplicate => FaultKind::DuplicateReply,
            FaultSel::Late => FaultKind::LateReply {
                delay_ms: self.late_ms,
            },
            FaultSel::Malformed => FaultKind::MalformedReply {
                mask: 1 << rng.below(8),
            },
            FaultSel::Stall => FaultKind::RankStall {
                stall_ms: self.stall_ms,
            },
            FaultSel::Crash => FaultKind::RankCrash,
            FaultSel::PadCache => FaultKind::CorruptPadCache {
                mask: 1 + rng.below(255) as u8,
            },
        };
        Some(PlannedFault { op, rank, kind })
    }

    /// The full schedule for ops `0..ops`.
    pub fn schedule(&self, ops: u64) -> Vec<PlannedFault> {
        (0..ops).filter_map(|op| self.fault_for(op)).collect()
    }

    /// Human-readable schedule dump, printed when the invariant is
    /// violated so one command replays the exact run.
    pub fn render_schedule(&self, ops: u64) -> String {
        let mut out = format!(
            "fault schedule: seed={} rate={}permille ops={ops}\n",
            self.seed, self.rate_permille
        );
        for f in self.schedule(ops) {
            out.push_str(&format!("  {f}\n"));
        }
        out
    }
}

/// The armed-fault mailbox between the harness and the injection sites.
///
/// The harness arms at most one [`PlannedFault`] before issuing the op it
/// is scheduled for; whichever injection site of the matching
/// [`FaultClass`] serves that op consumes it with [`take`](Self::take)
/// and journals it (exactly once) via [`journal`](Self::journal). Faults
/// are journaled at *consumption* time: an armed fault that never fires
/// (e.g. the op errored before reaching the device) is simply
/// [`disarm`](Self::disarm)ed and never counted, so the checker only
/// reconciles faults that actually landed.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: Mutex<Option<PlannedFault>>,
    injected: AtomicU64,
}

impl FaultInjector {
    /// A mailbox with nothing armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `fault` for the next matching injection site, replacing any
    /// previously armed fault.
    pub fn arm(&self, fault: PlannedFault) {
        *self.armed.lock().unwrap() = Some(fault);
    }

    /// Removes and returns the armed fault without consuming it as an
    /// injection.
    pub fn disarm(&self) -> Option<PlannedFault> {
        self.armed.lock().unwrap().take()
    }

    /// Consumes the armed fault if its class matches the calling site.
    pub fn take(&self, class: FaultClass) -> Option<PlannedFault> {
        let mut armed = self.armed.lock().unwrap();
        if armed.map(|f| f.kind.class()) == Some(class) {
            armed.take()
        } else {
            None
        }
    }

    /// Journals a consumed fault to the process-wide
    /// [fault log](secndp_telemetry::faultlog::fault_log) with the rank it
    /// actually landed on, and bumps `secndp_faults_injected_total`.
    ///
    /// `trace_override` carries the trace id recovered from the request
    /// frame when the site has no ambient span (the transport worker
    /// outside `ndp_serve`).
    pub fn journal(
        &self,
        fault: &PlannedFault,
        actual_rank: u32,
        detail: &'static str,
        trace_override: Option<u64>,
    ) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        secndp_telemetry::global()
            .counter(
                "secndp_faults_injected_total",
                &[("kind", fault.kind.name())],
                "Faults injected by the chaos harness.",
            )
            .inc();
        fault_log().record(
            fault.op,
            actual_rank,
            fault.kind.name(),
            detail,
            trace_override,
        );
    }

    /// Faults journaled through this injector so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// A retained copy of one loaded table, for stale-replay faults.
#[derive(Debug, Clone)]
struct TableImage {
    data: Vec<u8>,
    row_bytes: usize,
    tags: Option<Vec<Fq>>,
}

impl TableImage {
    fn rows(&self) -> usize {
        self.data.len().checked_div(self.row_bytes).unwrap_or(0)
    }

    /// A throwaway honest device serving exactly this image.
    fn as_device(&self, table_addr: u64) -> Result<HonestNdp, Error> {
        let mut d = HonestNdp::new();
        d.load(
            table_addr,
            self.data.clone(),
            self.row_bytes,
            self.tags.clone(),
        )?;
        Ok(d)
    }
}

/// A device wrapper that lands **data-class** faults inside the serve
/// path: bit flips, value/tag swaps, zeroed results, and stale-version
/// replays (it retains the previous image of every reloaded table).
///
/// Wrap one per rank around the real device and hand the fleet to
/// [`AsyncEndpoint::new_with_faults`](crate::transport::AsyncEndpoint::new_with_faults)
/// so faults land under real concurrency; the shared [`FaultInjector`]
/// decides which op is hit. With nothing armed the wrapper is a pure
/// pass-through.
#[derive(Debug)]
pub struct FaultyNdp<D> {
    inner: D,
    injector: Arc<FaultInjector>,
    rank: u32,
    current: Mutex<HashMap<u64, TableImage>>,
    stale: Mutex<HashMap<u64, TableImage>>,
}

impl<D: NdpDevice> FaultyNdp<D> {
    /// Wraps `inner` as rank `rank`, consuming faults from `injector`.
    pub fn new(inner: D, injector: Arc<FaultInjector>, rank: u32) -> Self {
        Self {
            inner,
            injector,
            rank,
            current: Mutex::new(HashMap::new()),
            stale: Mutex::new(HashMap::new()),
        }
    }

    /// The rank this wrapper journals injections under.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The shared injector.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    fn journal(&self, fault: &PlannedFault, detail: &'static str) {
        self.injector.journal(fault, self.rank, detail, None);
    }

    /// Rows of the currently loaded image at `table_addr`, if tracked.
    fn current_rows(&self, table_addr: u64) -> Option<usize> {
        self.current
            .lock()
            .unwrap()
            .get(&table_addr)
            .map(|img| img.rows())
    }
}

impl<D: NdpDevice + Clone> FaultyNdp<D> {
    /// A fleet of `ranks` wrappers around clones of `device`, all
    /// consuming from one shared injector — the input to
    /// [`AsyncEndpoint::new_with_faults`](crate::transport::AsyncEndpoint::new_with_faults).
    pub fn fleet(device: D, ranks: usize, injector: Arc<FaultInjector>) -> Vec<Self> {
        (0..ranks.max(1))
            .map(|rank| Self::new(device.clone(), Arc::clone(&injector), rank as u32))
            .collect()
    }
}

impl<D: NdpDevice> NdpDevice for FaultyNdp<D> {
    fn load(
        &mut self,
        table_addr: u64,
        ciphertext: Vec<u8>,
        row_bytes: usize,
        tags: Option<Vec<Fq>>,
    ) -> Result<(), Error> {
        let image = TableImage {
            data: ciphertext.clone(),
            row_bytes,
            tags: tags.clone(),
        };
        self.inner.load(table_addr, ciphertext, row_bytes, tags)?;
        // Only successful loads rotate the image history: the previous
        // image becomes the stale-replay source.
        let mut current = self.current.lock().unwrap();
        if let Some(prev) = current.insert(table_addr, image) {
            self.stale.lock().unwrap().insert(table_addr, prev);
        }
        Ok(())
    }

    fn weighted_sum<W: RingWord>(
        &self,
        table_addr: u64,
        indices: &[usize],
        weights: &[W],
        with_tag: bool,
    ) -> Result<NdpResponse<W>, Error> {
        let Some(fault) = self.injector.take(FaultClass::Data) else {
            return self
                .inner
                .weighted_sum(table_addr, indices, weights, with_tag);
        };
        match fault.kind {
            FaultKind::FlipResponseBit { element, bit } => {
                self.journal(&fault, "");
                let mut r = self
                    .inner
                    .weighted_sum(table_addr, indices, weights, with_tag)?;
                let slot = element as usize % r.c_res.len().max(1);
                if let Some(x) = r.c_res.get_mut(slot) {
                    *x = W::from_u64(x.as_u64() ^ (1u64 << (bit % W::BITS)));
                }
                Ok(r)
            }
            FaultKind::SwapValue { offset } => {
                let rows = self.current_rows(table_addr).unwrap_or(0);
                if rows < 2 || indices.is_empty() {
                    self.journal(&fault, "untracked or trivial table; passthrough");
                    return self
                        .inner
                        .weighted_sum(table_addr, indices, weights, with_tag);
                }
                self.journal(&fault, "");
                let mut idx = indices.to_vec();
                // Combine the swapped row's tag too: the checksum still
                // catches it because tag pads bind to row addresses.
                idx[0] = (idx[0] + offset as usize) % rows;
                self.inner.weighted_sum(table_addr, &idx, weights, with_tag)
            }
            FaultKind::SwapTag => {
                let mut r = self
                    .inner
                    .weighted_sum(table_addr, indices, weights, with_tag)?;
                match r.c_t_res.as_mut() {
                    Some(t) => {
                        self.journal(&fault, "");
                        *t += Fq::new(0xD15E_A5ED_u128);
                    }
                    None => self.journal(&fault, "untagged response; passthrough"),
                }
                Ok(r)
            }
            FaultKind::ReplayStale => {
                let stale = self.stale.lock().unwrap().get(&table_addr).cloned();
                match stale {
                    Some(img) => {
                        self.journal(&fault, "");
                        img.as_device(table_addr)?
                            .weighted_sum(table_addr, indices, weights, with_tag)
                    }
                    None => {
                        self.journal(&fault, "no stale image; served fresh");
                        self.inner
                            .weighted_sum(table_addr, indices, weights, with_tag)
                    }
                }
            }
            FaultKind::ZeroResult => {
                self.journal(&fault, "");
                let mut r = self
                    .inner
                    .weighted_sum(table_addr, indices, weights, with_tag)?;
                r.c_res.iter_mut().for_each(|x| *x = W::ZERO);
                Ok(r)
            }
            // Frame/Host kinds are filtered out by `take`'s class match.
            _ => unreachable!("non-data fault taken by FaultyNdp"),
        }
    }

    fn read_row(&self, table_addr: u64, row: usize) -> Result<Vec<u8>, Error> {
        let Some(fault) = self.injector.take(FaultClass::Data) else {
            return self.inner.read_row(table_addr, row);
        };
        match fault.kind {
            FaultKind::FlipResponseBit { element, bit } => {
                self.journal(&fault, "");
                let mut bytes = self.inner.read_row(table_addr, row)?;
                if !bytes.is_empty() {
                    let i = element as usize % bytes.len();
                    bytes[i] ^= 1 << (bit % 8);
                }
                Ok(bytes)
            }
            FaultKind::SwapValue { offset } => {
                let rows = self.current_rows(table_addr).unwrap_or(0);
                if rows < 2 {
                    self.journal(&fault, "untracked or trivial table; passthrough");
                    return self.inner.read_row(table_addr, row);
                }
                self.journal(&fault, "");
                self.inner
                    .read_row(table_addr, (row + offset as usize) % rows)
            }
            FaultKind::SwapTag => {
                // A raw row read carries no tag to forge.
                self.journal(&fault, "row read carries no tag; passthrough");
                self.inner.read_row(table_addr, row)
            }
            FaultKind::ReplayStale => {
                let stale = self.stale.lock().unwrap().get(&table_addr).cloned();
                match stale {
                    Some(img) => {
                        self.journal(&fault, "");
                        img.as_device(table_addr)?.read_row(table_addr, row)
                    }
                    None => {
                        self.journal(&fault, "no stale image; served fresh");
                        self.inner.read_row(table_addr, row)
                    }
                }
            }
            FaultKind::ZeroResult => {
                self.journal(&fault, "");
                let bytes = self.inner.read_row(table_addr, row)?;
                Ok(vec![0u8; bytes.len()])
            }
            _ => unreachable!("non-data fault taken by FaultyNdp"),
        }
    }
}

/// What a query under test actually produced, as the harness saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The query succeeded and matched the plaintext ground truth.
    Correct,
    /// The query succeeded but the value was **wrong** — a silent
    /// corruption unless something else detected it.
    Wrong,
    /// The query failed with a typed error.
    Failed(Error),
}

/// One query's identity and outcome, recorded by the harness.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Harness-assigned operation index (joins the fault journal).
    pub op: u64,
    /// Trace id the query ran under (0 if untraced).
    pub trace: u64,
    /// What the query produced.
    pub outcome: Outcome,
}

/// Per-kind injection tally inside an [`InvariantReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindTally {
    /// Faults of this kind journaled.
    pub injected: u64,
    /// …that were masked (correct result anyway).
    pub masked: u64,
    /// …that were detected (typed error, audited when integrity-class).
    pub detected: u64,
}

/// The checker's verdict over one run.
#[derive(Debug, Clone)]
pub struct InvariantReport {
    /// Seed of the plan that produced the run.
    pub seed: u64,
    /// Queries examined.
    pub ops: u64,
    /// Faults journaled.
    pub injected: u64,
    /// Faults masked.
    pub masked: u64,
    /// Faults detected.
    pub detected: u64,
    /// Faults (or fault-free queries) that produced a wrong result —
    /// must be **zero**.
    pub silent_corruptions: u64,
    /// Human-readable invariant violations (empty iff [`ok`](Self::ok)).
    pub violations: Vec<String>,
    /// Per-kind breakdown, deterministically ordered by kind name.
    pub by_kind: BTreeMap<&'static str, KindTally>,
}

impl InvariantReport {
    /// Whether the masked-or-detected invariant held.
    pub fn ok(&self) -> bool {
        self.silent_corruptions == 0 && self.violations.is_empty()
    }

    /// Deterministic JSON rendering (no wall-clock fields), suitable for
    /// byte-comparing two runs of the same seed.
    pub fn render_json(&self) -> String {
        let kinds: Vec<String> = self
            .by_kind
            .iter()
            .map(|(k, t)| {
                format!(
                    "\"{k}\":{{\"injected\":{},\"masked\":{},\"detected\":{}}}",
                    t.injected, t.masked, t.detected
                )
            })
            .collect();
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", json_escape(v)))
            .collect();
        format!(
            "{{\"seed\":{},\"ops\":{},\"injected\":{},\"masked\":{},\
             \"detected\":{},\"silent_corruptions\":{},\"by_kind\":{{{}}},\
             \"violations\":[{}]}}",
            self.seed,
            self.ops,
            self.injected,
            self.masked,
            self.detected,
            self.silent_corruptions,
            kinds.join(","),
            violations.join(","),
        )
    }
}

/// Minimal JSON string escaping for violation messages.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Reconciles the fault journal against query outcomes and the audit log:
/// every journaled fault must be **masked** (its query verified and
/// returned the correct result) or **detected** (its query failed with a
/// typed error — and, when the error is integrity-class and
/// `require_audit` is set, an [`AuditEvent`] exists in the *same trace*).
/// Wrong results — with or without a matching fault — are silent
/// corruptions, and every violation message carries the seed for replay.
#[derive(Debug, Clone, Copy)]
pub struct InvariantChecker {
    /// Seed echoed into the report and every violation message.
    pub seed: u64,
    /// Whether detections must be backed by a same-trace audit event
    /// (true only when telemetry is compiled in *and* traces are on —
    /// with the feature off, trace ids are all zero and audit is empty).
    pub require_audit: bool,
}

impl InvariantChecker {
    /// A checker for a run produced from `seed`, demanding audit-event
    /// backing exactly when the `telemetry` feature is compiled in.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            require_audit: cfg!(feature = "telemetry"),
        }
    }

    /// Runs the reconciliation. `faults` is the journal snapshot,
    /// `queries` the harness's outcome records, `audit` the audit-log
    /// snapshot.
    pub fn check(
        &self,
        faults: &[FaultRecord],
        queries: &[QueryRecord],
        audit: &[AuditEvent],
    ) -> InvariantReport {
        let mut report = InvariantReport {
            seed: self.seed,
            ops: queries.len() as u64,
            injected: 0,
            masked: 0,
            detected: 0,
            silent_corruptions: 0,
            violations: Vec::new(),
            by_kind: BTreeMap::new(),
        };
        let by_op: HashMap<u64, &QueryRecord> = queries.iter().map(|q| (q.op, q)).collect();
        let mut faulted_ops: HashMap<u64, usize> = HashMap::new();
        for f in faults {
            *faulted_ops.entry(f.op).or_insert(0) += 1;
            report.injected += 1;
            let tally = report.by_kind.entry(f.kind).or_default();
            tally.injected += 1;
            let Some(q) = by_op.get(&f.op) else {
                report.violations.push(format!(
                    "seed {}: fault {} at op {} has no query record",
                    self.seed, f.kind, f.op
                ));
                continue;
            };
            match &q.outcome {
                Outcome::Correct => {
                    report.masked += 1;
                    tally.masked += 1;
                }
                Outcome::Wrong => {
                    report.silent_corruptions += 1;
                    report.violations.push(format!(
                        "seed {}: SILENT CORRUPTION — fault {} at op {} (rank {}) \
                         returned a wrong result without an error",
                        self.seed, f.kind, f.op, f.rank
                    ));
                }
                Outcome::Failed(e) => {
                    report.detected += 1;
                    tally.detected += 1;
                    if self.require_audit && e.is_integrity_violation() {
                        let audited = audit.iter().any(|a| a.trace.0 == q.trace);
                        if !audited {
                            report.violations.push(format!(
                                "seed {}: fault {} at op {} detected ({e}) but no \
                                 audit event in trace {}",
                                self.seed, f.kind, f.op, q.trace
                            ));
                        }
                    }
                }
            }
        }
        // Queries that went wrong — or failed — with no fault on record
        // are violations too: the harness only ever issues valid queries,
        // so a clean op must verify and round-trip correctly.
        for q in queries {
            if faulted_ops.contains_key(&q.op) {
                continue;
            }
            match &q.outcome {
                Outcome::Correct => {}
                Outcome::Wrong => {
                    report.silent_corruptions += 1;
                    report.violations.push(format!(
                        "seed {}: SILENT CORRUPTION — op {} returned a wrong result \
                         with no fault injected",
                        self.seed, q.op
                    ));
                }
                Outcome::Failed(e) => {
                    report.violations.push(format!(
                        "seed {}: op {} failed ({e}) with no fault injected",
                        self.seed, q.op
                    ));
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secndp_telemetry::trace::{SpanId, TraceId};

    fn record(op: u64, kind: &'static str) -> FaultRecord {
        FaultRecord {
            seq: op,
            op,
            rank: 0,
            kind,
            trace: TraceId(op + 100),
            span: SpanId(0),
            detail: "",
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 1000] {
            for _ in 0..64 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn plan_is_pure_and_rate_bounded() {
        let plan = FaultPlan {
            ranks: 3,
            ..FaultPlan::new(0xFEED)
        };
        let s1 = plan.schedule(5000);
        let s2 = plan.schedule(5000);
        assert_eq!(s1, s2, "same seed must replay the same schedule");
        assert!(!s1.is_empty(), "8 permille over 5000 ops injects something");
        assert!(s1.len() < 200, "8 permille must stay rare");
        for f in &s1 {
            assert!(f.rank < 3);
        }
        // Purity: fault_for is random-access, independent of call order.
        assert_eq!(plan.fault_for(s1[0].op), Some(s1[0]));

        let never = FaultPlan {
            rate_permille: 0,
            ..plan.clone()
        };
        assert!(never.schedule(1000).is_empty());
        let always = FaultPlan {
            rate_permille: 1000,
            ..plan
        };
        assert_eq!(always.schedule(100).len(), 100);
    }

    #[test]
    fn schedule_render_names_every_fault() {
        let plan = FaultPlan {
            rate_permille: 1000,
            ..FaultPlan::new(9)
        };
        let text = plan.render_schedule(50);
        assert!(text.contains("seed=9"));
        assert!(text.lines().count() > 50 / 2);
    }

    #[test]
    fn sel_parse_round_trips_every_kind_name() {
        let plan = FaultPlan {
            rate_permille: 1000,
            ..FaultPlan::new(3)
        };
        for f in plan.schedule(200) {
            let sel = FaultSel::parse(f.kind.name());
            assert!(sel.is_some(), "unparseable kind name {}", f.kind.name());
        }
        assert_eq!(FaultSel::parse("nonsense"), None);
    }

    #[test]
    fn injector_takes_only_matching_class() {
        let inj = FaultInjector::new();
        let fault = PlannedFault {
            op: 1,
            rank: 0,
            kind: FaultKind::DropReply,
        };
        inj.arm(fault);
        assert_eq!(
            inj.take(FaultClass::Data),
            None,
            "wrong class must not consume"
        );
        assert_eq!(inj.take(FaultClass::Frame), Some(fault));
        assert_eq!(inj.take(FaultClass::Frame), None, "consumed exactly once");
        inj.arm(fault);
        assert_eq!(inj.disarm(), Some(fault));
        assert_eq!(inj.injected(), 0, "journal only counts consumed faults");
    }

    #[test]
    fn faulty_ndp_replays_stale_image_and_flips_bits() {
        let inj = Arc::new(FaultInjector::new());
        let mut dev = FaultyNdp::new(HonestNdp::new(), Arc::clone(&inj), 0);
        let old = secndp_arith::ring::words_to_le_bytes(&[1u32, 2, 3, 4]);
        let new = secndp_arith::ring::words_to_le_bytes(&[9u32, 9, 9, 9]);
        dev.load(0x10, old.clone(), 16, None).unwrap();
        dev.load(0x10, new.clone(), 16, None).unwrap();

        // Unarmed: pure pass-through of the *current* image.
        assert_eq!(dev.read_row(0x10, 0).unwrap(), new);

        inj.arm(PlannedFault {
            op: 7,
            rank: 0,
            kind: FaultKind::ReplayStale,
        });
        assert_eq!(dev.read_row(0x10, 0).unwrap(), old, "stale image served");
        assert_eq!(inj.injected(), 1);

        inj.arm(PlannedFault {
            op: 8,
            rank: 0,
            kind: FaultKind::FlipResponseBit { element: 0, bit: 1 },
        });
        let r = dev.weighted_sum::<u32>(0x10, &[0], &[1], false).unwrap();
        assert_eq!(r.c_res, vec![9 ^ 2, 9, 9, 9]);
        assert_eq!(inj.injected(), 2);

        // A frame-class fault must pass through the device untouched.
        inj.arm(PlannedFault {
            op: 9,
            rank: 0,
            kind: FaultKind::DropReply,
        });
        assert_eq!(dev.read_row(0x10, 0).unwrap(), new);
        assert!(inj.disarm().is_some(), "frame fault left armed");
    }

    #[test]
    fn checker_classifies_masked_detected_and_silent() {
        let faults = vec![
            record(0, "drop_reply"),
            record(1, "flip_response_bit"),
            record(2, "zero_result"),
            record(3, "swap_value"),
        ];
        let queries = vec![
            QueryRecord {
                op: 0,
                trace: 100,
                outcome: Outcome::Correct,
            },
            QueryRecord {
                op: 1,
                trace: 101,
                outcome: Outcome::Failed(Error::VerificationFailed { table_addr: 0x10 }),
            },
            QueryRecord {
                op: 2,
                trace: 102,
                outcome: Outcome::Wrong,
            },
            QueryRecord {
                op: 3,
                trace: 103,
                outcome: Outcome::Failed(Error::DeviceTimeout {
                    deadline_ms: 150,
                    attempts: 4,
                }),
            },
            QueryRecord {
                op: 4,
                trace: 104,
                outcome: Outcome::Correct,
            },
        ];
        let audit = vec![AuditEvent {
            seq: 0,
            trace: TraceId(101),
            span: SpanId(0),
            kind: "verification_failed",
            table_addr: 0x10,
            region: 0,
            version: 0,
            scheme: "single_s",
            detail: "",
        }];
        let checker = InvariantChecker {
            seed: 42,
            require_audit: true,
        };
        let report = checker.check(&faults, &queries, &audit);
        assert_eq!(report.injected, 4);
        assert_eq!(report.masked, 1);
        // op 1 (audited integrity error) and op 3 (timeout, no audit
        // required for non-integrity errors) both count as detected.
        assert_eq!(report.detected, 2);
        assert_eq!(report.silent_corruptions, 1);
        assert!(!report.ok());
        assert!(report.violations[0].contains("SILENT CORRUPTION"));
        assert!(report.violations[0].contains("seed 42"));
        assert_eq!(report.by_kind["drop_reply"].masked, 1);
        assert_eq!(report.by_kind["flip_response_bit"].detected, 1);
    }

    #[test]
    fn checker_demands_same_trace_audit_for_integrity_errors() {
        let faults = vec![record(0, "swap_tag")];
        let queries = vec![QueryRecord {
            op: 0,
            trace: 100,
            outcome: Outcome::Failed(Error::VerificationFailed { table_addr: 1 }),
        }];
        // Audit event exists but in a *different* trace: not good enough.
        let audit = vec![AuditEvent {
            seq: 0,
            trace: TraceId(999),
            span: SpanId(0),
            kind: "verification_failed",
            table_addr: 1,
            region: 0,
            version: 0,
            scheme: "single_s",
            detail: "",
        }];
        let strict = InvariantChecker {
            seed: 7,
            require_audit: true,
        };
        let report = strict.check(&faults, &queries, &audit);
        assert_eq!(report.detected, 1);
        assert!(!report.ok());
        assert!(report.violations[0].contains("no audit event"));
        // Without the audit requirement the same run is clean.
        let lax = InvariantChecker {
            seed: 7,
            require_audit: false,
        };
        assert!(lax.check(&faults, &queries, &audit).ok());
    }

    #[test]
    fn checker_flags_wrong_and_failed_queries_without_faults() {
        let queries = vec![
            QueryRecord {
                op: 0,
                trace: 1,
                outcome: Outcome::Wrong,
            },
            QueryRecord {
                op: 1,
                trace: 2,
                outcome: Outcome::Failed(Error::TagsUnavailable),
            },
        ];
        let report = InvariantChecker {
            seed: 1,
            require_audit: false,
        }
        .check(&[], &queries, &[]);
        assert_eq!(report.silent_corruptions, 1);
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.injected, 0);
    }

    #[test]
    fn report_json_is_deterministic_and_well_formed() {
        let faults = vec![record(0, "drop_reply"), record(1, "rank_stall")];
        let queries = vec![
            QueryRecord {
                op: 0,
                trace: 100,
                outcome: Outcome::Correct,
            },
            QueryRecord {
                op: 1,
                trace: 101,
                outcome: Outcome::Correct,
            },
        ];
        let checker = InvariantChecker {
            seed: 5,
            require_audit: false,
        };
        let a = checker.check(&faults, &queries, &[]).render_json();
        let b = checker.check(&faults, &queries, &[]).render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"seed\":5"));
        assert!(a.contains("\"silent_corruptions\":0"));
        assert!(a.contains("\"drop_reply\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }
}
