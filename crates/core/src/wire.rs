//! Wire format for the processor ↔ NDP command protocol.
//!
//! Figure 4's long arrows are real bus messages: the processor ships
//! ciphertext and issues weighted-summation commands; the NDP returns its
//! share of the result. This module pins down a byte-exact framing for
//! those messages — the form they would take on a DIMM mailbox or a
//! CXL/PCIe queue — so the protocol is demonstrably *wire-complete*: no
//! hidden Rust-object channel is smuggling state between the parties.
//!
//! Framing: one tag byte, then fields in little-endian; variable-length
//! vectors are `u32` length-prefixed. [`RemoteNdp`] wraps any device and
//! forces every interaction through encode → decode → execute → encode →
//! decode, byte-for-byte.
//!
//! # Traced frames (v2 envelope)
//!
//! A frame may optionally be wrapped in a trace envelope so the device can
//! stitch its spans into the processor-side trace:
//!
//! ```text
//! 0x7E | trace_id: u64 LE | parent_span: u64 LE | v1 frame bytes
//! ```
//!
//! [`Request::decode`] / [`Response::decode`] accept both forms (the
//! envelope is stripped transparently), so old frames still decode and old
//! decoders reject enveloped frames cleanly with `BadTag(0x7E)` rather
//! than misparsing them. [`Request::encode`] emits the legacy form;
//! [`Request::encode_traced`] adds the envelope only when the supplied
//! context is non-empty, so untraced builds produce byte-identical frames.

use crate::device::{validate_load, NdpDevice, NdpResponse};
use crate::error::Error;
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::{words_from_le_bytes, words_to_le_bytes, RingWord};
use secndp_telemetry::trace::{self, SpanContext, SpanId, TraceId};

/// Envelope tag for traced (v2) frames. Disjoint from every v1 frame tag
/// (requests `0x01–0x03`, responses `0x81–0x83` / `0xFF`).
pub const FRAME_TRACED: u8 = 0x7E;

/// Byte length of the trace envelope (tag + trace id + parent span id).
const ENVELOPE_LEN: usize = 1 + 8 + 8;

/// Splits off a leading trace envelope, if present. Returns the inner
/// frame bytes and the carried context (`SpanContext::NONE` for legacy
/// frames).
fn strip_envelope(buf: &[u8]) -> Result<(&[u8], SpanContext), WireError> {
    if buf.first() != Some(&FRAME_TRACED) {
        return Ok((buf, SpanContext::NONE));
    }
    if buf.len() < ENVELOPE_LEN {
        return Err(WireError::Truncated);
    }
    let trace = u64::from_le_bytes(buf[1..9].try_into().unwrap());
    let span = u64::from_le_bytes(buf[9..17].try_into().unwrap());
    Ok((
        &buf[ENVELOPE_LEN..],
        SpanContext {
            trace: TraceId(trace),
            span: SpanId(span),
        },
    ))
}

/// Prefixes `inner` with a trace envelope when `ctx` is non-empty.
fn wrap_envelope(ctx: SpanContext, inner: Vec<u8>) -> Vec<u8> {
    if ctx.is_none() {
        return inner;
    }
    let mut out = Vec::with_capacity(ENVELOPE_LEN + inner.len());
    out.push(FRAME_TRACED);
    out.extend_from_slice(&ctx.trace.0.to_le_bytes());
    out.extend_from_slice(&ctx.span.0.to_le_bytes());
    out.extend_from_slice(&inner);
    out
}

/// A request frame from the processor to the NDP unit.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Store a table image (the `T0` transfer).
    Load {
        /// Table base address.
        table_addr: u64,
        /// Bytes per row.
        row_bytes: u32,
        /// Ciphertext image.
        ciphertext: Vec<u8>,
        /// Encrypted per-row tags, if any.
        tags: Option<Vec<u128>>,
    },
    /// `SecNDPInst` sequence + `SecNDPLd`: weighted summation over rows.
    WeightedSum {
        /// Table base address.
        table_addr: u64,
        /// Element width in bytes (1, 2, 4 or 8).
        elem_bytes: u8,
        /// Row indices.
        indices: Vec<u64>,
        /// Weights, zero-extended to 64 bits.
        weights: Vec<u64>,
        /// Whether the combined encrypted tag is requested.
        with_tag: bool,
    },
    /// Plain encrypted read of one row.
    ReadRow {
        /// Table base address.
        table_addr: u64,
        /// Row index.
        row: u64,
    },
}

/// A response frame from the NDP unit.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Load acknowledged.
    Ack,
    /// Result share bytes plus optional combined tag.
    Sum {
        /// `C_res` serialized little-endian.
        c_res: Vec<u8>,
        /// `C_T_res` canonical value, if requested.
        c_t_res: Option<u128>,
    },
    /// Raw row ciphertext.
    Row(Vec<u8>),
    /// Device-side error, by stable code.
    Err(u16),
}

/// Wire-level decode failures (distinct from protocol [`Error`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before a field was complete.
    Truncated,
    /// Unknown frame tag.
    BadTag(u8),
    /// Trailing bytes after a complete frame.
    TrailingBytes,
    /// A declared length exceeds the remaining frame.
    BadLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("frame truncated"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#x}"),
            WireError::TrailingBytes => f.write_str("trailing bytes after frame"),
            WireError::BadLength => f.write_str("length field exceeds frame"),
        }
    }
}

impl std::error::Error for WireError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn len(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if self.pos + n > self.buf.len() {
            // Even a length of element-sized records cannot exceed bytes.
            return Err(WireError::BadLength);
        }
        Ok(n)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

impl Request {
    /// Serializes the request frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Load {
                table_addr,
                row_bytes,
                ciphertext,
                tags,
            } => {
                out.push(0x01);
                out.extend_from_slice(&table_addr.to_le_bytes());
                out.extend_from_slice(&row_bytes.to_le_bytes());
                put_bytes(&mut out, ciphertext);
                match tags {
                    None => out.push(0),
                    Some(tags) => {
                        out.push(1);
                        out.extend_from_slice(&(tags.len() as u32).to_le_bytes());
                        for t in tags {
                            out.extend_from_slice(&t.to_le_bytes());
                        }
                    }
                }
            }
            Request::WeightedSum {
                table_addr,
                elem_bytes,
                indices,
                weights,
                with_tag,
            } => {
                out.push(0x02);
                out.extend_from_slice(&table_addr.to_le_bytes());
                out.push(*elem_bytes);
                out.push(*with_tag as u8);
                out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
                for i in indices {
                    out.extend_from_slice(&i.to_le_bytes());
                }
                out.extend_from_slice(&(weights.len() as u32).to_le_bytes());
                for w in weights {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
            Request::ReadRow { table_addr, row } => {
                out.push(0x03);
                out.extend_from_slice(&table_addr.to_le_bytes());
                out.extend_from_slice(&row.to_le_bytes());
            }
        }
        out
    }

    /// Serializes the request, wrapping it in a trace envelope when `ctx`
    /// is non-empty (an empty context yields the legacy byte-identical
    /// encoding).
    pub fn encode_traced(&self, ctx: SpanContext) -> Vec<u8> {
        wrap_envelope(ctx, self.encode())
    }

    /// Parses a request frame (legacy or traced), discarding any carried
    /// trace context.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed frames.
    pub fn decode(buf: &[u8]) -> Result<Request, WireError> {
        Self::decode_traced(buf).map(|(req, _)| req)
    }

    /// Parses a request frame, also returning the trace context carried by
    /// a v2 envelope ([`SpanContext::NONE`] for legacy frames).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed frames.
    pub fn decode_traced(buf: &[u8]) -> Result<(Request, SpanContext), WireError> {
        let (inner, ctx) = strip_envelope(buf)?;
        Ok((Self::decode_inner(inner)?, ctx))
    }

    fn decode_inner(buf: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(buf);
        let req = match r.u8()? {
            0x01 => {
                let table_addr = r.u64()?;
                let row_bytes = r.u32()?;
                let ciphertext = r.bytes()?;
                let tags = match r.u8()? {
                    0 => None,
                    _ => {
                        let n = r.u32()? as usize;
                        let mut tags = Vec::new();
                        for _ in 0..n {
                            tags.push(r.u128()?);
                        }
                        Some(tags)
                    }
                };
                Request::Load {
                    table_addr,
                    row_bytes,
                    ciphertext,
                    tags,
                }
            }
            0x02 => {
                let table_addr = r.u64()?;
                let elem_bytes = r.u8()?;
                let with_tag = r.u8()? != 0;
                let n = r.u32()? as usize;
                let mut indices = Vec::new();
                for _ in 0..n {
                    indices.push(r.u64()?);
                }
                let n = r.u32()? as usize;
                let mut weights = Vec::new();
                for _ in 0..n {
                    weights.push(r.u64()?);
                }
                Request::WeightedSum {
                    table_addr,
                    elem_bytes,
                    indices,
                    weights,
                    with_tag,
                }
            }
            0x03 => Request::ReadRow {
                table_addr: r.u64()?,
                row: r.u64()?,
            },
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ack => out.push(0x81),
            Response::Sum { c_res, c_t_res } => {
                out.push(0x82);
                put_bytes(&mut out, c_res);
                match c_t_res {
                    None => out.push(0),
                    Some(t) => {
                        out.push(1);
                        out.extend_from_slice(&t.to_le_bytes());
                    }
                }
            }
            Response::Row(b) => {
                out.push(0x83);
                put_bytes(&mut out, b);
            }
            Response::Err(code) => {
                out.push(0xFF);
                out.extend_from_slice(&code.to_le_bytes());
            }
        }
        out
    }

    /// Serializes the response, wrapping it in a trace envelope when `ctx`
    /// is non-empty.
    pub fn encode_traced(&self, ctx: SpanContext) -> Vec<u8> {
        wrap_envelope(ctx, self.encode())
    }

    /// Parses a response frame (legacy or traced), discarding any carried
    /// trace context.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed frames.
    pub fn decode(buf: &[u8]) -> Result<Response, WireError> {
        Self::decode_traced(buf).map(|(resp, _)| resp)
    }

    /// Parses a response frame, also returning the trace context carried
    /// by a v2 envelope ([`SpanContext::NONE`] for legacy frames).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed frames.
    pub fn decode_traced(buf: &[u8]) -> Result<(Response, SpanContext), WireError> {
        let (inner, ctx) = strip_envelope(buf)?;
        Ok((Self::decode_inner(inner)?, ctx))
    }

    fn decode_inner(buf: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(buf);
        let resp = match r.u8()? {
            0x81 => Response::Ack,
            0x82 => {
                let c_res = r.bytes()?;
                let c_t_res = match r.u8()? {
                    0 => None,
                    _ => Some(r.u128()?),
                };
                Response::Sum { c_res, c_t_res }
            }
            0x83 => Response::Row(r.bytes()?),
            0xFF => Response::Err(r.u16()?),
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Stable device-error codes carried in [`Response::Err`].
fn error_code(e: &Error) -> u16 {
    match e {
        Error::UnknownTable { .. } => 1,
        Error::RowOutOfBounds { .. } => 2,
        Error::TagsUnavailable => 3,
        Error::QueryLengthMismatch { .. } => 4,
        Error::ColOutOfBounds { .. } => 5,
        Error::ShapeMismatch { .. } => 6,
        _ => 0xFFFE,
    }
}

fn error_from_code(code: u16, table_addr: u64) -> Error {
    match code {
        1 => Error::UnknownTable { table_addr },
        2 => Error::RowOutOfBounds { index: 0, rows: 0 },
        3 => Error::TagsUnavailable,
        4 => Error::QueryLengthMismatch {
            indices: 0,
            weights: 0,
        },
        5 => Error::ColOutOfBounds { index: 0, cols: 0 },
        6 => Error::ShapeMismatch {
            got: 0,
            expected: 0,
        },
        _ => Error::MalformedResponse {
            reason: "device error",
        },
    }
}

fn request_op(req: &Request) -> &'static str {
    match req {
        Request::Load { .. } => "load",
        Request::WeightedSum { .. } => "weighted_sum",
        Request::ReadRow { .. } => "read_row",
    }
}

/// The device-side dispatcher: decodes a request, executes it against
/// `device`, and encodes the response — what the DIMM-side firmware does.
/// Traced frames open an `ndp_serve` child span under the processor-side
/// context carried in the envelope, and the reply frame carries the serve
/// span's context back.
pub fn serve<D: NdpDevice>(device: &mut D, frame: &[u8]) -> Result<Vec<u8>, WireError> {
    let (req, ctx) = Request::decode_traced(frame)?;
    let mut sp = trace::span_child_of(trace::names::NDP_SERVE, ctx);
    sp.attr_str("op", request_op(&req));
    let resp = match req {
        Request::Load {
            table_addr,
            row_bytes,
            ciphertext,
            tags,
        } => {
            match device.load(
                table_addr,
                ciphertext,
                row_bytes as usize,
                tags.map(|ts| ts.into_iter().map(Fq::new).collect()),
            ) {
                Ok(()) => Response::Ack,
                Err(e) => Response::Err(error_code(&e)),
            }
        }
        Request::WeightedSum {
            table_addr,
            elem_bytes,
            indices,
            weights,
            with_tag,
        } => {
            let idx: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
            let out = match elem_bytes {
                1 => run_sum::<u8, D>(device, table_addr, &idx, &weights, with_tag),
                2 => run_sum::<u16, D>(device, table_addr, &idx, &weights, with_tag),
                4 => run_sum::<u32, D>(device, table_addr, &idx, &weights, with_tag),
                _ => run_sum::<u64, D>(device, table_addr, &idx, &weights, with_tag),
            };
            match out {
                Ok((c_res, c_t_res)) => Response::Sum { c_res, c_t_res },
                Err(e) => Response::Err(error_code(&e)),
            }
        }
        Request::ReadRow { table_addr, row } => match device.read_row(table_addr, row as usize) {
            Ok(b) => Response::Row(b),
            Err(e) => Response::Err(error_code(&e)),
        },
    };
    Ok(resp.encode_traced(sp.context()))
}

fn run_sum<W: RingWord, D: NdpDevice>(
    device: &D,
    table_addr: u64,
    indices: &[usize],
    weights: &[u64],
    with_tag: bool,
) -> Result<(Vec<u8>, Option<u128>), Error> {
    let w: Vec<W> = weights.iter().map(|&x| W::from_u64(x)).collect();
    let r = device.weighted_sum::<W>(table_addr, indices, &w, with_tag)?;
    Ok((words_to_le_bytes(&r.c_res), r.c_t_res.map(|t| t.value())))
}

/// A device adaptor that forces every interaction through the byte-exact
/// wire format, proving the protocol carries everything it needs.
#[derive(Debug, Default)]
pub struct RemoteNdp<D> {
    inner: D,
}

/// Decodes a reply frame from the untrusted device, mapping any wire-level
/// failure to a typed error. A malicious or faulty device must never be
/// able to panic the trusted side by sending garbage.
fn decode_reply(reply: &[u8]) -> Result<Response, Error> {
    Response::decode(reply).map_err(|_| crate::metrics::malformed("undecodable reply frame"))
}

impl<D: NdpDevice> RemoteNdp<D> {
    /// Wraps a device behind the wire.
    pub fn new(inner: D) -> Self {
        Self { inner }
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, Error> {
        let mut sp = trace::span(trace::names::WIRE_ROUND_TRIP);
        let _t = crate::metrics::wire_round_trip().start_timer();
        let frame = {
            let _e = trace::span(trace::names::WIRE_ENCODE);
            req.encode_traced(sp.context())
        };
        crate::metrics::wire_packets().inc();
        crate::metrics::wire_tx_bytes().add(frame.len() as u64);
        sp.attr_u64("tx_bytes", frame.len() as u64);
        // Re-decode both directions to guarantee byte-exactness.
        let reply = serve(&mut self.inner, &frame)
            .map_err(|_| crate::metrics::malformed("device rejected request frame"))?;
        crate::metrics::wire_rx_bytes().add(reply.len() as u64);
        sp.attr_u64("rx_bytes", reply.len() as u64);
        decode_reply(&reply)
    }

    fn round_trip_ro(&self, req: &Request) -> Result<Response, Error> {
        let mut sp = trace::span(trace::names::WIRE_ROUND_TRIP);
        let _t = crate::metrics::wire_round_trip().start_timer();
        let frame = {
            let _e = trace::span(trace::names::WIRE_ENCODE);
            req.encode_traced(sp.context())
        };
        crate::metrics::wire_packets().inc();
        crate::metrics::wire_tx_bytes().add(frame.len() as u64);
        sp.attr_u64("tx_bytes", frame.len() as u64);
        // Serving reads does not mutate; clone-free path via interior
        // re-dispatch would need &mut, so decode + dispatch manually.
        let (parsed, fctx) = Request::decode_traced(&frame)
            .map_err(|_| crate::metrics::malformed("device rejected request frame"))?;
        let mut serve_sp = trace::span_child_of(trace::names::NDP_SERVE, fctx);
        serve_sp.attr_str("op", request_op(&parsed));
        let resp = match parsed {
            Request::WeightedSum {
                table_addr,
                elem_bytes,
                indices,
                weights,
                with_tag,
            } => {
                let idx: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
                let out = match elem_bytes {
                    1 => run_sum::<u8, D>(&self.inner, table_addr, &idx, &weights, with_tag),
                    2 => run_sum::<u16, D>(&self.inner, table_addr, &idx, &weights, with_tag),
                    4 => run_sum::<u32, D>(&self.inner, table_addr, &idx, &weights, with_tag),
                    _ => run_sum::<u64, D>(&self.inner, table_addr, &idx, &weights, with_tag),
                };
                match out {
                    Ok((c_res, c_t_res)) => Response::Sum { c_res, c_t_res },
                    Err(e) => Response::Err(error_code(&e)),
                }
            }
            Request::ReadRow { table_addr, row } => {
                match self.inner.read_row(table_addr, row as usize) {
                    Ok(b) => Response::Row(b),
                    Err(e) => Response::Err(error_code(&e)),
                }
            }
            Request::Load { .. } => Response::Err(0xFFFE),
        };
        let reply = resp.encode_traced(serve_sp.context());
        drop(serve_sp);
        crate::metrics::wire_rx_bytes().add(reply.len() as u64);
        sp.attr_u64("rx_bytes", reply.len() as u64);
        decode_reply(&reply)
    }
}

impl<D: NdpDevice> NdpDevice for RemoteNdp<D> {
    fn load(
        &mut self,
        table_addr: u64,
        ciphertext: Vec<u8>,
        row_bytes: usize,
        tags: Option<Vec<Fq>>,
    ) -> Result<(), Error> {
        // Validate shape before the round trip: the wire error code carries
        // no payload, so a local check preserves the faithful field values
        // (and skips shipping a torn table to the device at all).
        validate_load(ciphertext.len(), row_bytes)?;
        let req = Request::Load {
            table_addr,
            row_bytes: row_bytes as u32,
            ciphertext,
            tags: tags.map(|ts| ts.iter().map(|t| t.value()).collect()),
        };
        match self.round_trip(&req)? {
            Response::Ack => Ok(()),
            Response::Err(code) => Err(error_from_code(code, table_addr)),
            _ => Err(crate::metrics::malformed("unexpected load reply")),
        }
    }

    fn weighted_sum<W: RingWord>(
        &self,
        table_addr: u64,
        indices: &[usize],
        weights: &[W],
        with_tag: bool,
    ) -> Result<NdpResponse<W>, Error> {
        let req = Request::WeightedSum {
            table_addr,
            elem_bytes: W::BYTES as u8,
            indices: indices.iter().map(|&i| i as u64).collect(),
            weights: weights.iter().map(|w| w.as_u64()).collect(),
            with_tag,
        };
        match self.round_trip_ro(&req)? {
            Response::Sum { c_res, c_t_res } => Ok(NdpResponse {
                c_res: words_from_le_bytes::<W>(&c_res),
                c_t_res: c_t_res.map(Fq::new),
            }),
            Response::Err(code) => Err(error_from_code(code, table_addr)),
            other => Err(crate::metrics::malformed(match other {
                Response::Ack => "ack for a sum request",
                _ => "wrong response kind",
            })),
        }
    }

    fn read_row(&self, table_addr: u64, row: usize) -> Result<Vec<u8>, Error> {
        let req = Request::ReadRow {
            table_addr,
            row: row as u64,
        };
        match self.round_trip_ro(&req)? {
            Response::Row(b) => Ok(b),
            Response::Err(code) => Err(error_from_code(code, table_addr)),
            _ => Err(crate::metrics::malformed("wrong response kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::HonestNdp;
    use crate::keys::SecretKey;
    use crate::protocol::TrustedProcessor;
    use proptest::prelude::*;

    #[test]
    fn request_frames_round_trip() {
        let frames = [
            Request::Load {
                table_addr: 0x1000,
                row_bytes: 64,
                ciphertext: vec![1, 2, 3, 4],
                tags: Some(vec![7u128, u128::MAX >> 1]),
            },
            Request::Load {
                table_addr: 0,
                row_bytes: 1,
                ciphertext: vec![],
                tags: None,
            },
            Request::WeightedSum {
                table_addr: 42,
                elem_bytes: 4,
                indices: vec![0, 5, 9],
                weights: vec![1, 2, 3],
                with_tag: true,
            },
            Request::ReadRow {
                table_addr: 7,
                row: 3,
            },
        ];
        for f in frames {
            assert_eq!(Request::decode(&f.encode()).unwrap(), f);
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let frames = [
            Response::Ack,
            Response::Sum {
                c_res: vec![9; 32],
                c_t_res: Some(12345),
            },
            Response::Sum {
                c_res: vec![],
                c_t_res: None,
            },
            Response::Row(vec![1, 2, 3]),
            Response::Err(3),
        ];
        for f in frames {
            assert_eq!(Response::decode(&f.encode()).unwrap(), f);
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
        assert_eq!(Request::decode(&[0x42]), Err(WireError::BadTag(0x42)));
        // Truncated weighted-sum.
        let mut f = Request::ReadRow {
            table_addr: 1,
            row: 2,
        }
        .encode();
        f.pop();
        assert_eq!(Request::decode(&f), Err(WireError::Truncated));
        // Trailing junk.
        let mut f = Response::Ack.encode();
        f.push(0);
        assert_eq!(Response::decode(&f), Err(WireError::TrailingBytes));
        // Absurd length field.
        let mut f = vec![0x83];
        f.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Response::decode(&f), Err(WireError::BadLength));
    }

    #[test]
    fn full_protocol_over_the_wire() {
        // The entire SecNDP protocol runs against a device reachable only
        // through byte frames — and still verifies.
        let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x61; 16]));
        let mut remote = RemoteNdp::new(HonestNdp::new());
        let pt: Vec<u32> = (0..48).map(|x| x * 7 + 2).collect();
        let table = cpu.encrypt_table(&pt, 6, 8, 0x9000).unwrap();
        let handle = cpu.publish(&table, &mut remote).unwrap();
        let res = cpu
            .weighted_sum(&handle, &remote, &[0, 3, 5], &[1u32, 2, 3], true)
            .unwrap();
        for j in 0..8 {
            assert_eq!(res[j], pt[j] + 2 * pt[24 + j] + 3 * pt[40 + j]);
        }
        // Row reads too.
        assert_eq!(
            cpu.read_row::<u32, _>(&handle, &remote, 2).unwrap(),
            &pt[16..24]
        );
        // Device errors survive the wire as typed errors.
        assert!(matches!(
            remote.weighted_sum::<u32>(0xdead, &[0], &[1], false),
            Err(Error::UnknownTable { .. })
        ));
    }

    #[test]
    fn wire_works_at_all_widths() {
        let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x62; 16]));
        let mut remote = RemoteNdp::new(HonestNdp::new());
        let pt: Vec<u64> = (0..16).collect();
        let table = cpu.encrypt_table(&pt, 4, 4, 0).unwrap();
        let handle = cpu.publish(&table, &mut remote).unwrap();
        let res = cpu
            .weighted_sum(&handle, &remote, &[3], &[2u64], true)
            .unwrap();
        assert_eq!(res, vec![24, 26, 28, 30]);
    }

    #[test]
    fn garbage_replies_surface_as_typed_errors() {
        // Any undecodable reply from the untrusted side becomes a typed
        // error, never a panic.
        for garbage in [&[][..], &[0x42][..], &[0x82, 1, 2][..], &[0xFF][..]] {
            assert!(matches!(
                decode_reply(garbage),
                Err(Error::MalformedResponse { .. })
            ));
        }
        // A well-formed but wrong-kind reply to a load is also an error.
        assert!(matches!(
            decode_reply(&Response::Row(vec![1]).encode()),
            Ok(Response::Row(_))
        ));
    }

    #[test]
    fn load_errors_survive_the_wire() {
        let mut remote = RemoteNdp::new(HonestNdp::new());
        // row_bytes does not divide the image: rejected before the round
        // trip, with the faithful field values the wire code cannot carry.
        assert!(matches!(
            remote.load(0x100, vec![0u8; 10], 16, None),
            Err(Error::ShapeMismatch {
                got: 10,
                expected: 16
            })
        ));
        // The device-side guard holds on its own too: a torn Load frame
        // served directly comes back as the ShapeMismatch wire code.
        let frame = Request::Load {
            table_addr: 0x100,
            row_bytes: 16,
            ciphertext: vec![0u8; 10],
            tags: None,
        }
        .encode();
        let mut dev = HonestNdp::new();
        let reply = serve(&mut dev, &frame).unwrap();
        assert_eq!(decode_reply(&reply).unwrap(), Response::Err(6));
        assert!(matches!(
            error_from_code(6, 0x100),
            Error::ShapeMismatch { .. }
        ));
        // A valid load still acks.
        remote.load(0x100, vec![0u8; 32], 16, None).unwrap();
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Load {
                table_addr: 0x1000,
                row_bytes: 64,
                ciphertext: vec![1, 2, 3, 4],
                tags: Some(vec![7u128, u128::MAX >> 1]),
            },
            Request::Load {
                table_addr: 0,
                row_bytes: 1,
                ciphertext: vec![9],
                tags: None,
            },
            Request::WeightedSum {
                table_addr: 42,
                elem_bytes: 4,
                indices: vec![0, 5, 9],
                weights: vec![1, 2, 3],
                with_tag: true,
            },
            Request::ReadRow {
                table_addr: 7,
                row: 3,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Ack,
            Response::Sum {
                c_res: vec![9; 32],
                c_t_res: Some(12345),
            },
            Response::Row(vec![1, 2, 3]),
            Response::Err(3),
        ]
    }

    #[test]
    fn traced_frames_round_trip_and_interoperate() {
        let ctx = SpanContext {
            trace: TraceId(0xAABB_CCDD_EEFF_0011),
            span: SpanId(0x7788_99AA_BBCC_DDEE),
        };
        for req in sample_requests() {
            let traced = req.encode_traced(ctx);
            assert_eq!(traced[0], FRAME_TRACED);
            // decode_traced recovers both the frame and the context.
            assert_eq!(Request::decode_traced(&traced).unwrap(), (req.clone(), ctx));
            // Plain decode strips the envelope transparently.
            assert_eq!(Request::decode(&traced).unwrap(), req);
            // Legacy frames carry no context; empty-ctx traced encoding is
            // byte-identical to legacy.
            let legacy = req.encode();
            assert_eq!(req.encode_traced(SpanContext::NONE), legacy);
            assert_eq!(
                Request::decode_traced(&legacy).unwrap(),
                (req.clone(), SpanContext::NONE)
            );
        }
        for resp in sample_responses() {
            let traced = resp.encode_traced(ctx);
            assert_eq!(
                Response::decode_traced(&traced).unwrap(),
                (resp.clone(), ctx)
            );
            assert_eq!(Response::decode(&traced).unwrap(), resp);
            assert_eq!(resp.encode_traced(SpanContext::NONE), resp.encode());
        }
        // A bare or truncated envelope is Truncated, not a panic.
        assert_eq!(Request::decode(&[FRAME_TRACED]), Err(WireError::Truncated));
        assert_eq!(
            Response::decode(&[FRAME_TRACED, 1, 2, 3]),
            Err(WireError::Truncated)
        );
        // An envelope cannot nest: the inner bytes must be a v1 frame.
        let double = wrap_envelope(
            ctx,
            Request::ReadRow {
                table_addr: 1,
                row: 2,
            }
            .encode_traced(ctx),
        );
        assert_eq!(
            Request::decode(&double),
            Err(WireError::BadTag(FRAME_TRACED))
        );
    }

    /// Satellite: exhaustive small-frame + truncation + byte-flip matrix.
    /// Deterministic (no wall-clock, no external RNG): an LCG drives the
    /// random frames so failures replay exactly.
    #[test]
    fn decode_matrix_never_panics_and_errors_are_typed() {
        // 1) Exhaustive frames of length 0..=2: every decode returns
        //    Ok or a WireError — by construction it cannot panic, and we
        //    force evaluation of every byte pattern.
        let _ = Request::decode(&[]);
        let _ = Response::decode(&[]);
        for a in 0..=255u8 {
            let _ = Request::decode(&[a]);
            let _ = Response::decode(&[a]);
            for b in 0..=255u8 {
                let _ = Request::decode(&[a, b]);
                let _ = Response::decode(&[a, b]);
            }
        }
        // 2) Every strict prefix of every canonical frame (legacy and
        //    traced) fails to decode: no prefix of a valid frame is
        //    silently accepted as a different valid frame.
        let ctx = SpanContext {
            trace: TraceId(5),
            span: SpanId(6),
        };
        let req_frames: Vec<Vec<u8>> = sample_requests()
            .iter()
            .flat_map(|r| [r.encode(), r.encode_traced(ctx)])
            .collect();
        let resp_frames: Vec<Vec<u8>> = sample_responses()
            .iter()
            .flat_map(|r| [r.encode(), r.encode_traced(ctx)])
            .collect();
        for f in &req_frames {
            assert!(Request::decode(f).is_ok());
            for cut in 0..f.len() {
                assert!(
                    Request::decode(&f[..cut]).is_err(),
                    "prefix len {cut} of {f:02x?}"
                );
            }
        }
        for f in &resp_frames {
            assert!(Response::decode(f).is_ok());
            for cut in 0..f.len() {
                assert!(
                    Response::decode(&f[..cut]).is_err(),
                    "prefix len {cut} of {f:02x?}"
                );
            }
        }
        // 3) Single-byte corruptions of valid frames never panic (they may
        //    still decode, e.g. a flipped payload byte).
        for f in req_frames.iter().chain(&resp_frames) {
            for i in 0..f.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut m = f.clone();
                    m[i] ^= flip;
                    let _ = Request::decode(&m);
                    let _ = Response::decode(&m);
                }
            }
        }
        // 4) LCG-driven random frames up to 64 bytes.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for _ in 0..20_000 {
            let len = (next() as usize) % 65;
            let bytes: Vec<u8> = (0..len).map(|_| next()).collect();
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }
    }

    proptest! {
        /// Decoding never panics on arbitrary bytes.
        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }

        /// Any valid frame survives encode → decode exactly.
        #[test]
        fn weighted_sum_frames_round_trip(
            table_addr in any::<u64>(),
            idx in proptest::collection::vec(any::<u64>(), 0..32),
            w in proptest::collection::vec(any::<u64>(), 0..32),
            with_tag in any::<bool>(),
        ) {
            let f = Request::WeightedSum {
                table_addr,
                elem_bytes: 4,
                indices: idx,
                weights: w,
                with_tag,
            };
            prop_assert_eq!(Request::decode(&f.encode()).unwrap(), f);
        }
    }
}
