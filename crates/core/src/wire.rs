//! Wire format for the processor ↔ NDP command protocol.
//!
//! Figure 4's long arrows are real bus messages: the processor ships
//! ciphertext and issues weighted-summation commands; the NDP returns its
//! share of the result. This module pins down a byte-exact framing for
//! those messages — the form they would take on a DIMM mailbox or a
//! CXL/PCIe queue — so the protocol is demonstrably *wire-complete*: no
//! hidden Rust-object channel is smuggling state between the parties.
//!
//! Framing: one tag byte, then fields in little-endian; variable-length
//! vectors are `u32` length-prefixed. [`RemoteNdp`] wraps any device and
//! forces every interaction through encode → decode → execute → encode →
//! decode, byte-for-byte.
//!
//! # Traced frames (v2 envelope)
//!
//! A frame may optionally be wrapped in a trace envelope so the device can
//! stitch its spans into the processor-side trace:
//!
//! ```text
//! 0x7E | trace_id: u64 LE | parent_span: u64 LE | v1 frame bytes
//! ```
//!
//! [`Request::decode`] / [`Response::decode`] accept both forms (the
//! envelope is stripped transparently), so old frames still decode and old
//! decoders reject enveloped frames cleanly with `BadTag(0x7E)` rather
//! than misparsing them. [`Request::encode`] emits the legacy form;
//! [`Request::encode_traced`] adds the envelope only when the supplied
//! context is non-empty, so untraced builds produce byte-identical frames.

use crate::device::{validate_load, NdpDevice, NdpResponse};
use crate::error::Error;
use crate::net::{NetConfig, TcpEndpoint};
use crate::transport::{AsyncEndpoint, TransportConfig};
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::{words_from_le_bytes, words_to_le_bytes, RingWord};
use secndp_telemetry::trace::{self, SpanContext, SpanId, TraceId};
use std::sync::Mutex;

/// Envelope tag for traced (v2) frames. Disjoint from every v1 frame tag
/// (requests `0x01–0x03`, responses `0x81–0x83` / `0xFF`).
pub const FRAME_TRACED: u8 = 0x7E;

/// Byte length of the trace envelope (tag + trace id + parent span id).
const ENVELOPE_LEN: usize = 1 + 8 + 8;

/// Splits off a leading trace envelope, if present. Returns the inner
/// frame bytes and the carried context (`SpanContext::NONE` for legacy
/// frames).
fn strip_envelope(buf: &[u8]) -> Result<(&[u8], SpanContext), WireError> {
    if buf.first() != Some(&FRAME_TRACED) {
        return Ok((buf, SpanContext::NONE));
    }
    if buf.len() < ENVELOPE_LEN {
        return Err(WireError::Truncated);
    }
    let trace = u64::from_le_bytes(buf[1..9].try_into().unwrap());
    let span = u64::from_le_bytes(buf[9..17].try_into().unwrap());
    Ok((
        &buf[ENVELOPE_LEN..],
        SpanContext {
            trace: TraceId(trace),
            span: SpanId(span),
        },
    ))
}

/// Reads the trace id out of a traced frame without consuming it — used
/// by the transport's fault hooks to journal injections against the
/// query's trace even though the worker has no ambient span open.
pub(crate) fn peek_trace(frame: &[u8]) -> Option<u64> {
    if frame.first() == Some(&FRAME_TRACED) && frame.len() >= ENVELOPE_LEN {
        Some(u64::from_le_bytes(frame[1..9].try_into().unwrap()))
    } else {
        None
    }
}

/// Prefixes `inner` with a trace envelope when `ctx` is non-empty.
fn wrap_envelope(ctx: SpanContext, inner: Vec<u8>) -> Vec<u8> {
    if ctx.is_none() {
        return inner;
    }
    let mut out = Vec::with_capacity(ENVELOPE_LEN + inner.len());
    out.push(FRAME_TRACED);
    out.extend_from_slice(&ctx.trace.0.to_le_bytes());
    out.extend_from_slice(&ctx.span.0.to_le_bytes());
    out.extend_from_slice(&inner);
    out
}

/// A request frame from the processor to the NDP unit.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Store a table image (the `T0` transfer).
    Load {
        /// Table base address.
        table_addr: u64,
        /// Bytes per row.
        row_bytes: u32,
        /// Ciphertext image.
        ciphertext: Vec<u8>,
        /// Encrypted per-row tags, if any.
        tags: Option<Vec<u128>>,
    },
    /// `SecNDPInst` sequence + `SecNDPLd`: weighted summation over rows.
    WeightedSum {
        /// Table base address.
        table_addr: u64,
        /// Element width in bytes (1, 2, 4 or 8).
        elem_bytes: u8,
        /// Row indices.
        indices: Vec<u64>,
        /// Weights, zero-extended to 64 bits.
        weights: Vec<u64>,
        /// Whether the combined encrypted tag is requested.
        with_tag: bool,
    },
    /// Plain encrypted read of one row.
    ReadRow {
        /// Table base address.
        table_addr: u64,
        /// Row index.
        row: u64,
    },
}

/// A response frame from the NDP unit.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Load acknowledged.
    Ack,
    /// Result share bytes plus optional combined tag.
    Sum {
        /// `C_res` serialized little-endian.
        c_res: Vec<u8>,
        /// `C_T_res` canonical value, if requested.
        c_t_res: Option<u128>,
    },
    /// Raw row ciphertext.
    Row(Vec<u8>),
    /// Device-side error, by stable code.
    Err(u16),
}

/// Wire-level decode failures (distinct from protocol [`Error`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before a field was complete.
    Truncated,
    /// Unknown frame tag.
    BadTag(u8),
    /// Trailing bytes after a complete frame.
    TrailingBytes,
    /// A declared length exceeds the remaining frame.
    BadLength,
    /// A weighted-sum frame declared an element width outside {1, 2, 4, 8}.
    /// Rejected at decode time: coercing it to *any* width would silently
    /// compute a different query than the one the peer framed.
    BadElemBytes(u8),
    /// A field is too long for its `u32` length prefix (encode side).
    FrameTooLarge,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("frame truncated"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#x}"),
            WireError::TrailingBytes => f.write_str("trailing bytes after frame"),
            WireError::BadLength => f.write_str("length field exceeds frame"),
            WireError::BadElemBytes(b) => {
                write!(f, "element width {b} is not one of 1, 2, 4, 8")
            }
            WireError::FrameTooLarge => f.write_str("field exceeds the u32 length prefix"),
        }
    }
}

impl std::error::Error for WireError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn len(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if self.pos + n > self.buf.len() {
            // Even a length of element-sized records cannot exceed bytes.
            return Err(WireError::BadLength);
        }
        Ok(n)
    }

    /// Reads a `u32` record count and checks `count × record_bytes` fits in
    /// the remaining frame *before* any element is parsed, so an oversized
    /// count is rejected up front instead of draining the reader item by
    /// item.
    fn count(&mut self, record_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let total = n.checked_mul(record_bytes).ok_or(WireError::BadLength)?;
        if self.pos + total > self.buf.len() {
            return Err(WireError::BadLength);
        }
        Ok(n)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// Encodes a `u32` length prefix, rejecting lengths that do not fit rather
/// than truncating them into a decodable-but-corrupt frame.
fn put_len(out: &mut Vec<u8>, len: usize) -> Result<(), Error> {
    let n = u32::try_from(len).map_err(|_| Error::FrameTooLarge { len })?;
    out.extend_from_slice(&n.to_le_bytes());
    Ok(())
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) -> Result<(), Error> {
    put_len(out, b.len())?;
    out.extend_from_slice(b);
    Ok(())
}

impl Request {
    /// Serializes the request frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameTooLarge`] when a variable-length field does
    /// not fit its `u32` length prefix (a ≥ 4 GiB payload would otherwise
    /// silently truncate into a decodable-but-corrupt frame).
    pub fn encode(&self) -> Result<Vec<u8>, Error> {
        let mut out = Vec::new();
        match self {
            Request::Load {
                table_addr,
                row_bytes,
                ciphertext,
                tags,
            } => {
                out.push(0x01);
                out.extend_from_slice(&table_addr.to_le_bytes());
                out.extend_from_slice(&row_bytes.to_le_bytes());
                put_bytes(&mut out, ciphertext)?;
                match tags {
                    None => out.push(0),
                    Some(tags) => {
                        out.push(1);
                        put_len(&mut out, tags.len())?;
                        for t in tags {
                            out.extend_from_slice(&t.to_le_bytes());
                        }
                    }
                }
            }
            Request::WeightedSum {
                table_addr,
                elem_bytes,
                indices,
                weights,
                with_tag,
            } => {
                out.push(0x02);
                out.extend_from_slice(&table_addr.to_le_bytes());
                out.push(*elem_bytes);
                out.push(*with_tag as u8);
                put_len(&mut out, indices.len())?;
                for i in indices {
                    out.extend_from_slice(&i.to_le_bytes());
                }
                put_len(&mut out, weights.len())?;
                for w in weights {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
            Request::ReadRow { table_addr, row } => {
                out.push(0x03);
                out.extend_from_slice(&table_addr.to_le_bytes());
                out.extend_from_slice(&row.to_le_bytes());
            }
        }
        Ok(out)
    }

    /// Serializes the request, wrapping it in a trace envelope when `ctx`
    /// is non-empty (an empty context yields the legacy byte-identical
    /// encoding).
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameTooLarge`] as for [`encode`](Self::encode).
    pub fn encode_traced(&self, ctx: SpanContext) -> Result<Vec<u8>, Error> {
        Ok(wrap_envelope(ctx, self.encode()?))
    }

    /// Parses a request frame (legacy or traced), discarding any carried
    /// trace context.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed frames.
    pub fn decode(buf: &[u8]) -> Result<Request, WireError> {
        Self::decode_traced(buf).map(|(req, _)| req)
    }

    /// Parses a request frame, also returning the trace context carried by
    /// a v2 envelope ([`SpanContext::NONE`] for legacy frames).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed frames.
    pub fn decode_traced(buf: &[u8]) -> Result<(Request, SpanContext), WireError> {
        let (inner, ctx) = strip_envelope(buf)?;
        Ok((Self::decode_inner(inner)?, ctx))
    }

    fn decode_inner(buf: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(buf);
        let req = match r.u8()? {
            0x01 => {
                let table_addr = r.u64()?;
                let row_bytes = r.u32()?;
                let ciphertext = r.bytes()?;
                let tags = match r.u8()? {
                    0 => None,
                    _ => {
                        let n = r.count(16)?;
                        let mut tags = Vec::with_capacity(n);
                        for _ in 0..n {
                            tags.push(r.u128()?);
                        }
                        Some(tags)
                    }
                };
                Request::Load {
                    table_addr,
                    row_bytes,
                    ciphertext,
                    tags,
                }
            }
            0x02 => {
                let table_addr = r.u64()?;
                let elem_bytes = r.u8()?;
                // Reject unsupported widths at decode time: a device that
                // coerced, say, 3 to the u64 path would compute a *different
                // valid query* than the one the peer framed.
                if !matches!(elem_bytes, 1 | 2 | 4 | 8) {
                    return Err(WireError::BadElemBytes(elem_bytes));
                }
                let with_tag = r.u8()? != 0;
                let n = r.count(8)?;
                let mut indices = Vec::with_capacity(n);
                for _ in 0..n {
                    indices.push(r.u64()?);
                }
                let n = r.count(8)?;
                let mut weights = Vec::with_capacity(n);
                for _ in 0..n {
                    weights.push(r.u64()?);
                }
                Request::WeightedSum {
                    table_addr,
                    elem_bytes,
                    indices,
                    weights,
                    with_tag,
                }
            }
            0x03 => Request::ReadRow {
                table_addr: r.u64()?,
                row: r.u64()?,
            },
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameTooLarge`] when a variable-length field does
    /// not fit its `u32` length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, Error> {
        let mut out = Vec::new();
        match self {
            Response::Ack => out.push(0x81),
            Response::Sum { c_res, c_t_res } => {
                out.push(0x82);
                put_bytes(&mut out, c_res)?;
                match c_t_res {
                    None => out.push(0),
                    Some(t) => {
                        out.push(1);
                        out.extend_from_slice(&t.to_le_bytes());
                    }
                }
            }
            Response::Row(b) => {
                out.push(0x83);
                put_bytes(&mut out, b)?;
            }
            Response::Err(code) => {
                out.push(0xFF);
                out.extend_from_slice(&code.to_le_bytes());
            }
        }
        Ok(out)
    }

    /// Serializes the response, wrapping it in a trace envelope when `ctx`
    /// is non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameTooLarge`] as for [`encode`](Self::encode).
    pub fn encode_traced(&self, ctx: SpanContext) -> Result<Vec<u8>, Error> {
        Ok(wrap_envelope(ctx, self.encode()?))
    }

    /// Parses a response frame (legacy or traced), discarding any carried
    /// trace context.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed frames.
    pub fn decode(buf: &[u8]) -> Result<Response, WireError> {
        Self::decode_traced(buf).map(|(resp, _)| resp)
    }

    /// Parses a response frame, also returning the trace context carried
    /// by a v2 envelope ([`SpanContext::NONE`] for legacy frames).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed frames.
    pub fn decode_traced(buf: &[u8]) -> Result<(Response, SpanContext), WireError> {
        let (inner, ctx) = strip_envelope(buf)?;
        Ok((Self::decode_inner(inner)?, ctx))
    }

    fn decode_inner(buf: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(buf);
        let resp = match r.u8()? {
            0x81 => Response::Ack,
            0x82 => {
                let c_res = r.bytes()?;
                let c_t_res = match r.u8()? {
                    0 => None,
                    _ => Some(r.u128()?),
                };
                Response::Sum { c_res, c_t_res }
            }
            0x83 => Response::Row(r.bytes()?),
            0xFF => Response::Err(r.u16()?),
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Stable device-error codes carried in [`Response::Err`].
fn error_code(e: &Error) -> u16 {
    match e {
        Error::UnknownTable { .. } => 1,
        Error::RowOutOfBounds { .. } => 2,
        Error::TagsUnavailable => 3,
        Error::QueryLengthMismatch { .. } => 4,
        Error::ColOutOfBounds { .. } => 5,
        Error::ShapeMismatch { .. } => 6,
        _ => 0xFFFE,
    }
}

/// Device-side code for an unsupported element width: a frame that decodes
/// but names a width the device will not compute.
pub const CODE_BAD_ELEM_BYTES: u16 = 7;

/// Device-side code for a request frame the device could not decode at
/// all — sent by [`serve_or_reply`] so a networked client gets a typed
/// diagnostic instead of a dropped connection and a timeout.
pub const CODE_BAD_FRAME: u16 = 8;

pub(crate) fn error_from_code(code: u16, table_addr: u64) -> Error {
    match code {
        1 => Error::UnknownTable { table_addr },
        2 => Error::RowOutOfBounds { index: 0, rows: 0 },
        3 => Error::TagsUnavailable,
        4 => Error::QueryLengthMismatch {
            indices: 0,
            weights: 0,
        },
        5 => Error::ColOutOfBounds { index: 0, cols: 0 },
        6 => Error::ShapeMismatch {
            got: 0,
            expected: 0,
        },
        CODE_BAD_ELEM_BYTES => Error::MalformedResponse {
            reason: "unsupported element width",
        },
        CODE_BAD_FRAME => Error::MalformedResponse {
            reason: "device could not decode request frame",
        },
        _ => Error::MalformedResponse {
            reason: "device error",
        },
    }
}

fn request_op(req: &Request) -> &'static str {
    match req {
        Request::Load { .. } => "load",
        Request::WeightedSum { .. } => "weighted_sum",
        Request::ReadRow { .. } => "read_row",
    }
}

/// The device-side dispatcher: decodes a request, executes it against
/// `device`, and encodes the response — what the DIMM-side firmware does.
/// Traced frames open an `ndp_serve` child span under the processor-side
/// context carried in the envelope, and the reply frame carries the serve
/// span's context back.
pub fn serve<D: NdpDevice>(device: &mut D, frame: &[u8]) -> Result<Vec<u8>, WireError> {
    let (req, ctx) = Request::decode_traced(frame)?;
    let mut sp = trace::span_child_of(trace::names::NDP_SERVE, ctx);
    sp.attr_str("op", request_op(&req));
    let resp = match req {
        Request::Load {
            table_addr,
            row_bytes,
            ciphertext,
            tags,
        } => {
            match device.load(
                table_addr,
                ciphertext,
                row_bytes as usize,
                tags.map(|ts| ts.into_iter().map(Fq::new).collect()),
            ) {
                Ok(()) => Response::Ack,
                Err(e) => Response::Err(error_code(&e)),
            }
        }
        Request::WeightedSum {
            table_addr,
            elem_bytes,
            indices,
            weights,
            with_tag,
        } => dispatch_sum(device, table_addr, elem_bytes, &indices, &weights, with_tag),
        Request::ReadRow { table_addr, row } => dispatch_read_row(device, table_addr, row),
    };
    resp.encode_traced(sp.context())
        .map_err(|_| WireError::FrameTooLarge)
}

/// [`serve`] for network servers: a frame that fails to decode still gets
/// a typed [`Response::Err`] reply frame instead of no reply at all, so a
/// remote client sees an `Error::MalformedResponse`-class diagnostic
/// rather than a dropped connection and a timeout. The error reply echoes
/// the request's trace envelope (when one is readable), so even the
/// rejection stitches into the caller's trace.
pub fn serve_or_reply<D: NdpDevice>(device: &mut D, frame: &[u8]) -> Vec<u8> {
    match serve(device, frame) {
        Ok(reply) => reply,
        Err(err) => {
            let code = match err {
                WireError::BadElemBytes(_) => CODE_BAD_ELEM_BYTES,
                _ => CODE_BAD_FRAME,
            };
            let ctx = strip_envelope(frame)
                .map(|(_, c)| c)
                .unwrap_or(SpanContext::NONE);
            Response::Err(code)
                .encode_traced(ctx)
                .expect("error frame encodes")
        }
    }
}

/// Converts the wire's `u64` row indices to host `usize`, refusing (rather
/// than truncating) indices that do not fit — on a 32-bit device `as usize`
/// would alias row `2^32 + k` onto row `k`.
fn indices_to_usize(indices: &[u64]) -> Result<Vec<usize>, Error> {
    indices
        .iter()
        .map(|&i| {
            usize::try_from(i).map_err(|_| Error::RowOutOfBounds {
                index: usize::MAX,
                rows: 0,
            })
        })
        .collect()
}

/// Executes a weighted-sum request at the declared width. Decoding already
/// rejects widths outside {1, 2, 4, 8}; a device invoked with a hand-built
/// request still answers `Response::Err` instead of coercing the width.
fn dispatch_sum<D: NdpDevice>(
    device: &D,
    table_addr: u64,
    elem_bytes: u8,
    indices: &[u64],
    weights: &[u64],
    with_tag: bool,
) -> Response {
    let idx = match indices_to_usize(indices) {
        Ok(idx) => idx,
        Err(e) => return Response::Err(error_code(&e)),
    };
    let out = match elem_bytes {
        1 => run_sum::<u8, D>(device, table_addr, &idx, weights, with_tag),
        2 => run_sum::<u16, D>(device, table_addr, &idx, weights, with_tag),
        4 => run_sum::<u32, D>(device, table_addr, &idx, weights, with_tag),
        8 => run_sum::<u64, D>(device, table_addr, &idx, weights, with_tag),
        _ => return Response::Err(CODE_BAD_ELEM_BYTES),
    };
    match out {
        Ok((c_res, c_t_res)) => Response::Sum { c_res, c_t_res },
        Err(e) => Response::Err(error_code(&e)),
    }
}

fn dispatch_read_row<D: NdpDevice>(device: &D, table_addr: u64, row: u64) -> Response {
    let row = match usize::try_from(row) {
        Ok(row) => row,
        Err(_) => {
            return Response::Err(error_code(&Error::RowOutOfBounds {
                index: usize::MAX,
                rows: 0,
            }))
        }
    };
    match device.read_row(table_addr, row) {
        Ok(b) => Response::Row(b),
        Err(e) => Response::Err(error_code(&e)),
    }
}

fn run_sum<W: RingWord, D: NdpDevice>(
    device: &D,
    table_addr: u64,
    indices: &[usize],
    weights: &[u64],
    with_tag: bool,
) -> Result<(Vec<u8>, Option<u128>), Error> {
    let w: Vec<W> = weights.iter().map(|&x| W::from_u64(x)).collect();
    let r = device.weighted_sum::<W>(table_addr, indices, &w, with_tag)?;
    Ok((words_to_le_bytes(&r.c_res), r.c_t_res.map(|t| t.value())))
}

/// A device adaptor that forces every interaction through the byte-exact
/// wire format, proving the protocol carries everything it needs.
///
/// Two transports back it: the default serves each frame *inline* on the
/// caller's thread (the blocking round trip), while
/// [`async_backed`](Self::async_backed) — or `SECNDP_TRANSPORT=async` in
/// the environment — routes frames through an
/// [`AsyncEndpoint`](crate::transport::AsyncEndpoint) worker, exercising
/// the submit/wait completion path with identical semantics.
#[derive(Debug)]
pub struct RemoteNdp<D> {
    backend: Backend<D>,
}

#[derive(Debug)]
enum Backend<D> {
    /// Serve frames on the caller's thread (the blocking path).
    Inline(Mutex<D>),
    /// Submit frames to a worker-thread endpoint and await completion.
    Async(Box<AsyncEndpoint>),
    /// Ship frames over a real kernel TCP socket to a
    /// [`NetServer`](crate::net::NetServer) (external or self-hosted).
    Tcp(Box<TcpEndpoint>),
}

/// Decodes a reply frame from the untrusted device, mapping any wire-level
/// failure to a typed error. A malicious or faulty device must never be
/// able to panic the trusted side by sending garbage.
pub(crate) fn decode_reply(reply: &[u8]) -> Result<Response, Error> {
    Response::decode(reply).map_err(|_| crate::metrics::malformed("undecodable reply frame"))
}

/// Interprets a reply to a weighted-sum request, shared by the blocking
/// and async transports so both map device replies identically.
pub(crate) fn sum_from_response<W: RingWord>(
    resp: Response,
    table_addr: u64,
) -> Result<NdpResponse<W>, Error> {
    match resp {
        Response::Sum { c_res, c_t_res } => Ok(NdpResponse {
            c_res: words_from_le_bytes::<W>(&c_res),
            c_t_res: c_t_res.map(Fq::new),
        }),
        Response::Err(code) => Err(error_from_code(code, table_addr)),
        Response::Ack => Err(crate::metrics::malformed("ack for a sum request")),
        Response::Row(_) => Err(crate::metrics::malformed("wrong response kind")),
    }
}

impl<D: NdpDevice + Send + 'static> RemoteNdp<D> {
    /// Wraps a device behind the wire. The transport is chosen by the
    /// `SECNDP_TRANSPORT` environment variable: `async` routes every frame
    /// through a single-rank [`AsyncEndpoint`](crate::transport::AsyncEndpoint)
    /// (configured by the `SECNDP_TRANSPORT_*` knobs); anything else — or
    /// nothing — serves frames inline on the caller's thread.
    pub fn new(inner: D) -> Self {
        match std::env::var("SECNDP_TRANSPORT").as_deref() {
            Ok("async") => Self::async_backed(inner, TransportConfig::from_env()),
            Ok("tcp") => Self::tcp_from_env(inner),
            _ => Self::inline(inner),
        }
    }

    /// Wraps a device behind an async (worker-thread) transport, explicitly.
    pub fn async_backed(inner: D, cfg: TransportConfig) -> Self {
        Self {
            backend: Backend::Async(Box::new(AsyncEndpoint::single(inner, cfg))),
        }
    }

    /// The `SECNDP_TRANSPORT=tcp` backend: with `SECNDP_TRANSPORT_ADDRS`
    /// set, connects to those external server ranks (`inner` is dropped —
    /// the server hosts the devices); otherwise self-hosts `inner` behind
    /// a private loopback [`NetServer`](crate::net::NetServer) so every
    /// frame still crosses a real kernel socket.
    pub fn tcp_from_env(inner: D) -> Self {
        let cfg = NetConfig::from_env();
        let ep = if cfg.addrs.is_empty() {
            TcpEndpoint::self_hosted(inner, cfg).expect("bind loopback ndp device server")
        } else {
            TcpEndpoint::connect(cfg).expect("connect tcp ndp endpoint")
        };
        Self {
            backend: Backend::Tcp(Box::new(ep)),
        }
    }
}

impl<D: NdpDevice> RemoteNdp<D> {
    /// Wraps a device behind the blocking inline transport, explicitly
    /// (ignores `SECNDP_TRANSPORT`).
    pub fn inline(inner: D) -> Self {
        Self {
            backend: Backend::Inline(Mutex::new(inner)),
        }
    }

    /// Wraps an already-connected TCP endpoint, explicitly.
    pub fn tcp_backed(ep: TcpEndpoint) -> Self {
        Self {
            backend: Backend::Tcp(Box::new(ep)),
        }
    }

    fn round_trip(&self, req: &Request) -> Result<Response, Error> {
        let mut sp = trace::span(trace::names::WIRE_ROUND_TRIP);
        let _t = crate::metrics::wire_round_trip().start_timer();
        match &self.backend {
            Backend::Inline(dev) => {
                let frame = {
                    let _e = trace::span(trace::names::WIRE_ENCODE);
                    req.encode_traced(sp.context())?
                };
                crate::metrics::wire_packets().inc();
                crate::metrics::wire_tx_bytes().add(frame.len() as u64);
                secndp_telemetry::profile::add_wire_bytes(frame.len() as u64, 0);
                sp.attr_u64("tx_bytes", frame.len() as u64);
                // Re-decode both directions to guarantee byte-exactness.
                let reply = serve(&mut *dev.lock().unwrap(), &frame)
                    .map_err(|_| crate::metrics::malformed("device rejected request frame"))?;
                crate::metrics::wire_rx_bytes().add(reply.len() as u64);
                secndp_telemetry::profile::add_wire_bytes(0, reply.len() as u64);
                sp.attr_u64("rx_bytes", reply.len() as u64);
                decode_reply(&reply)
            }
            Backend::Async(ep) => {
                // `submit` encodes under the ambient context, i.e. under
                // `sp` — device-side spans stitch exactly as inline ones.
                if matches!(req, Request::Load { .. }) {
                    ep.broadcast(req)
                } else {
                    let id = ep.submit(req)?;
                    ep.wait(id)
                }
            }
            // The endpoint encodes under the ambient context (`sp`), so
            // server-side `ndp_serve` spans stitch across the socket.
            Backend::Tcp(ep) => ep.round_trip(req),
        }
    }
}

impl<D: NdpDevice> NdpDevice for RemoteNdp<D> {
    fn load(
        &mut self,
        table_addr: u64,
        ciphertext: Vec<u8>,
        row_bytes: usize,
        tags: Option<Vec<Fq>>,
    ) -> Result<(), Error> {
        // Validate shape before the round trip: the wire error code carries
        // no payload, so a local check preserves the faithful field values
        // (and skips shipping a torn table to the device at all).
        validate_load(ciphertext.len(), row_bytes)?;
        let req = Request::Load {
            table_addr,
            row_bytes: row_bytes as u32,
            ciphertext,
            tags: tags.map(|ts| ts.iter().map(|t| t.value()).collect()),
        };
        match self.round_trip(&req)? {
            Response::Ack => Ok(()),
            Response::Err(code) => Err(error_from_code(code, table_addr)),
            _ => Err(crate::metrics::malformed("unexpected load reply")),
        }
    }

    fn weighted_sum<W: RingWord>(
        &self,
        table_addr: u64,
        indices: &[usize],
        weights: &[W],
        with_tag: bool,
    ) -> Result<NdpResponse<W>, Error> {
        let req = Request::WeightedSum {
            table_addr,
            elem_bytes: W::BYTES as u8,
            indices: indices.iter().map(|&i| i as u64).collect(),
            weights: weights.iter().map(|w| w.as_u64()).collect(),
            with_tag,
        };
        sum_from_response(self.round_trip(&req)?, table_addr)
    }

    fn read_row(&self, table_addr: u64, row: usize) -> Result<Vec<u8>, Error> {
        let req = Request::ReadRow {
            table_addr,
            row: row as u64,
        };
        match self.round_trip(&req)? {
            Response::Row(b) => Ok(b),
            Response::Err(code) => Err(error_from_code(code, table_addr)),
            _ => Err(crate::metrics::malformed("wrong response kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::HonestNdp;
    use crate::keys::SecretKey;
    use crate::protocol::TrustedProcessor;
    use proptest::prelude::*;

    #[test]
    fn request_frames_round_trip() {
        let frames = [
            Request::Load {
                table_addr: 0x1000,
                row_bytes: 64,
                ciphertext: vec![1, 2, 3, 4],
                tags: Some(vec![7u128, u128::MAX >> 1]),
            },
            Request::Load {
                table_addr: 0,
                row_bytes: 1,
                ciphertext: vec![],
                tags: None,
            },
            Request::WeightedSum {
                table_addr: 42,
                elem_bytes: 4,
                indices: vec![0, 5, 9],
                weights: vec![1, 2, 3],
                with_tag: true,
            },
            Request::ReadRow {
                table_addr: 7,
                row: 3,
            },
        ];
        for f in frames {
            assert_eq!(Request::decode(&f.encode().unwrap()).unwrap(), f);
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let frames = [
            Response::Ack,
            Response::Sum {
                c_res: vec![9; 32],
                c_t_res: Some(12345),
            },
            Response::Sum {
                c_res: vec![],
                c_t_res: None,
            },
            Response::Row(vec![1, 2, 3]),
            Response::Err(3),
        ];
        for f in frames {
            assert_eq!(Response::decode(&f.encode().unwrap()).unwrap(), f);
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
        assert_eq!(Request::decode(&[0x42]), Err(WireError::BadTag(0x42)));
        // Truncated weighted-sum.
        let mut f = Request::ReadRow {
            table_addr: 1,
            row: 2,
        }
        .encode()
        .unwrap();
        f.pop();
        assert_eq!(Request::decode(&f), Err(WireError::Truncated));
        // Trailing junk.
        let mut f = Response::Ack.encode().unwrap();
        f.push(0);
        assert_eq!(Response::decode(&f), Err(WireError::TrailingBytes));
        // Absurd length field.
        let mut f = vec![0x83];
        f.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Response::decode(&f), Err(WireError::BadLength));
    }

    /// Satellite bugfix: a weighted-sum frame declaring an element width
    /// outside {1, 2, 4, 8} must be rejected at decode time — the old code
    /// coerced every unknown width onto the u64 path, silently computing a
    /// different query than the peer framed.
    #[test]
    fn invalid_elem_bytes_rejected_at_decode() {
        let good = Request::WeightedSum {
            table_addr: 42,
            elem_bytes: 4,
            indices: vec![0, 1],
            weights: vec![1, 2],
            with_tag: false,
        }
        .encode()
        .unwrap();
        // Byte 9 is elem_bytes (tag + 8-byte addr).
        for bad in [0u8, 3, 5, 6, 7, 9, 16, 255] {
            let mut f = good.clone();
            f[9] = bad;
            assert_eq!(
                Request::decode(&f),
                Err(WireError::BadElemBytes(bad)),
                "width {bad} must not decode"
            );
            // And a device served such a frame answers nothing computable:
            // serve() refuses the frame at decode, before any dispatch.
            let mut dev = HonestNdp::new();
            assert_eq!(serve(&mut dev, &f), Err(WireError::BadElemBytes(bad)));
        }
        // The four legal widths still decode.
        for ok in [1u8, 2, 4, 8] {
            let mut f = good.clone();
            f[9] = ok;
            assert!(Request::decode(&f).is_ok());
        }
        // Defense in depth: a device invoked below the decoder (hand-built
        // request) still answers Err(7), never a coerced result.
        let resp = dispatch_sum(&HonestNdp::new(), 42, 3, &[0], &[1], false);
        assert_eq!(resp, Response::Err(CODE_BAD_ELEM_BYTES));
        assert!(matches!(
            error_from_code(CODE_BAD_ELEM_BYTES, 42),
            Error::MalformedResponse {
                reason: "unsupported element width"
            }
        ));
    }

    /// Satellite bugfix: a network server must answer a typed error frame
    /// when a request is decodable-but-invalid (or pure garbage), never
    /// drop the connection and leave the client to time out.
    #[test]
    fn serve_or_reply_answers_typed_error_frames() {
        // A frame that decodes structurally but names an illegal width.
        let mut f = Request::WeightedSum {
            table_addr: 42,
            elem_bytes: 4,
            indices: vec![0, 1],
            weights: vec![1, 2],
            with_tag: false,
        }
        .encode()
        .unwrap();
        f[9] = 3; // byte 9 is elem_bytes (tag + 8-byte addr)
        let mut dev = HonestNdp::new();
        assert_eq!(serve(&mut dev, &f), Err(WireError::BadElemBytes(3)));
        let reply = serve_or_reply(&mut dev, &f);
        assert_eq!(
            Response::decode(&reply).unwrap(),
            Response::Err(CODE_BAD_ELEM_BYTES)
        );
        // Pure garbage still earns a decodable reply frame.
        let reply = serve_or_reply(&mut dev, &[0x42, 1, 2, 3]);
        assert_eq!(
            Response::decode(&reply).unwrap(),
            Response::Err(CODE_BAD_FRAME)
        );
        assert!(matches!(
            error_from_code(CODE_BAD_FRAME, 0),
            Error::MalformedResponse {
                reason: "device could not decode request frame"
            }
        ));
        // A traced request's error reply echoes the trace envelope.
        let ctx = SpanContext {
            trace: TraceId(0xABCD),
            span: SpanId(7),
        };
        let traced = Request::WeightedSum {
            table_addr: 42,
            elem_bytes: 4,
            indices: vec![0],
            weights: vec![1],
            with_tag: false,
        }
        .encode_traced(ctx)
        .unwrap();
        let mut broken = traced.clone();
        broken[ENVELOPE_LEN + 9] = 3;
        let reply = serve_or_reply(&mut dev, &broken);
        assert_eq!(reply[0], FRAME_TRACED);
        assert_eq!(u64::from_le_bytes(reply[1..9].try_into().unwrap()), 0xABCD);
        assert_eq!(
            Response::decode(&reply).unwrap(),
            Response::Err(CODE_BAD_ELEM_BYTES)
        );
        // A well-formed frame passes through to the normal serve path
        // (here: a device-side error for an unknown table, code 1).
        let ok = Request::ReadRow {
            table_addr: 1,
            row: 0,
        }
        .encode()
        .unwrap();
        let reply = serve_or_reply(&mut dev, &ok);
        assert_eq!(Response::decode(&reply).unwrap(), Response::Err(1));
    }

    /// Satellite bugfix: an oversized record count must be rejected up
    /// front (`count × record_size` checked against the remaining frame),
    /// not by draining the reader item by item or attempting a huge
    /// allocation.
    #[test]
    fn oversized_count_frames_rejected() {
        // WeightedSum with an indices count of u32::MAX but no payload.
        let mut f = vec![0x02];
        f.extend_from_slice(&7u64.to_le_bytes()); // table_addr
        f.push(4); // elem_bytes
        f.push(0); // with_tag
        f.extend_from_slice(&u32::MAX.to_le_bytes()); // indices count
        assert_eq!(Request::decode(&f), Err(WireError::BadLength));
        // Same for the weights count after a valid (empty) indices vector.
        let mut f = vec![0x02];
        f.extend_from_slice(&7u64.to_le_bytes());
        f.push(4);
        f.push(0);
        f.extend_from_slice(&0u32.to_le_bytes()); // indices: none
        f.extend_from_slice(&u32::MAX.to_le_bytes()); // weights count
        assert_eq!(Request::decode(&f), Err(WireError::BadLength));
        // Load with an absurd tag count: `count × 16` would overflow a
        // 32-bit usize — checked_mul turns that into BadLength, not a wrap.
        let mut f = vec![0x01];
        f.extend_from_slice(&0u64.to_le_bytes()); // table_addr
        f.extend_from_slice(&16u32.to_le_bytes()); // row_bytes
        f.extend_from_slice(&0u32.to_le_bytes()); // ciphertext: empty
        f.push(1); // tags present
        f.extend_from_slice(&u32::MAX.to_le_bytes()); // tag count
        assert_eq!(Request::decode(&f), Err(WireError::BadLength));
    }

    /// Satellite bugfix: encoding a field longer than `u32::MAX` items must
    /// fail typed instead of truncating the length prefix into a
    /// decodable-but-corrupt frame. (Exercised on the prefix writer
    /// directly — materializing a real ≥4 GiB vector is not test-friendly.)
    #[test]
    #[cfg(target_pointer_width = "64")]
    fn frame_too_large_is_checked_at_encode() {
        let mut out = Vec::new();
        assert!(put_len(&mut out, u32::MAX as usize).is_ok());
        let too_big = u32::MAX as usize + 1;
        assert!(matches!(
            put_len(&mut out, too_big),
            Err(Error::FrameTooLarge { len }) if len == too_big
        ));
        // Nothing was appended by the failed encode.
        assert_eq!(out.len(), 4);
    }

    /// Satellite bugfix: a `ReadRow` whose u64 row index exceeds `usize`
    /// answers a typed device error; on 64-bit hosts (where every u64 row
    /// fits) the index is simply out of bounds. Either way: no `as usize`
    /// truncation aliasing row `2^32 + k` onto row `k`.
    #[test]
    fn huge_row_indices_never_truncate() {
        let mut dev = HonestNdp::new();
        dev.load(0x10, vec![0u8; 32], 16, None).unwrap();
        for row in [u64::MAX, 1u64 << 33] {
            let frame = Request::ReadRow {
                table_addr: 0x10,
                row,
            }
            .encode()
            .unwrap();
            let reply = serve(&mut dev, &frame).unwrap();
            assert_eq!(decode_reply(&reply).unwrap(), Response::Err(2));
        }
        // Same guard on the weighted-sum index path.
        let frame = Request::WeightedSum {
            table_addr: 0x10,
            elem_bytes: 4,
            indices: vec![u64::MAX],
            weights: vec![1],
            with_tag: false,
        }
        .encode()
        .unwrap();
        let reply = serve(&mut dev, &frame).unwrap();
        assert_eq!(decode_reply(&reply).unwrap(), Response::Err(2));
    }

    #[test]
    fn full_protocol_over_the_wire() {
        // The entire SecNDP protocol runs against a device reachable only
        // through byte frames — and still verifies.
        let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x61; 16]));
        let mut remote = RemoteNdp::new(HonestNdp::new());
        let pt: Vec<u32> = (0..48).map(|x| x * 7 + 2).collect();
        let table = cpu.encrypt_table(&pt, 6, 8, 0x9000).unwrap();
        let handle = cpu.publish(&table, &mut remote).unwrap();
        let res = cpu
            .weighted_sum(&handle, &remote, &[0, 3, 5], &[1u32, 2, 3], true)
            .unwrap();
        for j in 0..8 {
            assert_eq!(res[j], pt[j] + 2 * pt[24 + j] + 3 * pt[40 + j]);
        }
        // Row reads too.
        assert_eq!(
            cpu.read_row::<u32, _>(&handle, &remote, 2).unwrap(),
            &pt[16..24]
        );
        // Device errors survive the wire as typed errors.
        assert!(matches!(
            remote.weighted_sum::<u32>(0xdead, &[0], &[1], false),
            Err(Error::UnknownTable { .. })
        ));
    }

    #[test]
    fn wire_works_at_all_widths() {
        let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x62; 16]));
        let mut remote = RemoteNdp::new(HonestNdp::new());
        let pt: Vec<u64> = (0..16).collect();
        let table = cpu.encrypt_table(&pt, 4, 4, 0).unwrap();
        let handle = cpu.publish(&table, &mut remote).unwrap();
        let res = cpu
            .weighted_sum(&handle, &remote, &[3], &[2u64], true)
            .unwrap();
        assert_eq!(res, vec![24, 26, 28, 30]);
    }

    #[test]
    fn garbage_replies_surface_as_typed_errors() {
        // Any undecodable reply from the untrusted side becomes a typed
        // error, never a panic.
        for garbage in [&[][..], &[0x42][..], &[0x82, 1, 2][..], &[0xFF][..]] {
            assert!(matches!(
                decode_reply(garbage),
                Err(Error::MalformedResponse { .. })
            ));
        }
        // A well-formed but wrong-kind reply to a load is also an error.
        assert!(matches!(
            decode_reply(&Response::Row(vec![1]).encode().unwrap()),
            Ok(Response::Row(_))
        ));
    }

    #[test]
    fn load_errors_survive_the_wire() {
        let mut remote = RemoteNdp::new(HonestNdp::new());
        // row_bytes does not divide the image: rejected before the round
        // trip, with the faithful field values the wire code cannot carry.
        assert!(matches!(
            remote.load(0x100, vec![0u8; 10], 16, None),
            Err(Error::ShapeMismatch {
                got: 10,
                expected: 16
            })
        ));
        // The device-side guard holds on its own too: a torn Load frame
        // served directly comes back as the ShapeMismatch wire code.
        let frame = Request::Load {
            table_addr: 0x100,
            row_bytes: 16,
            ciphertext: vec![0u8; 10],
            tags: None,
        }
        .encode()
        .unwrap();
        let mut dev = HonestNdp::new();
        let reply = serve(&mut dev, &frame).unwrap();
        assert_eq!(decode_reply(&reply).unwrap(), Response::Err(6));
        assert!(matches!(
            error_from_code(6, 0x100),
            Error::ShapeMismatch { .. }
        ));
        // A valid load still acks.
        remote.load(0x100, vec![0u8; 32], 16, None).unwrap();
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Load {
                table_addr: 0x1000,
                row_bytes: 64,
                ciphertext: vec![1, 2, 3, 4],
                tags: Some(vec![7u128, u128::MAX >> 1]),
            },
            Request::Load {
                table_addr: 0,
                row_bytes: 1,
                ciphertext: vec![9],
                tags: None,
            },
            Request::WeightedSum {
                table_addr: 42,
                elem_bytes: 4,
                indices: vec![0, 5, 9],
                weights: vec![1, 2, 3],
                with_tag: true,
            },
            Request::ReadRow {
                table_addr: 7,
                row: 3,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Ack,
            Response::Sum {
                c_res: vec![9; 32],
                c_t_res: Some(12345),
            },
            Response::Row(vec![1, 2, 3]),
            Response::Err(3),
        ]
    }

    #[test]
    fn traced_frames_round_trip_and_interoperate() {
        let ctx = SpanContext {
            trace: TraceId(0xAABB_CCDD_EEFF_0011),
            span: SpanId(0x7788_99AA_BBCC_DDEE),
        };
        for req in sample_requests() {
            let traced = req.encode_traced(ctx).unwrap();
            assert_eq!(traced[0], FRAME_TRACED);
            // decode_traced recovers both the frame and the context.
            assert_eq!(Request::decode_traced(&traced).unwrap(), (req.clone(), ctx));
            // Plain decode strips the envelope transparently.
            assert_eq!(Request::decode(&traced).unwrap(), req);
            // Legacy frames carry no context; empty-ctx traced encoding is
            // byte-identical to legacy.
            let legacy = req.encode().unwrap();
            assert_eq!(req.encode_traced(SpanContext::NONE).unwrap(), legacy);
            assert_eq!(
                Request::decode_traced(&legacy).unwrap(),
                (req.clone(), SpanContext::NONE)
            );
        }
        for resp in sample_responses() {
            let traced = resp.encode_traced(ctx).unwrap();
            assert_eq!(
                Response::decode_traced(&traced).unwrap(),
                (resp.clone(), ctx)
            );
            assert_eq!(Response::decode(&traced).unwrap(), resp);
            assert_eq!(
                resp.encode_traced(SpanContext::NONE).unwrap(),
                resp.encode().unwrap()
            );
        }
        // A bare or truncated envelope is Truncated, not a panic.
        assert_eq!(Request::decode(&[FRAME_TRACED]), Err(WireError::Truncated));
        assert_eq!(
            Response::decode(&[FRAME_TRACED, 1, 2, 3]),
            Err(WireError::Truncated)
        );
        // An envelope cannot nest: the inner bytes must be a v1 frame.
        let double = wrap_envelope(
            ctx,
            Request::ReadRow {
                table_addr: 1,
                row: 2,
            }
            .encode_traced(ctx)
            .unwrap(),
        );
        assert_eq!(
            Request::decode(&double),
            Err(WireError::BadTag(FRAME_TRACED))
        );
    }

    /// Satellite: exhaustive small-frame + truncation + byte-flip matrix.
    /// Deterministic (no wall-clock, no external RNG): an LCG drives the
    /// random frames so failures replay exactly.
    #[test]
    fn decode_matrix_never_panics_and_errors_are_typed() {
        // 1) Exhaustive frames of length 0..=2: every decode returns
        //    Ok or a WireError — by construction it cannot panic, and we
        //    force evaluation of every byte pattern.
        let _ = Request::decode(&[]);
        let _ = Response::decode(&[]);
        for a in 0..=255u8 {
            let _ = Request::decode(&[a]);
            let _ = Response::decode(&[a]);
            for b in 0..=255u8 {
                let _ = Request::decode(&[a, b]);
                let _ = Response::decode(&[a, b]);
            }
        }
        // 2) Every strict prefix of every canonical frame (legacy and
        //    traced) fails to decode: no prefix of a valid frame is
        //    silently accepted as a different valid frame.
        let ctx = SpanContext {
            trace: TraceId(5),
            span: SpanId(6),
        };
        let req_frames: Vec<Vec<u8>> = sample_requests()
            .iter()
            .flat_map(|r| [r.encode().unwrap(), r.encode_traced(ctx).unwrap()])
            .collect();
        let resp_frames: Vec<Vec<u8>> = sample_responses()
            .iter()
            .flat_map(|r| [r.encode().unwrap(), r.encode_traced(ctx).unwrap()])
            .collect();
        for f in &req_frames {
            assert!(Request::decode(f).is_ok());
            for cut in 0..f.len() {
                assert!(
                    Request::decode(&f[..cut]).is_err(),
                    "prefix len {cut} of {f:02x?}"
                );
            }
        }
        for f in &resp_frames {
            assert!(Response::decode(f).is_ok());
            for cut in 0..f.len() {
                assert!(
                    Response::decode(&f[..cut]).is_err(),
                    "prefix len {cut} of {f:02x?}"
                );
            }
        }
        // 3) Single-byte corruptions of valid frames never panic (they may
        //    still decode, e.g. a flipped payload byte).
        for f in req_frames.iter().chain(&resp_frames) {
            for i in 0..f.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut m = f.clone();
                    m[i] ^= flip;
                    let _ = Request::decode(&m);
                    let _ = Response::decode(&m);
                }
            }
        }
        // 4) LCG-driven random frames up to 64 bytes.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for _ in 0..20_000 {
            let len = (next() as usize) % 65;
            let bytes: Vec<u8> = (0..len).map(|_| next()).collect();
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }
    }

    /// Satellite: the traced-frame (0x7E) envelope gets its own fuzz
    /// matrix — truncated, duplicated and garbage trace headers must
    /// produce typed errors (never a panic), header *content* must be
    /// opaque (any 16 bytes decode as ids), and legacy↔traced interop
    /// stays pinned. Deterministic: the random stage is LCG-driven.
    #[test]
    fn traced_envelope_fuzz_matrix() {
        let ctx = SpanContext {
            trace: TraceId(0xAAAA),
            span: SpanId(0xBBBB),
        };
        // 1) Every truncated envelope — the tag alone plus 0..16 header
        //    bytes — is Truncated for requests and responses alike.
        for extra in 0..(ENVELOPE_LEN - 1) {
            let mut frame = vec![FRAME_TRACED];
            frame.extend((0..extra).map(|i| i as u8));
            assert_eq!(
                Request::decode(&frame),
                Err(WireError::Truncated),
                "request envelope with {extra} header bytes"
            );
            assert_eq!(
                Response::decode(&frame),
                Err(WireError::Truncated),
                "response envelope with {extra} header bytes"
            );
        }
        // 2) Header content is opaque: any 16 garbage bytes in front of a
        //    valid inner frame decode cleanly, and the ids round-trip
        //    verbatim — no interpretation, no validation, no panic.
        let inner_req = Request::ReadRow {
            table_addr: 7,
            row: 9,
        };
        for fill in [0x00u8, 0x7E, 0xA5, 0xFF] {
            let mut frame = vec![FRAME_TRACED];
            frame.extend([fill; ENVELOPE_LEN - 1]);
            frame.extend(inner_req.encode().unwrap());
            let (req, got) = Request::decode_traced(&frame).unwrap();
            assert_eq!(req, inner_req);
            let expect = u64::from_le_bytes([fill; 8]);
            assert_eq!(got.trace, TraceId(expect));
            assert_eq!(got.span, SpanId(expect));
        }
        // 3) Envelopes do not nest, in either direction and for both
        //    frame families: the duplicate tag is a typed BadTag.
        for req in sample_requests() {
            let doubled = wrap_envelope(ctx, req.encode_traced(ctx).unwrap());
            assert_eq!(
                Request::decode(&doubled),
                Err(WireError::BadTag(FRAME_TRACED))
            );
            assert_eq!(
                Request::decode_traced(&doubled).map(|(r, _)| r),
                Err(WireError::BadTag(FRAME_TRACED))
            );
        }
        for resp in sample_responses() {
            let doubled = wrap_envelope(ctx, resp.encode_traced(ctx).unwrap());
            assert_eq!(
                Response::decode(&doubled),
                Err(WireError::BadTag(FRAME_TRACED))
            );
        }
        // 4) A well-formed envelope around garbage inner bytes fails with
        //    the *inner* decoder's typed error — the envelope must not
        //    mask or transform it.
        let mut garbage_inner = vec![FRAME_TRACED];
        garbage_inner.extend([0x11; ENVELOPE_LEN - 1]);
        garbage_inner.extend([0xEE, 0xEE, 0xEE]);
        assert_eq!(
            Request::decode(&garbage_inner),
            Err(WireError::BadTag(0xEE))
        );
        // 5) Interop pin: the traced encoding is exactly envelope ‖
        //    legacy encoding, so stripping 17 bytes yields the legacy
        //    frame and both decoders agree on the payload.
        for resp in sample_responses() {
            let traced = resp.encode_traced(ctx).unwrap();
            let legacy = resp.encode().unwrap();
            assert_eq!(&traced[ENVELOPE_LEN..], &legacy[..]);
            assert_eq!(Response::decode(&traced).unwrap(), resp);
            assert_eq!(Response::decode(&legacy).unwrap(), resp);
        }
        // 6) LCG-driven random 0x7E-prefixed frames: never a panic, and
        //    `peek_trace` agrees with the full decoder on the trace id
        //    whenever the frame decodes at all.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for _ in 0..20_000 {
            let len = (next() as usize) % 64;
            let mut bytes = vec![FRAME_TRACED];
            bytes.extend((0..len).map(|_| next()));
            let peeked = peek_trace(&bytes);
            if let Ok((_, got)) = Request::decode_traced(&bytes) {
                assert_eq!(peeked, Some(got.trace.0));
            }
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }
        // peek_trace itself: short frames and legacy frames peek nothing.
        assert_eq!(peek_trace(&[FRAME_TRACED; 5]), None);
        assert_eq!(peek_trace(&inner_req.encode().unwrap()), None);
    }

    proptest! {
        /// Decoding never panics on arbitrary bytes.
        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }

        /// Any valid frame survives encode → decode exactly.
        #[test]
        fn weighted_sum_frames_round_trip(
            table_addr in any::<u64>(),
            idx in proptest::collection::vec(any::<u64>(), 0..32),
            w in proptest::collection::vec(any::<u64>(), 0..32),
            with_tag in any::<bool>(),
        ) {
            let f = Request::WeightedSum {
                table_addr,
                elem_bytes: 4,
                indices: idx,
                weights: w,
                with_tag,
            };
            prop_assert_eq!(Request::decode(&f.encode().unwrap()).unwrap(), f);
        }
    }
}
