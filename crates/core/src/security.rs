//! Concrete security bounds — Theorems 1 and 2 as executable formulas.
//!
//! The paper bounds the adversary's advantage in terms of system
//! parameters:
//!
//! - **Theorem 1** (encryption):
//!   `Adv_CPA ≤ 2^−w_K + Adv_E00(|Q|′)` with
//!   `|Q|′ = (m·n·wₑ/w_c)·|Q_e|` — for an ideal cipher the residual term
//!   follows the PRP/PRF switching bound `|Q|′² / 2^(w_c+1)`.
//! - **Theorem 2** (verification):
//!   `Adv_MAC ≤ m·|Q_v|/q + |Q_v|·(Adv_E00 + Adv_E01 + Adv_E10)`,
//!   improved to `m/(cnt_s·q)` per verification query by Algorithm 8.
//!
//! §IV-G instantiates this: with `w_t = 127`, `q = 2¹²⁷ − 1` and a
//! 1024-element row, "we can serve 2⁵³ queries without changing key, while
//! maintaining a security level higher than 64 bits". [`MacBound`]
//! reproduces that arithmetic, and tests pin it.
//!
//! All bounds are tracked in log₂ (security "bits") to avoid floating-point
//! underflow at the 2⁻¹²⁰ scale.

use crate::checksum::ChecksumScheme;

/// Adds two probabilities expressed as log₂ (both ≤ 0): `log₂(2^a + 2^b)`.
fn log2_add(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + (lo - hi).exp2()).log2()
}

/// System parameters for the encryption bound (Theorem 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncBound {
    /// Key width `w_K` in bits.
    pub key_bits: u32,
    /// Cipher block width `w_c` in bits (128 for AES).
    pub block_bits: u32,
    /// Element width `wₑ` in bits.
    pub elem_bits: u32,
    /// Matrix rows `n`.
    pub rows: u64,
    /// Matrix columns `m`.
    pub cols: u64,
    /// Encryption queries `|Q_e|` the adversary may observe.
    pub enc_queries: u64,
}

impl EncBound {
    /// Cipher invocations the adversary observes:
    /// `|Q|′ = (m·n·wₑ/w_c)·|Q_e|`.
    pub fn cipher_queries(&self) -> f64 {
        (self.rows as f64) * (self.cols as f64) * (self.elem_bits as f64) / (self.block_bits as f64)
            * (self.enc_queries as f64)
    }

    /// log₂ of the total CPA advantage, modelling the block cipher as an
    /// ideal PRP (switching lemma: `|Q|′²/2^(w_c+1)`), capped at 1.
    pub fn advantage_log2(&self) -> f64 {
        let key_guess = -(self.key_bits as f64);
        let q = self.cipher_queries().max(1.0);
        let switching = (2.0 * q.log2() - (self.block_bits as f64 + 1.0)).min(0.0);
        log2_add(key_guess, switching).min(0.0)
    }

    /// Security level in bits: `−log₂(Adv)`.
    pub fn security_bits(&self) -> f64 {
        -self.advantage_log2()
    }
}

/// System parameters for the verification bound (Theorem 2).
///
/// ```
/// use secndp_core::security::MacBound;
/// // The paper's §IV-G example: m = 1024, w_t = 127 allows 2^53 queries
/// // while keeping the forgery term at 64-bit security.
/// let budget = MacBound::max_query_budget_log2(1024, 127, 64.0);
/// assert_eq!(budget, 53.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacBound {
    /// Tag width `w_t` in bits (`q ≈ 2^w_t`).
    pub tag_bits: u32,
    /// Row width `m` (elements per row).
    pub cols: u64,
    /// Matrix rows `n`.
    pub rows: u64,
    /// Element width `wₑ` in bits.
    pub elem_bits: u32,
    /// Cipher block width `w_c` in bits.
    pub block_bits: u32,
    /// Sign queries `|Q_s|`.
    pub sign_queries: u64,
    /// Verification queries `|Q_v|`.
    pub verify_queries: u64,
    /// Checksum scheme (Algorithm 2 or 8).
    pub scheme: ChecksumScheme,
}

impl MacBound {
    /// The paper's §IV-G configuration: `w_t = 127`, row width `m`, equal
    /// sign/verify budgets of `queries` each, single-`s` checksums.
    pub fn paper_config(cols: u64, queries: u64) -> Self {
        Self {
            tag_bits: 127,
            cols,
            rows: 1 << 20,
            elem_bits: 32,
            block_bits: 128,
            sign_queries: queries,
            verify_queries: queries,
            scheme: ChecksumScheme::SingleS,
        }
    }

    /// log₂ of the information-theoretic forgery term
    /// `m·|Q_v| / (cnt_s·q)`.
    pub fn forgery_term_log2(&self) -> f64 {
        let degree = self.scheme.effective_degree(self.cols as usize) as f64;
        degree.log2() + (self.verify_queries as f64).max(1.0).log2() - self.tag_bits as f64
    }

    /// log₂ of the cipher-distinguishing term
    /// `|Q_v|·(Adv_E00 + Adv_E01 + Adv_E10)` under the switching lemma.
    pub fn cipher_term_log2(&self) -> f64 {
        let q00 = (self.rows * self.cols) as f64 * self.elem_bits as f64 / self.block_bits as f64
            * self.sign_queries as f64;
        let q01 = (self.sign_queries + self.verify_queries) as f64 + 1.0;
        let q10 = self.rows as f64 * (self.sign_queries + self.verify_queries) as f64;
        // Probabilities are capped at 1 (the bound is vacuous beyond the
        // cipher's birthday budget — which the switching lemma makes
        // explicit).
        let adv = |q: f64| (2.0 * q.max(1.0).log2() - (self.block_bits as f64 + 1.0)).min(0.0);
        let inner = log2_add(log2_add(adv(q00), adv(q01)), adv(q10));
        ((self.verify_queries as f64).max(1.0).log2() + inner).min(0.0)
    }

    /// log₂ of the total forgery advantage (Theorem 2), capped at 1.
    pub fn advantage_log2(&self) -> f64 {
        log2_add(self.forgery_term_log2(), self.cipher_term_log2()).min(0.0)
    }

    /// Security level in bits.
    pub fn security_bits(&self) -> f64 {
        -self.advantage_log2()
    }

    /// Largest per-key query budget (sign = verify = `2^k`) that keeps the
    /// *information-theoretic forgery term* above `target_bits` of
    /// security — the quantity the paper's §IV-G example discusses.
    pub fn max_query_budget_log2(cols: u64, tag_bits: u32, target_bits: f64) -> f64 {
        // m·|Q_v|/q ≤ 2^−target  ⇒  log₂|Q_v| ≤ tag_bits − log₂ m − target.
        tag_bits as f64 - (cols as f64).log2() - target_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_add_behaviour() {
        // 2^-10 + 2^-10 = 2^-9.
        assert!((log2_add(-10.0, -10.0) + 9.0).abs() < 1e-12);
        // Dominated by the larger term.
        assert!((log2_add(-10.0, -100.0) + 10.0).abs() < 1e-9);
    }

    #[test]
    fn paper_example_2_53_queries_64_bits() {
        // §IV-G: m = 1024, w_t = 127 ⇒ serving 2⁵³ queries keeps the
        // forgery term at 2^(10+53−127) = 2⁻⁶⁴: "security level higher
        // than 64 bits" (just at the boundary).
        let budget = MacBound::max_query_budget_log2(1024, 127, 64.0);
        assert!((budget - 53.0).abs() < 1e-9, "budget 2^{budget}");
        let b = MacBound {
            verify_queries: 1 << 53,
            sign_queries: 1 << 53,
            ..MacBound::paper_config(1024, 0)
        };
        let f = b.forgery_term_log2();
        assert!((f + 64.0).abs() < 1e-9, "forgery term 2^{f}");
    }

    #[test]
    fn multi_s_buys_security_bits() {
        let single = MacBound::paper_config(1024, 1 << 40);
        let multi = MacBound {
            scheme: ChecksumScheme::MultiS { cnt: 4 },
            ..single
        };
        let gain = single.forgery_term_log2() - multi.forgery_term_log2();
        assert!(
            (gain - 2.0).abs() < 1e-9,
            "cnt=4 should buy 2 bits, got {gain}"
        );
    }

    #[test]
    fn encryption_bound_is_strong_for_paper_params() {
        // A 1 GB table (2^23 rows × 32 cols × 32-bit) encrypted once.
        let b = EncBound {
            key_bits: 128,
            block_bits: 128,
            elem_bits: 32,
            rows: 1 << 23,
            cols: 32,
            enc_queries: 1,
        };
        // |Q|' = 2^26 blocks ⇒ switching term 2^(52−129) = 2^−77;
        // total ≈ 2^−77 (dominates the 2^−128 key guess).
        assert!((b.cipher_queries().log2() - 26.0).abs() < 1e-6);
        let s = b.security_bits();
        assert!((s - 77.0).abs() < 0.1, "security {s} bits");
    }

    #[test]
    fn more_queries_weaker_bound() {
        let few = MacBound::paper_config(1024, 1 << 12);
        let many = MacBound::paper_config(1024, 1 << 20);
        assert!(few.security_bits() > many.security_bits());
        assert!(few.security_bits() > 0.0, "{}", few.security_bits());
        // Past the cipher's birthday budget the bound goes vacuous — the
        // cap keeps it a probability.
        let silly = MacBound::paper_config(1024, 1 << 60);
        assert_eq!(silly.advantage_log2(), 0.0);
        assert!(silly.security_bits() >= 0.0);
    }

    #[test]
    fn wider_rows_weaker_forgery_term() {
        let narrow = MacBound::paper_config(32, 1 << 40);
        let wide = MacBound::paper_config(4096, 1 << 40);
        assert!(narrow.forgery_term_log2() < wide.forgery_term_log2());
    }

    #[test]
    fn total_advantage_includes_both_terms() {
        let b = MacBound::paper_config(1024, 1 << 12);
        assert!(b.advantage_log2() >= b.forgery_term_log2());
        assert!(b.advantage_log2() >= b.cipher_term_log2());
        assert!(b.security_bits() > 0.0, "{}", b.security_bits());
    }
}
