//! Error type for SecNDP operations.

use std::error::Error as StdError;
use std::fmt;

/// Errors returned by SecNDP encryption, protocol and verification
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The verification tag did not match the checksum of the reconstructed
    /// result — the NDP returned a tampered or overflowed result (the
    /// paper's verification-failure interrupt, §V-E3).
    VerificationFailed {
        /// The table whose result failed verification.
        table_addr: u64,
    },
    /// The table requires verification but was published without tags.
    TagsUnavailable,
    /// The software version manager ran out of version numbers or live
    /// regions (the paper's enclave manages at most 64, §VI-A).
    VersionExhausted,
    /// The provided data length does not match `rows × cols`.
    ShapeMismatch {
        /// Length the caller supplied.
        got: usize,
        /// Length the layout requires.
        expected: usize,
    },
    /// Index and weight slices have different lengths.
    QueryLengthMismatch {
        /// Number of row indices.
        indices: usize,
        /// Number of weights.
        weights: usize,
    },
    /// A row index exceeds the table's row count.
    RowOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of rows in the table.
        rows: usize,
    },
    /// A column index exceeds the table's column count.
    ColOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of columns in the table.
        cols: usize,
    },
    /// The table's byte extent would overflow the 62-bit address space of
    /// the counter block.
    AddressOverflow,
    /// The NDP device does not know the requested table.
    UnknownTable {
        /// Address the device was asked about.
        table_addr: u64,
    },
    /// The NDP returned a response of the wrong shape (protocol violation).
    MalformedResponse {
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// A variable-length wire field exceeds the `u32` length prefix — the
    /// frame cannot be encoded without silent truncation.
    FrameTooLarge {
        /// Number of items (bytes or records) the caller tried to encode.
        len: usize,
    },
    /// The device did not answer an outstanding request before its
    /// deadline (after any permitted retries).
    DeviceTimeout {
        /// The per-request deadline that expired, in milliseconds.
        deadline_ms: u64,
        /// How many times the request was sent in total.
        attempts: u32,
    },
    /// The transport connection to the device was lost and could not be
    /// re-established. An availability failure, not an integrity one: no
    /// unverified data was accepted.
    ConnectionLost {
        /// Total attempts made before giving up.
        attempts: u32,
    },
}

impl Error {
    /// Whether this error is an **integrity** signal: the device (or a
    /// corrupted pad) produced data that failed verification or violated
    /// the wire protocol. Integrity errors are always built through the
    /// audited constructors in `metrics`, so each one has a matching
    /// [`AuditEvent`](secndp_telemetry::audit::AuditEvent) in the same
    /// trace — the chaos harness's `InvariantChecker` relies on that
    /// coupling when classifying a fault as *detected*.
    pub fn is_integrity_violation(&self) -> bool {
        matches!(
            self,
            Error::VerificationFailed { .. }
                | Error::MalformedResponse { .. }
                | Error::ShapeMismatch { .. }
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::VerificationFailed { table_addr } => {
                write!(f, "verification failed for table at {table_addr:#x}")
            }
            Error::TagsUnavailable => f.write_str("table was encrypted without verification tags"),
            Error::VersionExhausted => f.write_str("version number space exhausted"),
            Error::ShapeMismatch { got, expected } => {
                write!(f, "data length {got} does not match layout size {expected}")
            }
            Error::QueryLengthMismatch { indices, weights } => {
                write!(f, "{indices} indices but {weights} weights")
            }
            Error::RowOutOfBounds { index, rows } => {
                write!(f, "row index {index} out of bounds for {rows} rows")
            }
            Error::ColOutOfBounds { index, cols } => {
                write!(f, "column index {index} out of bounds for {cols} columns")
            }
            Error::AddressOverflow => f.write_str("table extent overflows the address field"),
            Error::UnknownTable { table_addr } => {
                write!(f, "ndp device has no table at {table_addr:#x}")
            }
            Error::MalformedResponse { reason } => {
                write!(f, "malformed ndp response: {reason}")
            }
            Error::FrameTooLarge { len } => {
                write!(f, "wire field of {len} items exceeds the u32 length prefix")
            }
            Error::DeviceTimeout {
                deadline_ms,
                attempts,
            } => {
                write!(
                    f,
                    "device did not answer within {deadline_ms} ms ({attempts} attempts)"
                )
            }
            Error::ConnectionLost { attempts } => {
                write!(f, "device connection lost after {attempts} attempt(s)")
            }
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::VerificationFailed { table_addr: 0x1000 };
        assert!(e.to_string().contains("0x1000"));
        let e = Error::ShapeMismatch {
            got: 3,
            expected: 8,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('8'));
        let e = Error::ColOutOfBounds { index: 9, cols: 4 };
        assert!(e.to_string().contains("column") && e.to_string().contains('9'));
        let e = Error::ConnectionLost { attempts: 3 };
        assert!(e.to_string().contains("connection lost") && e.to_string().contains('3'));
        // Availability, not integrity: no audit event is required.
        assert!(!e.is_integrity_violation());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<Error>();
    }
}
