//! A memory-backed NDP device: a flat, byte-addressable untrusted memory
//! with explicit verification-tag placement.
//!
//! [`HonestNdp`](crate::device::HonestNdp) stores tables as opaque blobs —
//! convenient, but it cannot express *where* tags live. This module models
//! the DIMM the paper describes: a sparse physical memory
//! ([`UntrustedMemory`]) into which ciphertext rows and encrypted tags are
//! laid out according to §V-D:
//!
//! - [`TagPlacement::Inline`] (Ver-coloc): each row is followed by its
//!   16-byte tag, widening the row stride;
//! - [`TagPlacement::Separate`] (Ver-sep): tags live in a region after the
//!   data;
//! - [`TagPlacement::SideBand`] (Ver-ECC): tags are held out-of-band (the
//!   ECC chip), not in the addressable data space.
//!
//! Because the bytes are real, attacks on *memory content* (cold-boot
//! writes, Rowhammer flips) can be mounted directly with
//! [`UntrustedMemory::corrupt`] — and are caught by verification.

use crate::device::{validate_load, NdpDevice, NdpResponse};
use crate::error::Error;
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::{words_from_le_bytes, RingWord};
use std::collections::HashMap;

/// Size of one backing page in the sparse memory.
const MEM_PAGE: u64 = 4096;

/// Bytes of one stored verification tag (`w_t` rounded up to 16 bytes).
pub const TAG_BYTES: usize = 16;

/// A sparse, byte-addressable untrusted memory.
#[derive(Debug, Clone, Default)]
pub struct UntrustedMemory {
    pages: HashMap<u64, Box<[u8; MEM_PAGE as usize]>>,
}

impl UntrustedMemory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes `data` at byte address `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            let a = addr + i as u64;
            let page = self
                .pages
                .entry(a / MEM_PAGE)
                .or_insert_with(|| Box::new([0u8; MEM_PAGE as usize]));
            page[(a % MEM_PAGE) as usize] = b;
        }
    }

    /// Reads `len` bytes at `addr` (unwritten bytes read as zero).
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64)
            .map(|i| {
                let a = addr + i;
                self.pages
                    .get(&(a / MEM_PAGE))
                    .map_or(0, |p| p[(a % MEM_PAGE) as usize])
            })
            .collect()
    }

    /// XORs `mask` into the byte at `addr` — a Rowhammer-style bit flip on
    /// stored content.
    pub fn corrupt(&mut self, addr: u64, mask: u8) {
        let page = self
            .pages
            .entry(addr / MEM_PAGE)
            .or_insert_with(|| Box::new([0u8; MEM_PAGE as usize]));
        page[(addr % MEM_PAGE) as usize] ^= mask;
    }

    /// Number of touched pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Where a table's verification tags are stored (paper §V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagPlacement {
    /// Ver-coloc: tag bytes directly after each row.
    Inline,
    /// Ver-sep: a tag region after the whole data region.
    Separate,
    /// Ver-ECC: tags ride the ECC pins, held out-of-band.
    SideBand,
}

#[derive(Debug, Clone)]
struct TableMeta {
    row_bytes: usize,
    rows: usize,
    /// Base of the separate tag region (Separate placement).
    tag_base: Option<u64>,
    /// Out-of-band tags (SideBand placement).
    side_tags: Option<Vec<Fq>>,
    has_tags: bool,
}

/// An NDP device whose storage is a real byte-addressable memory with
/// explicit tag placement.
#[derive(Debug, Clone)]
pub struct MemoryBackedNdp {
    mem: UntrustedMemory,
    placement: TagPlacement,
    tables: HashMap<u64, TableMeta>,
}

impl MemoryBackedNdp {
    /// A device using the given tag placement for every table it stores.
    pub fn new(placement: TagPlacement) -> Self {
        Self {
            mem: UntrustedMemory::new(),
            placement,
            tables: HashMap::new(),
        }
    }

    /// The configured placement.
    pub fn placement(&self) -> TagPlacement {
        self.placement
    }

    /// Direct access to the raw memory — the attacker's view.
    pub fn memory(&self) -> &UntrustedMemory {
        &self.mem
    }

    /// Mutable access to the raw memory, for mounting content attacks.
    pub fn memory_mut(&mut self) -> &mut UntrustedMemory {
        &mut self.mem
    }

    fn meta(&self, table_addr: u64) -> Result<&TableMeta, Error> {
        self.tables
            .get(&table_addr)
            .ok_or(Error::UnknownTable { table_addr })
    }

    fn row_stride(&self, m: &TableMeta) -> u64 {
        match self.placement {
            TagPlacement::Inline if m.has_tags => (m.row_bytes + TAG_BYTES) as u64,
            _ => m.row_bytes as u64,
        }
    }

    fn stored_tag(&self, table_addr: u64, m: &TableMeta, row: usize) -> Result<Fq, Error> {
        let bytes = match self.placement {
            TagPlacement::Inline => {
                let addr = table_addr + row as u64 * self.row_stride(m) + m.row_bytes as u64;
                self.mem.read(addr, TAG_BYTES)
            }
            TagPlacement::Separate => {
                let base = m.tag_base.ok_or(Error::TagsUnavailable)?;
                self.mem.read(base + (row * TAG_BYTES) as u64, TAG_BYTES)
            }
            TagPlacement::SideBand => {
                let tags = m.side_tags.as_ref().ok_or(Error::TagsUnavailable)?;
                return tags.get(row).copied().ok_or(Error::RowOutOfBounds {
                    index: row,
                    rows: tags.len(),
                });
            }
        };
        Ok(Fq::new(u128::from_le_bytes(bytes.try_into().unwrap())))
    }
}

impl NdpDevice for MemoryBackedNdp {
    fn load(
        &mut self,
        table_addr: u64,
        ciphertext: Vec<u8>,
        row_bytes: usize,
        tags: Option<Vec<Fq>>,
    ) -> Result<(), Error> {
        validate_load(ciphertext.len(), row_bytes)?;
        let rows = ciphertext.len() / row_bytes;
        let has_tags = tags.is_some();
        let stride = if has_tags && self.placement == TagPlacement::Inline {
            row_bytes + TAG_BYTES
        } else {
            row_bytes
        };
        for (i, row) in ciphertext.chunks_exact(row_bytes).enumerate() {
            self.mem.write(table_addr + (i * stride) as u64, row);
        }
        let mut tag_base = None;
        let mut side_tags = None;
        if let Some(tags) = tags {
            match self.placement {
                TagPlacement::Inline => {
                    for (i, t) in tags.iter().enumerate() {
                        let addr = table_addr + (i * stride + row_bytes) as u64;
                        self.mem.write(addr, &t.value().to_le_bytes());
                    }
                }
                TagPlacement::Separate => {
                    let base = table_addr + (rows * stride) as u64;
                    let base = base.div_ceil(MEM_PAGE) * MEM_PAGE; // page-align
                    for (i, t) in tags.iter().enumerate() {
                        self.mem
                            .write(base + (i * TAG_BYTES) as u64, &t.value().to_le_bytes());
                    }
                    tag_base = Some(base);
                }
                TagPlacement::SideBand => side_tags = Some(tags),
            }
        }
        self.tables.insert(
            table_addr,
            TableMeta {
                row_bytes,
                rows,
                tag_base,
                side_tags,
                has_tags,
            },
        );
        Ok(())
    }

    fn weighted_sum<W: RingWord>(
        &self,
        table_addr: u64,
        indices: &[usize],
        weights: &[W],
        with_tag: bool,
    ) -> Result<NdpResponse<W>, Error> {
        let m = self.meta(table_addr)?;
        if indices.len() != weights.len() {
            return Err(Error::QueryLengthMismatch {
                indices: indices.len(),
                weights: weights.len(),
            });
        }
        if with_tag && !m.has_tags {
            return Err(Error::TagsUnavailable);
        }
        let stride = self.row_stride(m);
        let cols = m.row_bytes / W::BYTES;
        let mut c_res = vec![W::ZERO; cols];
        let mut c_t_res = Fq::ZERO;
        for (&i, &a) in indices.iter().zip(weights) {
            if i >= m.rows {
                return Err(Error::RowOutOfBounds {
                    index: i,
                    rows: m.rows,
                });
            }
            let bytes = self.mem.read(table_addr + i as u64 * stride, m.row_bytes);
            let row = words_from_le_bytes::<W>(&bytes);
            for (acc, &c) in c_res.iter_mut().zip(&row) {
                *acc = acc.wadd(a.wmul(c));
            }
            if with_tag {
                c_t_res += Fq::new(a.as_u128()) * self.stored_tag(table_addr, m, i)?;
            }
        }
        Ok(NdpResponse {
            c_res,
            c_t_res: with_tag.then_some(c_t_res),
        })
    }

    fn read_row(&self, table_addr: u64, row: usize) -> Result<Vec<u8>, Error> {
        let m = self.meta(table_addr)?;
        if row >= m.rows {
            return Err(Error::RowOutOfBounds {
                index: row,
                rows: m.rows,
            });
        }
        Ok(self
            .mem
            .read(table_addr + row as u64 * self.row_stride(m), m.row_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SecretKey;
    use crate::protocol::TrustedProcessor;

    #[test]
    fn memory_read_write_round_trip() {
        let mut mem = UntrustedMemory::new();
        // Cross a page boundary.
        let data: Vec<u8> = (0..100).collect();
        mem.write(MEM_PAGE - 50, &data);
        assert_eq!(mem.read(MEM_PAGE - 50, 100), data);
        assert_eq!(mem.read(1 << 30, 4), vec![0; 4]); // untouched reads zero
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn corrupt_flips_one_bit() {
        let mut mem = UntrustedMemory::new();
        mem.write(10, &[0b1010_1010]);
        mem.corrupt(10, 0b0000_0010);
        assert_eq!(mem.read(10, 1), vec![0b1010_1000]);
    }

    fn run_protocol(placement: TagPlacement) {
        let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x21; 16]));
        let mut dev = MemoryBackedNdp::new(placement);
        let pt: Vec<u32> = (0..40).map(|x| x * 3 + 1).collect();
        let table = cpu.encrypt_table(&pt, 5, 8, 0x10_000).unwrap();
        let handle = cpu.publish(&table, &mut dev).unwrap();
        let res = cpu
            .weighted_sum(&handle, &dev, &[0, 4, 2], &[1u32, 2, 5], true)
            .unwrap();
        for j in 0..8 {
            assert_eq!(
                res[j],
                pt[j] + 2 * pt[32 + j] + 5 * pt[16 + j],
                "{placement:?}"
            );
        }
        // Plain row read matches HonestNdp semantics.
        let row3 = cpu.read_row::<u32, _>(&handle, &dev, 3).unwrap();
        assert_eq!(row3, &pt[24..32]);
    }

    #[test]
    fn protocol_works_under_all_placements() {
        run_protocol(TagPlacement::Inline);
        run_protocol(TagPlacement::Separate);
        run_protocol(TagPlacement::SideBand);
    }

    #[test]
    fn rowhammer_on_data_detected_under_every_placement() {
        for placement in [
            TagPlacement::Inline,
            TagPlacement::Separate,
            TagPlacement::SideBand,
        ] {
            let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x22; 16]));
            let mut dev = MemoryBackedNdp::new(placement);
            let pt: Vec<u32> = (0..32).collect();
            let table = cpu.encrypt_table(&pt, 4, 8, 0x20_000).unwrap();
            let handle = cpu.publish(&table, &mut dev).unwrap();
            // Flip one bit in row 1's stored ciphertext.
            let stride = match placement {
                TagPlacement::Inline => 32 + TAG_BYTES as u64,
                _ => 32,
            };
            dev.memory_mut().corrupt(0x20_000 + stride + 5, 0x40);
            let err = cpu
                .weighted_sum(&handle, &dev, &[0, 1], &[1u32, 1], true)
                .unwrap_err();
            assert!(
                matches!(err, Error::VerificationFailed { .. }),
                "{placement:?} missed a data flip"
            );
        }
    }

    #[test]
    fn rowhammer_on_stored_tag_detected() {
        // Corrupting the in-memory tag (Inline/Separate placements store
        // tags as real bytes) must also fail verification.
        for placement in [TagPlacement::Inline, TagPlacement::Separate] {
            let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x23; 16]));
            let mut dev = MemoryBackedNdp::new(placement);
            let pt: Vec<u32> = (0..32).collect();
            let table = cpu.encrypt_table(&pt, 4, 8, 0x30_000).unwrap();
            let handle = cpu.publish(&table, &mut dev).unwrap();
            let tag_addr = match placement {
                TagPlacement::Inline => 0x30_000 + 32, // after row 0
                TagPlacement::Separate => {
                    // Tag region page-aligned after data (4 rows × 32 B).
                    (0x30_000u64 + 4 * 32).div_ceil(MEM_PAGE) * MEM_PAGE
                }
                TagPlacement::SideBand => unreachable!(),
            };
            dev.memory_mut().corrupt(tag_addr, 0x01);
            let err = cpu
                .weighted_sum(&handle, &dev, &[0], &[1u32], true)
                .unwrap_err();
            assert!(
                matches!(err, Error::VerificationFailed { .. }),
                "{placement:?} missed a tag flip"
            );
        }
    }

    #[test]
    fn matches_honest_ndp_results() {
        use crate::device::HonestNdp;
        let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x24; 16]));
        let pt: Vec<u16> = (0..60).map(|x| x * 7).collect();
        let table = cpu.encrypt_table(&pt, 10, 6, 0x40_000).unwrap();
        let mut honest = HonestNdp::new();
        let mut membk = MemoryBackedNdp::new(TagPlacement::Separate);
        let h1 = cpu.publish(&table, &mut honest).unwrap();
        let h2 = cpu.publish(&table, &mut membk).unwrap();
        let idx = [9usize, 0, 5];
        let w = [3u16, 1, 2];
        assert_eq!(
            cpu.weighted_sum(&h1, &honest, &idx, &w, true).unwrap(),
            cpu.weighted_sum(&h2, &membk, &idx, &w, true).unwrap()
        );
    }

    #[test]
    fn untagged_tables_reject_tag_queries() {
        let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x25; 16]));
        let mut dev = MemoryBackedNdp::new(TagPlacement::Inline);
        let pt: Vec<u32> = vec![1, 2, 3, 4];
        let table = cpu.encrypt_table_untagged(&pt, 2, 2, 0).unwrap();
        let handle = cpu.publish(&table, &mut dev).unwrap();
        assert_eq!(
            cpu.weighted_sum(&handle, &dev, &[0], &[1u32], true)
                .unwrap_err(),
            Error::TagsUnavailable
        );
        // Untagged tables use the compact stride.
        assert_eq!(
            cpu.weighted_sum(&handle, &dev, &[1], &[1u32], false)
                .unwrap(),
            vec![3, 4]
        );
    }
}
