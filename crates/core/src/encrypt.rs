//! Arithmetic encryption — Algorithm 1 (`Arith-E`).
//!
//! The plaintext is chunked into 128-bit cipher blocks; each block's pad is
//! `E(K, 00 ‖ block_addr ‖ v)`, and each `wₑ`-bit element is *subtracted* by
//! its pad slice in ℤ(2^wₑ):
//!
//! ```text
//! cⱼ = pⱼ − eⱼ  (mod 2^wₑ)
//! ```
//!
//! Unlike XOR counter-mode, subtraction makes `(cⱼ, eⱼ)` an *arithmetic*
//! share pair — `cⱼ + eⱼ = pⱼ` — so linear computation distributes across
//! the two shares. Security is the same as counter-mode (Theorem 1): pads
//! are indistinguishable from uniform as long as `(addr, v)` never repeats.

use crate::checksum::{derive_secrets, row_checksum, ChecksumScheme};
use crate::error::Error;
use crate::layout::TableLayout;
use crate::version::RegionId;
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::{
    add_elementwise, sub_elementwise, words_from_le_bytes, words_to_le_bytes, RingWord,
};
use secndp_cipher::aes::BlockCipher;
use secndp_cipher::otp::{Domain, OtpGenerator, PadPlanner, PadRange};

/// An encrypted table ready to be placed in untrusted NDP memory: the
/// ciphertext share plus (optionally) one encrypted verification tag per
/// row.
///
/// The version number is carried here because it is *not* secret (the
/// security definitions hold with `dis = true`); confidentiality rests on
/// the key alone.
#[derive(Debug, Clone, PartialEq)]
pub struct EncryptedTable<W> {
    layout: TableLayout,
    region: RegionId,
    version: u64,
    ciphertext: Vec<W>,
    tags: Option<Vec<Fq>>,
}

impl<W: RingWord> EncryptedTable<W> {
    pub(crate) fn from_parts(
        layout: TableLayout,
        region: RegionId,
        version: u64,
        ciphertext: Vec<W>,
        tags: Option<Vec<Fq>>,
    ) -> Self {
        Self {
            layout,
            region,
            version,
            ciphertext,
            tags,
        }
    }

    /// The table's layout in physical memory.
    pub fn layout(&self) -> TableLayout {
        self.layout
    }

    /// The version-manager region backing this table.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The (public) version number the pads were derived from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The ciphertext share, row-major.
    pub fn ciphertext(&self) -> &[W] {
        &self.ciphertext
    }

    /// Encrypted per-row verification tags (`C_{T_i}`), if generated.
    pub fn tags(&self) -> Option<&[Fq]> {
        self.tags.as_deref()
    }

    /// Serializes the ciphertext to the little-endian byte image that is
    /// written to memory.
    pub fn ciphertext_bytes(&self) -> Vec<u8> {
        words_to_le_bytes(&self.ciphertext)
    }
}

/// Encrypts `plaintext` (row-major, shape given by `layout`) under
/// `version` — Algorithm 1.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] if `plaintext.len() != layout.len()`.
pub fn encrypt_elements<W: RingWord, C: BlockCipher>(
    otp: &OtpGenerator<C>,
    plaintext: &[W],
    layout: &TableLayout,
    version: u64,
) -> Result<Vec<W>, Error> {
    if plaintext.len() != layout.len() {
        return Err(Error::ShapeMismatch {
            got: plaintext.len(),
            expected: layout.len(),
        });
    }
    let pads = pad_words::<W, _>(otp, layout.base_addr(), layout.size_bytes(), version);
    Ok(sub_elementwise(plaintext, &pads))
}

/// Decrypts a full ciphertext image (`p = c + e`).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] if `ciphertext.len() != layout.len()`.
pub fn decrypt_elements<W: RingWord, C: BlockCipher>(
    otp: &OtpGenerator<C>,
    ciphertext: &[W],
    layout: &TableLayout,
    version: u64,
) -> Result<Vec<W>, Error> {
    if ciphertext.len() != layout.len() {
        return Err(Error::ShapeMismatch {
            got: ciphertext.len(),
            expected: layout.len(),
        });
    }
    let pads = pad_words::<W, _>(otp, layout.base_addr(), layout.size_bytes(), version);
    Ok(add_elementwise(ciphertext, &pads))
}

/// Generates the pad words covering `len` bytes starting at `addr`.
pub(crate) fn pad_words<W: RingWord, C: BlockCipher>(
    otp: &OtpGenerator<C>,
    addr: u64,
    len: usize,
    version: u64,
) -> Vec<W> {
    words_from_le_bytes(&otp.data_pad_bytes(addr, len, version))
}

/// Computes the encrypted per-row tags `C_{T_i}` (Algorithms 2 + 3) for the
/// whole table.
///
/// All tag pads `E_{T_i}` are planned and encrypted in one batched pass
/// rather than one cipher call per row.
pub fn encrypt_tags<W: RingWord, C: BlockCipher>(
    otp: &OtpGenerator<C>,
    plaintext: &[W],
    layout: &TableLayout,
    version: u64,
    scheme: ChecksumScheme,
) -> Vec<Fq> {
    let secrets = derive_secrets(otp, layout.base_addr(), version, scheme);
    let mut planner = PadPlanner::new();
    let ranges: Vec<PadRange> = (0..layout.rows())
        .map(|i| planner.request_block(Domain::Tag, layout.row_addr(i), version))
        .collect();
    planner.execute(otp.cipher());
    let m = layout.cols();
    ranges
        .iter()
        .enumerate()
        .map(|(i, range)| {
            let t = row_checksum(&plaintext[i * m..(i + 1) * m], &secrets);
            // C_T = T − E_T (mod q), Algorithm 3 line 5.
            t - Fq::new(planner.pad_first_127_bits(range))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    use secndp_cipher::aes::Aes128;

    fn otp() -> OtpGenerator<Aes128> {
        OtpGenerator::new(Aes128::new(&[0x11; 16]))
    }

    #[test]
    fn encrypt_decrypt_round_trip_u32() {
        let g = otp();
        let layout = TableLayout::new::<u32>(0x2000, 3, 5).unwrap();
        let pt: Vec<u32> = (0..15).map(|i| i * 1000 + 7).collect();
        let ct = encrypt_elements(&g, &pt, &layout, 4).unwrap();
        assert_ne!(ct, pt);
        assert_eq!(decrypt_elements(&g, &ct, &layout, 4).unwrap(), pt);
    }

    #[test]
    fn encrypt_decrypt_round_trip_u8_unaligned_rows() {
        // 3-byte rows: rows straddle cipher-block boundaries.
        let g = otp();
        let layout = TableLayout::new::<u8>(0x30, 7, 3).unwrap();
        let pt: Vec<u8> = (0..21).map(|i| (i * 37) as u8).collect();
        let ct = encrypt_elements(&g, &pt, &layout, 1).unwrap();
        assert_eq!(decrypt_elements(&g, &ct, &layout, 1).unwrap(), pt);
    }

    #[test]
    fn wrong_version_fails_to_decrypt() {
        let g = otp();
        let layout = TableLayout::new::<u16>(0, 2, 8).unwrap();
        let pt = vec![42u16; 16];
        let ct = encrypt_elements(&g, &pt, &layout, 5).unwrap();
        assert_ne!(decrypt_elements(&g, &ct, &layout, 6).unwrap(), pt);
    }

    #[test]
    fn wrong_address_fails_to_decrypt() {
        let g = otp();
        let l1 = TableLayout::new::<u16>(0, 2, 8).unwrap();
        let l2 = TableLayout::new::<u16>(64, 2, 8).unwrap();
        let pt = vec![42u16; 16];
        let ct = encrypt_elements(&g, &pt, &l1, 5).unwrap();
        assert_ne!(decrypt_elements(&g, &ct, &l2, 5).unwrap(), pt);
    }

    #[test]
    fn shares_sum_to_plaintext() {
        // c + e = p element-wise: the arithmetic-sharing invariant.
        let g = otp();
        let layout = TableLayout::new::<u32>(0x80, 2, 4).unwrap();
        let pt: Vec<u32> = vec![5, 10, 15, 20, 25, 30, 35, 40];
        let ct = encrypt_elements(&g, &pt, &layout, 9).unwrap();
        let pads = pad_words::<u32, _>(&g, 0x80, layout.size_bytes(), 9);
        for ((&c, &e), &p) in ct.iter().zip(&pads).zip(&pt) {
            assert_eq!(c.wadd(e), p);
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = otp();
        let layout = TableLayout::new::<u32>(0, 2, 4).unwrap();
        assert!(matches!(
            encrypt_elements(&g, &[1u32; 7], &layout, 1),
            Err(Error::ShapeMismatch {
                got: 7,
                expected: 8
            })
        ));
        assert!(decrypt_elements(&g, &[1u32; 9], &layout, 1).is_err());
    }

    #[test]
    fn tags_one_per_row_and_version_sensitive() {
        let g = otp();
        let layout = TableLayout::new::<u32>(0x100, 4, 8).unwrap();
        let pt: Vec<u32> = (0..32).collect();
        let t1 = encrypt_tags(&g, &pt, &layout, 1, ChecksumScheme::SingleS);
        assert_eq!(t1.len(), 4);
        let t2 = encrypt_tags(&g, &pt, &layout, 2, ChecksumScheme::SingleS);
        assert_ne!(t1, t2);
    }

    #[test]
    fn identical_rows_get_distinct_tags() {
        // Tag pads differ per row address, so equal rows don't leak equality.
        let g = otp();
        let layout = TableLayout::new::<u32>(0, 2, 4).unwrap();
        let pt = vec![7u32; 8];
        let tags = encrypt_tags(&g, &pt, &layout, 1, ChecksumScheme::SingleS);
        assert_ne!(tags[0], tags[1]);
    }

    #[test]
    fn ciphertext_bytes_round_trip() {
        let g = otp();
        let layout = TableLayout::new::<u32>(0, 2, 2).unwrap();
        let pt = vec![1u32, 2, 3, 4];
        let ct = encrypt_elements(&g, &pt, &layout, 1).unwrap();
        let table = EncryptedTable::from_parts(layout, RegionId(0), 1, ct.clone(), None);
        assert_eq!(words_from_le_bytes::<u32>(&table.ciphertext_bytes()), ct);
    }

    proptest! {
        #[test]
        fn round_trip_random_u32(
            pt in proptest::collection::vec(any::<u32>(), 12),
            base in 0u64..1_000_000,
            version in 1u64..1000,
        ) {
            let g = otp();
            let layout = TableLayout::new::<u32>(base, 3, 4).unwrap();
            let ct = encrypt_elements(&g, &pt, &layout, version).unwrap();
            prop_assert_eq!(decrypt_elements(&g, &ct, &layout, version).unwrap(), pt);
        }

        #[test]
        fn ciphertext_of_zero_is_not_zero(
            base in (0u64..1_000_000).prop_map(|b| b * 4),
            version in 1u64..1000,
        ) {
            // A zero plaintext must not encrypt to zero (pads are dense).
            let g = otp();
            let layout = TableLayout::new::<u32>(base, 2, 8).unwrap();
            let ct = encrypt_elements(&g, &[0u32; 16], &layout, version).unwrap();
            prop_assert!(ct.iter().any(|&c| c != 0));
        }
    }
}
