//! NDP device models: the honest device and a family of adversaries.
//!
//! Under SecNDP's threat model (paper §II) the NDP processing units are
//! **untrusted**: they may have backdoors or Trojans that leak data or
//! return malicious results. The protocol therefore never gives a device
//! anything but ciphertext and encrypted tags, and never trusts what comes
//! back without verification.
//!
//! [`HonestNdp`] implements the paper's NDP command semantics faithfully —
//! multiply each ciphertext row by its weight, accumulate in registers,
//! return the register contents. The adversarial devices model the attacks
//! the verification scheme (Theorems 2/A.4) must catch; security tests and
//! the `tamper_detection` example use them.

use crate::error::Error;
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::{words_from_le_bytes, RingWord};
use std::collections::HashMap;

/// The NDP's response to a weighted-summation command (Algorithm 4 line 7
/// plus, when verification is on, Algorithm 5 line 15).
#[derive(Debug, Clone, PartialEq)]
pub struct NdpResponse<W> {
    /// `C_res`: the ciphertext share of the result, one element per column.
    pub c_res: Vec<W>,
    /// `C_{T_res}`: the combined encrypted tag, if requested.
    pub c_t_res: Option<Fq>,
}

/// An untrusted near-data processing device holding ciphertext tables.
///
/// Methods mirror the NDP command protocol: [`load`](Self::load) models the
/// initialization write (`T0` in Figure 4), [`weighted_sum`](Self::weighted_sum)
/// models a `SecNDPInst` sequence followed by `SecNDPLd`, and
/// [`read_row`](Self::read_row) models a plain encrypted-memory read.
pub trait NdpDevice {
    /// Stores the ciphertext image of a table (and its encrypted tags) at
    /// `table_addr`. Overwrites any previous table at the same address.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `row_bytes` is zero or does not
    /// divide the ciphertext length. Wire-backed devices additionally
    /// return [`Error::MalformedResponse`] when the device's reply is not a
    /// valid acknowledgement — an untrusted device must not be able to
    /// crash the trusted side.
    fn load(
        &mut self,
        table_addr: u64,
        ciphertext: Vec<u8>,
        row_bytes: usize,
        tags: Option<Vec<Fq>>,
    ) -> Result<(), Error>;

    /// Executes `Σₖ aₖ · C_{iₖ}` over the stored ciphertext and, when
    /// `with_tag` is set, `Σₖ aₖ · C_{T_{iₖ}}` over the stored tags.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTable`] for an unknown address,
    /// [`Error::RowOutOfBounds`] for a bad index, and
    /// [`Error::TagsUnavailable`] when tags are requested but absent.
    fn weighted_sum<W: RingWord>(
        &self,
        table_addr: u64,
        indices: &[usize],
        weights: &[W],
        with_tag: bool,
    ) -> Result<NdpResponse<W>, Error>;

    /// Reads back the raw ciphertext bytes of one row (an ordinary memory
    /// fetch through the untrusted DIMM).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTable`] or [`Error::RowOutOfBounds`].
    fn read_row(&self, table_addr: u64, row: usize) -> Result<Vec<u8>, Error>;

    /// Element-granular weighted summation `Σₖ aₖ · C[iₖ][jₖ]` — the fully
    /// general form of Algorithm 4, which selects individual elements
    /// rather than whole rows. Returns a single ring element.
    ///
    /// The default implementation gathers each element through
    /// [`read_row`](Self::read_row); devices may override with a faster
    /// path.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTable`], [`Error::RowOutOfBounds`],
    /// [`Error::ColOutOfBounds`], or [`Error::QueryLengthMismatch`].
    fn weighted_sum_elements<W: RingWord>(
        &self,
        table_addr: u64,
        coords: &[(usize, usize)],
        weights: &[W],
    ) -> Result<W, Error> {
        if coords.len() != weights.len() {
            return Err(Error::QueryLengthMismatch {
                indices: coords.len(),
                weights: weights.len(),
            });
        }
        let mut acc = W::ZERO;
        for (&(i, j), &a) in coords.iter().zip(weights) {
            let row = self.read_row(table_addr, i)?;
            let cols = row.len() / W::BYTES;
            if j >= cols {
                return Err(Error::ColOutOfBounds { index: j, cols });
            }
            let c = W::from_le_slice(&row[j * W::BYTES..]);
            acc = acc.wadd(a.wmul(c));
        }
        Ok(acc)
    }
}

/// Shared load-command validation: `row_bytes` must be positive and divide
/// the ciphertext image exactly.
pub(crate) fn validate_load(ciphertext_len: usize, row_bytes: usize) -> Result<(), Error> {
    if row_bytes == 0 || !ciphertext_len.is_multiple_of(row_bytes) {
        return Err(crate::metrics::shape_mismatch(ciphertext_len, row_bytes));
    }
    Ok(())
}

#[derive(Debug, Clone)]
struct StoredTable {
    data: Vec<u8>,
    row_bytes: usize,
    tags: Option<Vec<Fq>>,
}

impl StoredTable {
    fn rows(&self) -> usize {
        self.data.len() / self.row_bytes
    }

    fn row(&self, i: usize, table_addr: u64) -> Result<&[u8], Error> {
        if i >= self.rows() {
            return Err(Error::RowOutOfBounds {
                index: i,
                rows: self.rows(),
            });
        }
        let _ = table_addr;
        Ok(&self.data[i * self.row_bytes..(i + 1) * self.row_bytes])
    }
}

/// A faithful NDP device: computes exactly what it is told over ciphertext.
#[derive(Debug, Clone, Default)]
pub struct HonestNdp {
    tables: HashMap<u64, StoredTable>,
}

impl HonestNdp {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tables currently loaded.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    fn table(&self, table_addr: u64) -> Result<&StoredTable, Error> {
        self.tables
            .get(&table_addr)
            .ok_or(Error::UnknownTable { table_addr })
    }
}

impl NdpDevice for HonestNdp {
    fn load(
        &mut self,
        table_addr: u64,
        ciphertext: Vec<u8>,
        row_bytes: usize,
        tags: Option<Vec<Fq>>,
    ) -> Result<(), Error> {
        secndp_telemetry::counter!(
            "secndp_device_requests_total",
            &[("device", "honest"), ("op", "load")],
            "Requests served by NDP devices."
        )
        .inc();
        let mut sp = secndp_telemetry::trace::span("device_load");
        sp.attr_u64("table_addr", table_addr);
        sp.attr_u64("bytes", ciphertext.len() as u64);
        validate_load(ciphertext.len(), row_bytes)?;
        self.tables.insert(
            table_addr,
            StoredTable {
                data: ciphertext,
                row_bytes,
                tags,
            },
        );
        Ok(())
    }

    fn weighted_sum<W: RingWord>(
        &self,
        table_addr: u64,
        indices: &[usize],
        weights: &[W],
        with_tag: bool,
    ) -> Result<NdpResponse<W>, Error> {
        secndp_telemetry::counter!(
            "secndp_device_requests_total",
            &[("device", "honest"), ("op", "weighted_sum")],
            "Requests served by NDP devices."
        )
        .inc();
        let _t = secndp_telemetry::histogram!(
            "secndp_device_op_ns",
            &[("device", "honest"), ("op", "weighted_sum")],
            "NDP device operation latency in nanoseconds."
        )
        .start_timer();
        let mut sp = secndp_telemetry::trace::span("device_weighted_sum");
        sp.attr_u64("table_addr", table_addr);
        sp.attr_u64("rows", indices.len() as u64);
        let t = self.table(table_addr)?;
        if indices.len() != weights.len() {
            return Err(Error::QueryLengthMismatch {
                indices: indices.len(),
                weights: weights.len(),
            });
        }
        let cols = t.row_bytes / W::BYTES;
        let mut c_res = vec![W::ZERO; cols];
        for (&i, &a) in indices.iter().zip(weights) {
            let row = words_from_le_bytes::<W>(t.row(i, table_addr)?);
            for (acc, &c) in c_res.iter_mut().zip(&row) {
                *acc = acc.wadd(a.wmul(c));
            }
        }
        let c_t_res = if with_tag {
            let tags = t.tags.as_ref().ok_or(Error::TagsUnavailable)?;
            let mut acc = Fq::ZERO;
            for (&i, &a) in indices.iter().zip(weights) {
                let tag = *tags.get(i).ok_or(Error::RowOutOfBounds {
                    index: i,
                    rows: tags.len(),
                })?;
                acc += Fq::new(a.as_u128()) * tag;
            }
            Some(acc)
        } else {
            None
        };
        Ok(NdpResponse { c_res, c_t_res })
    }

    fn read_row(&self, table_addr: u64, row: usize) -> Result<Vec<u8>, Error> {
        secndp_telemetry::counter!(
            "secndp_device_requests_total",
            &[("device", "honest"), ("op", "read_row")],
            "Requests served by NDP devices."
        )
        .inc();
        let mut sp = secndp_telemetry::trace::span("device_read_row");
        sp.attr_u64("table_addr", table_addr);
        Ok(self.table(table_addr)?.row(row, table_addr)?.to_vec())
    }
}

/// A device model with service latency: wraps any inner device and sleeps
/// a fixed delay — plus optional deterministic jitter — before serving
/// each *query* (`weighted_sum` / `read_row`). `load` passes straight
/// through so test and bench setup is never throttled. Used to model bus
/// latency in transport tests and the multi-rank service bench, where the
/// delay is what pipelining across ranks overlaps.
#[derive(Debug)]
pub struct DelayedNdp<D> {
    inner: D,
    delay: std::time::Duration,
    /// Maximum extra jitter; 0 disables it.
    jitter: std::time::Duration,
    /// LCG state for the jitter sequence — deterministic per seed, but
    /// distinct per clone/rank so completions genuinely reorder.
    state: std::sync::atomic::AtomicU64,
}

impl<D> DelayedNdp<D> {
    /// Wraps `inner` with a fixed per-query delay.
    pub fn new(inner: D, delay: std::time::Duration) -> Self {
        Self::with_jitter(inner, delay, std::time::Duration::ZERO, 0)
    }

    /// Wraps `inner` with `delay` plus uniformly LCG-distributed jitter in
    /// `[0, jitter)`, seeded so delay sequences replay exactly.
    pub fn with_jitter(
        inner: D,
        delay: std::time::Duration,
        jitter: std::time::Duration,
        seed: u64,
    ) -> Self {
        Self {
            inner,
            delay,
            jitter,
            state: std::sync::atomic::AtomicU64::new(seed | 1),
        }
    }

    fn pause(&self) {
        let mut d = self.delay;
        let jitter_ns = self.jitter.as_nanos() as u64;
        if jitter_ns > 0 {
            use std::sync::atomic::Ordering;
            let mut s = self.state.load(Ordering::Relaxed);
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            self.state.store(s, Ordering::Relaxed);
            d += std::time::Duration::from_nanos((s >> 11) % jitter_ns);
        }
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

impl<D: Clone> Clone for DelayedNdp<D> {
    fn clone(&self) -> Self {
        use std::sync::atomic::Ordering;
        Self {
            inner: self.inner.clone(),
            delay: self.delay,
            jitter: self.jitter,
            // Decorrelate the clone's jitter stream so replicated ranks
            // do not sleep in lockstep.
            state: std::sync::atomic::AtomicU64::new(
                self.state.load(Ordering::Relaxed) ^ 0x9E37_79B9_7F4A_7C15,
            ),
        }
    }
}

impl<D: NdpDevice> NdpDevice for DelayedNdp<D> {
    fn load(
        &mut self,
        table_addr: u64,
        ciphertext: Vec<u8>,
        row_bytes: usize,
        tags: Option<Vec<Fq>>,
    ) -> Result<(), Error> {
        self.inner.load(table_addr, ciphertext, row_bytes, tags)
    }

    fn weighted_sum<W: RingWord>(
        &self,
        table_addr: u64,
        indices: &[usize],
        weights: &[W],
        with_tag: bool,
    ) -> Result<NdpResponse<W>, Error> {
        self.pause();
        self.inner
            .weighted_sum(table_addr, indices, weights, with_tag)
    }

    fn read_row(&self, table_addr: u64, row: usize) -> Result<Vec<u8>, Error> {
        self.pause();
        self.inner.read_row(table_addr, row)
    }
}

/// The attack a [`TamperingNdp`] mounts on each response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tamper {
    /// Flip one bit of the returned ciphertext result.
    FlipResultBit {
        /// Which result element to corrupt.
        element: usize,
        /// Which bit of that element to flip.
        bit: u32,
    },
    /// Silently substitute a different row for the first requested index
    /// (a "copy valid data from a different address" attack).
    SwapFirstRow {
        /// The row the device actually uses.
        with: usize,
    },
    /// Return a correctly computed result but a forged (random-looking) tag.
    ForgeTag,
    /// Return all-zero results (a lazy / denial-of-service device).
    ZeroResult,
    /// Corrupt one stored row before computing, but combine the *original*
    /// tags — models a memory-content attack (e.g. Rowhammer) between
    /// initialization and query.
    CorruptStoredRow {
        /// Row whose bytes are XOR-corrupted.
        row: usize,
    },
}

/// An NDP device with a Trojan: behaves like [`HonestNdp`] but applies a
/// [`Tamper`] to every weighted-summation response.
#[derive(Debug, Clone)]
pub struct TamperingNdp {
    inner: HonestNdp,
    tamper: Tamper,
}

impl TamperingNdp {
    /// Wraps a fresh honest device with the given tamper behaviour.
    pub fn new(tamper: Tamper) -> Self {
        Self {
            inner: HonestNdp::new(),
            tamper,
        }
    }

    /// The configured tamper behaviour.
    pub fn tamper(&self) -> Tamper {
        self.tamper
    }

    /// A clone of the inner device with `row` of `table_addr`
    /// XOR-corrupted — the memory-content attack all
    /// [`CorruptStoredRow`](Tamper::CorruptStoredRow) arms serve from.
    fn corrupted_copy(&self, table_addr: u64, row: usize) -> HonestNdp {
        let mut copy = self.inner.clone();
        if let Some(t) = copy.tables.get_mut(&table_addr) {
            let rb = t.row_bytes;
            if row < t.rows() {
                for b in &mut t.data[row * rb..(row + 1) * rb] {
                    *b ^= 0xA5;
                }
            }
        }
        copy
    }
}

impl NdpDevice for TamperingNdp {
    fn load(
        &mut self,
        table_addr: u64,
        ciphertext: Vec<u8>,
        row_bytes: usize,
        tags: Option<Vec<Fq>>,
    ) -> Result<(), Error> {
        self.inner.load(table_addr, ciphertext, row_bytes, tags)
    }

    fn weighted_sum<W: RingWord>(
        &self,
        table_addr: u64,
        indices: &[usize],
        weights: &[W],
        with_tag: bool,
    ) -> Result<NdpResponse<W>, Error> {
        match self.tamper {
            Tamper::FlipResultBit { element, bit } => {
                let mut r = self
                    .inner
                    .weighted_sum(table_addr, indices, weights, with_tag)?;
                let slot = element % r.c_res.len().max(1);
                if let Some(x) = r.c_res.get_mut(slot) {
                    let flipped = x.as_u64() ^ (1u64 << (bit % W::BITS));
                    *x = W::from_u64(flipped);
                }
                Ok(r)
            }
            Tamper::SwapFirstRow { with } => {
                let mut idx = indices.to_vec();
                if !idx.is_empty() {
                    idx[0] = with;
                }
                // Data uses the swapped row; the tag is combined over the
                // swapped row's tag too — the checksum still catches it
                // because tag pads are bound to row addresses.
                self.inner.weighted_sum(table_addr, &idx, weights, with_tag)
            }
            Tamper::ForgeTag => {
                let mut r = self
                    .inner
                    .weighted_sum(table_addr, indices, weights, with_tag)?;
                if let Some(t) = r.c_t_res.as_mut() {
                    *t += Fq::new(0xf_026e_d7a6_u128);
                }
                Ok(r)
            }
            Tamper::ZeroResult => {
                let mut r = self
                    .inner
                    .weighted_sum(table_addr, indices, weights, with_tag)?;
                r.c_res.iter_mut().for_each(|x| *x = W::ZERO);
                Ok(r)
            }
            Tamper::CorruptStoredRow { row } => {
                // Recompute over a corrupted copy of the table.
                self.corrupted_copy(table_addr, row)
                    .weighted_sum(table_addr, indices, weights, with_tag)
            }
        }
    }

    fn read_row(&self, table_addr: u64, row: usize) -> Result<Vec<u8>, Error> {
        // Row reads are plain encrypted-memory fetches, so every tamper
        // applies to them too — a device that only cheats on summations
        // would be an oddly principled adversary. `ForgeTag` alone passes
        // through: a raw row carries no tag to forge (it still fires on
        // the verified-read path, which travels as a weighted sum).
        match self.tamper {
            Tamper::FlipResultBit { element, bit } => {
                let mut bytes = self.inner.read_row(table_addr, row)?;
                if !bytes.is_empty() {
                    let i = element % bytes.len();
                    bytes[i] ^= 1 << (bit % 8);
                }
                Ok(bytes)
            }
            Tamper::SwapFirstRow { with } => self.inner.read_row(table_addr, with),
            Tamper::ForgeTag => self.inner.read_row(table_addr, row),
            Tamper::ZeroResult => {
                let bytes = self.inner.read_row(table_addr, row)?;
                Ok(vec![0u8; bytes.len()])
            }
            Tamper::CorruptStoredRow { row: bad } => self
                .corrupted_copy(table_addr, bad)
                .read_row(table_addr, row),
        }
    }

    fn weighted_sum_elements<W: RingWord>(
        &self,
        table_addr: u64,
        coords: &[(usize, usize)],
        weights: &[W],
    ) -> Result<W, Error> {
        // The element-granular path returns a bare scalar (no tag is
        // even possible), so these tampers model what an unverifiable
        // query surface is exposed to.
        match self.tamper {
            Tamper::FlipResultBit { bit, .. } => {
                let r = self
                    .inner
                    .weighted_sum_elements(table_addr, coords, weights)?;
                Ok(W::from_u64(r.as_u64() ^ (1u64 << (bit % W::BITS))))
            }
            Tamper::SwapFirstRow { with } => {
                let mut coords = coords.to_vec();
                if let Some(c) = coords.first_mut() {
                    c.0 = with;
                }
                self.inner
                    .weighted_sum_elements(table_addr, &coords, weights)
            }
            Tamper::ForgeTag => self
                .inner
                .weighted_sum_elements(table_addr, coords, weights),
            Tamper::ZeroResult => {
                self.inner
                    .weighted_sum_elements(table_addr, coords, weights)?;
                Ok(W::ZERO)
            }
            Tamper::CorruptStoredRow { row } => self
                .corrupted_copy(table_addr, row)
                .weighted_sum_elements(table_addr, coords, weights),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secndp_arith::ring::weighted_sum;

    fn loaded() -> HonestNdp {
        let mut d = HonestNdp::new();
        // Two rows of four u32s, stored as plain bytes (device never knows
        // whether bytes are ciphertext).
        let rows: Vec<u32> = vec![1, 2, 3, 4, 10, 20, 30, 40];
        let bytes = secndp_arith::ring::words_to_le_bytes(&rows);
        d.load(0x1000, bytes, 16, Some(vec![Fq::new(5), Fq::new(6)]))
            .unwrap();
        d
    }

    #[test]
    fn honest_weighted_sum() {
        let d = loaded();
        let r = d
            .weighted_sum::<u32>(0x1000, &[0, 1], &[3, 2], true)
            .unwrap();
        assert_eq!(r.c_res, vec![23, 46, 69, 92]);
        // 3·5 + 2·6 = 27 in the field.
        assert_eq!(r.c_t_res, Some(Fq::new(27)));
    }

    #[test]
    fn repeated_indices_allowed() {
        let d = loaded();
        let r = d
            .weighted_sum::<u32>(0x1000, &[0, 0], &[1, 1], false)
            .unwrap();
        assert_eq!(r.c_res, vec![2, 4, 6, 8]);
    }

    #[test]
    fn unknown_table_and_bad_row() {
        let d = loaded();
        assert!(matches!(
            d.weighted_sum::<u32>(0xdead, &[0], &[1], false),
            Err(Error::UnknownTable { .. })
        ));
        assert!(matches!(
            d.weighted_sum::<u32>(0x1000, &[5], &[1], false),
            Err(Error::RowOutOfBounds { index: 5, rows: 2 })
        ));
        assert!(matches!(
            d.read_row(0x1000, 9),
            Err(Error::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn load_rejects_bad_shape() {
        let mut d = HonestNdp::new();
        assert!(matches!(
            d.load(0, vec![0u8; 17], 16, None),
            Err(Error::ShapeMismatch {
                got: 17,
                expected: 16
            })
        ));
        assert!(matches!(
            d.load(0, vec![0u8; 16], 0, None),
            Err(Error::ShapeMismatch { .. })
        ));
        // A rejected load must not register the table.
        assert_eq!(d.table_count(), 0);
    }

    #[test]
    fn tag_requested_but_missing() {
        let mut d = HonestNdp::new();
        d.load(0, vec![0u8; 16], 16, None).unwrap();
        assert_eq!(
            d.weighted_sum::<u32>(0, &[0], &[1], true).unwrap_err(),
            Error::TagsUnavailable
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let d = loaded();
        assert!(matches!(
            d.weighted_sum::<u32>(0x1000, &[0, 1], &[1], false),
            Err(Error::QueryLengthMismatch { .. })
        ));
    }

    #[test]
    fn read_row_returns_stored_bytes() {
        let d = loaded();
        let row1 = d.read_row(0x1000, 1).unwrap();
        assert_eq!(
            secndp_arith::ring::words_from_le_bytes::<u32>(&row1),
            vec![10, 20, 30, 40]
        );
    }

    #[test]
    fn tampering_devices_change_results() {
        let rows: Vec<u32> = vec![1, 2, 3, 4, 10, 20, 30, 40];
        let bytes = secndp_arith::ring::words_to_le_bytes(&rows);
        let honest = {
            let d = loaded();
            d.weighted_sum::<u32>(0x1000, &[0, 1], &[3, 2], true)
                .unwrap()
        };
        for tamper in [
            Tamper::FlipResultBit { element: 0, bit: 3 },
            Tamper::SwapFirstRow { with: 1 },
            Tamper::ForgeTag,
            Tamper::ZeroResult,
            Tamper::CorruptStoredRow { row: 0 },
        ] {
            let mut d = TamperingNdp::new(tamper);
            d.load(
                0x1000,
                bytes.clone(),
                16,
                Some(vec![Fq::new(5), Fq::new(6)]),
            )
            .unwrap();
            let r = d
                .weighted_sum::<u32>(0x1000, &[0, 1], &[3, 2], true)
                .unwrap();
            assert_ne!(r, honest, "{tamper:?} did not alter the response");
        }
    }

    #[test]
    fn tampering_extends_to_row_reads() {
        let rows: Vec<u32> = vec![1, 2, 3, 4, 10, 20, 30, 40];
        let bytes = secndp_arith::ring::words_to_le_bytes(&rows);
        let honest_row0 = &bytes[..16];
        for tamper in [
            Tamper::FlipResultBit { element: 0, bit: 3 },
            Tamper::SwapFirstRow { with: 1 },
            Tamper::ZeroResult,
            Tamper::CorruptStoredRow { row: 0 },
        ] {
            let mut d = TamperingNdp::new(tamper);
            d.load(0x1000, bytes.clone(), 16, None).unwrap();
            let r = d.read_row(0x1000, 0).unwrap();
            assert_ne!(r, honest_row0, "{tamper:?} did not alter the row read");
            assert_eq!(r.len(), 16, "{tamper:?} changed the row length");
        }
        // ForgeTag alone is a no-op on raw reads: rows carry no tag.
        let mut d = TamperingNdp::new(Tamper::ForgeTag);
        d.load(0x1000, bytes.clone(), 16, None).unwrap();
        assert_eq!(d.read_row(0x1000, 0).unwrap(), honest_row0);
    }

    #[test]
    fn tampering_extends_to_element_queries() {
        let rows: Vec<u32> = vec![1, 2, 3, 4, 10, 20, 30, 40];
        let bytes = secndp_arith::ring::words_to_le_bytes(&rows);
        let coords = [(0usize, 0usize), (1, 1)];
        // 3·m[0][0] + 2·m[1][1] = 3·1 + 2·20
        let honest = 43u32;
        for tamper in [
            Tamper::FlipResultBit { element: 0, bit: 3 },
            Tamper::SwapFirstRow { with: 1 },
            Tamper::ZeroResult,
            Tamper::CorruptStoredRow { row: 0 },
        ] {
            let mut d = TamperingNdp::new(tamper);
            d.load(0x1000, bytes.clone(), 16, None).unwrap();
            let r = d
                .weighted_sum_elements::<u32>(0x1000, &coords, &[3, 2])
                .unwrap();
            assert_ne!(r, honest, "{tamper:?} did not alter the element query");
        }
    }

    #[test]
    fn weighted_sum_wraps_in_ring() {
        let mut d = HonestNdp::new();
        let rows = secndp_arith::ring::words_to_le_bytes(&[200u8, 100]);
        d.load(0, rows, 1, None).unwrap();
        let r = d.weighted_sum::<u8>(0, &[0, 1], &[2, 1], false).unwrap();
        assert_eq!(r.c_res, vec![(400u64 + 100) as u8]);
    }

    #[test]
    fn sanity_weighted_sum_helper_agrees() {
        // HonestNdp's accumulation must agree with ring::weighted_sum.
        let d = loaded();
        let r = d
            .weighted_sum::<u32>(0x1000, &[0, 1], &[7, 9], false)
            .unwrap();
        for j in 0..4 {
            let col = [1 + j as u32, 10 * (1 + j as u32)];
            assert_eq!(r.c_res[j], weighted_sum(&[7u32, 9], &col));
        }
    }
}
