//! Processor secret key management.
//!
//! The secret key `K` never leaves the trusted processor (threat model,
//! paper §II). It seeds the block cipher from which all one-time pads, tag
//! pads and checksum secrets are derived.

use secndp_cipher::aes::Aes128;
use secndp_cipher::aes_fast::Aes128Fast;
use secndp_cipher::otp::OtpGenerator;
use std::fmt;

/// The processor's 128-bit secret key (`w_K = 128`).
///
/// `Debug` never prints key material.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    bytes: [u8; 16],
}

impl SecretKey {
    /// Builds a key from raw bytes (e.g. fused at manufacturing or derived
    /// from a PUF in a real TEE).
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Self { bytes }
    }

    /// Derives a fresh key from an entropy source.
    ///
    /// This is a simple KDF over the seed (AES in Davies–Meyer-style
    /// chaining), adequate for simulation; a production TEE would use a
    /// hardware TRNG.
    pub fn derive_from_seed(seed: u64) -> Self {
        use secndp_cipher::BlockCipher;
        const KDF_CONSTANT: [u8; 16] = [
            0x5e, 0xc9, 0xd9, 0x00, 0x5e, 0xc9, 0xd9, 0x01, 0x5e, 0xc9, 0xd9, 0x02, 0x5e, 0xc9,
            0xd9, 0x03,
        ];
        let base = Aes128::new(&KDF_CONSTANT);
        let mut blk = [0u8; 16];
        blk[..8].copy_from_slice(&seed.to_le_bytes());
        let out = base.encrypt_block(&blk);
        let mut bytes = out;
        for (b, s) in bytes.iter_mut().zip(blk) {
            *b ^= s;
        }
        Self { bytes }
    }

    /// Instantiates the keyed pad generator (the encryption engine of the
    /// SecNDP engine, §V-C1) over the reference AES implementation.
    pub fn otp_generator(&self) -> OtpGenerator<Aes128> {
        OtpGenerator::new(Aes128::new(&self.bytes))
    }

    /// The same pad generator over the T-table AES — the same permutation,
    /// several times faster in software (see `secndp_cipher::aes_fast` for
    /// the side-channel caveat).
    pub fn otp_generator_fast(&self) -> OtpGenerator<Aes128Fast> {
        OtpGenerator::new(Aes128Fast::new(&self.bytes))
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_redacts() {
        let k = SecretKey::from_bytes([9; 16]);
        assert!(!format!("{k:?}").contains('9'));
    }

    #[test]
    fn derive_is_deterministic_and_seed_sensitive() {
        assert_eq!(
            SecretKey::derive_from_seed(1),
            SecretKey::derive_from_seed(1)
        );
        assert_ne!(
            SecretKey::derive_from_seed(1),
            SecretKey::derive_from_seed(2)
        );
    }

    #[test]
    fn generators_from_same_key_agree() {
        let k = SecretKey::from_bytes([3; 16]);
        let a = k.otp_generator();
        let b = k.otp_generator();
        assert_eq!(a.data_pad_block(64, 2), b.data_pad_block(64, 2));
    }
}
