//! Sign/verify oracles and the MAC forgery game (Algorithms 6/7,
//! Definition A.4).
//!
//! The appendix proves Theorem 2 against a standard MAC adversary who may
//! issue adaptive *sign* queries (`ws-MAC`: run the honest protocol and
//! observe the NDP's response transcript) and *verification* queries
//! (`ws-Verify`: submit an arbitrary response transcript and learn
//! pass/fail). The adversary wins by making a transcript that was never
//! produced by a sign query pass verification.
//!
//! [`WsOracles`] packages exactly that interface around a
//! [`TrustedProcessor`] and an honest device, and
//! [`forgery_game`] runs a configurable randomized adversary against it.
//! The expected forgery probability for our parameters is
//! `m·|Q_v| / q ≈ 2⁻¹²⁰` — the game asserts zero successes, which a
//! correct implementation makes astronomically certain, while common
//! implementation bugs (unkeyed checksums, tags not bound to rows, sign
//! errors in reconstruction) produce successes immediately.

use crate::device::{HonestNdp, NdpDevice, NdpResponse};
use crate::error::Error;
use crate::protocol::{TableHandle, TrustedProcessor};
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::RingWord;
use secndp_cipher::aes::BlockCipher;

/// The sign and verification oracles of Algorithms 6 and 7, specialized to
/// one published table and a fixed query shape (the appendix likewise fixes
/// the index/weight sequences).
pub struct WsOracles<'a, W, C: BlockCipher> {
    cpu: &'a TrustedProcessor<C>,
    device: &'a HonestNdp,
    handle: TableHandle,
    indices: Vec<usize>,
    weights: Vec<W>,
}

impl<'a, W: RingWord, C: BlockCipher> WsOracles<'a, W, C> {
    /// Builds the oracle pair for `handle` with the fixed query
    /// `(indices, weights)`.
    pub fn new(
        cpu: &'a TrustedProcessor<C>,
        device: &'a HonestNdp,
        handle: TableHandle,
        indices: Vec<usize>,
        weights: Vec<W>,
    ) -> Self {
        Self {
            cpu,
            device,
            handle,
            indices,
            weights,
        }
    }

    /// `ws-MAC` (Algorithm 6): runs the honest protocol and returns the
    /// NDP's response transcript `(C_res…, C_T_res)`.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors.
    pub fn sign(&self) -> Result<NdpResponse<W>, Error> {
        self.device.weighted_sum::<W>(
            self.handle.layout().base_addr(),
            &self.indices,
            &self.weights,
            true,
        )
    }

    /// `ws-Verify` (Algorithm 7): submits a transcript and returns whether
    /// verification passes.
    pub fn verify(&self, transcript: &NdpResponse<W>) -> bool {
        self.cpu
            .reconstruct_response(&self.handle, &self.indices, &self.weights, transcript, true)
            .is_ok()
    }
}

/// Outcome of a forgery game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GameOutcome {
    /// Verification queries issued (`|Q_v|`).
    pub verify_queries: u64,
    /// Forgeries accepted (should be zero).
    pub forgeries_accepted: u64,
}

/// Runs a randomized MAC adversary: starting from one honest transcript,
/// it mutates results and tags in the ways real Trojans would (bit flips,
/// element swaps, tag offsets, fresh random tags) and submits each mutant
/// to the verification oracle. Returns the number of accepted forgeries —
/// zero for a sound scheme.
pub fn forgery_game<W: RingWord, C: BlockCipher>(
    oracles: &WsOracles<'_, W, C>,
    trials: u64,
    seed: u64,
) -> Result<GameOutcome, Error> {
    let honest = oracles.sign()?;
    let mut rng = seed | 1;
    let mut next = move || {
        // xorshift64*
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut accepted = 0u64;
    for trial in 0..trials {
        let mut mutant = honest.clone();
        match trial % 4 {
            0 => {
                // Flip a random bit of a random result element.
                let i = (next() as usize) % mutant.c_res.len();
                let bit = next() as u32 % W::BITS;
                let v = mutant.c_res[i].as_u64() ^ (1u64 << bit);
                mutant.c_res[i] = W::from_u64(v);
            }
            1 => {
                // Swap two result elements.
                let n = mutant.c_res.len();
                let (i, j) = ((next() as usize) % n, (next() as usize) % n);
                mutant.c_res.swap(i, j.max(1).min(n - 1));
                if mutant.c_res == honest.c_res {
                    // Degenerate swap; force a change.
                    mutant.c_res[0] = mutant.c_res[0].wadd(W::ONE);
                }
            }
            2 => {
                // Shift the tag by a random field element.
                let t = mutant.c_t_res.unwrap_or(Fq::ZERO);
                mutant.c_t_res = Some(t + Fq::new(next() as u128 | 1));
            }
            _ => {
                // Random result + random tag (blind forgery).
                for x in &mut mutant.c_res {
                    *x = W::from_u64(next());
                }
                mutant.c_t_res = Some(Fq::new(((next() as u128) << 64) | next() as u128));
            }
        }
        if mutant == honest {
            continue;
        }
        if oracles.verify(&mutant) {
            accepted += 1;
        }
    }
    Ok(GameOutcome {
        verify_queries: trials,
        forgeries_accepted: accepted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SecretKey;

    fn setup() -> (TrustedProcessor, HonestNdp, TableHandle) {
        let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x31; 16]));
        let mut ndp = HonestNdp::new();
        let pt: Vec<u32> = (0..256).map(|x| x * 5 + 3).collect();
        let table = cpu.encrypt_table(&pt, 32, 8, 0x1000).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        (cpu, ndp, handle)
    }

    #[test]
    fn honest_transcript_verifies() {
        let (cpu, ndp, handle) = setup();
        let oracles = WsOracles::new(&cpu, &ndp, handle, vec![0, 7, 21], vec![1u32, 2, 3]);
        let t = oracles.sign().unwrap();
        assert!(oracles.verify(&t));
    }

    #[test]
    fn replayed_transcript_for_other_weights_fails() {
        // A transcript signed for weights (1,2,3) must not verify under
        // weights (3,2,1) — the tag binds the whole linear combination.
        let (cpu, ndp, handle) = setup();
        let o1 = WsOracles::new(&cpu, &ndp, handle, vec![0, 7, 21], vec![1u32, 2, 3]);
        let o2 = WsOracles::new(&cpu, &ndp, handle, vec![0, 7, 21], vec![3u32, 2, 1]);
        let t = o1.sign().unwrap();
        assert!(!o2.verify(&t));
        // Nor under a different index set.
        let o3 = WsOracles::new(&cpu, &ndp, handle, vec![0, 7, 22], vec![1u32, 2, 3]);
        assert!(!o3.verify(&t));
    }

    #[test]
    fn forgery_game_accepts_nothing() {
        let (cpu, ndp, handle) = setup();
        let oracles = WsOracles::new(
            &cpu,
            &ndp,
            handle,
            vec![1, 2, 3, 4],
            vec![10u32, 20, 30, 40],
        );
        let outcome = forgery_game(&oracles, 2000, 0xBAD5EED).unwrap();
        assert_eq!(outcome.forgeries_accepted, 0, "{outcome:?}");
        assert_eq!(outcome.verify_queries, 2000);
    }

    #[test]
    fn forgery_game_catches_a_broken_verifier() {
        // Sanity check that the game has teeth: with verification skipped
        // (reconstruct_response(…, false)), every mutant "passes".
        let (cpu, ndp, handle) = setup();
        let oracles = WsOracles::new(&cpu, &ndp, handle, vec![0, 1], vec![1u32, 1]);
        let honest = oracles.sign().unwrap();
        let mut mutant = honest.clone();
        mutant.c_res[0] = mutant.c_res[0].wadd(1);
        // Broken verifier = no verification.
        let passes_unverified = cpu
            .reconstruct_response(&handle, &[0, 1], &[1u32, 1], &mutant, false)
            .is_ok();
        assert!(passes_unverified);
        // Real verifier rejects the same mutant.
        assert!(!oracles.verify(&mutant));
    }
}
