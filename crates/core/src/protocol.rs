//! The trusted-processor side of the SecNDP protocol (Algorithms 4 and 5).
//!
//! [`TrustedProcessor`] models the SecNDP engine inside the TEE (paper §V):
//! it owns the secret key and the software version manager, encrypts tables
//! (`ArithEnc`), regenerates OTP shares on demand (the encryption engine +
//! OTP PU), reconstructs results with one final ring addition (`SecNDPLd`),
//! and verifies tags in the verification engine.
//!
//! The division of labour mirrors Figure 4(a):
//!
//! ```text
//! processor (trusted)                      NDP (untrusted)
//! ───────────────────                      ───────────────
//! T0  C ← Arith-E(K, P)      ──C, C_T──►   stores ciphertext + tags
//! T1  E_res ← Σ aₖ·E_{iₖ}    ◄─C_res───    C_res ← Σ aₖ·C_{iₖ}
//!     res  ← C_res + E_res   ◄─C_T_res─    C_T_res ← Σ aₖ·C_{T_iₖ}
//!     verify: h(res) =? C_T_res + E_T_res
//! ```

use crate::checksum::{plan_secrets, row_checksum, secrets_from_plan, ChecksumScheme};
use crate::device::NdpDevice;
use crate::encrypt::{decrypt_elements, encrypt_elements, encrypt_tags, EncryptedTable};
use crate::error::Error;
use crate::keys::SecretKey;
use crate::layout::TableLayout;
use crate::version::{RegionId, VersionManager};
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::{add_elementwise, words_from_le_bytes, RingWord};
use secndp_cipher::aes::BlockCipher;
use secndp_cipher::aes_fast::Aes128Fast;
use secndp_cipher::otp::{Domain, OtpGenerator, PadPlanner, PadRange};
use secndp_cipher::PadCache;
use secndp_telemetry::trace;
use std::sync::Arc;

/// A reference to a published table: everything the processor needs to
/// regenerate its share and verify results. Handles are cheap to copy and
/// contain no secrets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableHandle {
    layout: TableLayout,
    region: RegionId,
    version: u64,
    has_tags: bool,
    scheme: ChecksumScheme,
}

impl TableHandle {
    /// The table's physical layout.
    pub fn layout(&self) -> TableLayout {
        self.layout
    }

    /// The version the table was encrypted under.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The OTP region the table occupies in the version manager.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Whether verification tags were generated for this table.
    pub fn has_tags(&self) -> bool {
        self.has_tags
    }

    /// The checksum scheme used for this table's tags.
    pub fn scheme(&self) -> ChecksumScheme {
        self.scheme
    }
}

/// Pad material for one batched packet, planned (and cache-probed) in a
/// single pass: per-query data/tag pad ranges plus the checksum secrets.
/// Built by `plan_batch`, consumed query-by-query during reconstruction.
struct BatchPlan {
    planner: PadPlanner,
    data_ranges: Vec<Vec<PadRange>>,
    tag_ranges: Vec<Vec<PadRange>>,
    secrets: Option<Vec<Fq>>,
}

/// The TEE-resident SecNDP engine: key, version manager, encryption and
/// verification logic.
pub struct TrustedProcessor<C: BlockCipher = Aes128Fast> {
    /// The keyed pad generator; the raw key is consumed at construction and
    /// never retained or exposed.
    otp: OtpGenerator<C>,
    versions: VersionManager,
    scheme: ChecksumScheme,
    /// Cross-query pad cache, shared with the version manager's retire
    /// hook so bumped/released versions are evicted eagerly. One cache per
    /// key domain: [`rotate_key`](Self::rotate_key) clears it.
    pad_cache: Arc<PadCache>,
}

impl<C: BlockCipher> std::fmt::Debug for TrustedProcessor<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrustedProcessor")
            .field("live_regions", &self.versions.live_regions())
            .field("scheme", &self.scheme)
            .field("pad_cache_blocks", &self.pad_cache.capacity_blocks())
            .finish_non_exhaustive()
    }
}

impl TrustedProcessor<Aes128Fast> {
    /// Creates a processor with the paper's defaults: AES-128 pads,
    /// single-`s` checksums and a 64-region version manager.
    pub fn new(key: SecretKey) -> Self {
        Self::with_options(key, ChecksumScheme::SingleS, VersionManager::new())
    }

    /// Creates a processor with an explicit checksum scheme and version
    /// manager.
    pub fn with_options(
        key: SecretKey,
        scheme: ChecksumScheme,
        mut versions: VersionManager,
    ) -> Self {
        crate::health::register_protocol_health();
        let pad_cache = Arc::new(PadCache::with_default_capacity());
        versions.add_retire_hook(pad_cache.clone());
        Self {
            otp: key.otp_generator_fast(),
            versions,
            scheme,
            pad_cache,
        }
    }
}

impl<C: BlockCipher> TrustedProcessor<C> {
    /// Builds a processor around an arbitrary keyed block cipher (e.g.
    /// [`secndp_cipher::Aes256`] for a 256-bit security level, or the
    /// byte-oriented reference AES).
    pub fn from_cipher(cipher: C, scheme: ChecksumScheme, mut versions: VersionManager) -> Self {
        crate::health::register_protocol_health();
        let pad_cache = Arc::new(PadCache::with_default_capacity());
        versions.add_retire_hook(pad_cache.clone());
        Self {
            otp: OtpGenerator::new(cipher),
            versions,
            scheme,
            pad_cache,
        }
    }

    /// Rotates to a fresh cipher (key rotation), keeping the version
    /// manager so existing regions continue to advance monotonically.
    ///
    /// Tables encrypted under the old key must be decrypted *before*
    /// rotating (via [`decrypt_table`](Self::decrypt_table)) and
    /// re-encrypted afterwards with
    /// [`reencrypt_table`](Self::reencrypt_table); their old handles stop
    /// verifying, which is exactly the point — a replayed pre-rotation
    /// ciphertext is rejected.
    pub fn rotate_key<C2: BlockCipher>(self, new_cipher: C2) -> TrustedProcessor<C2> {
        // Cached pads are keyed only by the counter tuple, not the key —
        // everything derived under the old key must go. The Arc itself is
        // kept so the version manager's retire hook stays wired.
        self.pad_cache.clear();
        TrustedProcessor {
            otp: OtpGenerator::new(new_cipher),
            versions: self.versions,
            scheme: self.scheme,
            pad_cache: self.pad_cache,
        }
    }

    /// The active checksum scheme.
    pub fn scheme(&self) -> ChecksumScheme {
        self.scheme
    }

    /// The version manager (inspectable for tests and tooling).
    pub fn version_manager(&self) -> &VersionManager {
        &self.versions
    }

    /// The cross-query pad cache (inspectable for tests, tooling and
    /// benchmarks).
    pub fn pad_cache(&self) -> &PadCache {
        &self.pad_cache
    }

    /// Resizes the pad cache to hold `blocks` 16-byte pads (`0` disables
    /// caching entirely). Drops all cached contents.
    pub fn set_pad_cache_blocks(&self, blocks: usize) {
        self.pad_cache.set_capacity_blocks(blocks);
    }

    /// Encrypts a `rows × cols` plaintext and generates per-row tags —
    /// the `ArithEnc` instruction with the verification bit set (§V-E1).
    ///
    /// # Errors
    ///
    /// Propagates layout errors, shape mismatches, and version exhaustion.
    pub fn encrypt_table<W: RingWord>(
        &mut self,
        plaintext: &[W],
        rows: usize,
        cols: usize,
        base_addr: u64,
    ) -> Result<EncryptedTable<W>, Error> {
        self.encrypt_table_opts(plaintext, rows, cols, base_addr, true)
    }

    /// Encrypts without generating tags (encryption-only mode, `Enc-only`
    /// in Figure 9).
    ///
    /// # Errors
    ///
    /// Propagates layout errors, shape mismatches, and version exhaustion.
    pub fn encrypt_table_untagged<W: RingWord>(
        &mut self,
        plaintext: &[W],
        rows: usize,
        cols: usize,
        base_addr: u64,
    ) -> Result<EncryptedTable<W>, Error> {
        self.encrypt_table_opts(plaintext, rows, cols, base_addr, false)
    }

    fn encrypt_table_opts<W: RingWord>(
        &mut self,
        plaintext: &[W],
        rows: usize,
        cols: usize,
        base_addr: u64,
        with_tags: bool,
    ) -> Result<EncryptedTable<W>, Error> {
        let mut sp = trace::span(trace::names::ENCRYPT);
        sp.attr_u64("base_addr", base_addr);
        sp.attr_u64("rows", rows as u64);
        sp.attr_u64("cols", cols as u64);
        let _t = crate::metrics::stage_encrypt_timer();
        crate::metrics::tables_encrypted().inc();
        let layout = TableLayout::new::<W>(base_addr, rows, cols)?;
        let (region, version) = self.versions.register()?;
        sp.attr_u64("version", version);
        let ciphertext = encrypt_elements(&self.otp, plaintext, &layout, version)?;
        let tags =
            with_tags.then(|| encrypt_tags(&self.otp, plaintext, &layout, version, self.scheme));
        Ok(EncryptedTable::from_parts(
            layout, region, version, ciphertext, tags,
        ))
    }

    /// Re-encrypts new contents for an existing table under a bumped
    /// version (a region rewrite, §V-A). The old ciphertext becomes
    /// undecryptable and replay of it is detected by verification.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches and version exhaustion.
    pub fn reencrypt_table<W: RingWord>(
        &mut self,
        table: &EncryptedTable<W>,
        plaintext: &[W],
    ) -> Result<EncryptedTable<W>, Error> {
        let layout = table.layout();
        let version = self.versions.bump(table.region())?;
        let ciphertext = encrypt_elements(&self.otp, plaintext, &layout, version)?;
        let tags = table
            .tags()
            .is_some()
            .then(|| encrypt_tags(&self.otp, plaintext, &layout, version, self.scheme));
        Ok(EncryptedTable::from_parts(
            layout,
            table.region(),
            version,
            ciphertext,
            tags,
        ))
    }

    /// Ships an encrypted table to an NDP device (the `T0` initialization
    /// transfer of Figure 4) and returns the handle used for later queries.
    ///
    /// # Errors
    ///
    /// Propagates the device's load rejection — [`Error::ShapeMismatch`]
    /// for a bad row size, or [`Error::MalformedResponse`] from wire-backed
    /// devices whose reply is not a valid acknowledgement.
    pub fn publish<W: RingWord, D: NdpDevice>(
        &self,
        table: &EncryptedTable<W>,
        device: &mut D,
    ) -> Result<TableHandle, Error> {
        let mut sp = trace::span("publish");
        sp.attr_u64("base_addr", table.layout().base_addr());
        sp.attr_u64("version", table.version());
        device.load(
            table.layout().base_addr(),
            table.ciphertext_bytes(),
            table.layout().row_bytes(),
            table.tags().map(<[Fq]>::to_vec),
        )?;
        Ok(TableHandle {
            layout: table.layout(),
            region: table.region(),
            version: table.version(),
            has_tags: table.tags().is_some(),
            scheme: self.scheme,
        })
    }

    /// Computes `res = Σₖ aₖ · P_{iₖ}` (a weighted summation of rows) using
    /// the untrusted device — Algorithm 4, optionally verified per
    /// Algorithm 5.
    ///
    /// The device works on ciphertext; this method regenerates the OTP
    /// share, reconstructs, and (if `verify`) checks the tag. With `verify`
    /// the result is also guaranteed not to have overflowed ℤ(2^wₑ) in the
    /// unsigned residue sense (Theorem A.2).
    ///
    /// # Errors
    ///
    /// - [`Error::VerificationFailed`] if the reconstructed tag mismatches —
    ///   tampering or overflow.
    /// - [`Error::TagsUnavailable`] if `verify` is requested on an untagged
    ///   table.
    /// - Query-shape errors for bad indices/weights.
    pub fn weighted_sum<W: RingWord, D: NdpDevice>(
        &self,
        handle: &TableHandle,
        device: &D,
        indices: &[usize],
        weights: &[W],
        verify: bool,
    ) -> Result<Vec<W>, Error> {
        let mut sp = trace::span("weighted_sum");
        sp.attr_u64("base_addr", handle.layout.base_addr());
        sp.attr_u64("rows", indices.len() as u64);
        let _cost = secndp_telemetry::profile::begin_query("weighted_sum");
        self.validate_query(handle, indices, weights)?;
        if verify && !handle.has_tags {
            return Err(Error::TagsUnavailable);
        }
        let layout = handle.layout;
        crate::metrics::queries().inc();
        let response = {
            let _s = trace::span(trace::names::NDP_COMPUTE);
            let _t = crate::metrics::stage_ndp_compute_timer();
            device.weighted_sum::<W>(layout.base_addr(), indices, weights, verify)?
        };
        self.reconstruct_response(handle, indices, weights, &response, verify)
    }

    /// Reconstructs (and optionally verifies) a raw
    /// [`NdpResponse`](crate::device::NdpResponse) —
    /// Algorithm 4 lines 8–15 plus Algorithm 5. This is the verification
    /// oracle `ws-Verify` of Algorithm 7: callers that obtained a response
    /// out-of-band (a replay, a forgery attempt, a stored transcript) can
    /// submit it here and learn only pass/fail plus the reconstructed
    /// value.
    ///
    /// # Errors
    ///
    /// Same as [`weighted_sum`](Self::weighted_sum), plus
    /// [`Error::MalformedResponse`] for shape violations.
    pub fn reconstruct_response<W: RingWord>(
        &self,
        handle: &TableHandle,
        indices: &[usize],
        weights: &[W],
        response: &crate::device::NdpResponse<W>,
        verify: bool,
    ) -> Result<Vec<W>, Error> {
        self.validate_query(handle, indices, weights)?;
        let layout = handle.layout;
        if response.c_res.len() != layout.cols() {
            return Err(crate::metrics::malformed(
                "result width differs from table columns",
            ));
        }

        let res = {
            let _s = trace::span(trace::names::DECRYPT);
            let _t = crate::metrics::stage_decrypt_timer();
            // OTP PU: E_res ← Σₖ aₖ · E_{iₖ} (Alg 4 lines 8–14).
            let e_res = self.otp_share(&layout, handle.version, indices, weights);
            // SecNDPLd: one final ring addition (Alg 4 line 15).
            add_elementwise(&response.c_res, &e_res)
        };

        if verify {
            let c_t_res = response.c_t_res.ok_or_else(|| {
                crate::metrics::malformed("verification requested but no tag returned")
            })?;
            self.verify_result(handle, indices, weights, &res, c_t_res)?;
        }
        Ok(res)
    }

    /// Executes a batch of weighted summations against one table — the
    /// software view of an NDP packet (up to `NDP_reg` queries in flight;
    /// the timing consequences live in `secndp-sim`). Each query is
    /// independently verified; the first failure aborts the batch.
    ///
    /// All pad material for the packet — data pads for every referenced row
    /// and, when verifying, tag pads — is planned through one
    /// [`PadPlanner`] pass, so rows shared between queries (common in DLRM
    /// embedding batches) cost a single encryption each.
    ///
    /// # Errors
    ///
    /// Same as [`weighted_sum`](Self::weighted_sum), for the first failing
    /// query.
    pub fn weighted_sum_batch<W: RingWord, D: NdpDevice>(
        &self,
        handle: &TableHandle,
        device: &D,
        queries: &[(Vec<usize>, Vec<W>)],
        verify: bool,
    ) -> Result<Vec<Vec<W>>, Error> {
        let mut sp = trace::span("weighted_sum_batch");
        sp.attr_u64("base_addr", handle.layout.base_addr());
        sp.attr_u64("queries", queries.len() as u64);
        let _cost = secndp_telemetry::profile::begin_query("weighted_sum_batch");
        let plan = self.plan_batch(handle, queries, verify)?;
        let layout = handle.layout;

        let mut out = Vec::with_capacity(queries.len());
        for (qi, (idx, weights)) in queries.iter().enumerate() {
            crate::metrics::queries().inc();
            let response = {
                let _s = trace::span(trace::names::NDP_COMPUTE);
                let _t = crate::metrics::stage_ndp_compute_timer();
                device.weighted_sum::<W>(layout.base_addr(), idx, weights, verify)?
            };
            out.push(self.reconstruct_planned(handle, &plan, qi, weights, &response, verify)?);
        }
        Ok(out)
    }

    /// [`weighted_sum_batch`](Self::weighted_sum_batch) over an
    /// [`AsyncEndpoint`](crate::transport::AsyncEndpoint): all queries are
    /// submitted up front (bounded by the endpoint's in-flight window) and
    /// pipelined across its device ranks, overlapping the per-query wire
    /// round trips the blocking loop serializes. Results are reconstructed
    /// and verified in submission order as completions arrive, so the
    /// returned vector is identical to the blocking batch.
    ///
    /// # Errors
    ///
    /// Same as [`weighted_sum_batch`](Self::weighted_sum_batch), plus
    /// [`Error::DeviceTimeout`] when a rank stalls past its deadline (and
    /// retries are exhausted).
    pub fn weighted_sum_batch_pipelined<W: RingWord>(
        &self,
        handle: &TableHandle,
        endpoint: &crate::transport::AsyncEndpoint,
        queries: &[(Vec<usize>, Vec<W>)],
        verify: bool,
    ) -> Result<Vec<Vec<W>>, Error> {
        use crate::wire::{sum_from_response, Request};
        let mut sp = trace::span("weighted_sum_batch");
        sp.attr_u64("base_addr", handle.layout.base_addr());
        sp.attr_u64("queries", queries.len() as u64);
        sp.attr_u64("ranks", endpoint.ranks() as u64);
        let _cost = secndp_telemetry::profile::begin_query("weighted_sum_batch_pipelined");
        let plan = self.plan_batch(handle, queries, verify)?;
        let layout = handle.layout;

        // Submit everything first — the endpoint's window provides the
        // backpressure — then reap in order while later queries execute.
        let wire_sp = trace::span(trace::names::WIRE_ROUND_TRIP);
        let mut ids = Vec::with_capacity(queries.len());
        for (idx, weights) in queries {
            crate::metrics::queries().inc();
            let req = Request::WeightedSum {
                table_addr: layout.base_addr(),
                elem_bytes: W::BYTES as u8,
                indices: idx.iter().map(|&i| i as u64).collect(),
                weights: weights.iter().map(|w| w.as_u64()).collect(),
                with_tag: verify,
            };
            ids.push(endpoint.submit(&req)?);
        }
        let mut out = Vec::with_capacity(queries.len());
        for (qi, ((_, weights), id)) in queries.iter().zip(ids).enumerate() {
            let response = {
                let _s = trace::span(trace::names::NDP_COMPUTE);
                let _t = crate::metrics::stage_ndp_compute_timer();
                sum_from_response::<W>(endpoint.wait(id)?, layout.base_addr())?
            };
            out.push(self.reconstruct_planned(handle, &plan, qi, weights, &response, verify)?);
        }
        drop(wire_sp);
        Ok(out)
    }

    /// Validates a batch and plans all of its pad material — data pads for
    /// every referenced row and, when verifying, tag pads and checksum
    /// secrets — through one cache-probed [`PadPlanner`] pass.
    fn plan_batch<W: RingWord>(
        &self,
        handle: &TableHandle,
        queries: &[(Vec<usize>, Vec<W>)],
        verify: bool,
    ) -> Result<BatchPlan, Error> {
        for (idx, w) in queries {
            self.validate_query(handle, idx, w)?;
        }
        if verify && !handle.has_tags {
            return Err(Error::TagsUnavailable);
        }
        let layout = handle.layout;
        let mut planner = PadPlanner::new();
        let mut data_ranges: Vec<Vec<PadRange>> = Vec::with_capacity(queries.len());
        let mut tag_ranges: Vec<Vec<PadRange>> = Vec::with_capacity(queries.len());
        for (idx, _) in queries {
            data_ranges.push(
                idx.iter()
                    .map(|&i| {
                        planner.request_bytes(
                            Domain::Data,
                            layout.row_addr(i),
                            layout.row_bytes(),
                            handle.version,
                        )
                    })
                    .collect(),
            );
            if verify {
                tag_ranges.push(
                    idx.iter()
                        .map(|&i| {
                            planner.request_block(Domain::Tag, layout.row_addr(i), handle.version)
                        })
                        .collect(),
                );
            }
        }
        let secret_ranges = verify.then(|| {
            plan_secrets(
                &mut planner,
                layout.base_addr(),
                handle.version,
                handle.scheme,
            )
        });
        planner.execute_cached(self.otp.cipher(), Some(&self.pad_cache));
        let secrets = secret_ranges
            .as_ref()
            .map(|rs| secrets_from_plan(&planner, rs));
        Ok(BatchPlan {
            planner,
            data_ranges,
            tag_ranges,
            secrets,
        })
    }

    /// Reconstructs (and optionally verifies) query `qi` of a planned
    /// batch from the device's raw response — the per-query tail shared by
    /// the blocking and pipelined batch paths.
    fn reconstruct_planned<W: RingWord>(
        &self,
        handle: &TableHandle,
        plan: &BatchPlan,
        qi: usize,
        weights: &[W],
        response: &crate::device::NdpResponse<W>,
        verify: bool,
    ) -> Result<Vec<W>, Error> {
        let layout = handle.layout;
        if response.c_res.len() != layout.cols() {
            return Err(crate::metrics::malformed(
                "result width differs from table columns",
            ));
        }
        let res = {
            let _s = trace::span(trace::names::DECRYPT);
            let _t = crate::metrics::stage_decrypt_timer();
            let mut e_res = vec![W::ZERO; layout.cols()];
            for (range, &a) in plan.data_ranges[qi].iter().zip(weights) {
                let pads = words_from_le_bytes::<W>(&plan.planner.pad_bytes(range));
                for (acc, &e) in e_res.iter_mut().zip(&pads) {
                    *acc = acc.wadd(a.wmul(e));
                }
            }
            add_elementwise(&response.c_res, &e_res)
        };
        if verify {
            let _s = trace::span(trace::names::VERIFY);
            let _t = crate::metrics::stage_verify_timer();
            let c_t_res = response.c_t_res.ok_or_else(|| {
                crate::metrics::malformed("verification requested but no tag returned")
            })?;
            let t_res = row_checksum(&res, plan.secrets.as_ref().unwrap());
            let mut e_t_res = Fq::ZERO;
            for (range, &a) in plan.tag_ranges[qi].iter().zip(weights) {
                e_t_res += Fq::new(a.as_u128()) * Fq::new(plan.planner.pad_first_127_bits(range));
            }
            if t_res != c_t_res + e_t_res {
                return Err(crate::metrics::verification_failed(
                    layout.base_addr(),
                    handle.region.0,
                    handle.version,
                    handle.scheme.name(),
                ));
            }
        }
        Ok(res)
    }

    /// The processor's share `E_res` of a weighted summation (public for
    /// tests and the simulator's OTP-PU accounting).
    ///
    /// Pads for all referenced rows are planned and encrypted in one
    /// batched pass; repeated indices collapse to a single encryption.
    pub fn otp_share<W: RingWord>(
        &self,
        layout: &TableLayout,
        version: u64,
        indices: &[usize],
        weights: &[W],
    ) -> Vec<W> {
        let mut planner = PadPlanner::new();
        let ranges: Vec<PadRange> = indices
            .iter()
            .map(|&i| {
                planner.request_bytes(
                    Domain::Data,
                    layout.row_addr(i),
                    layout.row_bytes(),
                    version,
                )
            })
            .collect();
        planner.execute_cached(self.otp.cipher(), Some(&self.pad_cache));
        let mut e_res = vec![W::ZERO; layout.cols()];
        for (range, &a) in ranges.iter().zip(weights) {
            let pads = words_from_le_bytes::<W>(&planner.pad_bytes(range));
            for (acc, &e) in e_res.iter_mut().zip(&pads) {
                *acc = acc.wadd(a.wmul(e));
            }
        }
        e_res
    }

    /// Algorithm 5: recompute the checksum of the reconstructed result and
    /// compare against the reconstructed tag.
    fn verify_result<W: RingWord>(
        &self,
        handle: &TableHandle,
        indices: &[usize],
        weights: &[W],
        res: &[W],
        c_t_res: Fq,
    ) -> Result<(), Error> {
        let _s = trace::span(trace::names::VERIFY);
        let _t = crate::metrics::stage_verify_timer();
        let layout = handle.layout;
        // Secrets and tag pads share one batched, cache-probed execute.
        let mut planner = PadPlanner::new();
        let secret_ranges = plan_secrets(
            &mut planner,
            layout.base_addr(),
            handle.version,
            handle.scheme,
        );
        let tag_ranges: Vec<PadRange> = indices
            .iter()
            .map(|&i| planner.request_block(Domain::Tag, layout.row_addr(i), handle.version))
            .collect();
        planner.execute_cached(self.otp.cipher(), Some(&self.pad_cache));
        let secrets = secrets_from_plan(&planner, &secret_ranges);
        let t_res = row_checksum(res, &secrets);
        // E_T_res ← Σₖ aₖ · E_{T_iₖ} (Alg 5 lines 11–14).
        let mut e_t_res = Fq::ZERO;
        for (range, &a) in tag_ranges.iter().zip(weights) {
            e_t_res += Fq::new(a.as_u128()) * Fq::new(planner.pad_first_127_bits(range));
        }
        // Retrieved MAC = C_T_res + E_T_res (see mac.rs on the paper's sign
        // typo in Alg 5 line 16).
        if t_res == c_t_res + e_t_res {
            Ok(())
        } else {
            Err(crate::metrics::verification_failed(
                layout.base_addr(),
                handle.region.0,
                handle.version,
                handle.scheme.name(),
            ))
        }
    }

    /// Fetches one row back from the device and decrypts it (a plain
    /// protected-memory read; no NDP computation involved).
    ///
    /// # Errors
    ///
    /// Propagates device errors; returns [`Error::MalformedResponse`] if the
    /// returned row has the wrong size.
    pub fn read_row<W: RingWord, D: NdpDevice>(
        &self,
        handle: &TableHandle,
        device: &D,
        row: usize,
    ) -> Result<Vec<W>, Error> {
        let mut sp = trace::span("read_row");
        sp.attr_u64("base_addr", handle.layout.base_addr());
        sp.attr_u64("row", row as u64);
        let layout = handle.layout;
        if row >= layout.rows() {
            return Err(Error::RowOutOfBounds {
                index: row,
                rows: layout.rows(),
            });
        }
        let bytes = device.read_row(layout.base_addr(), row)?;
        if bytes.len() != layout.row_bytes() {
            return Err(crate::metrics::malformed("row size differs from layout"));
        }
        let ct = words_from_le_bytes::<W>(&bytes);
        let mut planner = PadPlanner::new();
        let range = planner.request_bytes(
            Domain::Data,
            layout.row_addr(row),
            layout.row_bytes(),
            handle.version,
        );
        planner.execute_cached(self.otp.cipher(), Some(&self.pad_cache));
        let pads = words_from_le_bytes::<W>(&planner.pad_bytes(&range));
        Ok(add_elementwise(&ct, &pads))
    }

    /// A **verified** single-row read: fetches the row as the weighted
    /// summation `1 · row` so the device must return a combinable tag, and
    /// the usual checksum comparison (Algorithm 5) authenticates the
    /// bytes. A plain [`read_row`](Self::read_row) trusts whatever
    /// ciphertext the device returns — fine for throughput, but a
    /// tampering device can silently swap or corrupt rows there; this
    /// path closes that gap at the cost of one tag combination.
    ///
    /// # Errors
    ///
    /// As for [`weighted_sum`](Self::weighted_sum), including
    /// [`Error::VerificationFailed`] when the row was tampered with and
    /// [`Error::TagsUnavailable`] when the table was published untagged.
    pub fn read_row_verified<W: RingWord, D: NdpDevice>(
        &self,
        handle: &TableHandle,
        device: &D,
        row: usize,
    ) -> Result<Vec<W>, Error> {
        self.weighted_sum(handle, device, &[row], &[W::from_u64(1)], true)
    }

    /// Element-granular offload: `Σₖ aₖ · P[iₖ][jₖ]` over individual
    /// elements — the fully general form of Algorithm 4 (Appendix A), which
    /// indexes by `(iₖ, jₖ)` pairs instead of whole rows.
    ///
    /// This path is **encryption-only**: the per-row tags of Algorithms 2/3
    /// authenticate whole-row linear combinations, so element selections
    /// cannot be verified with them (the paper's verification, Alg 5, is
    /// likewise defined over row-level weighted summations).
    ///
    /// # Errors
    ///
    /// Query-shape and device errors.
    pub fn weighted_sum_elements<W: RingWord, D: NdpDevice>(
        &self,
        handle: &TableHandle,
        device: &D,
        coords: &[(usize, usize)],
        weights: &[W],
    ) -> Result<W, Error> {
        let mut sp = trace::span("weighted_sum_elements");
        sp.attr_u64("base_addr", handle.layout.base_addr());
        sp.attr_u64("elements", coords.len() as u64);
        if coords.len() != weights.len() {
            return Err(Error::QueryLengthMismatch {
                indices: coords.len(),
                weights: weights.len(),
            });
        }
        let layout = handle.layout;
        for &(i, j) in coords {
            if i >= layout.rows() {
                return Err(Error::RowOutOfBounds {
                    index: i,
                    rows: layout.rows(),
                });
            }
            if j >= layout.cols() {
                return Err(Error::ColOutOfBounds {
                    index: j,
                    cols: layout.cols(),
                });
            }
        }
        let c_res = device.weighted_sum_elements::<W>(layout.base_addr(), coords, weights)?;
        // OTP PU: Σₖ aₖ · E_{iₖ,jₖ} (Alg 4 lines 8–12), planned as one
        // batch — elements sharing a cipher block cost one encryption.
        let mut planner = PadPlanner::new();
        let ranges: Vec<PadRange> = coords
            .iter()
            .map(|&(i, j)| {
                planner.request_bytes(
                    Domain::Data,
                    layout.element_addr(i, j),
                    W::BYTES,
                    handle.version,
                )
            })
            .collect();
        planner.execute_cached(self.otp.cipher(), Some(&self.pad_cache));
        let mut e_res = W::ZERO;
        for (range, &a) in ranges.iter().zip(weights) {
            e_res = e_res.wadd(a.wmul(W::from_le_slice(&planner.pad_bytes(range))));
        }
        Ok(c_res.wadd(e_res))
    }

    /// Decrypts a full table image held locally (used for round-trip tests
    /// and the initialization path).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn decrypt_table<W: RingWord>(&self, table: &EncryptedTable<W>) -> Result<Vec<W>, Error> {
        decrypt_elements(
            &self.otp,
            table.ciphertext(),
            &table.layout(),
            table.version(),
        )
    }

    /// Releases the version-manager region backing `handle`, freeing a slot.
    ///
    /// The region's version is bumped past its last-used value first (and
    /// the manager's global high-water mark preserves it after release), so
    /// a later registration reusing the slot — possibly at the same base
    /// address — can never resume an old `(addr, version)` OTP stream.
    pub fn release(&mut self, handle: &TableHandle) {
        let _ = self.versions.bump(handle.region);
        self.versions.release(handle.region);
    }

    fn validate_query<W: RingWord>(
        &self,
        handle: &TableHandle,
        indices: &[usize],
        weights: &[W],
    ) -> Result<(), Error> {
        if indices.len() != weights.len() {
            return Err(Error::QueryLengthMismatch {
                indices: indices.len(),
                weights: weights.len(),
            });
        }
        let rows = handle.layout.rows();
        if let Some(&bad) = indices.iter().find(|&&i| i >= rows) {
            return Err(Error::RowOutOfBounds { index: bad, rows });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{HonestNdp, Tamper, TamperingNdp};
    use proptest::prelude::*;

    fn setup() -> (TrustedProcessor, HonestNdp) {
        (
            TrustedProcessor::new(SecretKey::from_bytes([0xAB; 16])),
            HonestNdp::new(),
        )
    }

    #[test]
    fn end_to_end_weighted_sum_verified() {
        let (mut cpu, mut ndp) = setup();
        let pt: Vec<u32> = (0..32).collect();
        let table = cpu.encrypt_table(&pt, 4, 8, 0x4000).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let res = cpu
            .weighted_sum(&handle, &ndp, &[0, 2, 3], &[1u32, 2, 3], true)
            .unwrap();
        for j in 0..8 {
            assert_eq!(res[j], pt[j] + 2 * pt[16 + j] + 3 * pt[24 + j]);
        }
    }

    #[test]
    fn unverified_path_works_without_tags() {
        let (mut cpu, mut ndp) = setup();
        let pt: Vec<u16> = (0..20).collect();
        let table = cpu.encrypt_table_untagged(&pt, 5, 4, 0).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        assert!(!handle.has_tags());
        let res = cpu
            .weighted_sum(&handle, &ndp, &[4], &[10u16], false)
            .unwrap();
        assert_eq!(res, vec![160, 170, 180, 190]);
        assert_eq!(
            cpu.weighted_sum(&handle, &ndp, &[4], &[10u16], true)
                .unwrap_err(),
            Error::TagsUnavailable
        );
    }

    #[test]
    fn tampering_is_detected() {
        let pt: Vec<u32> = (0..32).map(|x| x * 3 + 1).collect();
        for tamper in [
            Tamper::FlipResultBit {
                element: 2,
                bit: 17,
            },
            Tamper::SwapFirstRow { with: 3 },
            Tamper::ForgeTag,
            Tamper::ZeroResult,
            Tamper::CorruptStoredRow { row: 1 },
        ] {
            let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0xAB; 16]));
            let mut ndp = TamperingNdp::new(tamper);
            let table = cpu.encrypt_table(&pt, 4, 8, 0x4000).unwrap();
            let handle = cpu.publish(&table, &mut ndp).unwrap();
            let err = cpu
                .weighted_sum(&handle, &ndp, &[0, 1, 2], &[1u32, 2, 3], true)
                .unwrap_err();
            assert_eq!(
                err,
                Error::VerificationFailed { table_addr: 0x4000 },
                "{tamper:?} evaded verification"
            );
        }
    }

    /// Regression: a tampered reply must return
    /// [`Error::VerificationFailed`], bump the failure counter *and* write
    /// a security audit record — no silent metric-only (or error-only)
    /// path. Uses deltas / event filtering because the instruments are
    /// global and other tests run concurrently.
    #[test]
    #[cfg(feature = "telemetry")]
    fn tampering_increments_verify_failure_counter() {
        let failures = secndp_telemetry::counter!(
            "secndp_verify_failures_total",
            "Responses whose checksum tag failed verification."
        );
        let before = failures.get();
        let audit_before = secndp_telemetry::audit::audit_log().total();
        let pt: Vec<u32> = (0..32).collect();
        let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0xCD; 16]));
        let mut ndp = TamperingNdp::new(Tamper::FlipResultBit { element: 0, bit: 3 });
        let table = cpu.encrypt_table(&pt, 4, 8, 0x9000).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let err = cpu
            .weighted_sum(&handle, &ndp, &[0, 1], &[1u32, 1], true)
            .unwrap_err();
        assert_eq!(err, Error::VerificationFailed { table_addr: 0x9000 });
        assert!(failures.get() > before, "error returned without counting");
        // The failure also landed in the audit log, carrying the table's
        // identity, OTP version and checksum scheme.
        let log = secndp_telemetry::audit::audit_log();
        assert!(log.total() > audit_before, "no audit record written");
        let ev = log
            .snapshot()
            .into_iter()
            .rev()
            .find(|e| e.kind == "verification_failed" && e.table_addr == 0x9000)
            .expect("audit event for the tampered table");
        assert_eq!(ev.version, handle.version());
        assert_eq!(ev.scheme, "single_s");
        // The batch path shares the same invariant.
        let mid = failures.get();
        let err = cpu
            .weighted_sum_batch(&handle, &ndp, &[(vec![0, 1], vec![1u32, 1])], true)
            .unwrap_err();
        assert_eq!(err, Error::VerificationFailed { table_addr: 0x9000 });
        assert!(failures.get() > mid, "batch path skipped the counter");
    }

    /// Regression for release/re-register: a region released and later
    /// re-registered at the *same base address* must encrypt under a fresh
    /// version — identical versions would mean identical OTP pad streams
    /// (a two-time pad across the release boundary).
    #[test]
    fn released_slot_never_resumes_old_pad_stream() {
        let (mut cpu, mut ndp) = setup();
        let pt: Vec<u32> = vec![7; 8];
        let t1 = cpu.encrypt_table(&pt, 2, 4, 0x500).unwrap();
        let h1 = cpu.publish(&t1, &mut ndp).unwrap();
        cpu.release(&h1);
        // Same plaintext, same base address, fresh registration.
        let t2 = cpu.encrypt_table(&pt, 2, 4, 0x500).unwrap();
        assert!(
            t2.version() > t1.version(),
            "fresh version {} must exceed released version {}",
            t2.version(),
            t1.version()
        );
        assert_ne!(
            t1.ciphertext(),
            t2.ciphertext(),
            "same (addr, version) pad stream reused across release"
        );
        // And the fresh table still round-trips.
        assert_eq!(cpu.decrypt_table(&t2).unwrap(), pt);
    }

    #[test]
    fn overflow_is_detected_by_verification() {
        // Paper footnote 1 / Theorem A.2: overflow beyond 2^wₑ is caught.
        let (mut cpu, mut ndp) = setup();
        let pt: Vec<u8> = vec![200, 200, 200, 200];
        let table = cpu.encrypt_table(&pt, 2, 2, 0x100).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        // 2 × 200 = 400 > 255: overflows u8.
        let err = cpu
            .weighted_sum(&handle, &ndp, &[0, 1], &[1u8, 1], true)
            .unwrap_err();
        assert_eq!(err, Error::VerificationFailed { table_addr: 0x100 });
        // The same query without verification silently wraps.
        let res = cpu
            .weighted_sum(&handle, &ndp, &[0, 1], &[1u8, 1], false)
            .unwrap();
        assert_eq!(res, vec![144, 144]);
    }

    #[test]
    fn read_row_round_trip() {
        let (mut cpu, mut ndp) = setup();
        let pt: Vec<u32> = (100..124).collect();
        let table = cpu.encrypt_table(&pt, 6, 4, 0x40).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        assert_eq!(
            cpu.read_row::<u32, _>(&handle, &ndp, 2).unwrap(),
            &pt[8..12]
        );
        assert!(cpu.read_row::<u32, _>(&handle, &ndp, 6).is_err());
    }

    #[test]
    fn decrypt_table_round_trip() {
        let (mut cpu, _) = setup();
        let pt: Vec<u64> = (0..12).map(|x| x * 999).collect();
        let table = cpu.encrypt_table(&pt, 3, 4, 0).unwrap();
        assert_eq!(cpu.decrypt_table(&table).unwrap(), pt);
    }

    #[test]
    fn reencrypt_changes_ciphertext_and_still_decrypts() {
        let (mut cpu, mut ndp) = setup();
        let pt1: Vec<u32> = vec![1, 2, 3, 4];
        let table1 = cpu.encrypt_table(&pt1, 2, 2, 0).unwrap();
        let pt2: Vec<u32> = vec![5, 6, 7, 8];
        let table2 = cpu.reencrypt_table(&table1, &pt2).unwrap();
        assert_eq!(table2.version(), table1.version() + 1);
        assert_ne!(table1.ciphertext(), table2.ciphertext());
        assert_eq!(cpu.decrypt_table(&table2).unwrap(), pt2);
        // A device replaying the *old* ciphertext under the new handle is
        // caught by verification.
        let handle2 = {
            let mut tmp = HonestNdp::new();
            let h = cpu.publish(&table2, &mut tmp).unwrap();
            // Load stale data at the same address into the real device.
            cpu.publish(&table1, &mut ndp).unwrap();
            h
        };
        let err = cpu
            .weighted_sum(&handle2, &ndp, &[0], &[1u32], true)
            .unwrap_err();
        assert!(matches!(err, Error::VerificationFailed { .. }));
    }

    #[test]
    fn same_plaintext_different_tables_differ() {
        let (mut cpu, _) = setup();
        let pt: Vec<u32> = vec![9; 8];
        let t1 = cpu.encrypt_table(&pt, 2, 4, 0).unwrap();
        let t2 = cpu.encrypt_table(&pt, 2, 4, 0x1000).unwrap();
        assert_ne!(t1.ciphertext(), t2.ciphertext());
    }

    #[test]
    fn query_validation() {
        let (mut cpu, mut ndp) = setup();
        let pt: Vec<u32> = vec![0; 8];
        let table = cpu.encrypt_table(&pt, 2, 4, 0).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        assert!(matches!(
            cpu.weighted_sum(&handle, &ndp, &[0, 1], &[1u32], false),
            Err(Error::QueryLengthMismatch { .. })
        ));
        assert!(matches!(
            cpu.weighted_sum(&handle, &ndp, &[2], &[1u32], false),
            Err(Error::RowOutOfBounds { index: 2, rows: 2 })
        ));
    }

    #[test]
    fn multi_s_scheme_round_trip_and_detection() {
        let mut cpu = TrustedProcessor::with_options(
            SecretKey::from_bytes([1; 16]),
            ChecksumScheme::MultiS { cnt: 4 },
            VersionManager::new(),
        );
        let mut ndp = HonestNdp::new();
        let pt: Vec<u32> = (0..64).collect();
        let table = cpu.encrypt_table(&pt, 8, 8, 0).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let res = cpu
            .weighted_sum(&handle, &ndp, &[1, 5], &[2u32, 4], true)
            .unwrap();
        for j in 0..8 {
            assert_eq!(res[j], 2 * pt[8 + j] + 4 * pt[40 + j]);
        }
        // Tampering still detected under multi-s.
        let mut bad = TamperingNdp::new(Tamper::ZeroResult);
        let h2 = cpu.publish(&table, &mut bad).unwrap();
        assert!(cpu
            .weighted_sum(&h2, &bad, &[1, 5], &[2u32, 4], true)
            .is_err());
    }

    #[test]
    fn batch_queries_match_individual() {
        let (mut cpu, mut ndp) = setup();
        let pt: Vec<u32> = (0..64).map(|x| x % 50).collect();
        let table = cpu.encrypt_table(&pt, 8, 8, 0x700).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let queries: Vec<(Vec<usize>, Vec<u32>)> = vec![
            (vec![0, 1], vec![1, 1]),
            (vec![7], vec![3]),
            (vec![2, 4, 6], vec![1, 2, 3]),
        ];
        let batch = cpu
            .weighted_sum_batch(&handle, &ndp, &queries, true)
            .unwrap();
        assert_eq!(batch.len(), 3);
        for ((idx, w), got) in queries.iter().zip(&batch) {
            let single = cpu.weighted_sum(&handle, &ndp, idx, w, true).unwrap();
            assert_eq!(got, &single);
        }
    }

    #[test]
    fn element_granular_query_matches_plaintext() {
        let (mut cpu, mut ndp) = setup();
        let pt: Vec<u32> = (0..48).map(|x| x * 11 + 5).collect();
        let table = cpu.encrypt_table(&pt, 6, 8, 0x600).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let coords = [(0usize, 0usize), (3, 7), (5, 2), (3, 7)];
        let weights = [1u32, 2, 3, 4];
        let got = cpu
            .weighted_sum_elements(&handle, &ndp, &coords, &weights)
            .unwrap();
        let want: u32 = coords
            .iter()
            .zip(&weights)
            .map(|(&(i, j), &a)| a * pt[i * 8 + j])
            .sum();
        assert_eq!(got, want);
        // Bounds are enforced on both axes, with axis-specific errors.
        assert!(matches!(
            cpu.weighted_sum_elements(&handle, &ndp, &[(6, 0)], &[1u32]),
            Err(Error::RowOutOfBounds { index: 6, rows: 6 })
        ));
        assert!(matches!(
            cpu.weighted_sum_elements(&handle, &ndp, &[(0, 8)], &[1u32]),
            Err(Error::ColOutOfBounds { index: 8, cols: 8 })
        ));
    }

    #[test]
    fn aes256_processor_end_to_end() {
        use secndp_cipher::aes::Aes256;
        let mut cpu = TrustedProcessor::from_cipher(
            Aes256::new(&[0x42; 32]),
            ChecksumScheme::SingleS,
            VersionManager::new(),
        );
        let mut ndp = HonestNdp::new();
        let pt: Vec<u32> = (0..16).collect();
        let table = cpu.encrypt_table(&pt, 4, 4, 0).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let res = cpu
            .weighted_sum(&handle, &ndp, &[0, 3], &[1u32, 2], true)
            .unwrap();
        assert_eq!(res, vec![24, 27, 30, 33]);
    }

    #[test]
    fn fast_and_reference_aes_produce_identical_ciphertext() {
        // The default (T-table) processor and a reference-AES processor
        // with the same key are interchangeable.
        use secndp_cipher::aes::Aes128;
        let key = SecretKey::from_bytes([0x11; 16]);
        let mut fast = TrustedProcessor::new(key.clone());
        let mut slow = TrustedProcessor::from_cipher(
            Aes128::new(&[0x11; 16]),
            ChecksumScheme::SingleS,
            VersionManager::new(),
        );
        let pt: Vec<u32> = (0..16).collect();
        let a = fast.encrypt_table(&pt, 4, 4, 0x40).unwrap();
        let b = slow.encrypt_table(&pt, 4, 4, 0x40).unwrap();
        assert_eq!(a.ciphertext(), b.ciphertext());
        assert_eq!(a.tags(), b.tags());
    }

    #[test]
    fn key_rotation_invalidates_old_ciphertext() {
        use secndp_cipher::aes_fast::Aes128Fast;
        let (mut cpu, mut ndp) = setup();
        let pt: Vec<u32> = (0..16).map(|x| x + 100).collect();
        let table = cpu.encrypt_table(&pt, 4, 4, 0x900).unwrap();
        let _old_handle = cpu.publish(&table, &mut ndp).unwrap();
        // Decrypt under the old key, rotate, re-encrypt.
        let recovered = cpu.decrypt_table(&table).unwrap();
        assert_eq!(recovered, pt);
        let mut cpu = cpu.rotate_key(Aes128Fast::new(&[0xEE; 16]));
        // The old ciphertext no longer decrypts under the new key.
        assert_ne!(cpu.decrypt_table(&table).unwrap(), pt);
        // Re-encrypting under the rotated key restores service with a
        // bumped version in the same region.
        let table2 = cpu.reencrypt_table(&table, &recovered).unwrap();
        assert_eq!(table2.version(), table.version() + 1);
        let handle2 = cpu.publish(&table2, &mut ndp).unwrap();
        let res = cpu
            .weighted_sum(&handle2, &ndp, &[1], &[1u32], true)
            .unwrap();
        assert_eq!(res, vec![104, 105, 106, 107]);
    }

    #[test]
    fn pad_cache_warms_across_queries() {
        let (mut cpu, mut ndp) = setup();
        // Cache behavior is under test: pin the capacity so these tests
        // are independent of the SECNDP_PAD_CACHE_BLOCKS matrix leg.
        cpu.set_pad_cache_blocks(4096);
        let pt: Vec<u32> = (0..64).collect();
        let table = cpu.encrypt_table(&pt, 8, 8, 0x2000).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let s0 = cpu.pad_cache().stats();
        let r1 = cpu
            .weighted_sum(&handle, &ndp, &[1, 3], &[1u32, 2], true)
            .unwrap();
        let s1 = cpu.pad_cache().stats();
        assert!(s1.misses > s0.misses, "cold query must miss");
        // The identical query again: every pad comes from the cache.
        let r2 = cpu
            .weighted_sum(&handle, &ndp, &[1, 3], &[1u32, 2], true)
            .unwrap();
        let s2 = cpu.pad_cache().stats();
        assert_eq!(r1, r2);
        assert_eq!(s2.misses, s1.misses, "warm query must not re-encrypt");
        assert!(s2.hits > s1.hits, "warm query must hit");
    }

    #[test]
    fn reencrypt_purges_cached_pads_for_old_version() {
        let (mut cpu, mut ndp) = setup();
        cpu.set_pad_cache_blocks(4096);
        let pt: Vec<u32> = (0..16).collect();
        let table = cpu.encrypt_table(&pt, 4, 4, 0x800).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let _ = cpu
            .weighted_sum(&handle, &ndp, &[0, 1, 2, 3], &[1u32, 1, 1, 1], true)
            .unwrap();
        assert!(!cpu.pad_cache().is_empty());
        let inv_before = cpu.pad_cache().stats().invalidations;
        let table2 = cpu.reencrypt_table(&table, &pt).unwrap();
        let inv_after = cpu.pad_cache().stats().invalidations;
        assert!(
            inv_after > inv_before,
            "bump must eagerly invalidate cached pads of the old version"
        );
        // No pad under the old version survives in the cache.
        for i in 0..4 {
            let ctr = secndp_cipher::otp::CounterBlock::new(
                Domain::Data,
                handle.layout().row_addr(i),
                handle.version(),
            );
            assert!(cpu.pad_cache().peek(ctr).is_none());
        }
        // Release purges the current version too.
        let h2 = cpu.publish(&table2, &mut ndp).unwrap();
        let _ = cpu.weighted_sum(&h2, &ndp, &[0], &[1u32], true).unwrap();
        cpu.release(&h2);
        let ctr = secndp_cipher::otp::CounterBlock::new(
            Domain::Data,
            h2.layout().row_addr(0),
            h2.version(),
        );
        assert!(cpu.pad_cache().peek(ctr).is_none());
    }

    #[test]
    fn rotate_key_clears_pad_cache() {
        use secndp_cipher::aes_fast::Aes128Fast;
        let (mut cpu, mut ndp) = setup();
        cpu.set_pad_cache_blocks(4096);
        let pt: Vec<u32> = (0..16).collect();
        let table = cpu.encrypt_table(&pt, 4, 4, 0xA00).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let _ = cpu
            .weighted_sum(&handle, &ndp, &[0], &[1u32], true)
            .unwrap();
        assert!(!cpu.pad_cache().is_empty());
        let cpu = cpu.rotate_key(Aes128Fast::new(&[0x77; 16]));
        assert!(
            cpu.pad_cache().is_empty(),
            "old-key pads must not survive rotation"
        );
        // The retire hook is still wired to the same cache after rotation.
        let mut cpu = cpu;
        let table2 = cpu.reencrypt_table(&table, &pt).unwrap();
        let h2 = cpu.publish(&table2, &mut ndp).unwrap();
        let _ = cpu.weighted_sum(&h2, &ndp, &[1], &[1u32], true).unwrap();
        assert!(!cpu.pad_cache().is_empty());
        let inv_before = cpu.pad_cache().stats().invalidations;
        let _ = cpu.reencrypt_table(&table2, &pt).unwrap();
        assert!(cpu.pad_cache().stats().invalidations > inv_before);
    }

    #[test]
    fn disabled_cache_still_correct() {
        let (mut cpu, mut ndp) = setup();
        cpu.set_pad_cache_blocks(0);
        let pt: Vec<u32> = (0..32).collect();
        let table = cpu.encrypt_table(&pt, 4, 8, 0x4000).unwrap();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let res = cpu
            .weighted_sum(&handle, &ndp, &[0, 2], &[1u32, 2], true)
            .unwrap();
        for j in 0..8 {
            assert_eq!(res[j], pt[j] + 2 * pt[16 + j]);
        }
        let s = cpu.pad_cache().stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        assert!(cpu.pad_cache().is_empty());
    }

    #[test]
    fn debug_does_not_leak_key() {
        let (cpu, _) = setup();
        let s = format!("{cpu:?}");
        assert!(s.contains("TrustedProcessor"));
        assert!(!s.to_lowercase().contains("ab"));
    }

    proptest! {
        /// Protocol correctness (Theorem A.1): for arbitrary small tables,
        /// weights and index multisets, the offloaded result equals the
        /// plaintext weighted sum mod 2^wₑ.
        #[test]
        fn offloaded_equals_local(
            pt in proptest::collection::vec(any::<u32>(), 24),
            idx in proptest::collection::vec(0usize..6, 1..10),
            w_seed in any::<u64>(),
        ) {
            let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([3; 16]));
            let mut ndp = HonestNdp::new();
            let table = cpu.encrypt_table(&pt, 6, 4, 0x100).unwrap();
            let handle = cpu.publish(&table, &mut ndp).unwrap();
            let weights: Vec<u32> = idx.iter().enumerate()
                .map(|(k, _)| (w_seed.wrapping_mul(k as u64 + 1) >> 11) as u32)
                .collect();
            // Unverified (verification legitimately rejects overflow, which
            // random u32 sums will hit).
            let res = cpu.weighted_sum(&handle, &ndp, &idx, &weights, false).unwrap();
            for j in 0..4 {
                let mut want = 0u32;
                for (&i, &a) in idx.iter().zip(&weights) {
                    want = want.wrapping_add(a.wrapping_mul(pt[i * 4 + j]));
                }
                prop_assert_eq!(res[j], want);
            }
        }

        /// With small values (no overflow), verification always passes for
        /// an honest device.
        #[test]
        fn honest_small_values_always_verify(
            pt in proptest::collection::vec(0u32..1000, 24),
            idx in proptest::collection::vec(0usize..6, 1..8),
        ) {
            let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([4; 16]));
            let mut ndp = HonestNdp::new();
            let table = cpu.encrypt_table(&pt, 6, 4, 0x200).unwrap();
            let handle = cpu.publish(&table, &mut ndp).unwrap();
            let weights = vec![7u32; idx.len()];
            prop_assert!(cpu.weighted_sum(&handle, &ndp, &idx, &weights, true).is_ok());
        }
    }
}
