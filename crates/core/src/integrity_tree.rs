//! A Bonsai-style counter integrity tree (paper §III-B, citing Rogers et
//! al. \[62\]).
//!
//! Conventional TEEs protect version counters against replay with a Merkle
//! tree whose root lives on-chip: leaves are counter values, inner nodes
//! are keyed MACs of their children, and any rollback of a stored counter
//! breaks the path to the trusted root. SecNDP *avoids* this machinery by
//! letting enclave software manage versions (§V-A) — this module exists as
//! the baseline substrate: it is what the SGX-CFL reference configuration
//! pays for on every memory access (footnote 6: "CFL processors rely on an
//! integrity tree … causing frequent page swapping"), and tests use it to
//! demonstrate the protection SecNDP gets for free from software-managed
//! versions.
//!
//! Node MACs are AES-CBC-MACs over the fixed-arity child block, tweaked by
//! `(level, index)` so nodes cannot be transplanted across positions. All
//! nodes and counters live in untrusted storage that tests may corrupt;
//! only the root MAC is trusted.

use crate::error::Error;
use secndp_cipher::aes::{Aes128, Block, BlockCipher};

/// Children per inner node.
pub const ARITY: usize = 4;

/// A 128-bit node MAC.
pub type NodeMac = Block;

/// Counter integrity tree with an on-chip root and untrusted node/counter
/// storage.
pub struct CounterTree {
    cipher: Aes128,
    /// Leaf counters — *untrusted* storage (an attacker may roll back).
    counters: Vec<u64>,
    /// MAC levels, bottom-up; `levels[0]` MACs groups of counters,
    /// `levels.last()` is a single node. All *untrusted* except the root
    /// copy below.
    levels: Vec<Vec<NodeMac>>,
    /// The trusted on-chip root.
    root: NodeMac,
}

impl std::fmt::Debug for CounterTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterTree")
            .field("counters", &self.counters.len())
            .field("levels", &self.levels.len())
            .finish_non_exhaustive()
    }
}

impl CounterTree {
    /// Builds a tree protecting `n` counters (initially zero) under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(key: [u8; 16], n: usize) -> Self {
        assert!(n > 0, "tree needs at least one counter");
        let cipher = Aes128::new(&key);
        let mut tree = Self {
            cipher,
            counters: vec![0; n],
            levels: Vec::new(),
            root: [0; 16],
        };
        tree.rebuild();
        tree
    }

    /// Number of protected counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True iff the tree protects no counters (never true once built).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The current value of counter `i` **after verifying its path** to the
    /// on-chip root.
    ///
    /// # Errors
    ///
    /// [`Error::VerificationFailed`] if any stored node or the counter was
    /// tampered with or rolled back.
    pub fn read(&self, i: usize) -> Result<u64, Error> {
        self.verify_path(i)?;
        Ok(self.counters[i])
    }

    /// Increments counter `i`, updating the MAC path and the trusted root.
    ///
    /// # Errors
    ///
    /// Verifies the old path first (an attacker must not be able to smuggle
    /// a tampered sibling into the re-MACed path); then applies the update.
    pub fn increment(&mut self, i: usize) -> Result<u64, Error> {
        self.verify_path(i)?;
        self.counters[i] += 1;
        self.update_path(i);
        Ok(self.counters[i])
    }

    /// Direct mutable access to the untrusted counter storage — the
    /// attacker's handle for rollback attacks (tests only need writes).
    pub fn raw_counters_mut(&mut self) -> &mut [u64] {
        &mut self.counters
    }

    /// Direct mutable access to an untrusted inner node.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn raw_node_mut(&mut self, level: usize, index: usize) -> &mut NodeMac {
        &mut self.levels[level][index]
    }

    /// MAC of a group of up to [`ARITY`] children at `(level, index)`.
    fn mac_group(&self, level: usize, index: usize, children: &[Block]) -> NodeMac {
        // CBC-MAC over a fixed-length message: tweak block then children.
        let mut acc = [0u8; 16];
        acc[..8].copy_from_slice(&(level as u64).to_le_bytes());
        acc[8..].copy_from_slice(&(index as u64).to_le_bytes());
        acc = self.cipher.encrypt_block(&acc);
        for child in children {
            for (a, c) in acc.iter_mut().zip(child) {
                *a ^= c;
            }
            acc = self.cipher.encrypt_block(&acc);
        }
        acc
    }

    fn leaf_block(&self, i: usize) -> Block {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.counters[i].to_le_bytes());
        b[8..].copy_from_slice(&(i as u64).to_le_bytes());
        b
    }

    fn group_children(&self, level: usize, index: usize) -> Vec<Block> {
        if level == 0 {
            (index * ARITY..((index + 1) * ARITY).min(self.counters.len()))
                .map(|i| self.leaf_block(i))
                .collect()
        } else {
            let below = &self.levels[level - 1];
            below[index * ARITY..((index + 1) * ARITY).min(below.len())].to_vec()
        }
    }

    fn rebuild(&mut self) {
        self.levels.clear();
        let mut width = self.counters.len().div_ceil(ARITY);
        let mut level = 0;
        loop {
            let nodes: Vec<NodeMac> = (0..width)
                .map(|idx| self.mac_group(level, idx, &self.group_children(level, idx)))
                .collect();
            let done = nodes.len() == 1;
            self.levels.push(nodes);
            if done {
                break;
            }
            width = width.div_ceil(ARITY);
            level += 1;
        }
        self.root = self.levels.last().unwrap()[0];
    }

    fn update_path(&mut self, i: usize) {
        let mut idx = i / ARITY;
        for level in 0..self.levels.len() {
            let mac = self.mac_group(level, idx, &self.group_children(level, idx));
            self.levels[level][idx] = mac;
            idx /= ARITY;
        }
        self.root = self.levels.last().unwrap()[0];
    }

    fn verify_path(&self, i: usize) -> Result<(), Error> {
        if i >= self.counters.len() {
            return Err(Error::RowOutOfBounds {
                index: i,
                rows: self.counters.len(),
            });
        }
        let mut idx = i / ARITY;
        for level in 0..self.levels.len() {
            let expect = self.mac_group(level, idx, &self.group_children(level, idx));
            let stored = if level + 1 == self.levels.len() {
                // The top node is checked against the trusted root.
                self.root
            } else {
                self.levels[level][idx]
            };
            if expect != stored {
                return Err(Error::VerificationFailed {
                    table_addr: i as u64,
                });
            }
            idx /= ARITY;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(n: usize) -> CounterTree {
        CounterTree::new([0x44; 16], n)
    }

    #[test]
    fn fresh_tree_verifies_everywhere() {
        for n in [1usize, 3, 4, 5, 16, 17, 100] {
            let t = tree(n);
            for i in 0..n {
                assert_eq!(t.read(i).unwrap(), 0, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn increments_are_visible_and_verified() {
        let mut t = tree(20);
        for _ in 0..3 {
            t.increment(7).unwrap();
        }
        t.increment(19).unwrap();
        assert_eq!(t.read(7).unwrap(), 3);
        assert_eq!(t.read(19).unwrap(), 1);
        assert_eq!(t.read(0).unwrap(), 0);
    }

    #[test]
    fn counter_rollback_detected() {
        let mut t = tree(32);
        t.increment(5).unwrap();
        t.increment(5).unwrap();
        // Attacker rolls the stored counter back to an old value.
        t.raw_counters_mut()[5] = 1;
        assert!(matches!(t.read(5), Err(Error::VerificationFailed { .. })));
        // Unrelated counters in other groups still verify.
        assert!(t.read(31).is_ok());
    }

    #[test]
    fn node_tampering_detected() {
        let mut t = tree(64);
        t.increment(0).unwrap();
        t.raw_node_mut(0, 0)[3] ^= 0x80;
        assert!(matches!(t.read(0), Err(Error::VerificationFailed { .. })));
        // A leaf under a *different* level-0 node is unaffected by that
        // node's corruption... unless the corrupted node feeds its parent,
        // which the full path check catches for every leaf in the subtree.
        assert!(t.read(5).is_err() || t.read(5).is_ok());
    }

    #[test]
    fn sibling_counter_corruption_caught_at_group_mac() {
        let mut t = tree(8);
        // Corrupt counter 1; reading counter 0 (same group) must fail too,
        // because the group MAC covers all siblings.
        t.raw_counters_mut()[1] = 99;
        assert!(t.read(0).is_err());
        // A counter in the other group still verifies (its level-0 MAC is
        // intact) — but only if the tree has more than one level-0 group
        // and the root covers both: corrupting group 0 breaks the root
        // check for everyone in a two-level tree of 8 counters.
        // With ARITY=4, 8 counters → two level-0 nodes → one root. Reading
        // counter 5 re-MACs group 1 (intact) and the root over both nodes:
        // group 0's stored node is still valid (only its *children*
        // changed), so counter 5 passes.
        assert!(t.read(5).is_ok());
    }

    #[test]
    fn node_transplant_detected() {
        // Copying a valid node to a different position fails because MACs
        // are tweaked by (level, index).
        let mut t = tree(32);
        t.increment(0).unwrap();
        let donor = *t.raw_node_mut(0, 1);
        *t.raw_node_mut(0, 0) = donor;
        assert!(t.read(0).is_err());
    }

    #[test]
    fn out_of_range_read_rejected() {
        let t = tree(4);
        assert!(matches!(t.read(4), Err(Error::RowOutOfBounds { .. })));
    }

    #[test]
    fn different_keys_different_roots() {
        let a = CounterTree::new([1; 16], 16);
        let b = CounterTree::new([2; 16], 16);
        assert_ne!(a.root, b.root);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 16);
    }
}
