//! Encrypted MACs — Algorithm 3 (`el-MAC`).
//!
//! The row checksum `Tᵢ` (Algorithm 2) is itself encrypted with the same
//! arithmetic-sharing trick before being stored next to the row, but in the
//! field 𝔽_q rather than the ring:
//!
//! ```text
//! C_{Tᵢ} = Tᵢ − E_{Tᵢ}  (mod q),    E_{Tᵢ} = first 127 bits of E(K, 10 ‖ paddr(Pᵢ) ‖ v)
//! ```
//!
//! Keeping tags encrypted is what makes verification cheap: the NDP combines
//! the *encrypted* tags linearly (`C_{T_res} = Σ aₖ C_{Tₖ}`) and returns a
//! single field element, instead of shipping every row's tag across the bus.
//! It also keeps `s` information-theoretically hidden from the memory side,
//! which the forgery bound of Theorem 2 requires.

use secndp_arith::mersenne::Fq;
use secndp_cipher::aes::BlockCipher;
use secndp_cipher::otp::OtpGenerator;

/// The tag pad `E_{Tᵢ}` for the row at `row_addr`, as a field element.
///
/// The raw 127-bit cipher output lies in `[0, 2¹²⁷ − 1] = [0, q]`; reduction
/// maps the single non-canonical value `q` to `0`.
pub fn tag_pad_fq<C: BlockCipher>(otp: &OtpGenerator<C>, row_addr: u64, version: u64) -> Fq {
    Fq::new(otp.tag_pad(row_addr, version))
}

/// Encrypts a checksum into the stored tag: `C_T = T − E_T (mod q)`
/// (Algorithm 3 line 5).
pub fn encrypt_tag<C: BlockCipher>(
    otp: &OtpGenerator<C>,
    checksum: Fq,
    row_addr: u64,
    version: u64,
) -> Fq {
    checksum - tag_pad_fq(otp, row_addr, version)
}

/// Recovers a checksum from a stored tag: `T = C_T + E_T (mod q)`.
///
/// Note the paper's Algorithm 5 line 16 prints `T_res = C_T_res − E_T_res`,
/// which contradicts Algorithm 3 (`C_T = T − E_T`) and the prose of §IV-F
/// ("`C_T_res + E_T_res` will be used as the retrieved MAC"). We follow the
/// consistent `+` convention; the sign is a typo in the paper's listing.
pub fn decrypt_tag<C: BlockCipher>(
    otp: &OtpGenerator<C>,
    tag: Fq,
    row_addr: u64,
    version: u64,
) -> Fq {
    tag + tag_pad_fq(otp, row_addr, version)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    use secndp_cipher::aes::Aes128;

    fn otp() -> OtpGenerator<Aes128> {
        OtpGenerator::new(Aes128::new(&[0x77; 16]))
    }

    #[test]
    fn tag_round_trip() {
        let g = otp();
        let t = Fq::new(123456789);
        let c = encrypt_tag(&g, t, 0x40, 9);
        assert_ne!(c, t);
        assert_eq!(decrypt_tag(&g, c, 0x40, 9), t);
    }

    #[test]
    fn tag_pads_bound_to_address_and_version() {
        let g = otp();
        assert_ne!(tag_pad_fq(&g, 0, 1), tag_pad_fq(&g, 64, 1));
        assert_ne!(tag_pad_fq(&g, 0, 1), tag_pad_fq(&g, 0, 2));
    }

    #[test]
    fn wrong_context_fails_round_trip() {
        let g = otp();
        let t = Fq::new(42);
        let c = encrypt_tag(&g, t, 0x40, 9);
        assert_ne!(decrypt_tag(&g, c, 0x80, 9), t);
        assert_ne!(decrypt_tag(&g, c, 0x40, 10), t);
    }

    proptest! {
        #[test]
        fn round_trip_random(v in any::<u128>(), addr in 0u64..1_000_000, ver in 1u64..100) {
            let g = otp();
            let t = Fq::new(v);
            prop_assert_eq!(decrypt_tag(&g, encrypt_tag(&g, t, addr, ver), addr, ver), t);
        }

        /// Tag encryption is additively homomorphic in the pad: combining
        /// encrypted tags then decrypting with the combined pad equals
        /// combining plaintext checksums. (This is the identity Alg 5 uses.)
        #[test]
        fn linear_combination_of_tags(
            t0 in any::<u128>(), t1 in any::<u128>(),
            a0 in 0u64..1000, a1 in 0u64..1000,
        ) {
            let g = otp();
            let (t0, t1) = (Fq::new(t0), Fq::new(t1));
            let c0 = encrypt_tag(&g, t0, 0, 3);
            let c1 = encrypt_tag(&g, t1, 64, 3);
            let (a0, a1) = (Fq::from(a0), Fq::from(a1));
            let c_res = a0 * c0 + a1 * c1;
            let e_res = a0 * tag_pad_fq(&g, 0, 3) + a1 * tag_pad_fq(&g, 64, 3);
            prop_assert_eq!(c_res + e_res, a0 * t0 + a1 * t1);
        }
    }
}
