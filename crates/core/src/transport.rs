//! Non-blocking wire transport with out-of-order completion.
//!
//! The blocking [`RemoteNdp`](crate::wire::RemoteNdp) path serves every
//! frame on the caller's thread, so one processor can keep exactly one NDP
//! rank busy. Real SecNDP deployments hang many ranks off the bus (paper
//! §IV, Figure 4), and the channel — not the crypto — becomes the
//! bottleneck once pads are cached. This module provides the missing
//! piece: an [`AsyncEndpoint`] that runs N device ranks on worker threads
//! and lets the processor *pipeline* encoded request frames through a
//! `submit`/`poll`/`wait` interface.
//!
//! # Design
//!
//! - **Request ids, not protocol changes.** Every submission gets a
//!   process-local `u64` id keyed into a pending-request table; the wire
//!   frames themselves are the unchanged PR 3 traced-frame envelope. The
//!   id never crosses the trust boundary — matching a completion to its
//!   request is the *trusted* side's job, so a malicious device cannot
//!   confuse two requests by forging an id.
//! - **Out-of-order completion.** Workers complete whichever frame they
//!   finish first; each completion fills its slot in the pending table and
//!   wakes waiters. `wait(id)` returns results in whatever order the
//!   caller asks for them.
//! - **Bounded in-flight window.** `submit` blocks while `window`
//!   uncompleted requests are outstanding — backpressure, so a fast
//!   submitter cannot queue unbounded frames in front of a slow device.
//! - **Deadlines and retries.** Each request carries a deadline. When it
//!   expires, idempotent requests (`WeightedSum`, `ReadRow` — pure reads
//!   of device state) are re-submitted to the *next* rank with backoff, at
//!   most `max_retries` times; then the caller gets
//!   [`Error::DeviceTimeout`]. `Load` is **never** retried: a re-sent
//!   Load could overwrite a table that a concurrent re-encryption already
//!   replaced, resurrecting stale ciphertext — instead it is broadcast
//!   once per rank and any failure surfaces immediately.
//! - **First completion wins.** After a retry, two replies may arrive for
//!   one id. The first fills the slot; the straggler finds the slot
//!   settled and is dropped (counted by
//!   `secndp_transport_late_completions_total`). This is sound precisely
//!   because only idempotent requests retry — both replies are answers to
//!   the same pure read.
//!
//! Spans stitch exactly as on the blocking path: `submit` encodes the
//! frame under the caller's ambient span, the worker's `ndp_serve` span
//! parents under the context carried in the envelope, and the shared
//! journal's global ids make the cross-thread tree well-formed.

use crate::device::{validate_load, NdpDevice, NdpResponse};
use crate::error::Error;
use crate::fault::{FaultClass, FaultInjector, FaultKind};
use crate::wire::{self, Request, Response, WireError};
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::RingWord;
use secndp_telemetry::health::{self, HealthStatus};
use secndp_telemetry::trace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for an [`AsyncEndpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Number of device ranks (worker threads) when replicating a device;
    /// endpoints built from an explicit device list use its length instead.
    pub ranks: usize,
    /// Maximum uncompleted requests in flight before `submit` blocks.
    pub window: usize,
    /// Per-request deadline; expiry triggers retry or `DeviceTimeout`.
    pub timeout: Duration,
    /// Maximum re-submissions of an idempotent request after its first
    /// deadline expiry (`0` disables retries).
    pub max_retries: u32,
    /// Extra deadline granted per retry attempt (linear backoff).
    pub backoff: Duration,
    /// How long a *busy* worker may go without a heartbeat before its rank
    /// counts as stalled in health reports (see
    /// [`AsyncEndpoint::stalled_ranks`]).
    pub stall_grace: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            ranks: 1,
            window: 32,
            timeout: Duration::from_millis(1000),
            max_retries: 2,
            backoff: Duration::from_millis(1),
            stall_grace: Duration::from_secs(2),
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl TransportConfig {
    /// Reads the `SECNDP_TRANSPORT_*` environment knobs, falling back to
    /// the defaults: `SECNDP_TRANSPORT_RANKS`, `SECNDP_TRANSPORT_WINDOW`,
    /// `SECNDP_TRANSPORT_TIMEOUT_MS`, `SECNDP_TRANSPORT_RETRIES`,
    /// `SECNDP_TRANSPORT_STALL_MS`.
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            ranks: env_parse("SECNDP_TRANSPORT_RANKS", d.ranks).max(1),
            window: env_parse("SECNDP_TRANSPORT_WINDOW", d.window).max(1),
            timeout: Duration::from_millis(env_parse(
                "SECNDP_TRANSPORT_TIMEOUT_MS",
                d.timeout.as_millis() as u64,
            )),
            max_retries: env_parse("SECNDP_TRANSPORT_RETRIES", d.max_retries),
            backoff: d.backoff,
            stall_grace: Duration::from_millis(
                env_parse(
                    "SECNDP_TRANSPORT_STALL_MS",
                    d.stall_grace.as_millis() as u64,
                )
                .max(10),
            ),
        }
    }
}

/// Liveness vitals one rank worker publishes for health scoring.
///
/// The worker beats the heartbeat every loop iteration (at least every
/// 100 ms while idle) and around each served frame; `busy` is raised for
/// the duration of a `wire::serve` call. A rank is **stalled** when it is
/// busy *and* the heartbeat is older than the configured grace — i.e. the
/// untrusted device has held a frame past any plausible service time.
#[derive(Debug)]
pub struct RankVitals {
    /// Per-endpoint monotonic epoch heartbeats are measured against.
    epoch: Instant,
    /// Milliseconds since `epoch` at the last beat.
    heartbeat_ms: AtomicU64,
    /// Whether the worker is inside `wire::serve` right now.
    busy: AtomicBool,
    /// Frames served to completion.
    served: AtomicU64,
}

impl RankVitals {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            heartbeat_ms: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            served: AtomicU64::new(0),
        }
    }

    fn beat(&self) {
        self.heartbeat_ms
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn begin_serve(&self) {
        self.beat();
        self.busy.store(true, Ordering::Relaxed);
    }

    fn end_serve(&self) {
        self.busy.store(false, Ordering::Relaxed);
        self.served.fetch_add(1, Ordering::Relaxed);
        self.beat();
    }

    /// Time since the worker last signalled liveness.
    pub fn heartbeat_age(&self) -> Duration {
        let now = self.epoch.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(self.heartbeat_ms.load(Ordering::Relaxed)))
    }

    /// Whether the worker is currently serving a frame.
    pub fn is_busy(&self) -> bool {
        self.busy.load(Ordering::Relaxed)
    }

    /// Frames this rank has served to completion.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Busy past the grace period without a heartbeat.
    pub fn stalled(&self, grace: Duration) -> bool {
        self.is_busy() && self.heartbeat_age() > grace
    }
}

/// Handle to one in-flight request; redeem it with
/// [`AsyncEndpoint::poll`] or [`AsyncEndpoint::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

/// One frame queued to a rank worker.
struct Job {
    id: u64,
    frame: Vec<u8>,
}

enum SlotState {
    /// Submitted; no reply yet.
    Waiting,
    /// A worker finished serving the frame (reply bytes or a wire error).
    Done(Result<Vec<u8>, WireError>),
}

struct Slot {
    state: SlotState,
    /// The encoded request frame, kept so a retry re-sends the *identical*
    /// bytes (same trace envelope included).
    frame: Vec<u8>,
    /// Whether the request may be re-sent after a timeout.
    idempotent: bool,
    /// Total sends so far (first submission counts as 1).
    attempts: u32,
    deadline: Instant,
    submitted: Instant,
}

/// Pending-request table plus the in-flight count the window is enforced
/// against. Guarded by one mutex; `cv` signals both completions (for
/// `wait`) and freed window slots (for `submit`).
struct Table {
    slots: HashMap<u64, Slot>,
    waiting: usize,
}

struct Shared {
    table: Mutex<Table>,
    cv: Condvar,
}

/// A non-blocking wire endpoint running N device ranks on worker threads.
///
/// See the [module docs](self) for the design. The endpoint also
/// implements [`NdpDevice`] as a blocking facade (each call is
/// submit-then-wait, `load` broadcasts), so any code written against the
/// trait — the whole e2e suite included — runs over it unchanged.
pub struct AsyncEndpoint {
    shared: Arc<Shared>,
    /// One queue per rank. `mpsc::Sender` is `!Sync`, so each lives behind
    /// a mutex; sends are brief (unbounded channel, no blocking).
    senders: Vec<Mutex<Sender<Job>>>,
    workers: Vec<JoinHandle<()>>,
    vitals: Vec<Arc<RankVitals>>,
    /// Health-check registration for this endpoint; dropped (unregistering
    /// the check) *before* the workers are joined so `/healthz` never
    /// scores a torn-down endpoint.
    health: Option<health::HealthCheckHandle>,
    /// The component name this endpoint registered under (`transport-epN`).
    component: String,
    next_id: AtomicU64,
    next_rank: AtomicUsize,
    cfg: TransportConfig,
}

impl std::fmt::Debug for AsyncEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncEndpoint")
            .field("ranks", &self.senders.len())
            .field("cfg", &self.cfg)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl AsyncEndpoint {
    /// Spawns one worker thread per device in `devices`; each worker owns
    /// its device and serves frames through [`wire::serve`].
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn new<D: NdpDevice + Send + 'static>(devices: Vec<D>, cfg: TransportConfig) -> Self {
        Self::build(devices, cfg, None)
    }

    /// [`new`](Self::new), with the chaos harness's [`FaultInjector`]
    /// wired into every rank worker: frame-class faults (drops,
    /// duplicates, late/malformed replies, stalls, crashes) are consumed
    /// and applied *inside* the worker loop, so they land under real
    /// submit/poll/wait concurrency. Pair with
    /// [`FaultyNdp`](crate::fault::FaultyNdp)-wrapped devices sharing the
    /// same injector so data-class faults land too.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn new_with_faults<D: NdpDevice + Send + 'static>(
        devices: Vec<D>,
        cfg: TransportConfig,
        injector: Arc<FaultInjector>,
    ) -> Self {
        Self::build(devices, cfg, Some(injector))
    }

    fn build<D: NdpDevice + Send + 'static>(
        devices: Vec<D>,
        cfg: TransportConfig,
        injector: Option<Arc<FaultInjector>>,
    ) -> Self {
        assert!(!devices.is_empty(), "endpoint needs at least one rank");
        // Touch every transport instrument so they exist in exported
        // metrics (as zeros) even before the first timeout or retry.
        crate::metrics::transport_inflight();
        crate::metrics::transport_submitted();
        crate::metrics::transport_timeouts();
        crate::metrics::transport_retries();
        crate::metrics::transport_late_completions();
        crate::metrics::transport_completion();
        let shared = Arc::new(Shared {
            table: Mutex::new(Table {
                slots: HashMap::new(),
                waiting: 0,
            }),
            cv: Condvar::new(),
        });
        let mut senders = Vec::with_capacity(devices.len());
        let mut workers = Vec::with_capacity(devices.len());
        let mut vitals = Vec::with_capacity(devices.len());
        for (rank, device) in devices.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Job>();
            let shared = shared.clone();
            let v = Arc::new(RankVitals::new());
            let inj = injector.clone();
            vitals.push(Arc::clone(&v));
            workers.push(
                std::thread::Builder::new()
                    .name(format!("secndp-rank{rank}"))
                    .spawn(move || worker_loop(device, rx, shared, v, rank as u32, inj))
                    .expect("spawn transport worker"),
            );
            senders.push(Mutex::new(tx));
        }
        let (health, component) = register_transport_health(vitals.clone(), cfg.stall_grace);
        Self {
            shared,
            senders,
            workers,
            vitals,
            health: Some(health),
            component,
            next_id: AtomicU64::new(1),
            next_rank: AtomicUsize::new(0),
            cfg,
        }
    }

    /// One device, one rank (the drop-in async replacement for a blocking
    /// `RemoteNdp`).
    pub fn single<D: NdpDevice + Send + 'static>(device: D, cfg: TransportConfig) -> Self {
        Self::new(vec![device], cfg)
    }

    /// Clones `device` across `cfg.ranks` ranks — the multi-rank topology
    /// where every rank holds the same tables (Loads are broadcast).
    pub fn replicated<D: NdpDevice + Clone + Send + 'static>(
        device: D,
        cfg: TransportConfig,
    ) -> Self {
        let ranks = cfg.ranks.max(1);
        Self::new(vec![device; ranks], cfg)
    }

    /// Number of device ranks.
    pub fn ranks(&self) -> usize {
        self.senders.len()
    }

    /// The endpoint's configuration.
    pub fn config(&self) -> &TransportConfig {
        &self.cfg
    }

    /// Requests currently submitted but not yet completed or abandoned.
    pub fn in_flight(&self) -> usize {
        self.shared.table.lock().unwrap().waiting
    }

    /// Per-rank liveness vitals, rank order.
    pub fn vitals(&self) -> &[Arc<RankVitals>] {
        &self.vitals
    }

    /// The health component name this endpoint registered under
    /// (`transport-epN`), as it appears in `/healthz` reports.
    pub fn health_component(&self) -> &str {
        &self.component
    }

    /// Ranks whose worker is busy past `cfg.stall_grace` without a
    /// heartbeat — an unresponsive untrusted device holding a frame.
    pub fn stalled_ranks(&self) -> Vec<usize> {
        self.vitals
            .iter()
            .enumerate()
            .filter(|(_, v)| v.stalled(self.cfg.stall_grace))
            .map(|(i, _)| i)
            .collect()
    }

    /// Submits a request with the configured deadline. Blocks while the
    /// in-flight window is full (backpressure), then returns immediately —
    /// the returned id is redeemed by [`poll`](Self::poll) or
    /// [`wait`](Self::wait).
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameTooLarge`] if the request cannot be encoded
    /// and [`Error::MalformedResponse`] if every worker has shut down.
    pub fn submit(&self, req: &Request) -> Result<RequestId, Error> {
        self.submit_with_timeout(req, self.cfg.timeout)
    }

    /// [`submit`](Self::submit) with an explicit per-request deadline.
    ///
    /// # Errors
    ///
    /// As for [`submit`](Self::submit).
    pub fn submit_with_timeout(
        &self,
        req: &Request,
        timeout: Duration,
    ) -> Result<RequestId, Error> {
        // Encode under the ambient span (captured *before* the encode
        // span opens) so the device-side `ndp_serve` stitches under the
        // caller's context, exactly as on the blocking path.
        let ctx = trace::current();
        let frame = {
            let _e = trace::span(trace::names::WIRE_ENCODE);
            req.encode_traced(ctx)?
        };
        // Load mutates device state: re-sending it after a timeout could
        // overwrite a newer table image, so it is excluded from retries.
        let idempotent = !matches!(req, Request::Load { .. });
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let rank = self.next_rank.fetch_add(1, Ordering::Relaxed) % self.senders.len();
        self.enqueue(id, frame, idempotent, timeout, rank)?;
        Ok(RequestId(id))
    }

    /// Registers the slot (respecting the window) and queues the frame.
    fn enqueue(
        &self,
        id: u64,
        frame: Vec<u8>,
        idempotent: bool,
        timeout: Duration,
        rank: usize,
    ) -> Result<(), Error> {
        {
            let mut t = self.shared.table.lock().unwrap();
            while t.waiting >= self.cfg.window.max(1) {
                t = self.shared.cv.wait(t).unwrap();
            }
            let now = Instant::now();
            t.slots.insert(
                id,
                Slot {
                    state: SlotState::Waiting,
                    frame: frame.clone(),
                    idempotent,
                    attempts: 1,
                    deadline: now + timeout,
                    submitted: now,
                },
            );
            t.waiting += 1;
        }
        crate::metrics::wire_packets().inc();
        crate::metrics::wire_tx_bytes().add(frame.len() as u64);
        secndp_telemetry::profile::add_wire_bytes(frame.len() as u64, 0);
        crate::metrics::transport_submitted().inc();
        crate::metrics::transport_inflight().add(1);
        self.send_to_rank(id, frame, rank, idempotent)
    }

    /// Queues the frame to `rank`. When that rank's worker is gone
    /// (crashed device model) and `failover` is set — idempotent requests
    /// only — the frame is re-routed to the next live rank instead, so a
    /// dead rank degrades capacity rather than correctness. `Load`s and
    /// broadcasts never fail over: re-routing a Load would silently load
    /// fewer replicas than the caller asked for, so the dead rank must
    /// surface as a typed error.
    fn send_to_rank(
        &self,
        id: u64,
        frame: Vec<u8>,
        rank: usize,
        failover: bool,
    ) -> Result<(), Error> {
        let candidates = if failover { self.senders.len() } else { 1 };
        let mut frame = frame;
        for i in 0..candidates {
            let target = (rank + i) % self.senders.len();
            let job = Job { id, frame };
            frame = {
                let tx = self.senders[target].lock().unwrap();
                match tx.send(job) {
                    Ok(()) => return Ok(()),
                    Err(mpsc::SendError(job)) => job.frame,
                }
            };
        }
        // Every permitted rank is gone: abandon the slot so the window is
        // not leaked, and surface a typed error.
        self.abandon(id);
        Err(crate::metrics::malformed("transport worker disconnected"))
    }

    /// Removes a still-waiting slot (timeout or send failure), releasing
    /// its window credit.
    fn abandon(&self, id: u64) {
        let mut t = self.shared.table.lock().unwrap();
        if let Some(slot) = t.slots.remove(&id) {
            if matches!(slot.state, SlotState::Waiting) {
                t.waiting -= 1;
                crate::metrics::transport_inflight().add(-1);
                self.shared.cv.notify_all();
            }
        }
    }

    /// Non-blocking check: `None` while the request is still in flight,
    /// `Some(result)` once it completed (consuming the slot). Timeout
    /// handling (retry, `DeviceTimeout`) only runs inside
    /// [`wait`](Self::wait); `poll` purely observes.
    pub fn poll(&self, id: RequestId) -> Option<Result<Response, Error>> {
        let mut t = self.shared.table.lock().unwrap();
        match t.slots.get(&id.0) {
            Some(Slot {
                state: SlotState::Waiting,
                ..
            }) => None,
            Some(_) => {
                let slot = t.slots.remove(&id.0).unwrap();
                drop(t);
                Some(Self::settle(slot))
            }
            None => Some(Err(crate::metrics::malformed("unknown request id"))),
        }
    }

    /// Blocks until the request completes, retrying idempotent requests on
    /// deadline expiry, and decodes the reply.
    ///
    /// # Errors
    ///
    /// [`Error::DeviceTimeout`] when the deadline (plus permitted retries)
    /// expires; otherwise the decoded device reply's error, as on the
    /// blocking path.
    pub fn wait(&self, id: RequestId) -> Result<Response, Error> {
        loop {
            enum Action {
                Settle(Slot),
                Retry(Vec<u8>, Instant),
                TimedOut(u32),
                Sleep(Instant),
            }
            let action = {
                let mut t = self.shared.table.lock().unwrap();
                match t.slots.get_mut(&id.0) {
                    None => return Err(crate::metrics::malformed("unknown request id")),
                    Some(slot) if !matches!(slot.state, SlotState::Waiting) => {
                        Action::Settle(t.slots.remove(&id.0).unwrap())
                    }
                    Some(slot) => {
                        let now = Instant::now();
                        if now < slot.deadline {
                            Action::Sleep(slot.deadline)
                        } else {
                            crate::metrics::transport_timeouts().inc();
                            if slot.idempotent && slot.attempts <= self.cfg.max_retries {
                                slot.attempts += 1;
                                // Linear backoff: each retry gets a longer
                                // deadline so a transiently slow rank is
                                // not hammered at the original cadence.
                                let grace =
                                    self.cfg.timeout + self.cfg.backoff * (slot.attempts - 1);
                                slot.deadline = now + grace;
                                Action::Retry(slot.frame.clone(), slot.deadline)
                            } else {
                                let attempts = slot.attempts;
                                let slot = t.slots.remove(&id.0).unwrap();
                                if matches!(slot.state, SlotState::Waiting) {
                                    t.waiting -= 1;
                                    crate::metrics::transport_inflight().add(-1);
                                    self.shared.cv.notify_all();
                                }
                                Action::TimedOut(attempts)
                            }
                        }
                    }
                }
            };
            match action {
                Action::Settle(slot) => return Self::settle(slot),
                Action::TimedOut(attempts) => {
                    return Err(Error::DeviceTimeout {
                        deadline_ms: self.cfg.timeout.as_millis() as u64,
                        attempts,
                    })
                }
                Action::Retry(frame, _deadline) => {
                    crate::metrics::transport_retries().inc();
                    secndp_telemetry::profile::add_retries(1);
                    let rank = self.next_rank.fetch_add(1, Ordering::Relaxed) % self.senders.len();
                    // Retries are only issued for idempotent requests, so
                    // failing over past a dead rank is always permitted.
                    self.send_to_rank(id.0, frame, rank, true)?;
                }
                Action::Sleep(deadline) => {
                    let t = self.shared.table.lock().unwrap();
                    // Re-check under the lock: the worker may have
                    // completed between our peek and this wait.
                    let still_waiting = matches!(
                        t.slots.get(&id.0),
                        Some(Slot {
                            state: SlotState::Waiting,
                            ..
                        })
                    );
                    if still_waiting {
                        let dur = deadline.saturating_duration_since(Instant::now());
                        let _unused = self
                            .shared
                            .cv
                            .wait_timeout(t, dur.max(Duration::from_micros(50)))
                            .unwrap();
                    }
                }
            }
        }
    }

    /// Decodes a completed slot's reply and records its latency.
    fn settle(slot: Slot) -> Result<Response, Error> {
        match slot.state {
            SlotState::Waiting => unreachable!("settle called on a waiting slot"),
            SlotState::Done(Ok(reply)) => {
                crate::metrics::transport_completion()
                    .observe(slot.submitted.elapsed().as_nanos() as u64);
                crate::metrics::wire_rx_bytes().add(reply.len() as u64);
                secndp_telemetry::profile::add_wire_bytes(0, reply.len() as u64);
                wire::decode_reply(&reply)
            }
            SlotState::Done(Err(_)) => {
                Err(crate::metrics::malformed("device rejected request frame"))
            }
        }
    }

    /// Sends the request to **every** rank and waits for all completions
    /// (used for `Load`, which must reach every replica). Broadcasts are
    /// never retried; the first failing rank's error is returned after all
    /// ranks settle.
    ///
    /// # Errors
    ///
    /// As for [`wait`](Self::wait), from the first failing rank.
    pub fn broadcast(&self, req: &Request) -> Result<Response, Error> {
        let ctx = trace::current();
        let frame = {
            let _e = trace::span(trace::names::WIRE_ENCODE);
            req.encode_traced(ctx)?
        };
        let mut ids = Vec::with_capacity(self.senders.len());
        for rank in 0..self.senders.len() {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            // idempotent = false: a broadcast is sent exactly once per
            // rank, never re-sent after a timeout.
            self.enqueue(id, frame.clone(), false, self.cfg.timeout, rank)?;
            ids.push(RequestId(id));
        }
        // NB: the zero-rank fallback must stay lazy — `malformed()` records
        // an audit event as a side effect, which must not fire on success.
        let mut out: Option<Result<Response, Error>> = None;
        let mut first_err = None;
        for id in ids {
            match self.wait(id) {
                Ok(Response::Err(code)) if first_err.is_none() => {
                    first_err = Some(Ok(Response::Err(code)));
                }
                Err(e) if first_err.is_none() => first_err = Some(Err(e)),
                r => out = Some(r),
            }
        }
        first_err
            .or(out)
            .unwrap_or_else(|| Err(crate::metrics::malformed("broadcast to zero ranks")))
    }
}

impl Drop for AsyncEndpoint {
    fn drop(&mut self) {
        // Unregister the health check first: a check scoring half-joined
        // workers would report phantom stalls.
        self.health.take();
        // Hang up every queue, then join the workers so no thread outlives
        // the endpoint (and the devices it owns are dropped deterministically).
        self.senders.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Registers this endpoint's component check with the process-wide
/// [`health::monitor`]: worker-liveness from the rank vitals plus windowed
/// timeout / late-completion rates from the transport counters.
fn register_transport_health(
    vitals: Vec<Arc<RankVitals>>,
    grace: Duration,
) -> (health::HealthCheckHandle, String) {
    static EP_SEQ: AtomicU64 = AtomicU64::new(0);
    let component = format!("transport-ep{}", EP_SEQ.fetch_add(1, Ordering::Relaxed));
    let handle = health::monitor().register(&component, move |ctx| {
        let stalled: Vec<usize> = vitals
            .iter()
            .enumerate()
            .filter(|(_, v)| v.stalled(grace))
            .map(|(i, _)| i)
            .collect();
        if !stalled.is_empty() && stalled.len() == vitals.len() {
            return (
                HealthStatus::Failing,
                format!(
                    "all {} transport ranks stalled (busy > {} ms without a heartbeat)",
                    vitals.len(),
                    grace.as_millis()
                ),
            );
        }
        if !stalled.is_empty() {
            return (
                HealthStatus::Degraded,
                format!(
                    "transport rank(s) {stalled:?} stalled (busy > {} ms without a heartbeat)",
                    grace.as_millis()
                ),
            );
        }
        let timeouts = ctx.counter_delta("secndp_transport_timeouts_total");
        let late = ctx.counter_delta("secndp_transport_late_completions_total");
        if timeouts > 0 {
            return (
                HealthStatus::Degraded,
                format!(
                    "{timeouts} request timeout(s) within the window ({late} late completions)"
                ),
            );
        }
        let served: u64 = vitals.iter().map(|v| v.served()).sum();
        (
            HealthStatus::Ok,
            format!("{} rank(s) live, {served} frames served", vitals.len()),
        )
    });
    (handle, component)
}

/// Fills a job's slot with its reply (waking waiters) or, if the slot
/// already settled or was abandoned, counts the straggler.
fn complete(shared: &Shared, id: u64, reply: Result<Vec<u8>, WireError>) {
    let mut t = shared.table.lock().unwrap();
    match t.slots.get_mut(&id) {
        Some(slot) if matches!(slot.state, SlotState::Waiting) => {
            slot.state = SlotState::Done(reply);
            t.waiting -= 1;
            crate::metrics::transport_inflight().add(-1);
            shared.cv.notify_all();
        }
        // Slot already settled (a retry answered first) or abandoned
        // (deadline expired): drop the straggler, count it.
        _ => crate::metrics::transport_late_completions().inc(),
    }
}

fn worker_loop<D: NdpDevice>(
    mut device: D,
    rx: mpsc::Receiver<Job>,
    shared: Arc<Shared>,
    vitals: Arc<RankVitals>,
    rank: u32,
    injector: Option<Arc<FaultInjector>>,
) {
    loop {
        vitals.beat();
        let job = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => job,
            // Idle tick: refresh the heartbeat so idleness never looks
            // like a stall, then keep listening.
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        // Chaos hook: frame-class faults land here, between dequeue and
        // serve, so they perturb the transport exactly where a flaky bus
        // or a hostile rank would. Each consumed fault is journaled with
        // the trace id carried in the request frame (the worker has no
        // ambient span until `wire::serve` opens one).
        let fault = injector
            .as_deref()
            .and_then(|inj| inj.take(FaultClass::Frame));
        if let (Some(fault), Some(inj)) = (fault, injector.as_deref()) {
            let trace = wire::peek_trace(&job.frame);
            match fault.kind {
                FaultKind::DropReply => {
                    inj.journal(&fault, rank, "reply dropped; slot left waiting", trace);
                    continue;
                }
                FaultKind::RankCrash => {
                    inj.journal(&fault, rank, "worker exited without replying", trace);
                    return;
                }
                FaultKind::RankStall { stall_ms } => {
                    inj.journal(&fault, rank, "busy-held before serving", trace);
                    // Busy without heartbeats: exactly the signature the
                    // stall detector scores against `stall_grace`.
                    vitals.begin_serve();
                    std::thread::sleep(Duration::from_millis(stall_ms as u64));
                    let reply = wire::serve(&mut device, &job.frame);
                    vitals.end_serve();
                    complete(&shared, job.id, reply);
                    continue;
                }
                FaultKind::LateReply { delay_ms } => {
                    inj.journal(&fault, rank, "reply delayed past deadline", trace);
                    vitals.begin_serve();
                    let reply = wire::serve(&mut device, &job.frame);
                    vitals.end_serve();
                    std::thread::sleep(Duration::from_millis(delay_ms as u64));
                    complete(&shared, job.id, reply);
                    continue;
                }
                FaultKind::MalformedReply { mask } => {
                    inj.journal(&fault, rank, "reply first byte corrupted", trace);
                    vitals.begin_serve();
                    let reply = wire::serve(&mut device, &job.frame).map(|mut bytes| {
                        if let Some(b) = bytes.first_mut() {
                            *b ^= mask;
                        }
                        bytes
                    });
                    vitals.end_serve();
                    complete(&shared, job.id, reply);
                    continue;
                }
                FaultKind::DuplicateReply => {
                    inj.journal(&fault, rank, "reply completed twice", trace);
                    vitals.begin_serve();
                    let reply = wire::serve(&mut device, &job.frame);
                    vitals.end_serve();
                    complete(&shared, job.id, reply.clone());
                    // The duplicate must hit the settled slot and be
                    // counted as a late completion, never double-settled.
                    complete(&shared, job.id, reply);
                    continue;
                }
                // Data/Host kinds are filtered out by `take`'s class match.
                _ => unreachable!("non-frame fault taken by worker"),
            }
        }
        vitals.begin_serve();
        let reply = wire::serve(&mut device, &job.frame);
        vitals.end_serve();
        complete(&shared, job.id, reply);
    }
}

/// Blocking [`NdpDevice`] facade: every trait call is submit-then-wait
/// (`load` broadcasts to all ranks), so trait-generic code — the full e2e
/// suite — runs over the async transport unchanged.
impl NdpDevice for AsyncEndpoint {
    fn load(
        &mut self,
        table_addr: u64,
        ciphertext: Vec<u8>,
        row_bytes: usize,
        tags: Option<Vec<Fq>>,
    ) -> Result<(), Error> {
        validate_load(ciphertext.len(), row_bytes)?;
        let mut sp = trace::span(trace::names::WIRE_ROUND_TRIP);
        sp.attr_u64("ranks", self.ranks() as u64);
        let req = Request::Load {
            table_addr,
            row_bytes: row_bytes as u32,
            ciphertext,
            tags: tags.map(|ts| ts.iter().map(|t| t.value()).collect()),
        };
        match self.broadcast(&req)? {
            Response::Ack => Ok(()),
            Response::Err(code) => Err(wire::error_from_code(code, table_addr)),
            _ => Err(crate::metrics::malformed("unexpected load reply")),
        }
    }

    fn weighted_sum<W: RingWord>(
        &self,
        table_addr: u64,
        indices: &[usize],
        weights: &[W],
        with_tag: bool,
    ) -> Result<NdpResponse<W>, Error> {
        let sp = trace::span(trace::names::WIRE_ROUND_TRIP);
        let _t = crate::metrics::wire_round_trip().start_timer();
        let req = Request::WeightedSum {
            table_addr,
            elem_bytes: W::BYTES as u8,
            indices: indices.iter().map(|&i| i as u64).collect(),
            weights: weights.iter().map(|w| w.as_u64()).collect(),
            with_tag,
        };
        let id = self.submit(&req)?;
        let resp = self.wait(id)?;
        drop(sp);
        wire::sum_from_response(resp, table_addr)
    }

    fn read_row(&self, table_addr: u64, row: usize) -> Result<Vec<u8>, Error> {
        let sp = trace::span(trace::names::WIRE_ROUND_TRIP);
        let _t = crate::metrics::wire_round_trip().start_timer();
        let req = Request::ReadRow {
            table_addr,
            row: row as u64,
        };
        let id = self.submit(&req)?;
        let resp = self.wait(id)?;
        drop(sp);
        match resp {
            Response::Row(b) => Ok(b),
            Response::Err(code) => Err(wire::error_from_code(code, table_addr)),
            _ => Err(crate::metrics::malformed("wrong response kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::HonestNdp;

    fn loaded_endpoint(ranks: usize) -> AsyncEndpoint {
        let mut dev = HonestNdp::new();
        let rows: Vec<u32> = (0..32).collect();
        dev.load(
            0x100,
            secndp_arith::ring::words_to_le_bytes(&rows),
            16,
            None,
        )
        .unwrap();
        AsyncEndpoint::new(
            vec![dev; ranks],
            TransportConfig {
                ranks,
                ..TransportConfig::default()
            },
        )
    }

    #[test]
    fn submit_wait_round_trip() {
        let ep = loaded_endpoint(2);
        let req = Request::WeightedSum {
            table_addr: 0x100,
            elem_bytes: 4,
            indices: vec![0, 1],
            weights: vec![1, 1],
            with_tag: false,
        };
        let id = ep.submit(&req).unwrap();
        match ep.wait(id).unwrap() {
            Response::Sum { c_res, .. } => {
                assert_eq!(
                    secndp_arith::ring::words_from_le_bytes::<u32>(&c_res),
                    vec![4, 6, 8, 10]
                );
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(ep.in_flight(), 0);
    }

    #[test]
    fn wait_twice_is_a_typed_error() {
        let ep = loaded_endpoint(1);
        let req = Request::ReadRow {
            table_addr: 0x100,
            row: 0,
        };
        let id = ep.submit(&req).unwrap();
        assert!(ep.wait(id).is_ok());
        // The slot is consumed; a second wait is an error, not a hang.
        assert!(matches!(ep.wait(id), Err(Error::MalformedResponse { .. })));
    }

    #[test]
    fn poll_transitions_none_to_some() {
        let ep = loaded_endpoint(1);
        let req = Request::ReadRow {
            table_addr: 0x100,
            row: 1,
        };
        let id = ep.submit(&req).unwrap();
        // Spin until the worker completes; each poll is non-blocking.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match ep.poll(id) {
                None => {
                    assert!(Instant::now() < deadline, "completion never arrived");
                    std::thread::yield_now();
                }
                Some(r) => {
                    assert!(matches!(r.unwrap(), Response::Row(_)));
                    break;
                }
            }
        }
    }

    #[test]
    fn device_errors_cross_the_transport_typed() {
        let ep = loaded_endpoint(1);
        let req = Request::WeightedSum {
            table_addr: 0xDEAD,
            elem_bytes: 4,
            indices: vec![0],
            weights: vec![1],
            with_tag: false,
        };
        let id = ep.submit(&req).unwrap();
        assert!(matches!(ep.wait(id).unwrap(), Response::Err(1)));
    }

    #[test]
    fn stalled_rank_is_detected_and_recovers() {
        let mut dev = HonestNdp::new();
        dev.load(0x1, vec![0u8; 64], 16, None).unwrap();
        // A device that sits on reads for 400 ms against a 50 ms grace:
        // the rank must show as stalled mid-serve and clean afterwards.
        let slow = crate::device::DelayedNdp::new(dev, Duration::from_millis(400));
        let ep = AsyncEndpoint::single(
            slow,
            TransportConfig {
                stall_grace: Duration::from_millis(50),
                timeout: Duration::from_secs(10),
                max_retries: 0,
                ..TransportConfig::default()
            },
        );
        assert!(ep.stalled_ranks().is_empty(), "idle rank must not stall");
        let id = ep
            .submit(&Request::ReadRow {
                table_addr: 0x1,
                row: 0,
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(ep.stalled_ranks(), vec![0]);
        assert!(ep.vitals()[0].is_busy());
        ep.wait(id).unwrap();
        assert!(ep.stalled_ranks().is_empty(), "stall clears on completion");
        assert_eq!(ep.vitals()[0].served(), 1);
    }

    #[test]
    fn endpoint_registers_and_unregisters_health_component() {
        let ep = loaded_endpoint(1);
        let name = ep.health_component().to_string();
        assert!(name.starts_with("transport-ep"));
        let monitor = secndp_telemetry::health::monitor();
        assert!(monitor.components().contains(&name));
        drop(ep);
        assert!(
            !monitor.components().contains(&name),
            "dropping the endpoint must unregister its health check"
        );
    }

    #[test]
    fn window_backpressure_caps_in_flight() {
        // One rank, tiny window: submitting more requests than the window
        // must block until completions free slots — and in_flight never
        // exceeds the window.
        let mut dev = HonestNdp::new();
        dev.load(0x1, vec![0u8; 64], 16, None).unwrap();
        let ep = AsyncEndpoint::single(
            dev,
            TransportConfig {
                window: 2,
                ..TransportConfig::default()
            },
        );
        let mut ids = Vec::new();
        for i in 0..8 {
            let id = ep
                .submit(&Request::ReadRow {
                    table_addr: 0x1,
                    row: i % 4,
                })
                .unwrap();
            assert!(ep.in_flight() <= 2, "window violated");
            ids.push(id);
        }
        for id in ids {
            assert!(ep.wait(id).is_ok());
        }
    }
}
