//! TCP socket transport: the wire protocol over a real network boundary.
//!
//! Every transport before this one was in-process — the blocking
//! [`RemoteNdp`](crate::wire::RemoteNdp) serves frames on the caller's
//! thread and the [`AsyncEndpoint`](crate::transport::AsyncEndpoint)
//! ranks are channel-fed worker threads. SecNDP's threat model, however,
//! places the trusted processor and the untrusted NDP memory on opposite
//! sides of a *channel an adversary owns*. This module puts the existing
//! length-prefixed traced wire frames (unchanged, byte for byte) onto
//! pooled `TcpStream`s, so the protocol demonstrably survives a real I/O
//! path: a [`NetServer`] hosts devices behind a listener and a
//! [`TcpEndpoint`] implements [`NdpDevice`] by shipping frames across the
//! socket.
//!
//! # Net framing
//!
//! The socket carries the traced wire frames inside a thin transport
//! header (all fields little-endian):
//!
//! ```text
//! request:  len: u32 | req_id: u64 | session: u64 | rank: u32 | wire frame
//! reply:    len: u32 | req_id: u64 | wire frame
//! ```
//!
//! `len` counts everything after itself and is capped at
//! [`MAX_NET_FRAME`] plus the header — an oversized declared length closes
//! the connection (server side) or fails the in-flight requests with
//! [`Error::FrameTooLarge`] (client side); it is never allocated. The
//! sentinel length [`SHUTDOWN_SENTINEL`] is a graceful-drain request: the
//! server echoes it, stops accepting, and lets in-flight connections
//! finish their current frame (there is no portable signal handling
//! without a libc dependency, so drain rides the framing instead).
//!
//! `req_id` multiplexes in-flight requests: multiple client threads share
//! one connection and a reader thread demultiplexes replies into a
//! pending table by id. The id only routes bytes back to a waiting
//! thread — reply *content* is still verified cryptographically, so a
//! malicious server that swaps the ids of two replies produces two
//! verification failures, never two wrong answers.
//!
//! `session` namespaces device state per client endpoint: a
//! [`NetServer::host_sessions`] server creates one device instance per
//! `(session, rank)` pair on first use, so concurrent clients (or
//! concurrent tests hitting one server) never clobber each other's
//! tables.
//!
//! # Failure semantics
//!
//! - **Connections are lazy** and re-established with bounded backoff
//!   when broken; `secndp_net_connects_total` / `_reconnects_total`
//!   count the churn, and reconnect bursts degrade the `net-epN` health
//!   component.
//! - **Idempotent-only retry**, exactly the
//!   [`transport`](crate::transport) rules: `WeightedSum` and `ReadRow`
//!   are pure reads and may be re-sent (up to `max_retries`, linear
//!   deadline backoff); `Load` mutates device state and is sent at most
//!   once per rank — a broken connection mid-`Load` surfaces as
//!   [`Error::ConnectionLost`] immediately.
//! - **Deadlines**: a request with no reply within its deadline is a
//!   typed [`Error::DeviceTimeout`] after retries are exhausted.
//! - **The socket is untrusted.** Nothing here adds integrity: a byte
//!   flipped on the wire is caught by the same checksum-tag verification
//!   that catches a tampering device, and an undecodable reply is a typed
//!   [`Error::MalformedResponse`] — never a panic.

use crate::device::{validate_load, NdpDevice, NdpResponse};
use crate::error::Error;
use crate::wire::{self, Request, Response};
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::RingWord;
use secndp_telemetry::health::{self, HealthStatus};
use secndp_telemetry::trace;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest wire frame the net framing will carry, in bytes. A declared
/// length above this is rejected *before* any allocation — a 4-byte
/// header must not be able to command a multi-gigabyte buffer.
pub const MAX_NET_FRAME: usize = 64 << 20;

/// Sentinel `len` value requesting a graceful server drain (see the
/// [module docs](self)).
pub const SHUTDOWN_SENTINEL: u32 = u32::MAX;

/// Bytes of request header after the length prefix (id + session + rank).
const REQ_HEADER: usize = 8 + 8 + 4;

/// Bytes of reply header after the length prefix (id).
const REPLY_HEADER: usize = 8;

/// Socket read-timeout tick: blocked reads wake this often to check
/// shutdown flags, so teardown never waits on a silent peer.
const IO_TICK: Duration = Duration::from_millis(50);

/// Tuning knobs for a [`TcpEndpoint`] (and the env-selected TCP backend
/// of [`RemoteNdp`](crate::wire::RemoteNdp)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Server address per rank (`host:port`). Duplicate entries address
    /// multiple ranks on one server — the rank header tells them apart.
    /// Empty means self-hosted (a private loopback server per endpoint).
    pub addrs: Vec<String>,
    /// Connections per rank; client threads multiplex over the pool.
    pub pool: usize,
    /// Per-request deadline; expiry triggers retry or `DeviceTimeout`.
    pub timeout: Duration,
    /// Maximum re-sends of an idempotent request (`0` disables retries).
    pub max_retries: u32,
    /// Extra deadline granted per retry attempt (linear backoff).
    pub backoff: Duration,
    /// Connect attempts before a broken rank turns into
    /// [`Error::ConnectionLost`].
    pub connect_retries: u32,
    /// Pause between connect attempts.
    pub connect_backoff: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addrs: Vec::new(),
            pool: 1,
            timeout: Duration::from_millis(1000),
            max_retries: 2,
            backoff: Duration::from_millis(50),
            connect_retries: 20,
            connect_backoff: Duration::from_millis(25),
        }
    }
}

impl NetConfig {
    /// Reads the TCP transport environment knobs:
    /// `SECNDP_TRANSPORT_ADDRS` (comma-separated `host:port`, one per
    /// rank) and `SECNDP_TRANSPORT_POOL`, plus the shared
    /// `SECNDP_TRANSPORT_TIMEOUT_MS` / `SECNDP_TRANSPORT_RETRIES` knobs
    /// the async transport also honors.
    pub fn from_env() -> Self {
        let d = Self::default();
        let addrs: Vec<String> = std::env::var("SECNDP_TRANSPORT_ADDRS")
            .ok()
            .map(|v| {
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let env_parse = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Self {
            addrs,
            pool: (env_parse("SECNDP_TRANSPORT_POOL", d.pool as u64) as usize).max(1),
            timeout: Duration::from_millis(env_parse(
                "SECNDP_TRANSPORT_TIMEOUT_MS",
                d.timeout.as_millis() as u64,
            )),
            max_retries: env_parse("SECNDP_TRANSPORT_RETRIES", u64::from(d.max_retries)) as u32,
            backoff: d.backoff,
            connect_retries: d.connect_retries,
            connect_backoff: d.connect_backoff,
        }
    }
}

/// Outcome of [`read_full`]: distinguishes a clean fill from close and
/// shutdown.
enum ReadOutcome {
    /// The buffer was filled completely.
    Full,
    /// The peer closed (possibly mid-frame — a torn frame is a close).
    Eof,
    /// A local shutdown condition was raised while waiting.
    Stopped,
}

/// Fills `buf` from `stream`, tolerating arbitrarily torn reads (the
/// stream has an [`IO_TICK`] read timeout; timeouts just loop) and
/// polling `stopped` on every tick so teardown is never held hostage by
/// a silent peer.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stopped: impl Fn() -> bool,
) -> io::Result<ReadOutcome> {
    let mut pos = 0;
    while pos < buf.len() {
        if stopped() {
            return Ok(ReadOutcome::Stopped);
        }
        match stream.read(&mut buf[pos..]) {
            Ok(0) => return Ok(ReadOutcome::Eof),
            Ok(n) => pos += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Writes one request record (`len | req_id | session | rank | frame`),
/// returning the transport bytes written.
fn write_request(
    stream: &mut TcpStream,
    req_id: u64,
    session: u64,
    rank: u32,
    frame: &[u8],
) -> io::Result<usize> {
    let len = REQ_HEADER + frame.len();
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.extend_from_slice(&req_id.to_le_bytes());
    buf.extend_from_slice(&session.to_le_bytes());
    buf.extend_from_slice(&rank.to_le_bytes());
    buf.extend_from_slice(frame);
    stream.write_all(&buf)?;
    Ok(buf.len())
}

/// Writes one reply record (`len | req_id | frame`).
fn write_reply(stream: &mut TcpStream, req_id: u64, frame: &[u8]) -> io::Result<()> {
    let len = REPLY_HEADER + frame.len();
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.extend_from_slice(&req_id.to_le_bytes());
    buf.extend_from_slice(frame);
    stream.write_all(&buf)
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// How a [`NetServer`] turns an incoming wire frame into a reply frame.
/// One instance is shared (behind a mutex) by every connection thread, so
/// frame service is serialized exactly as on the inline transport.
trait FrameHost: Send {
    fn serve_frame(&mut self, session: u64, rank: u32, frame: &[u8]) -> Vec<u8>;
}

/// A single shared device serving every session and rank — the
/// self-hosted backend behind `SECNDP_TRANSPORT=tcp`, where one endpoint
/// owns one wrapped device.
struct DeviceHost<D>(D);

impl<D: NdpDevice + Send> FrameHost for DeviceHost<D> {
    fn serve_frame(&mut self, _session: u64, _rank: u32, frame: &[u8]) -> Vec<u8> {
        wire::serve_or_reply(&mut self.0, frame)
    }
}

/// Lazily creates one device per `(session, rank)` — the multi-client
/// standalone server. Sessions are never evicted; a long-lived public
/// server would pair this with an idle-session reaper.
struct SessionHost<D, F> {
    make: F,
    devices: HashMap<(u64, u32), D>,
}

impl<D, F> FrameHost for SessionHost<D, F>
where
    D: NdpDevice + Send,
    F: Fn(u64, u32) -> D + Send,
{
    fn serve_frame(&mut self, session: u64, rank: u32, frame: &[u8]) -> Vec<u8> {
        let dev = self
            .devices
            .entry((session, rank))
            .or_insert_with(|| (self.make)(session, rank));
        wire::serve_or_reply(dev, frame)
    }
}

/// A TCP listener hosting NDP devices behind the net framing: one thread
/// per connection, frames dispatched through [`wire::serve_or_reply`] so
/// even decodable-but-invalid requests get a typed error reply instead of
/// a dropped connection.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    listener: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("stopping", &self.stop.load(Ordering::SeqCst))
            .finish()
    }
}

impl NetServer {
    /// Hosts one shared device: every session and rank hits the same
    /// instance (the self-hosted single-client topology).
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn host_device<D: NdpDevice + Send + 'static>(
        device: D,
        addr: impl ToSocketAddrs,
    ) -> io::Result<Self> {
        Self::bind(Box::new(DeviceHost(device)), addr)
    }

    /// Hosts per-client devices: `make(session, rank)` builds a fresh
    /// device the first time that pair appears, so concurrent clients are
    /// isolated from each other (the multi-client topology the
    /// `secndp-server` binary runs).
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn host_sessions<D, F>(make: F, addr: impl ToSocketAddrs) -> io::Result<Self>
    where
        D: NdpDevice + Send + 'static,
        F: Fn(u64, u32) -> D + Send + 'static,
    {
        Self::bind(
            Box::new(SessionHost {
                make,
                devices: HashMap::new(),
            }),
            addr,
        )
    }

    fn bind(host: Box<dyn FrameHost>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        // Touch the server-side instruments so they exist (as zeros) in
        // exported metrics before the first connection or violation.
        crate::metrics::net_server_connections();
        crate::metrics::net_rejected_frames();
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let host = Arc::new(Mutex::new(host));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let listener_thread = std::thread::Builder::new()
            .name("secndp-net-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    crate::metrics::net_server_connections().inc();
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(IO_TICK));
                    let host = Arc::clone(&host);
                    let stop = Arc::clone(&accept_stop);
                    let handle = std::thread::Builder::new()
                        .name("secndp-net-conn".into())
                        .spawn(move || connection_loop(stream, host, stop, addr))
                        .expect("spawn net connection thread");
                    accept_conns.lock().unwrap().push(handle);
                }
            })
            .expect("spawn net accept thread");
        Ok(Self {
            addr,
            stop,
            listener: Some(listener_thread),
            conns,
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a drain was requested (by [`shutdown`](Self::shutdown) or
    /// a client's [`SHUTDOWN_SENTINEL`] frame).
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Raises the drain flag and wakes the acceptor; does not join.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect so the blocking accept observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the server has drained: the acceptor exits (after a
    /// [`shutdown`](Self::shutdown) or a client-sent sentinel) and every
    /// connection thread finishes its in-flight frame and joins.
    pub fn wait(&mut self) {
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

/// Per-connection server loop: reads request records, dispatches through
/// the shared host, writes reply records. Every framing violation —
/// garbage preamble, truncated or oversized length, torn frame — closes
/// *this* connection (counted, never a panic); the listener keeps serving
/// everyone else.
fn connection_loop(
    mut stream: TcpStream,
    host: Arc<Mutex<Box<dyn FrameHost>>>,
    stop: Arc<AtomicBool>,
    server_addr: SocketAddr,
) {
    loop {
        let mut len_buf = [0u8; 4];
        match read_full(&mut stream, &mut len_buf, || stop.load(Ordering::SeqCst)) {
            Ok(ReadOutcome::Full) => {}
            _ => return,
        }
        let len = u32::from_le_bytes(len_buf);
        if len == SHUTDOWN_SENTINEL {
            // Graceful drain: acknowledge by echoing the sentinel, raise
            // the flag, and wake the acceptor so it exits too.
            let _ = stream.write_all(&SHUTDOWN_SENTINEL.to_le_bytes());
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(server_addr);
            return;
        }
        let len = len as usize;
        if !(REQ_HEADER + 1..=MAX_NET_FRAME + REQ_HEADER).contains(&len) {
            // Unframeable stream (garbage preamble or an absurd length):
            // there is no way to resynchronize, so the connection ends.
            crate::metrics::net_rejected_frames().inc();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let mut payload = vec![0u8; len];
        match read_full(&mut stream, &mut payload, || stop.load(Ordering::SeqCst)) {
            Ok(ReadOutcome::Full) => {}
            _ => return,
        }
        let req_id = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        let session = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        let rank = u32::from_le_bytes(payload[16..20].try_into().unwrap());
        let reply = host
            .lock()
            .unwrap()
            .serve_frame(session, rank, &payload[REQ_HEADER..]);
        if write_reply(&mut stream, req_id, &reply).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// How a pending net request failed before a reply arrived.
#[derive(Debug, Clone, Copy)]
enum NetFail {
    /// The carrying connection died (EOF, reset, write error).
    ConnLost,
    /// The server declared a reply length past [`MAX_NET_FRAME`].
    TooLarge(usize),
}

enum NetState {
    Waiting,
    Reply(Vec<u8>),
    Failed(NetFail),
}

struct NetSlot {
    state: NetState,
    /// `(rank, conn index, connection generation)` — which physical
    /// connection carries this request, so a dying reader fails exactly
    /// its own in-flight ids and nothing else.
    route: (usize, usize, u64),
}

struct NetShared {
    table: Mutex<HashMap<u64, NetSlot>>,
    cv: Condvar,
}

impl NetShared {
    /// Fills a slot with its reply bytes, or counts a late/unknown id.
    fn complete(&self, id: u64, reply: Vec<u8>) {
        let mut t = self.table.lock().unwrap();
        match t.get_mut(&id) {
            Some(slot) if matches!(slot.state, NetState::Waiting) => {
                slot.state = NetState::Reply(reply);
                self.cv.notify_all();
            }
            _ => crate::metrics::net_late_replies().inc(),
        }
    }

    /// Fails every request still waiting on `route` — called by a dying
    /// reader thread so its in-flight ids error typed instead of waiting
    /// out their full deadline.
    fn fail_route(&self, route: (usize, usize, u64), fail: NetFail) {
        let mut t = self.table.lock().unwrap();
        let mut hit = false;
        for slot in t.values_mut() {
            if slot.route == route && matches!(slot.state, NetState::Waiting) {
                slot.state = NetState::Failed(fail);
                hit = true;
            }
        }
        if hit {
            self.cv.notify_all();
        }
    }
}

/// Liveness vitals for one rank's connection pool, feeding the `net-epN`
/// health component.
#[derive(Debug, Default)]
pub struct NetRankVitals {
    /// Currently-established connections.
    live: AtomicUsize,
    /// Whether this rank ever connected (a rank that was never used is
    /// idle, not down).
    ever: AtomicBool,
    /// Replies received on this rank.
    served: AtomicU64,
}

impl NetRankVitals {
    /// Currently-established connections in this rank's pool.
    pub fn live_connections(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Whether the rank has ever had an established connection.
    pub fn ever_connected(&self) -> bool {
        self.ever.load(Ordering::Relaxed)
    }

    /// Replies received from this rank.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Connected in the past but holds no live connection now.
    pub fn disconnected(&self) -> bool {
        self.ever_connected() && self.live_connections() == 0
    }
}

/// One established connection: the writing half plus its reader thread.
struct LiveConn {
    stream: TcpStream,
    gen: u64,
    alive: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
    vitals: Arc<NetRankVitals>,
}

impl Drop for LiveConn {
    fn drop(&mut self) {
        // The swap makes the live-count decrement exactly-once between
        // this drop and the reader thread's own exit path.
        if self.alive.swap(false, Ordering::SeqCst) {
            self.vitals.live.fetch_sub(1, Ordering::Relaxed);
        }
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// One connection slot in a rank's pool. `next_gen` monotonically labels
/// successive connections so a stale reader cannot fail a successor's
/// requests.
struct ConnCell {
    conn: Option<LiveConn>,
    next_gen: u64,
}

/// One rank: a server address plus its connection pool.
struct RankLink {
    addr: String,
    conns: Vec<Mutex<ConnCell>>,
    vitals: Arc<NetRankVitals>,
}

/// Process-unique session ids: the pid keeps concurrent *processes*
/// apart on a shared server, the counter keeps concurrent endpoints in
/// one process apart.
fn fresh_session() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    (u64::from(std::process::id()) << 32) | (SEQ.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF)
}

enum WaitOutcome {
    Reply(Vec<u8>),
    Failed(NetFail),
    TimedOut,
}

/// A TCP-backed [`NdpDevice`]: every request crosses a real kernel socket
/// to a [`NetServer`] (an external one via [`connect`](Self::connect), or
/// a private loopback one via [`self_hosted`](Self::self_hosted)). See
/// the [module docs](self) for framing and failure semantics.
pub struct TcpEndpoint {
    links: Vec<RankLink>,
    shared: Arc<NetShared>,
    session: u64,
    stop: Arc<AtomicBool>,
    next_id: AtomicU64,
    next_rank: AtomicUsize,
    next_conn: AtomicUsize,
    cfg: NetConfig,
    /// Health-check registration; dropped (unregistering the check)
    /// *before* connections are torn down so `/healthz` never scores a
    /// torn-down endpoint.
    health: Option<health::HealthCheckHandle>,
    /// The component name this endpoint registered under (`net-epN`).
    component: String,
    /// The private loopback server of a self-hosted endpoint; dropped
    /// after the connections so teardown drains cleanly.
    self_server: Option<NetServer>,
}

impl std::fmt::Debug for TcpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpEndpoint")
            .field("ranks", &self.links.len())
            .field("session", &self.session)
            .field("self_hosted", &self.self_server.is_some())
            .finish()
    }
}

impl TcpEndpoint {
    /// Connects to external server(s): one rank per entry of `cfg.addrs`.
    /// Connections are lazy — no I/O happens until the first request.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedResponse`] when `cfg.addrs` is empty (a
    /// TCP endpoint with zero ranks could answer nothing).
    pub fn connect(cfg: NetConfig) -> Result<Self, Error> {
        if cfg.addrs.is_empty() {
            return Err(Error::MalformedResponse {
                reason: "tcp endpoint needs at least one rank address",
            });
        }
        Ok(Self::build(cfg, None))
    }

    /// Spawns a private loopback [`NetServer`] hosting `device` and
    /// connects a single-rank endpoint to it: every frame crosses a real
    /// kernel TCP socket while the device semantics (honest, tampering,
    /// delayed, …) are fully preserved. This is what
    /// `SECNDP_TRANSPORT=tcp` without `SECNDP_TRANSPORT_ADDRS` rides.
    ///
    /// # Errors
    ///
    /// Propagates the loopback bind failure.
    pub fn self_hosted<D: NdpDevice + Send + 'static>(
        device: D,
        cfg: NetConfig,
    ) -> io::Result<Self> {
        let server = NetServer::host_device(device, "127.0.0.1:0")?;
        let mut cfg = cfg;
        cfg.addrs = vec![server.local_addr().to_string()];
        Ok(Self::build(cfg, Some(server)))
    }

    fn build(cfg: NetConfig, self_server: Option<NetServer>) -> Self {
        // Touch every net instrument so they exist (as zeros) in exported
        // metrics before the first connection or timeout.
        crate::metrics::net_connects();
        crate::metrics::net_reconnects();
        crate::metrics::net_tx_bytes();
        crate::metrics::net_rx_bytes();
        crate::metrics::net_submitted();
        crate::metrics::net_completed();
        crate::metrics::net_timeouts();
        crate::metrics::net_retries();
        crate::metrics::net_conn_failures();
        crate::metrics::net_late_replies();
        let pool = cfg.pool.max(1);
        let links: Vec<RankLink> = cfg
            .addrs
            .iter()
            .map(|addr| RankLink {
                addr: addr.clone(),
                conns: (0..pool)
                    .map(|_| {
                        Mutex::new(ConnCell {
                            conn: None,
                            next_gen: 0,
                        })
                    })
                    .collect(),
                vitals: Arc::new(NetRankVitals::default()),
            })
            .collect();
        let vitals: Vec<Arc<NetRankVitals>> = links.iter().map(|l| Arc::clone(&l.vitals)).collect();
        let (health, component) = register_net_health(vitals, cfg.addrs.clone());
        Self {
            links,
            shared: Arc::new(NetShared {
                table: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
            }),
            session: fresh_session(),
            stop: Arc::new(AtomicBool::new(false)),
            next_id: AtomicU64::new(1),
            next_rank: AtomicUsize::new(0),
            next_conn: AtomicUsize::new(0),
            cfg,
            health: Some(health),
            component,
            self_server,
        }
    }

    /// Number of ranks (server addresses).
    pub fn ranks(&self) -> usize {
        self.links.len()
    }

    /// The session id this endpoint namespaces its tables under.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The endpoint's configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The health component name this endpoint registered under
    /// (`net-epN`), as it appears in `/healthz` reports.
    pub fn health_component(&self) -> &str {
        &self.component
    }

    /// Per-rank connection vitals, rank order.
    pub fn rank_vitals(&self, rank: usize) -> &NetRankVitals {
        &self.links[rank].vitals
    }

    /// The self-hosted loopback server's address, if any.
    pub fn self_server_addr(&self) -> Option<SocketAddr> {
        self.self_server.as_ref().map(NetServer::local_addr)
    }

    /// Establishes (or re-establishes) the connection in `cell`, retrying
    /// with backoff up to `connect_retries` times.
    fn ensure_connected(
        &self,
        cell: &mut ConnCell,
        rank: usize,
        conn_idx: usize,
    ) -> Result<(), Error> {
        if cell
            .conn
            .as_ref()
            .is_some_and(|c| c.alive.load(Ordering::SeqCst))
        {
            return Ok(());
        }
        // Dropping the dead connection joins its reader before dialing,
        // keeping the thread count bounded across reconnect storms.
        let reconnect = cell.conn.take().is_some() || cell.next_gen > 0;
        let link = &self.links[rank];
        let mut attempt = 0u32;
        let stream = loop {
            match TcpStream::connect(&link.addr) {
                Ok(s) => break s,
                Err(_) if attempt < self.cfg.connect_retries => {
                    attempt += 1;
                    std::thread::sleep(self.cfg.connect_backoff);
                }
                Err(_) => {
                    return Err(Error::ConnectionLost {
                        attempts: attempt + 1,
                    })
                }
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(self.cfg.timeout.max(IO_TICK)));
        let gen = cell.next_gen;
        cell.next_gen += 1;
        let alive = Arc::new(AtomicBool::new(true));
        let reader_stream = stream.try_clone().map_err(|_| Error::ConnectionLost {
            attempts: attempt + 1,
        })?;
        let _ = reader_stream.set_read_timeout(Some(IO_TICK));
        let reader = {
            let shared = Arc::clone(&self.shared);
            let alive = Arc::clone(&alive);
            let stop = Arc::clone(&self.stop);
            let vitals = Arc::clone(&link.vitals);
            std::thread::Builder::new()
                .name("secndp-net-reader".into())
                .spawn(move || {
                    reader_loop(
                        reader_stream,
                        shared,
                        alive,
                        stop,
                        vitals,
                        (rank, conn_idx, gen),
                    )
                })
                .expect("spawn net reader thread")
        };
        crate::metrics::net_connects().inc();
        if reconnect {
            crate::metrics::net_reconnects().inc();
        }
        link.vitals.live.fetch_add(1, Ordering::Relaxed);
        link.vitals.ever.store(true, Ordering::Relaxed);
        cell.conn = Some(LiveConn {
            stream,
            gen,
            alive,
            reader: Some(reader),
            vitals: Arc::clone(&link.vitals),
        });
        Ok(())
    }

    /// Registers a slot and writes the request on one pooled connection.
    /// On a write failure the connection is torn down and the slot
    /// removed, so the caller can retry on a fresh one.
    fn send_once(&self, rank: usize, conn_idx: usize, id: u64, frame: &[u8]) -> Result<(), Error> {
        let mut cell = self.links[rank].conns[conn_idx].lock().unwrap();
        self.ensure_connected(&mut cell, rank, conn_idx)?;
        let conn = cell.conn.as_mut().expect("ensure_connected leaves a conn");
        let route = (rank, conn_idx, conn.gen);
        self.shared.table.lock().unwrap().insert(
            id,
            NetSlot {
                state: NetState::Waiting,
                route,
            },
        );
        crate::metrics::net_submitted().inc();
        match write_request(&mut conn.stream, id, self.session, rank as u32, frame) {
            Ok(n) => {
                crate::metrics::net_tx_bytes().add(n as u64);
                crate::metrics::wire_packets().inc();
                crate::metrics::wire_tx_bytes().add(frame.len() as u64);
                secndp_telemetry::profile::add_wire_bytes(frame.len() as u64, 0);
                Ok(())
            }
            Err(_) => {
                // The write tore mid-record: the stream cannot be reused.
                cell.conn = None;
                self.shared.table.lock().unwrap().remove(&id);
                crate::metrics::net_conn_failures().inc();
                Err(Error::ConnectionLost { attempts: 1 })
            }
        }
    }

    /// Blocks until the slot settles or `deadline` passes, consuming the
    /// slot in every outcome.
    fn wait_reply(&self, id: u64, deadline: Instant) -> WaitOutcome {
        let mut t = self.shared.table.lock().unwrap();
        loop {
            match t.get(&id) {
                None => return WaitOutcome::Failed(NetFail::ConnLost),
                Some(slot) if !matches!(slot.state, NetState::Waiting) => {
                    let slot = t.remove(&id).unwrap();
                    return match slot.state {
                        NetState::Reply(bytes) => WaitOutcome::Reply(bytes),
                        NetState::Failed(f) => WaitOutcome::Failed(f),
                        NetState::Waiting => unreachable!(),
                    };
                }
                Some(_) => {
                    let now = Instant::now();
                    if now >= deadline {
                        t.remove(&id);
                        return WaitOutcome::TimedOut;
                    }
                    let (guard, _) = self.shared.cv.wait_timeout(t, deadline - now).unwrap();
                    t = guard;
                }
            }
        }
    }

    /// One logical request against `rank`: send, await, retry per the
    /// idempotency rules, decode. The frame must already be encoded (with
    /// whatever trace envelope the caller pinned).
    fn rank_request(&self, rank: usize, frame: &[u8], idempotent: bool) -> Result<Response, Error> {
        let max_attempts = if idempotent {
            1 + self.cfg.max_retries
        } else {
            1
        };
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let conn_idx =
                self.next_conn.fetch_add(1, Ordering::Relaxed) % self.links[rank].conns.len();
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let outcome = match self.send_once(rank, conn_idx, id, frame) {
                Ok(()) => self.wait_reply(
                    id,
                    Instant::now() + self.cfg.timeout + self.cfg.backoff * (attempts - 1),
                ),
                Err(e) => {
                    if attempts < max_attempts {
                        crate::metrics::net_retries().inc();
                        secndp_telemetry::profile::add_retries(1);
                        continue;
                    }
                    return Err(e);
                }
            };
            match outcome {
                WaitOutcome::Reply(bytes) => {
                    crate::metrics::net_completed().inc();
                    crate::metrics::wire_rx_bytes().add(bytes.len() as u64);
                    secndp_telemetry::profile::add_wire_bytes(0, bytes.len() as u64);
                    self.links[rank]
                        .vitals
                        .served
                        .fetch_add(1, Ordering::Relaxed);
                    return wire::decode_reply(&bytes);
                }
                WaitOutcome::Failed(NetFail::TooLarge(len)) => {
                    crate::metrics::net_conn_failures().inc();
                    return Err(Error::FrameTooLarge { len });
                }
                WaitOutcome::Failed(NetFail::ConnLost) => {
                    crate::metrics::net_conn_failures().inc();
                    if attempts < max_attempts {
                        crate::metrics::net_retries().inc();
                        secndp_telemetry::profile::add_retries(1);
                        continue;
                    }
                    return Err(Error::ConnectionLost { attempts });
                }
                WaitOutcome::TimedOut => {
                    crate::metrics::net_timeouts().inc();
                    if attempts < max_attempts {
                        crate::metrics::net_retries().inc();
                        secndp_telemetry::profile::add_retries(1);
                        continue;
                    }
                    return Err(Error::DeviceTimeout {
                        deadline_ms: self.cfg.timeout.as_millis() as u64,
                        attempts,
                    });
                }
            }
        }
    }

    /// Routes one request: `Load` is sent once to **every** rank (never
    /// retried — re-sending could resurrect a stale table image), other
    /// requests go to one round-robin rank with idempotent retry. The
    /// frame is encoded under the ambient trace context, so device-side
    /// `ndp_serve` spans stitch under the caller's span exactly as on the
    /// in-process transports.
    pub(crate) fn round_trip(&self, req: &Request) -> Result<Response, Error> {
        let ctx = trace::current();
        let frame = {
            let _e = trace::span(trace::names::WIRE_ENCODE);
            req.encode_traced(ctx)?
        };
        if frame.len() > MAX_NET_FRAME {
            return Err(Error::FrameTooLarge { len: frame.len() });
        }
        if matches!(req, Request::Load { .. }) {
            // Broadcast: every rank must hold the table; any failure is
            // reported only after every rank was attempted, so a partial
            // broadcast is never silently half-done.
            let mut first_err: Option<Result<Response, Error>> = None;
            let mut last_ok = None;
            for rank in 0..self.links.len() {
                match self.rank_request(rank, &frame, false) {
                    Ok(Response::Err(code)) if first_err.is_none() => {
                        first_err = Some(Ok(Response::Err(code)));
                    }
                    Err(e) if first_err.is_none() => first_err = Some(Err(e)),
                    r => last_ok = Some(r),
                }
            }
            return first_err
                .or(last_ok)
                .unwrap_or_else(|| Err(crate::metrics::malformed("broadcast to zero ranks")));
        }
        let rank = self.next_rank.fetch_add(1, Ordering::Relaxed) % self.links.len();
        self.rank_request(rank, &frame, true)
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Unregister health first so /healthz never scores a torn-down
        // endpoint, then stop the readers, then drain the loopback server.
        self.health.take();
        self.stop.store(true, Ordering::SeqCst);
        for link in &self.links {
            for cell in &link.conns {
                cell.lock().unwrap().conn = None;
            }
        }
        self.self_server.take();
    }
}

/// Reader half of one connection: demultiplexes reply records into the
/// pending table by request id. On any framing violation or close it
/// fails exactly its own route's in-flight requests and exits.
fn reader_loop(
    mut stream: TcpStream,
    shared: Arc<NetShared>,
    alive: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    vitals: Arc<NetRankVitals>,
    route: (usize, usize, u64),
) {
    let stopped = || !alive.load(Ordering::SeqCst) || stop.load(Ordering::SeqCst);
    let fail = loop {
        let mut len_buf = [0u8; 4];
        match read_full(&mut stream, &mut len_buf, stopped) {
            Ok(ReadOutcome::Full) => {}
            Ok(ReadOutcome::Stopped) => break None,
            _ => break Some(NetFail::ConnLost),
        }
        let len = u32::from_le_bytes(len_buf);
        if len == SHUTDOWN_SENTINEL {
            // The server acknowledged a drain; the connection is over.
            break Some(NetFail::ConnLost);
        }
        let len = len as usize;
        if !(REPLY_HEADER + 1..=MAX_NET_FRAME + REPLY_HEADER).contains(&len) {
            break Some(NetFail::TooLarge(len));
        }
        let mut payload = vec![0u8; len];
        match read_full(&mut stream, &mut payload, stopped) {
            Ok(ReadOutcome::Full) => {}
            Ok(ReadOutcome::Stopped) => break None,
            _ => break Some(NetFail::ConnLost),
        }
        crate::metrics::net_rx_bytes().add(4 + len as u64);
        let req_id = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        shared.complete(req_id, payload[REPLY_HEADER..].to_vec());
    };
    // Exactly-once live-count decrement (see LiveConn::drop).
    if alive.swap(false, Ordering::SeqCst) {
        vitals.live.fetch_sub(1, Ordering::Relaxed);
    }
    if let Some(f) = fail {
        shared.fail_route(route, f);
    }
}

/// Registers the endpoint's `net-epN` component with the process-wide
/// [`health::monitor`]: disconnected ranks degrade (all down → failing),
/// and reconnect churn within the health window degrades.
fn register_net_health(
    vitals: Vec<Arc<NetRankVitals>>,
    addrs: Vec<String>,
) -> (health::HealthCheckHandle, String) {
    static EP_SEQ: AtomicU64 = AtomicU64::new(0);
    let component = format!("net-ep{}", EP_SEQ.fetch_add(1, Ordering::Relaxed));
    let handle = health::monitor().register(&component, move |ctx| {
        let down: Vec<usize> = vitals
            .iter()
            .enumerate()
            .filter(|(_, v)| v.disconnected())
            .map(|(i, _)| i)
            .collect();
        if !down.is_empty() && down.len() == vitals.len() {
            return (
                HealthStatus::Failing,
                format!("all {} tcp rank(s) disconnected ({addrs:?})", vitals.len()),
            );
        }
        if !down.is_empty() {
            return (
                HealthStatus::Degraded,
                format!("tcp rank(s) {down:?} disconnected"),
            );
        }
        let reconnects = ctx.counter_delta("secndp_net_reconnects_total");
        if reconnects > 0 {
            return (
                HealthStatus::Degraded,
                format!("{reconnects} tcp reconnect(s) within the window"),
            );
        }
        let live: usize = vitals.iter().map(|v| v.live_connections()).sum();
        let served: u64 = vitals.iter().map(|v| v.served()).sum();
        (
            HealthStatus::Ok,
            format!(
                "{} rank(s), {live} live connection(s), {served} replies",
                vitals.len()
            ),
        )
    });
    (handle, component)
}

/// Blocking [`NdpDevice`] facade, the same shape as the
/// [`AsyncEndpoint`](crate::transport::AsyncEndpoint) one: trait-generic
/// code — the full e2e suite — runs over real sockets unchanged.
impl NdpDevice for TcpEndpoint {
    fn load(
        &mut self,
        table_addr: u64,
        ciphertext: Vec<u8>,
        row_bytes: usize,
        tags: Option<Vec<Fq>>,
    ) -> Result<(), Error> {
        validate_load(ciphertext.len(), row_bytes)?;
        let mut sp = trace::span(trace::names::WIRE_ROUND_TRIP);
        sp.attr_u64("ranks", self.ranks() as u64);
        let _t = crate::metrics::wire_round_trip().start_timer();
        let req = Request::Load {
            table_addr,
            row_bytes: row_bytes as u32,
            ciphertext,
            tags: tags.map(|ts| ts.iter().map(|t| t.value()).collect()),
        };
        match self.round_trip(&req)? {
            Response::Ack => Ok(()),
            Response::Err(code) => Err(wire::error_from_code(code, table_addr)),
            _ => Err(crate::metrics::malformed("unexpected load reply")),
        }
    }

    fn weighted_sum<W: RingWord>(
        &self,
        table_addr: u64,
        indices: &[usize],
        weights: &[W],
        with_tag: bool,
    ) -> Result<NdpResponse<W>, Error> {
        let sp = trace::span(trace::names::WIRE_ROUND_TRIP);
        let _t = crate::metrics::wire_round_trip().start_timer();
        let req = Request::WeightedSum {
            table_addr,
            elem_bytes: W::BYTES as u8,
            indices: indices.iter().map(|&i| i as u64).collect(),
            weights: weights.iter().map(|w| w.as_u64()).collect(),
            with_tag,
        };
        let resp = self.round_trip(&req)?;
        drop(sp);
        wire::sum_from_response(resp, table_addr)
    }

    fn read_row(&self, table_addr: u64, row: usize) -> Result<Vec<u8>, Error> {
        let sp = trace::span(trace::names::WIRE_ROUND_TRIP);
        let _t = crate::metrics::wire_round_trip().start_timer();
        let req = Request::ReadRow {
            table_addr,
            row: row as u64,
        };
        let resp = self.round_trip(&req)?;
        drop(sp);
        match resp {
            Response::Row(b) => Ok(b),
            Response::Err(code) => Err(wire::error_from_code(code, table_addr)),
            _ => Err(crate::metrics::malformed("wrong response kind")),
        }
    }
}
