//! Shared telemetry handles for the protocol pipeline.
//!
//! One function per metric keeps each `counter!`/`histogram!` macro at a
//! single call site, so the per-site `OnceLock` cache always resolves to
//! the same instrument. Everything here compiles to no-ops without the
//! crate's `telemetry` feature (instruments become zero-sized).

use crate::error::Error;
use secndp_telemetry::{stages, Counter, Gauge, Histogram};

const STAGE_HELP: &str = "Per-stage protocol latency in nanoseconds (the Figure 4 arrows).";

/// RAII stage timer: on drop the elapsed nanoseconds land in the stage's
/// latency histogram *and* in the active per-query cost record
/// ([`secndp_telemetry::profile::add_stage_ns`]); for the `ndp_compute`
/// stage they additionally count as device-busy time. With telemetry
/// compiled out this is a ZST and never reads the clock.
pub(crate) struct StageTimer {
    #[cfg(feature = "telemetry")]
    stage: &'static str,
    #[cfg(feature = "telemetry")]
    hist: &'static Histogram,
    #[cfg(feature = "telemetry")]
    device_busy: bool,
    #[cfg(feature = "telemetry")]
    start: std::time::Instant,
}

fn stage_timer(stage: &'static str, hist: &'static Histogram, device_busy: bool) -> StageTimer {
    #[cfg(not(feature = "telemetry"))]
    let _ = (stage, hist, device_busy);
    StageTimer {
        #[cfg(feature = "telemetry")]
        stage,
        #[cfg(feature = "telemetry")]
        hist,
        #[cfg(feature = "telemetry")]
        device_busy,
        #[cfg(feature = "telemetry")]
        start: std::time::Instant::now(),
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.observe(ns);
            secndp_telemetry::profile::add_stage_ns(self.stage, ns);
            if self.device_busy {
                secndp_telemetry::profile::add_device_busy_ns(ns);
            }
        }
    }
}

/// Cost-attributing timer for the `encrypt` stage.
pub(crate) fn stage_encrypt_timer() -> StageTimer {
    stage_timer(stages::ENCRYPT, stage_encrypt(), false)
}

/// Cost-attributing timer for the `ndp_compute` stage (also counts as
/// device-busy time in the query cost).
pub(crate) fn stage_ndp_compute_timer() -> StageTimer {
    stage_timer(stages::NDP_COMPUTE, stage_ndp_compute(), true)
}

/// Cost-attributing timer for the `verify` stage.
pub(crate) fn stage_verify_timer() -> StageTimer {
    stage_timer(stages::VERIFY, stage_verify(), false)
}

/// Cost-attributing timer for the `decrypt` stage.
pub(crate) fn stage_decrypt_timer() -> StageTimer {
    stage_timer(stages::DECRYPT, stage_decrypt(), false)
}

/// `encrypt`: table encryption + tag generation inside the TEE.
pub(crate) fn stage_encrypt() -> &'static Histogram {
    secndp_telemetry::histogram!(
        "secndp_stage_latency_ns",
        &[("stage", stages::ENCRYPT)],
        STAGE_HELP
    )
}

/// `ndp_compute`: the untrusted device's weighted summation.
pub(crate) fn stage_ndp_compute() -> &'static Histogram {
    secndp_telemetry::histogram!(
        "secndp_stage_latency_ns",
        &[("stage", stages::NDP_COMPUTE)],
        STAGE_HELP
    )
}

/// `verify`: checksum recomputation and tag comparison.
pub(crate) fn stage_verify() -> &'static Histogram {
    secndp_telemetry::histogram!(
        "secndp_stage_latency_ns",
        &[("stage", stages::VERIFY)],
        STAGE_HELP
    )
}

/// `decrypt`: OTP-share regeneration plus final reconstruction.
pub(crate) fn stage_decrypt() -> &'static Histogram {
    secndp_telemetry::histogram!(
        "secndp_stage_latency_ns",
        &[("stage", stages::DECRYPT)],
        STAGE_HELP
    )
}

/// Weighted-summation queries issued by the trusted processor.
pub(crate) fn queries() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_queries_total",
        "Weighted-summation queries issued by the trusted processor."
    )
}

/// Tables encrypted (with or without tags).
pub(crate) fn tables_encrypted() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_tables_encrypted_total",
        "Tables encrypted by the trusted processor."
    )
}

/// Ciphertext loads rejected for shape violations.
pub(crate) fn shape_errors() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_shape_errors_total",
        "Ciphertext loads rejected for shape violations."
    )
}

/// Request/reply frames exchanged with a wire-backed device.
pub(crate) fn wire_packets() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_wire_packets_total",
        "Request frames sent to wire-backed NDP devices."
    )
}

/// Encoded request bytes shipped to the device.
pub(crate) fn wire_tx_bytes() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_wire_tx_bytes_total",
        "Request bytes sent over the device wire."
    )
}

/// Encoded reply bytes received from the device.
pub(crate) fn wire_rx_bytes() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_wire_rx_bytes_total",
        "Reply bytes received over the device wire."
    )
}

/// Full encode → serve → decode round-trip latency.
pub(crate) fn wire_round_trip() -> &'static Histogram {
    secndp_telemetry::histogram!(
        "secndp_wire_round_trip_ns",
        "Wire round-trip latency in nanoseconds (encode, serve, decode)."
    )
}

/// Requests currently in flight on the async transport (submitted, not
/// yet completed or abandoned).
pub(crate) fn transport_inflight() -> &'static Gauge {
    secndp_telemetry::gauge!(
        "secndp_transport_inflight",
        "Async-transport requests submitted but not yet completed."
    )
}

/// Requests submitted through the async transport (first attempts only;
/// retries count separately).
pub(crate) fn transport_submitted() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_transport_submitted_total",
        "Requests submitted through the async NDP transport."
    )
}

/// Requests whose deadline expired at least once.
pub(crate) fn transport_timeouts() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_transport_timeouts_total",
        "Async-transport requests whose per-request deadline expired."
    )
}

/// Idempotent requests re-sent after a deadline expiry.
pub(crate) fn transport_retries() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_transport_retries_total",
        "Idempotent async-transport requests re-sent after a timeout."
    )
}

/// Replies that arrived for a request already completed or abandoned
/// (e.g. the slow original after a retry already answered).
pub(crate) fn transport_late_completions() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_transport_late_completions_total",
        "Async-transport replies for already-settled requests (dropped)."
    )
}

/// Submit → completion latency of async-transport requests.
pub(crate) fn transport_completion() -> &'static Histogram {
    secndp_telemetry::histogram!(
        "secndp_transport_completion_ns",
        "Async-transport submit-to-completion latency in nanoseconds."
    )
}

/// TCP connections established by `TcpEndpoint`s (first dials and
/// reconnects both).
pub(crate) fn net_connects() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_connects_total",
        "TCP transport connections established (including reconnects)."
    )
}

/// Re-establishments of a previously-connected pool slot — churn here
/// degrades the `net-epN` health component.
pub(crate) fn net_reconnects() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_reconnects_total",
        "TCP transport connections re-established after a loss."
    )
}

/// Transport bytes written to sockets (net framing included).
pub(crate) fn net_tx_bytes() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_tx_bytes_total",
        "Bytes written to TCP transport sockets (framing included)."
    )
}

/// Transport bytes read from sockets (net framing included).
pub(crate) fn net_rx_bytes() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_rx_bytes_total",
        "Bytes read from TCP transport sockets (framing included)."
    )
}

/// Request records written to a socket (every attempt counts — this is
/// the left side of the reconciliation invariant `submitted ==
/// completed + timeouts + connection failures`).
pub(crate) fn net_submitted() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_submitted_total",
        "Request records written to TCP transport sockets."
    )
}

/// Replies received and handed back to a waiting caller.
pub(crate) fn net_completed() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_completed_total",
        "TCP transport requests completed with a reply."
    )
}

/// Sent requests whose deadline expired before a reply arrived.
pub(crate) fn net_timeouts() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_timeouts_total",
        "TCP transport requests whose per-request deadline expired."
    )
}

/// Idempotent requests re-sent after a timeout or connection loss.
pub(crate) fn net_retries() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_retries_total",
        "Idempotent TCP transport requests re-sent after a failure."
    )
}

/// Requests whose carrying connection died (write error, reset, EOF, or
/// an oversized reply) before a reply settled.
pub(crate) fn net_conn_failures() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_conn_failures_total",
        "TCP transport requests failed by a connection loss."
    )
}

/// Replies whose request id matched nothing still waiting (the caller
/// already timed out or retried elsewhere).
pub(crate) fn net_late_replies() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_late_replies_total",
        "TCP transport replies for already-settled requests (dropped)."
    )
}

/// Framing violations that made a server connection unframeable (garbage
/// preamble, absurd declared length).
pub(crate) fn net_rejected_frames() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_rejected_frames_total",
        "TCP server connections closed on an unframeable request record."
    )
}

/// Connections accepted by in-process `NetServer` listeners.
pub(crate) fn net_server_connections() -> &'static Counter {
    secndp_telemetry::counter!(
        "secndp_net_server_connections_total",
        "Connections accepted by NDP TCP device servers."
    )
}

/// Counts a failed verification, writes a security audit event (stamped
/// with the current trace context, the table's OTP region/version, and the
/// checksum scheme in force), and builds the error — so no failure path
/// can increment without returning (and vice versa).
pub(crate) fn verification_failed(
    table_addr: u64,
    region: u64,
    version: u64,
    scheme: &'static str,
) -> Error {
    secndp_telemetry::counter!(
        "secndp_verify_failures_total",
        "Responses whose checksum tag failed verification."
    )
    .inc();
    secndp_telemetry::audit::audit_log().record(
        "verification_failed",
        table_addr,
        region,
        version,
        scheme,
        "checksum tag mismatch",
    );
    Error::VerificationFailed { table_addr }
}

/// Counts a malformed device reply, writes an audit event, and builds the
/// error.
pub(crate) fn malformed(reason: &'static str) -> Error {
    secndp_telemetry::counter!(
        "secndp_malformed_responses_total",
        "Device replies rejected as malformed."
    )
    .inc();
    secndp_telemetry::audit::audit_log().record("malformed_response", 0, 0, 0, "", reason);
    Error::MalformedResponse { reason }
}

/// Counts a ciphertext-shape violation at the device boundary, writes an
/// audit event, and builds the error.
pub(crate) fn shape_mismatch(got: usize, expected: usize) -> Error {
    shape_errors().inc();
    secndp_telemetry::audit::audit_log().record(
        "shape_mismatch",
        0,
        0,
        0,
        "",
        "ciphertext length not a multiple of row_bytes",
    );
    Error::ShapeMismatch { got, expected }
}
