//! Conventional TEE memory protection — the Figure 2(a)/(b) baseline.
//!
//! A classical secure processor protects each cache line independently:
//! counter-mode **XOR** encryption (Fig 2a) plus a per-line **MAC** bound
//! to the address and version (Fig 2b). This is what SGX-style TEEs do on
//! every off-chip access — and precisely what *prevents* NDP, because the
//! memory side can compute nothing useful over XOR ciphertext.
//!
//! [`ProtectedMemory`] implements that baseline faithfully (per-line
//! versions, XOR pads from the same counter-block construction, CWC-style
//! MACs from the linear modular hash \[42\]). Tests use it to demonstrate:
//!
//! 1. the conventional scheme detects tampering and replay per line;
//! 2. XOR ciphertext is *not* additively homomorphic — summing two
//!    encrypted lines does not decrypt to the sum — whereas SecNDP's
//!    arithmetic shares are. This is the paper's core observation in
//!    executable form.

use crate::checksum::row_checksum;
use crate::error::Error;
use crate::mac::{decrypt_tag, encrypt_tag};
use secndp_arith::mersenne::Fq;
use secndp_arith::ring::words_from_le_bytes;
use secndp_cipher::aes::Aes128;
use secndp_cipher::otp::OtpGenerator;
use std::collections::HashMap;

/// Bytes per protected line.
pub const LINE: usize = 64;

#[derive(Debug, Clone)]
struct StoredLine {
    ciphertext: [u8; LINE],
    /// Encrypted MAC (`C_T` form, like Alg 3).
    tag: Fq,
    version: u64,
}

/// Counter-mode-XOR protected memory with per-line authenticated
/// encryption — the conventional TEE baseline of Figure 2.
pub struct ProtectedMemory {
    otp: OtpGenerator<Aes128>,
    /// Untrusted storage: ciphertext + tags (an attacker may rewrite).
    lines: HashMap<u64, StoredLine>,
    /// Trusted on-chip (or tree-protected) version counters.
    versions: HashMap<u64, u64>,
}

impl std::fmt::Debug for ProtectedMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtectedMemory")
            .field("lines", &self.lines.len())
            .finish_non_exhaustive()
    }
}

impl ProtectedMemory {
    /// A protected memory keyed by `key`.
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            otp: OtpGenerator::new(Aes128::new(&key)),
            lines: HashMap::new(),
            versions: HashMap::new(),
        }
    }

    /// Writes one 64-byte line at `addr` (must be line-aligned): bumps the
    /// version, XORs with a fresh pad, and stores an encrypted MAC.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    pub fn write_line(&mut self, addr: u64, plaintext: &[u8; LINE]) {
        assert_eq!(addr % LINE as u64, 0, "line-aligned addresses only");
        let version = self.versions.entry(addr).or_insert(0);
        *version += 1;
        let version = *version;
        let pad = self.otp.data_pad_bytes(addr, LINE, version);
        let mut ciphertext = [0u8; LINE];
        for (c, (p, e)) in ciphertext.iter_mut().zip(plaintext.iter().zip(&pad)) {
            *c = p ^ e; // Fig 2(a): XOR counter mode.
        }
        // Fig 2(b): MAC over the *plaintext*, bound to (addr, version) via
        // the encrypted-tag pads; stored alongside the line.
        let checksum = line_checksum(&self.otp, addr, version, plaintext);
        let tag = encrypt_tag(&self.otp, checksum, addr, version);
        self.lines.insert(
            addr,
            StoredLine {
                ciphertext,
                tag,
                version,
            },
        );
    }

    /// Reads and verifies one line.
    ///
    /// # Errors
    ///
    /// [`Error::VerificationFailed`] on tampering or replay;
    /// [`Error::UnknownTable`] for a never-written address.
    pub fn read_line(&self, addr: u64) -> Result<[u8; LINE], Error> {
        let stored = self
            .lines
            .get(&addr)
            .ok_or(Error::UnknownTable { table_addr: addr })?;
        let version = *self.versions.get(&addr).unwrap_or(&0);
        // Replay detection: the trusted version must match the one the
        // line was written under (Fig 2(b): v is an input to the MAC).
        if stored.version != version {
            return Err(Error::VerificationFailed { table_addr: addr });
        }
        let pad = self.otp.data_pad_bytes(addr, LINE, version);
        let mut plaintext = [0u8; LINE];
        for (p, (c, e)) in plaintext.iter_mut().zip(stored.ciphertext.iter().zip(&pad)) {
            *p = c ^ e;
        }
        let expect = line_checksum(&self.otp, addr, version, &plaintext);
        let retrieved = decrypt_tag(&self.otp, stored.tag, addr, version);
        if expect != retrieved {
            return Err(Error::VerificationFailed { table_addr: addr });
        }
        Ok(plaintext)
    }

    /// The attacker's handle: overwrite the stored ciphertext of a line.
    pub fn tamper_ciphertext(&mut self, addr: u64, byte: usize, mask: u8) {
        if let Some(l) = self.lines.get_mut(&addr) {
            l.ciphertext[byte % LINE] ^= mask;
        }
    }

    /// The attacker's handle: replay a previously captured stored line.
    pub fn replay(&mut self, addr: u64, old: StoredLineSnapshot) {
        self.lines.insert(
            addr,
            StoredLine {
                ciphertext: old.ciphertext,
                tag: old.tag,
                version: old.version,
            },
        );
    }

    /// Captures the stored (untrusted) state of a line for a later replay.
    pub fn snapshot(&self, addr: u64) -> Option<StoredLineSnapshot> {
        self.lines.get(&addr).map(|l| StoredLineSnapshot {
            ciphertext: l.ciphertext,
            tag: l.tag,
            version: l.version,
        })
    }

    /// The raw stored ciphertext (what a bus probe sees).
    pub fn raw_ciphertext(&self, addr: u64) -> Option<[u8; LINE]> {
        self.lines.get(&addr).map(|l| l.ciphertext)
    }
}

/// A captured untrusted line state (ciphertext + tag + the version it was
/// produced under), as an attacker would record it from the bus.
#[derive(Debug, Clone, Copy)]
pub struct StoredLineSnapshot {
    ciphertext: [u8; LINE],
    tag: Fq,
    version: u64,
}

/// CWC-style line MAC: the linear modular hash of the line's 64-bit words
/// under the per-address secret.
fn line_checksum(otp: &OtpGenerator<Aes128>, addr: u64, version: u64, data: &[u8; LINE]) -> Fq {
    let words = words_from_le_bytes::<u64>(data);
    let s = Fq::new(otp.checksum_secret(addr, version));
    row_checksum(&words, &[s])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> ProtectedMemory {
        ProtectedMemory::new([0x66; 16])
    }

    fn line(seed: u8) -> [u8; LINE] {
        core::array::from_fn(|i| seed.wrapping_add(i as u8).wrapping_mul(7))
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = mem();
        m.write_line(0, &line(1));
        m.write_line(64, &line(2));
        assert_eq!(m.read_line(0).unwrap(), line(1));
        assert_eq!(m.read_line(64).unwrap(), line(2));
    }

    #[test]
    fn overwrite_bumps_version_and_still_reads() {
        let mut m = mem();
        m.write_line(128, &line(1));
        m.write_line(128, &line(9));
        assert_eq!(m.read_line(128).unwrap(), line(9));
    }

    #[test]
    fn tampering_detected() {
        let mut m = mem();
        m.write_line(0, &line(3));
        m.tamper_ciphertext(0, 17, 0x04);
        assert!(matches!(
            m.read_line(0),
            Err(Error::VerificationFailed { .. })
        ));
    }

    #[test]
    fn replay_detected() {
        let mut m = mem();
        m.write_line(0, &line(1));
        let old = m.snapshot(0).unwrap();
        m.write_line(0, &line(2));
        // Attacker restores the old (ciphertext, tag, version) triple.
        m.replay(0, old);
        assert!(matches!(
            m.read_line(0),
            Err(Error::VerificationFailed { .. })
        ));
    }

    #[test]
    fn unknown_address_rejected() {
        assert!(matches!(
            mem().read_line(4096),
            Err(Error::UnknownTable { .. })
        ));
    }

    #[test]
    fn ciphertext_looks_uniform() {
        let mut m = mem();
        m.write_line(0, &[0u8; LINE]);
        let ct = m.raw_ciphertext(0).unwrap();
        assert_ne!(ct, [0u8; LINE]);
        let distinct: std::collections::HashSet<u8> = ct.iter().copied().collect();
        assert!(distinct.len() > 16, "XOR pad not dense");
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_write_panics() {
        mem().write_line(10, &line(0));
    }

    /// The paper's core observation, executable: XOR ciphertext is NOT
    /// additively homomorphic, SecNDP's subtraction ciphertext IS.
    #[test]
    fn xor_ciphertext_is_not_additively_homomorphic() {
        use crate::keys::SecretKey;
        use crate::layout::TableLayout;
        let mut m = mem();
        let a: [u8; LINE] = core::array::from_fn(|i| (i as u8) * 2 + 1);
        let b: [u8; LINE] = core::array::from_fn(|i| 100u8.wrapping_sub(i as u8));
        m.write_line(0, &a);
        m.write_line(64, &b);
        let ca = m.raw_ciphertext(0).unwrap();
        let cb = m.raw_ciphertext(64).unwrap();
        // "NDP" tries to add the XOR ciphertexts element-wise (u8 ring).
        let c_sum: Vec<u8> = ca
            .iter()
            .zip(&cb)
            .map(|(&x, &y)| x.wrapping_add(y))
            .collect();
        // No pad combination the processor can compute turns c_sum into
        // a+b under XOR ciphertext; in particular the "obvious" pad sum
        // fails. (Pads are internal, so we check the end-to-end effect:
        // decrypt-then-add differs from add-then-any-linear-fixup. Here we
        // simply confirm c_sum XOR (pad_a XOR pad_b) ≠ a+b by reading the
        // plaintexts back and comparing against the wrapped sum.)
        let plain_sum: Vec<u8> = a.iter().zip(&b).map(|(&x, &y)| x.wrapping_add(y)).collect();
        let pa = m.read_line(0).unwrap();
        let pb = m.read_line(64).unwrap();
        let xor_fixup: Vec<u8> = c_sum
            .iter()
            .zip(ca.iter().zip(&pa).map(|(c, p)| c ^ p)) // pad_a
            .zip(cb.iter().zip(&pb).map(|(c, p)| c ^ p)) // pad_b
            .map(|((s, ea), eb)| s ^ ea ^ eb)
            .collect();
        assert_ne!(xor_fixup, plain_sum, "XOR mode accidentally homomorphic?!");

        // SecNDP's arithmetic encryption: the same exercise succeeds.
        let mut cpu = crate::protocol::TrustedProcessor::new(SecretKey::from_bytes([0x66; 16]));
        let pt: Vec<u8> = a.iter().chain(&b).copied().collect();
        let table = cpu.encrypt_table(&pt, 2, LINE, 0x1000).unwrap();
        let ct = table.ciphertext();
        let c_sum_arith: Vec<u8> = ct[..LINE]
            .iter()
            .zip(&ct[LINE..])
            .map(|(&x, &y)| x.wrapping_add(y))
            .collect();
        // Processor-side pad sum (e_a + e_b) reconstructs a+b exactly.
        let layout = TableLayout::new::<u8>(0x1000, 2, LINE).unwrap();
        let _ = layout;
        let mut ndp = crate::device::HonestNdp::new();
        let handle = cpu.publish(&table, &mut ndp).unwrap();
        let res = cpu
            .weighted_sum(&handle, &ndp, &[0, 1], &[1u8, 1], false)
            .unwrap();
        assert_eq!(res, plain_sum);
        // And indeed the device-side share was exactly c_sum_arith.
        use crate::device::NdpDevice;
        let dev_share = ndp
            .weighted_sum::<u8>(0x1000, &[0, 1], &[1, 1], false)
            .unwrap();
        assert_eq!(dev_share.c_res, c_sum_arith);
    }
}
