//! Protocol-core health source for `/healthz`.
//!
//! SecNDP's integrity model turns error counters into security telemetry:
//! a verification failure means the untrusted side returned a result that
//! does not match its linear checksum — possible active tampering (paper
//! §V) — and a malformed frame means the device broke the wire contract.
//! This module registers one process-wide `"protocol"` component with the
//! [`health::monitor`](secndp_telemetry::health::monitor) that scores the
//! windowed rates of those error-coupled counters
//! (`secndp_verify_failures_total`, `secndp_malformed_responses_total`,
//! `secndp_shape_errors_total`):
//!
//! | windowed verify failures | verdict |
//! |--------------------------|---------|
//! | ≥ 16 | `Failing` — sustained tampering, results untrustworthy |
//! | ≥ 1 (or any malformed/shape error) | `Degraded` |
//! | 0 | `Ok` |
//!
//! A burst ages out of the verdict once the sampler window slides past it,
//! so `/healthz` recovers on its own after an isolated incident.

use secndp_telemetry::health::{self, HealthStatus};
use std::sync::Once;

/// Registers the `"protocol"` health component (idempotent; the check
/// lives for the rest of the process). Called from every
/// [`TrustedProcessor`](crate::protocol::TrustedProcessor) constructor, so
/// any binary that builds a processor is scored automatically.
pub fn register_protocol_health() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        health::monitor()
            .register("protocol", |ctx| {
                let verify = ctx.counter_delta("secndp_verify_failures_total");
                let malformed = ctx.counter_delta("secndp_malformed_responses_total");
                let shape = ctx.counter_delta("secndp_shape_errors_total");
                if verify >= 16 {
                    return (
                        HealthStatus::Failing,
                        format!(
                            "{verify} verification failures within the window — \
                             sustained tampering suspected"
                        ),
                    );
                }
                if verify > 0 || malformed > 0 || shape > 0 {
                    return (
                        HealthStatus::Degraded,
                        format!(
                            "integrity errors within the window: {verify} verify, \
                             {malformed} malformed, {shape} shape"
                        ),
                    );
                }
                (
                    HealthStatus::Ok,
                    "no integrity errors in window".to_string(),
                )
            })
            .leak();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_component_registers_once() {
        register_protocol_health();
        register_protocol_health();
        let n = health::monitor()
            .components()
            .iter()
            .filter(|c| c.as_str() == "protocol")
            .count();
        assert_eq!(n, 1);
    }
}
