//! Software-managed version numbers.
//!
//! Counter-mode security hinges on never reusing a `(address, version)` pair
//! for different plaintexts. Instead of hardware counter caches and
//! integrity trees, SecNDP lets **trusted software inside the TEE** manage
//! versions (paper §V-A): a whole memory region (e.g. one embedding table)
//! shares a single version, and the version is bumped whenever the region is
//! rewritten. The paper's evaluation assumes the enclave manages at most 64
//! live regions (§VI-A).
//!
//! [`VersionManager`] enforces both invariants: monotonically increasing
//! versions per region, and a cap on the number of live regions.

use crate::error::Error;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a versioned memory region (one per table / data chunk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// Observer notified when a version number is retired — i.e. when no future
/// query may legitimately reference it again.
///
/// Retirement happens on [`VersionManager::bump`] (the pre-bump version is
/// dead the moment the region is re-encrypted) and on
/// [`VersionManager::release`] (the region's current version dies with it).
/// The primary consumer is the cross-query pad cache
/// ([`secndp_cipher::PadCache`](secndp_cipher::cache::PadCache)), which drops
/// every cached pad derived under the retired version. That eviction is
/// defense in depth, not the safety argument: cached pads are keyed by the
/// full `(domain, addr, version)` counter tuple and the manager never reissues
/// a version, so a stale entry could never be *served* — eager invalidation
/// just guarantees dead pad material does not linger in enclave memory.
pub trait RetireHook: Send + Sync {
    /// Called after `old_version` of `region` has been superseded or freed.
    fn version_retired(&self, region: RegionId, old_version: u64);
}

impl RetireHook for secndp_cipher::PadCache {
    fn version_retired(&self, _region: RegionId, old_version: u64) {
        self.invalidate_version(old_version);
    }
}

/// Software version-number manager living inside the TEE.
///
/// Versions start at 1 (version 0 is reserved as "never encrypted") and only
/// move forward, so an `(addr, v)` pair can never recur with different data.
#[derive(Clone)]
pub struct VersionManager {
    versions: HashMap<RegionId, u64>,
    max_regions: usize,
    next_region: u64,
    /// Highest version ever issued to any region. Every `register`/`bump`
    /// moves strictly above it, so `(addr, version)` pairs are unique
    /// across the manager's whole lifetime — a region released and later
    /// re-registered at the same base address can never resume (or
    /// collide with) an old OTP counter stream.
    high_water: u64,
    /// Observers notified whenever a version is retired ([`RetireHook`]).
    hooks: Vec<Arc<dyn RetireHook>>,
}

impl fmt::Debug for VersionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VersionManager")
            .field("versions", &self.versions)
            .field("max_regions", &self.max_regions)
            .field("next_region", &self.next_region)
            .field("high_water", &self.high_water)
            .field("hooks", &self.hooks.len())
            .finish()
    }
}

/// The paper's evaluation bound on live regions managed by the enclave.
pub const DEFAULT_MAX_REGIONS: usize = 64;

impl VersionManager {
    /// Creates a manager with the paper's default 64-region capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAX_REGIONS)
    }

    /// Creates a manager holding at most `max_regions` live regions.
    pub fn with_capacity(max_regions: usize) -> Self {
        Self {
            versions: HashMap::new(),
            max_regions,
            next_region: 0,
            high_water: 0,
            hooks: Vec::new(),
        }
    }

    /// Registers a [`RetireHook`] to be notified whenever a version number
    /// is retired by [`bump`](Self::bump) or [`release`](Self::release).
    pub fn add_retire_hook(&mut self, hook: Arc<dyn RetireHook>) {
        self.hooks.push(hook);
    }

    fn retire(&self, region: RegionId, old_version: u64) {
        for h in &self.hooks {
            h.version_retired(region, old_version);
        }
    }

    /// Registers a new region, returning its id and initial version — the
    /// first version strictly above every version ever issued, so a fresh
    /// region can never alias a freed region's `(addr, version)` pads.
    ///
    /// # Errors
    ///
    /// Returns [`Error::VersionExhausted`] if the region capacity is full
    /// or the 64-bit version counter would wrap.
    pub fn register(&mut self) -> Result<(RegionId, u64), Error> {
        if self.versions.len() >= self.max_regions {
            return Err(Error::VersionExhausted);
        }
        let v = self
            .high_water
            .checked_add(1)
            .ok_or(Error::VersionExhausted)?;
        let id = RegionId(self.next_region);
        self.next_region += 1;
        self.high_water = v;
        self.versions.insert(id, v);
        Ok((id, v))
    }

    /// The current version of `region`, or `None` if unknown.
    pub fn current(&self, region: RegionId) -> Option<u64> {
        self.versions.get(&region).copied()
    }

    /// Bumps the version of `region` (called when the region is
    /// re-encrypted with new contents), returning the new version.
    ///
    /// # Errors
    ///
    /// Returns [`Error::VersionExhausted`] if the region is unknown or the
    /// 64-bit version counter would wrap.
    pub fn bump(&mut self, region: RegionId) -> Result<u64, Error> {
        let nv = self
            .high_water
            .checked_add(1)
            .ok_or(Error::VersionExhausted)?;
        let v = self
            .versions
            .get_mut(&region)
            .ok_or(Error::VersionExhausted)?;
        // Jump to one past the global high-water mark (per-region versions
        // never exceed it, so this is still a strict per-region increase).
        let old = *v;
        *v = nv;
        self.high_water = nv;
        self.retire(region, old);
        Ok(nv)
    }

    /// Frees a region, allowing a new one to be registered in its place.
    ///
    /// Freed region ids are never reused, and the global high-water mark
    /// outlives the region, so stale `(addr, v)` pairs from a freed region
    /// can never alias a new region's pads.
    pub fn release(&mut self, region: RegionId) {
        if let Some(old) = self.versions.remove(&region) {
            self.retire(region, old);
        }
    }

    /// Number of live regions.
    pub fn live_regions(&self) -> usize {
        self.versions.len()
    }

    /// The capacity this manager was created with.
    pub fn capacity(&self) -> usize {
        self.max_regions
    }
}

impl Default for VersionManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bump_release_cycle() {
        let mut vm = VersionManager::with_capacity(2);
        let (r0, v0) = vm.register().unwrap();
        assert_eq!(v0, 1);
        assert_eq!(vm.bump(r0).unwrap(), 2);
        assert_eq!(vm.current(r0), Some(2));
        vm.release(r0);
        assert_eq!(vm.current(r0), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut vm = VersionManager::with_capacity(2);
        vm.register().unwrap();
        vm.register().unwrap();
        assert_eq!(vm.register().unwrap_err(), Error::VersionExhausted);
        // Releasing frees a slot.
        let (r, _) = {
            let mut vm2 = VersionManager::with_capacity(1);
            let (r, _) = vm2.register().unwrap();
            (r, vm2)
        };
        let mut vm3 = VersionManager::with_capacity(1);
        let (r3, _) = vm3.register().unwrap();
        vm3.release(r3);
        assert!(vm3.register().is_ok());
        let _ = r;
    }

    #[test]
    fn region_ids_never_reused() {
        let mut vm = VersionManager::with_capacity(1);
        let (r0, _) = vm.register().unwrap();
        vm.release(r0);
        let (r1, _) = vm.register().unwrap();
        assert_ne!(r0, r1);
    }

    #[test]
    fn versions_monotonic() {
        let mut vm = VersionManager::new();
        let (r, _) = vm.register().unwrap();
        let mut prev = vm.current(r).unwrap();
        for _ in 0..10 {
            let v = vm.bump(r).unwrap();
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn bump_unknown_region_fails() {
        let mut vm = VersionManager::new();
        assert!(vm.bump(RegionId(42)).is_err());
    }

    #[test]
    fn default_capacity_matches_paper() {
        assert_eq!(VersionManager::new().capacity(), 64);
    }

    #[test]
    fn versions_are_globally_unique() {
        // Two live regions must not share a version: if both sat at the
        // same base address (e.g. sequential tables reusing a buffer),
        // identical versions would mean identical OTP pad streams.
        let mut vm = VersionManager::new();
        let (_, v0) = vm.register().unwrap();
        let (_, v1) = vm.register().unwrap();
        assert_ne!(v0, v1);
    }

    #[test]
    fn retire_hooks_fire_on_bump_and_release() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct Recorder(Mutex<Vec<(RegionId, u64)>>);
        impl RetireHook for Recorder {
            fn version_retired(&self, region: RegionId, old_version: u64) {
                self.0.lock().unwrap().push((region, old_version));
            }
        }
        let rec = Arc::new(Recorder::default());
        let mut vm = VersionManager::new();
        vm.add_retire_hook(rec.clone());
        let (r, v0) = vm.register().unwrap();
        assert!(rec.0.lock().unwrap().is_empty(), "register retires nothing");
        let v1 = vm.bump(r).unwrap();
        assert_eq!(*rec.0.lock().unwrap(), vec![(r, v0)]);
        vm.release(r);
        assert_eq!(*rec.0.lock().unwrap(), vec![(r, v0), (r, v1)]);
        // Releasing an unknown region retires nothing.
        vm.release(RegionId(999));
        assert_eq!(rec.0.lock().unwrap().len(), 2);
    }

    #[test]
    fn pad_cache_retire_hook_invalidates_version() {
        use secndp_cipher::otp::{CounterBlock, Domain};
        use secndp_cipher::PadCache;
        let cache = Arc::new(PadCache::new(64));
        let mut vm = VersionManager::new();
        vm.add_retire_hook(cache.clone());
        let (r, v) = vm.register().unwrap();
        let ctr = CounterBlock::new(Domain::Data, 0x40, v);
        cache.insert(ctr, [0xAB; 16]);
        assert!(cache.peek(ctr).is_some());
        vm.bump(r).unwrap();
        assert!(
            cache.peek(ctr).is_none(),
            "bump must purge old-version pads"
        );
    }

    #[test]
    fn released_region_version_never_resumes() {
        // Regression: register → bump → release → register again. The new
        // region must start strictly above every version the old region
        // ever used, or a counter stream could be replayed.
        let mut vm = VersionManager::with_capacity(1);
        let (r0, _) = vm.register().unwrap();
        let old_max = vm.bump(r0).unwrap();
        vm.release(r0);
        let (_, fresh) = vm.register().unwrap();
        assert!(fresh > old_max, "fresh={fresh} old_max={old_max}");
    }
}
