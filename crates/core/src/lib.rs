//! SecNDP: arithmetic encryption, verification tags, and the secure
//! weighted-summation offload protocol (HPCA 2022).
//!
//! The scheme lets a trusted processor (a TEE) use an **untrusted**
//! near-data-processing unit to compute linear operations over data that
//! never leaves the chip in plaintext:
//!
//! 1. **Arithmetic encryption** ([`encrypt`], Algorithm 1): each `wₑ`-bit
//!    element `p` is stored in memory as `c = p − e (mod 2^wₑ)` where the
//!    one-time pad `e` is carved out of `AES_K(00 ‖ addr ‖ v)`. `c` and `e`
//!    are two-party arithmetic shares of `p`, but the processor's share is
//!    *regenerable on-chip* — no extra memory traffic, unlike classic MPC.
//! 2. **Computation over ciphertext** ([`protocol`], Algorithm 4): the NDP
//!    computes `Σ aₖ·c_{iₖ}` over its share while the processor's OTP PU
//!    computes `Σ aₖ·e_{iₖ}`; one final wrapping addition reconstructs the
//!    plaintext result.
//! 3. **Verification** ([`checksum`], [`mac`], Algorithms 2/3/5): each row
//!    carries an encrypted linear-modular-hash tag over `q = 2¹²⁷ − 1`.
//!    Linearity lets the NDP combine tags with the same weights, and the
//!    processor checks the reconstructed tag against a checksum of the
//!    reconstructed result — catching tampering *and* ring overflow
//!    (Theorem A.2).
//!
//! # Examples
//!
//! ```
//! use secndp_core::protocol::TrustedProcessor;
//! use secndp_core::device::{HonestNdp, NdpDevice};
//! use secndp_core::SecretKey;
//!
//! # fn main() -> Result<(), secndp_core::Error> {
//! let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([7u8; 16]));
//! let mut ndp = HonestNdp::new();
//!
//! // A 2×4 matrix of 32-bit elements, stored encrypted at address 0x1000.
//! let table = cpu.encrypt_table::<u32>(&[1, 2, 3, 4, 10, 20, 30, 40], 2, 4, 0x1000)?;
//! let handle = cpu.publish(&table, &mut ndp)?;
//!
//! // res = 3·row0 + 2·row1, computed by the untrusted NDP over ciphertext.
//! let res = cpu.weighted_sum(&handle, &ndp, &[0, 1], &[3u32, 2], true)?;
//! assert_eq!(res, vec![23, 46, 69, 92]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod checksum;
pub mod device;
pub mod device_mem;
pub mod encrypt;
pub mod error;
pub mod fault;
pub mod health;
pub mod integrity_tree;
pub mod keys;
pub mod layout;
pub mod mac;
pub(crate) mod metrics;
pub mod net;
pub mod oracle;
pub mod protocol;
pub mod security;
pub mod transport;
pub mod version;
pub mod wire;

pub use checksum::ChecksumScheme;
pub use device::{HonestNdp, NdpDevice};
pub use device_mem::{MemoryBackedNdp, TagPlacement, UntrustedMemory};
pub use encrypt::EncryptedTable;
pub use error::Error;
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultyNdp, InvariantChecker};
pub use keys::SecretKey;
pub use layout::TableLayout;
pub use net::{NetConfig, NetServer, TcpEndpoint};
pub use protocol::{TableHandle, TrustedProcessor};
pub use transport::{AsyncEndpoint, TransportConfig};
pub use version::VersionManager;
