//! Per-query distributed tracing: a span journal with wire-propagatable
//! contexts and two exporters.
//!
//! Aggregate metrics (the [`crate::Histogram`] family) answer "how slow is
//! the verify stage on average"; they cannot answer "where did *this*
//! query spend its time" or "which table did *this* verification failure
//! hit". This module records **spans** — named begin/end intervals with
//! parent links — into a fixed-capacity ring-buffer journal, so a single
//! `weighted_sum_batch` call can be reconstructed as one connected
//! timeline spanning both sides of the processor ↔ NDP trust boundary.
//!
//! # Design
//!
//! - [`TraceId`] / [`SpanId`] come from process-wide atomic counters —
//!   deterministic, allocation-free, and `Date`-free (ids are stable under
//!   `--test-threads=1` replay and never depend on wall-clock identity).
//! - The journal ([`SpanJournal`]) is a fixed-capacity ring: slot
//!   reservation is one wait-free `fetch_add`; each slot is guarded by its
//!   own tiny mutex that is only ever contended across ring wrap-arounds.
//!   Memory is bounded — old events are overwritten, never reallocated.
//! - The *current* span context lives in a thread-local and is managed by
//!   RAII [`Span`] guards, so call sites never thread an explicit context
//!   argument through the protocol stack. Remote sides stitch into the
//!   same trace by carrying the `(trace, span)` ids over the wire (see
//!   `secndp-core::wire`) and opening children with [`span_child_of`].
//! - Timestamps are monotonic nanoseconds since the first event in the
//!   process (a `OnceLock<Instant>` epoch), so exported traces always
//!   start near zero.
//!
//! # Exporters
//!
//! - [`SpanJournal::render_chrome_trace`]: Chrome `trace_event` JSON,
//!   loadable in `chrome://tracing` or <https://ui.perfetto.dev>. Each
//!   trace id becomes one timeline row (`tid`), so concurrent queries are
//!   visually separated.
//! - [`SpanJournal::render_tree`]: a human-readable indented span tree,
//!   one block per trace.
//!
//! # Compile-out
//!
//! Without the `enabled` feature every function is an inlined no-op:
//! [`Span`] is zero-sized, no ids are allocated, the clock is never read,
//! and the exporters render valid-but-empty documents.

use std::fmt;

#[cfg(feature = "enabled")]
use std::cell::Cell;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Identifier of one end-to-end request (all spans of one query share it).
/// `TraceId(0)` means "no trace".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

/// Identifier of one span within a trace. `SpanId(0)` means "no parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A `(trace, span)` pair: everything a remote party needs to attach child
/// spans to an in-flight request. This is the value carried in traced wire
/// frames; it exists (as plain ids) even when tracing is compiled out so
/// the wire format does not change shape with the feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    /// The trace every descendant span will join.
    pub trace: TraceId,
    /// The span that becomes the parent of remote children.
    pub span: SpanId,
}

impl SpanContext {
    /// The empty context (no active trace).
    pub const NONE: SpanContext = SpanContext {
        trace: TraceId(0),
        span: SpanId(0),
    };

    /// Whether this context carries no trace.
    pub fn is_none(&self) -> bool {
        self.trace.0 == 0
    }
}

/// A small typed attribute value attached to a span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, addresses, byte sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Static string (mode names, error kinds).
    Str(&'static str),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => f.write_str(s),
        }
    }
}

/// Whether a journal record opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEventKind {
    /// Span opened.
    Begin,
    /// Span closed (carries the span's accumulated attributes).
    End,
}

/// One begin/end record in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Global sequence number (monotonic across the process; gaps indicate
    /// ring overwrites).
    pub seq: u64,
    /// Begin or end.
    pub kind: SpanEventKind,
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span id (`SpanId(0)` for roots).
    pub parent: SpanId,
    /// Static span name (see [`names`]).
    pub name: &'static str,
    /// Monotonic nanoseconds since the process trace epoch.
    pub t_ns: u64,
    /// Typed attributes (populated on `End` records).
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Canonical span names for the SecNDP pipeline, mirroring the Figure 4
/// protocol arrows plus the wire layer. Using these constants keeps the
/// processor- and device-side timelines stitchable by name.
pub mod names {
    /// OTP pad planning + batched AES encryption (`PadPlanner::execute`).
    pub const PAD_GEN: &str = "pad_gen";
    /// Cross-query pad-cache probe (nested under [`PAD_GEN`]).
    pub const PAD_CACHE: &str = "pad_cache";
    /// Table encryption and tag generation inside the TEE.
    pub const ENCRYPT: &str = "encrypt";
    /// Request-frame serialization on the processor side.
    pub const WIRE_ENCODE: &str = "wire_encode";
    /// Full encode → serve → decode wire round trip.
    pub const WIRE_ROUND_TRIP: &str = "wire_round_trip";
    /// The untrusted device computing `Σ aₖ·C_{iₖ}`.
    pub const NDP_COMPUTE: &str = "ndp_compute";
    /// Device-side frame dispatch (the DIMM firmware view).
    pub const NDP_SERVE: &str = "ndp_serve";
    /// Checksum recomputation and tag comparison.
    pub const VERIFY: &str = "verify";
    /// OTP-share regeneration and final reconstruction.
    pub const DECRYPT: &str = "decrypt";
}

/// Default journal capacity (events, not spans; one span = two events).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 32 * 1024;

#[cfg(feature = "enabled")]
mod enabled {
    use super::*;

    static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
    static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
    static IO_SPANS: AtomicBool = AtomicBool::new(false);

    thread_local! {
        static CURRENT: Cell<SpanContext> = const { Cell::new(SpanContext::NONE) };
    }

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    fn now_ns() -> u64 {
        u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(super) fn next_trace_id() -> TraceId {
        TraceId(NEXT_TRACE.fetch_add(1, Relaxed))
    }

    pub(super) fn next_span_id() -> SpanId {
        SpanId(NEXT_SPAN.fetch_add(1, Relaxed))
    }

    pub(super) fn current_ctx() -> SpanContext {
        CURRENT.with(|c| c.get())
    }

    pub(super) fn set_current(ctx: SpanContext) {
        CURRENT.with(|c| c.set(ctx));
    }

    pub(super) fn io_spans() -> bool {
        IO_SPANS.load(Relaxed)
    }

    pub(super) fn set_io_spans(on: bool) {
        IO_SPANS.store(on, Relaxed);
    }

    /// Ring-buffer state: slot reservation is a wait-free `fetch_add` on
    /// `cursor`; each slot's mutex only serializes the (rare) writer that
    /// laps the ring against a concurrent snapshot reader.
    pub(super) struct JournalState {
        pub slots: Box<[Mutex<Option<SpanEvent>>]>,
        pub cursor: AtomicU64,
    }

    impl JournalState {
        pub fn with_capacity(capacity: usize) -> Self {
            let cap = capacity.max(2);
            Self {
                slots: (0..cap).map(|_| Mutex::new(None)).collect(),
                cursor: AtomicU64::new(0),
            }
        }

        pub fn record(&self, mut ev: SpanEvent) {
            let seq = self.cursor.fetch_add(1, Relaxed);
            ev.seq = seq;
            let slot = (seq % self.slots.len() as u64) as usize;
            *self.slots[slot].lock().unwrap() = Some(ev);
        }
    }

    pub(super) fn begin_event(trace: TraceId, span: SpanId, parent: SpanId, name: &'static str) {
        journal().record_event(SpanEvent {
            seq: 0,
            kind: SpanEventKind::Begin,
            trace,
            span,
            parent,
            name,
            t_ns: now_ns(),
            attrs: Vec::new(),
        });
    }

    pub(super) fn end_event(
        trace: TraceId,
        span: SpanId,
        parent: SpanId,
        name: &'static str,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        journal().record_event(SpanEvent {
            seq: 0,
            kind: SpanEventKind::End,
            trace,
            span,
            parent,
            name,
            t_ns: now_ns(),
            attrs,
        });
    }
}

/// The fixed-capacity span journal.
///
/// With tracing compiled out this is an empty type whose snapshot is
/// always empty and whose exporters render valid empty documents.
pub struct SpanJournal {
    #[cfg(feature = "enabled")]
    state: enabled::JournalState,
}

impl fmt::Debug for SpanJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanJournal")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl SpanJournal {
    /// A journal holding at most `capacity` events (clamped to ≥ 2).
    pub fn with_capacity(capacity: usize) -> Self {
        #[cfg(feature = "enabled")]
        {
            Self {
                state: enabled::JournalState::with_capacity(capacity),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = capacity;
            Self {}
        }
    }

    /// Maximum number of retained events (0 when tracing is compiled out).
    pub fn capacity(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.state.slots.len()
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.state.cursor.load(std::sync::atomic::Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Events lost to ring overwrites so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Appends one event (used by [`Span`]; public so tests and custom
    /// instrumentation can journal synthetic events).
    pub fn record_event(&self, ev: SpanEvent) {
        #[cfg(feature = "enabled")]
        self.state.record(ev);
        #[cfg(not(feature = "enabled"))]
        let _ = ev;
    }

    /// A point-in-time copy of the retained events, in recording order.
    /// Like metric snapshots, a snapshot taken during concurrent recording
    /// may miss a handful of in-flight events.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        #[cfg(feature = "enabled")]
        {
            let mut evs: Vec<SpanEvent> = self
                .state
                .slots
                .iter()
                .filter_map(|s| s.lock().unwrap().clone())
                .collect();
            evs.sort_by_key(|e| e.seq);
            evs
        }
        #[cfg(not(feature = "enabled"))]
        Vec::new()
    }

    /// Clears all retained events (the sequence counter keeps advancing so
    /// `seq` values stay unique per process).
    pub fn clear(&self) {
        #[cfg(feature = "enabled")]
        for s in self.state.slots.iter() {
            *s.lock().unwrap() = None;
        }
    }

    /// Renders the journal as Chrome `trace_event` JSON (the array-of-events
    /// form with a `traceEvents` wrapper), loadable in `chrome://tracing`
    /// and Perfetto.
    ///
    /// Every emitted `"ph":"B"` has a matching `"ph":"E"`: spans whose
    /// begin record was overwritten by the ring (or that are still open)
    /// are skipped rather than emitted half-paired. Timestamps are
    /// microseconds (`ts`), one timeline row (`tid`) per trace id, and
    /// `args` carries the trace/span/parent ids plus the span's typed
    /// attributes.
    pub fn render_chrome_trace(&self) -> String {
        render_chrome_trace(&self.snapshot())
    }

    /// Renders the journal as a human-readable span tree, one indented
    /// block per trace. Only complete (begin + end retained) spans appear.
    pub fn render_tree(&self) -> String {
        render_tree(&self.snapshot())
    }
}

/// The process-wide journal that [`Span`] guards record into.
pub fn journal() -> &'static SpanJournal {
    #[cfg(feature = "enabled")]
    {
        static JOURNAL: OnceLock<SpanJournal> = OnceLock::new();
        JOURNAL.get_or_init(|| SpanJournal::with_capacity(DEFAULT_JOURNAL_CAPACITY))
    }
    #[cfg(not(feature = "enabled"))]
    {
        static JOURNAL: SpanJournal = SpanJournal {};
        &JOURNAL
    }
}

/// The calling thread's current span context ([`SpanContext::NONE`] when
/// no span is open or tracing is compiled out). This is the value a wire
/// layer should stamp onto outgoing frames.
pub fn current() -> SpanContext {
    #[cfg(feature = "enabled")]
    {
        enabled::current_ctx()
    }
    #[cfg(not(feature = "enabled"))]
    SpanContext::NONE
}

/// Whether high-frequency I/O spans (e.g. per-burst DRAM access spans in
/// the simulator) should be recorded. Off by default — they are opt-in
/// because hot simulation loops can wrap the journal in milliseconds.
pub fn io_spans_enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        enabled::io_spans()
    }
    #[cfg(not(feature = "enabled"))]
    false
}

/// Enables or disables high-frequency I/O spans process-wide.
pub fn set_io_spans(on: bool) {
    #[cfg(feature = "enabled")]
    enabled::set_io_spans(on);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// An RAII span guard: records a `Begin` event on creation, installs
/// itself as the thread's current context, and records an `End` event
/// (carrying any attached attributes) on drop, restoring the previous
/// context. Zero-sized and clock-free when tracing is compiled out.
#[must_use = "a span ends when dropped; binding it to `_` ends it immediately"]
#[derive(Debug)]
pub struct Span {
    #[cfg(feature = "enabled")]
    ctx: SpanContext,
    #[cfg(feature = "enabled")]
    parent: SpanId,
    #[cfg(feature = "enabled")]
    prev: SpanContext,
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Opens a span as a child of the thread's current span, or as the root of
/// a fresh trace when no span is open.
pub fn span(name: &'static str) -> Span {
    span_child_of(name, current())
}

/// Opens a span under an explicit parent context — how a remote party
/// (e.g. the device side of the wire) stitches its spans into a trace
/// whose ids arrived over the wire. An empty context behaves like
/// [`span`] (ambient parent, or a fresh root trace).
pub fn span_child_of(name: &'static str, ctx: SpanContext) -> Span {
    #[cfg(feature = "enabled")]
    {
        let ambient = enabled::current_ctx();
        let (trace, parent) = if !ctx.is_none() {
            (ctx.trace, ctx.span)
        } else if !ambient.is_none() {
            (ambient.trace, ambient.span)
        } else {
            (enabled::next_trace_id(), SpanId(0))
        };
        let span = enabled::next_span_id();
        enabled::begin_event(trace, span, parent, name);
        let me = SpanContext { trace, span };
        enabled::set_current(me);
        Span {
            ctx: me,
            parent,
            prev: ambient,
            name,
            attrs: Vec::new(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name, ctx);
        Span {}
    }
}

impl Span {
    /// This span's `(trace, span)` context — what gets carried on wire
    /// frames so remote children join the same trace.
    pub fn context(&self) -> SpanContext {
        #[cfg(feature = "enabled")]
        {
            self.ctx
        }
        #[cfg(not(feature = "enabled"))]
        SpanContext::NONE
    }

    /// The raw trace id (0 when tracing is compiled out).
    pub fn trace_id(&self) -> u64 {
        self.context().trace.0
    }

    /// The raw span id (0 when tracing is compiled out).
    pub fn id(&self) -> u64 {
        self.context().span.0
    }

    /// Attaches a typed attribute, recorded on the span's `End` event.
    pub fn attr(&mut self, key: &'static str, value: AttrValue) {
        #[cfg(feature = "enabled")]
        self.attrs.push((key, value));
        #[cfg(not(feature = "enabled"))]
        let _ = (key, value);
    }

    /// Attaches an unsigned-integer attribute.
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        self.attr(key, AttrValue::U64(value));
    }

    /// Attaches a static-string attribute.
    pub fn attr_str(&mut self, key: &'static str, value: &'static str) {
        self.attr(key, AttrValue::Str(value));
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            enabled::end_event(
                self.ctx.trace,
                self.ctx.span,
                self.parent,
                self.name,
                std::mem::take(&mut self.attrs),
            );
            enabled::set_current(self.prev);
        }
    }
}

// ─── Exporters ──────────────────────────────────────────────────────────

/// Pairs begin/end records by span id, returning complete spans as
/// `(begin, end)` in begin-seq order. Orphans (open spans, or spans whose
/// begin was overwritten by the ring) are dropped.
fn complete_spans(events: &[SpanEvent]) -> Vec<(&SpanEvent, &SpanEvent)> {
    use std::collections::HashMap;
    let mut begins: HashMap<SpanId, &SpanEvent> = HashMap::new();
    let mut pairs: Vec<(&SpanEvent, &SpanEvent)> = Vec::new();
    for ev in events {
        match ev.kind {
            SpanEventKind::Begin => {
                begins.insert(ev.span, ev);
            }
            SpanEventKind::End => {
                if let Some(b) = begins.remove(&ev.span) {
                    pairs.push((b, ev));
                }
            }
        }
    }
    pairs.sort_by_key(|(b, _)| b.seq);
    pairs
}

fn chrome_args(ev: &SpanEvent, attrs: &[(&'static str, AttrValue)]) -> String {
    let mut fields = vec![
        format!("\"trace\":{}", ev.trace.0),
        format!("\"span\":{}", ev.span.0),
        format!("\"parent\":{}", ev.parent.0),
    ];
    for (k, v) in attrs {
        let val = match v {
            AttrValue::U64(n) => n.to_string(),
            AttrValue::I64(n) => n.to_string(),
            AttrValue::Str(s) => format!("\"{}\"", crate::export::json_escape(s)),
        };
        fields.push(format!("\"{}\":{val}", crate::export::json_escape(k)));
    }
    format!("{{{}}}", fields.join(","))
}

/// Renders a slice of journal events as Chrome `trace_event` JSON. See
/// [`SpanJournal::render_chrome_trace`].
pub fn render_chrome_trace(events: &[SpanEvent]) -> String {
    let mut out: Vec<(u64, String)> = Vec::new();
    for (b, e) in complete_spans(events) {
        let name = crate::export::json_escape(b.name);
        out.push((
            b.seq,
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"secndp\",\"ph\":\"B\",\"pid\":1,\
                 \"tid\":{},\"ts\":{:.3},\"args\":{}}}",
                b.trace.0,
                b.t_ns as f64 / 1000.0,
                chrome_args(b, &[]),
            ),
        ));
        out.push((
            e.seq,
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"secndp\",\"ph\":\"E\",\"pid\":1,\
                 \"tid\":{},\"ts\":{:.3},\"args\":{}}}",
                e.trace.0,
                e.t_ns as f64 / 1000.0,
                chrome_args(e, &e.attrs),
            ),
        ));
    }
    // Seq order is begin/end recording order, which is well-nested per
    // thread and therefore per trace row for the synchronous pipeline.
    out.sort_by_key(|(seq, _)| *seq);
    let events: Vec<String> = out.into_iter().map(|(_, s)| s).collect();
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}\n",
        events.join(",")
    )
}

/// Renders a slice of journal events as an indented per-trace span tree.
/// See [`SpanJournal::render_tree`].
pub fn render_tree(events: &[SpanEvent]) -> String {
    use std::collections::{BTreeMap, HashMap, HashSet};
    let pairs = complete_spans(events);
    let ids: HashSet<SpanId> = pairs.iter().map(|(b, _)| b.span).collect();
    // Children in begin order, grouped under each parent.
    let mut children: HashMap<SpanId, Vec<usize>> = HashMap::new();
    let mut roots: BTreeMap<TraceId, Vec<usize>> = BTreeMap::new();
    for (i, (b, _)) in pairs.iter().enumerate() {
        if b.parent.0 != 0 && ids.contains(&b.parent) {
            children.entry(b.parent).or_default().push(i);
        } else {
            roots.entry(b.trace).or_default().push(i);
        }
    }
    fn write_node(
        out: &mut String,
        pairs: &[(&SpanEvent, &SpanEvent)],
        children: &std::collections::HashMap<SpanId, Vec<usize>>,
        i: usize,
        depth: usize,
    ) {
        let (b, e) = pairs[i];
        let dur = e.t_ns.saturating_sub(b.t_ns);
        let attrs: Vec<String> = e.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} [{}] {}ns{}{}\n",
            b.name,
            b.span,
            dur,
            if attrs.is_empty() { "" } else { "  " },
            attrs.join(" ")
        ));
        if let Some(kids) = children.get(&b.span) {
            for &k in kids {
                write_node(out, pairs, children, k, depth + 1);
            }
        }
    }
    let mut out = String::new();
    for (trace, idxs) in roots {
        out.push_str(&format!("{trace}\n"));
        for i in idxs {
            write_node(&mut out, &pairs, &children, i, 1);
        }
    }
    out
}
