//! Process self-identification metrics: build info, start time, uptime.
//!
//! Every scrape should say *what* is being scraped. [`init_process_metrics`]
//! registers:
//!
//! - `secndp_build_info{version="…",features="…"}` — constant `1`, the
//!   Prometheus idiom for build metadata carried in labels;
//! - `secndp_process_start_time_seconds` — Unix timestamp at first init;
//! - `secndp_uptime_seconds` — seconds since the telemetry epoch, refreshed
//!   by [`touch_uptime`] (called on every `/metrics` scrape and every
//!   health-sampler tick, so the gauge is as fresh as the last observer).

use std::sync::Once;
use std::time::{SystemTime, UNIX_EPOCH};

/// The crate version baked into `secndp_build_info`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The feature set baked into `secndp_build_info`.
pub const FEATURES: &str = if cfg!(feature = "enabled") {
    "telemetry"
} else {
    "none"
};

/// Registers build-info and process gauges in the global registry.
/// Idempotent; called automatically when a scrape server binds.
pub fn init_process_metrics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        crate::float_gauge!(
            "secndp_build_info",
            &[("version", VERSION), ("features", FEATURES)],
            "Build metadata (constant 1; version/features in labels)"
        )
        .set(1.0);
        let start = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        crate::float_gauge!(
            "secndp_process_start_time_seconds",
            "Unix time the process initialized telemetry"
        )
        .set(start);
        touch_uptime();
    });
}

/// Refreshes `secndp_uptime_seconds` from the process epoch.
pub fn touch_uptime() {
    crate::float_gauge!(
        "secndp_uptime_seconds",
        "Seconds since the process telemetry epoch"
    )
    .set(crate::health::uptime_ms() as f64 / 1000.0);
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn build_info_and_uptime_present_after_init() {
        init_process_metrics();
        init_process_metrics(); // idempotent
        let snap = crate::global().snapshot();
        let info = snap
            .get(
                "secndp_build_info",
                &[("version", VERSION), ("features", FEATURES)],
            )
            .expect("build info registered");
        assert!(matches!(info.value, Value::Float(v) if v == 1.0));
        assert!(snap.get("secndp_process_start_time_seconds", &[]).is_some());
        touch_uptime();
        let up = crate::global()
            .snapshot()
            .get("secndp_uptime_seconds", &[])
            .cloned()
            .expect("uptime registered");
        assert!(matches!(up.value, Value::Float(v) if v >= 0.0));
    }
}
