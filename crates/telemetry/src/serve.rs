//! Zero-dependency HTTP scrape server for live observability.
//!
//! A tiny `std::net::TcpListener` HTTP/1.1 server — no hyper, no tokio,
//! matching the workspace's offline-build constraint — exposing the
//! telemetry surface while the process runs:
//!
//! | route | content |
//! |-------|---------|
//! | `/metrics` | Prometheus text exposition of the registry (with OpenMetrics exemplars) |
//! | `/metrics.json` | the JSON snapshot ([`Registry::render_json`]); `?limit=N` keeps the first N metrics |
//! | `/healthz` | [`HealthMonitor::report`](crate::health::HealthMonitor::report) as JSON; 503 when failing |
//! | `/tracez` | the span journal as an indented tree; `?trace=<id>` filters one trace, `?limit=N` keeps the newest N traces |
//! | `/profilez` | continuous profile, flamegraph-ready collapsed stacks; `?format=json` for JSON, `?top=K` for the K costliest queries |
//! | `/sloz` | SLO burn rates and error budgets ([`crate::slo`]) as JSON |
//! | `/` | a plain-text index of the routes |
//!
//! Malformed query parameter values (a non-numeric `limit`, an unparsable
//! trace id) answer 400 rather than silently serving the unfiltered
//! document.
//!
//! Start it with [`Registry::serve`] (typically
//! `telemetry::global().serve("127.0.0.1:9184")`) or through a
//! [`ServerBuilder`] to add custom routes. The returned [`ServeHandle`]
//! owns the accept thread: dropping it shuts the server down and joins the
//! thread, so no thread outlives the handle.
//!
//! Requests are served inline on the accept thread, one at a time — a
//! scrape endpoint serving `curl` and Prometheus needs no concurrency, and
//! the inline design makes clean shutdown trivial. Connections carry short
//! read/write timeouts so a stuck client cannot wedge the server.

use crate::health;
use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The Prometheus text exposition content type.
pub const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Maximum accepted request-head size; larger requests get a 400.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// An HTTP response produced by a route handler.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, 503, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A 200 response with `text/plain; charset=utf-8` content.
    pub fn text(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A 200 response with `application/json` content.
    pub fn json(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    fn not_found(path: &str) -> Self {
        Self {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("no such route: {path}\n"),
        }
    }

    fn bad_request() -> Self {
        Self {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "malformed request\n".to_string(),
        }
    }

    fn bad_param(detail: &str) -> Self {
        Self {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: format!("malformed query parameter: {detail}\n"),
        }
    }
}

type Handler = Arc<dyn Fn() -> HttpResponse + Send + Sync>;

/// Builds a scrape server over a registry, with optional custom routes.
pub struct ServerBuilder {
    registry: &'static Registry,
    routes: Vec<(String, Handler)>,
}

impl std::fmt::Debug for ServerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let routes: Vec<&str> = self.routes.iter().map(|(p, _)| p.as_str()).collect();
        f.debug_struct("ServerBuilder")
            .field("routes", &routes)
            .finish()
    }
}

impl ServerBuilder {
    /// A builder serving `registry` (plus the process-wide health monitor
    /// and span journal) on the built-in routes.
    pub fn new(registry: &'static Registry) -> Self {
        Self {
            registry,
            routes: Vec::new(),
        }
    }

    /// Adds a custom route (exact path match, query string ignored).
    /// Custom routes take precedence over the built-ins.
    pub fn route<F>(mut self, path: &str, handler: F) -> Self
    where
        F: Fn() -> HttpResponse + Send + Sync + 'static,
    {
        self.routes.push((path.to_string(), Arc::new(handler)));
        self
    }

    /// Declares a service-level objective: adds it to the global
    /// [`slo::engine`](crate::slo::engine) scored at `/sloz`, and registers
    /// the `"slo"` health component so a burning error budget degrades
    /// `/healthz`.
    pub fn slo(self, objective: crate::slo::Objective) -> Self {
        crate::slo::engine().add(objective);
        crate::slo::register_slo_health();
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for an ephemeral
    /// port) and spawns the accept thread.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn I/O errors.
    pub fn bind<A: ToSocketAddrs>(self, addr: A) -> std::io::Result<ServeHandle> {
        crate::process::init_process_metrics();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = Arc::clone(&shutdown);
        let registry = self.registry;
        let routes = self.routes;
        let thread = std::thread::Builder::new()
            .name("secndp-metrics".into())
            .spawn(move || accept_loop(&listener, registry, &routes, &sd))?;
        Ok(ServeHandle {
            addr: local,
            shutdown,
            thread: Some(thread),
        })
    }
}

impl Registry {
    /// Starts the HTTP scrape server on `addr` with the built-in routes
    /// (`/metrics`, `/metrics.json`, `/healthz`, `/tracez`). See
    /// [`serve`](crate::serve) for the route table and
    /// [`ServerBuilder`] for custom routes.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn I/O errors.
    pub fn serve<A: ToSocketAddrs>(&'static self, addr: A) -> std::io::Result<ServeHandle> {
        ServerBuilder::new(self).bind(addr)
    }
}

/// Handle owning the scrape server; dropping it stops the accept loop and
/// joins the thread.
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server now (equivalent to dropping the handle).
    pub fn shutdown(self) {}
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection so the
        // loop observes the flag; bind-all addresses are woken via
        // loopback.
        let ip = if self.addr.ip().is_unspecified() {
            IpAddr::V4(Ipv4Addr::LOCALHOST)
        } else {
            self.addr.ip()
        };
        let wake = SocketAddr::new(ip, self.addr.port());
        let _ = TcpStream::connect_timeout(&wake, Duration::from_millis(250));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    registry: &'static Registry,
    routes: &[(String, Handler)],
    shutdown: &AtomicBool,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let _ = serve_conn(&mut stream, registry, routes);
    }
}

/// Reads one request head, dispatches, writes one response.
fn serve_conn(
    stream: &mut TcpStream,
    registry: &'static Registry,
    routes: &[(String, Handler)],
) -> std::io::Result<()> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !contains_blank_line(&head) && head.len() < MAX_HEAD_BYTES {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&head);
    let resp = match request_target(&text) {
        Some((path, query)) => dispatch(&path, &query, registry, routes),
        None => HttpResponse::bad_request(),
    };
    write_response(stream, &resp)
}

fn contains_blank_line(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

/// The request target of `GET /path?query HTTP/1.1` split into
/// `(path, query)` (query may be empty); `None` for anything that is not
/// a plausible request line.
fn request_target(head: &str) -> Option<(String, String)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let _method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") || !target.starts_with('/') {
        return None;
    }
    match target.split_once('?') {
        Some((path, query)) => Some((path.to_string(), query.to_string())),
        None => Some((target.to_string(), String::new())),
    }
}

/// The value of `key` in an `a=1&b=2` query string.
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// Parses an optional numeric query parameter; `Err` carries a 400.
fn opt_usize(query: &str, key: &str) -> Result<Option<usize>, HttpResponse> {
    match query_param(query, key) {
        None => Ok(None),
        Some(v) => v
            .parse::<usize>()
            .map(Some)
            .map_err(|_| HttpResponse::bad_param(&format!("{key}={v} is not a number"))),
    }
}

/// Parses an optional trace-id parameter (`t123` or bare `123`); `Err`
/// carries a 400.
fn opt_trace_id(query: &str) -> Result<Option<u64>, HttpResponse> {
    match query_param(query, "trace") {
        None => Ok(None),
        Some(v) => v
            .strip_prefix('t')
            .unwrap_or(v)
            .parse::<u64>()
            .ok()
            .filter(|&id| id != 0)
            .map(Some)
            .ok_or_else(|| HttpResponse::bad_param(&format!("trace={v} is not a trace id"))),
    }
}

/// `/tracez`: the journal tree, optionally filtered to one trace
/// (`?trace=<id>`) and/or the newest `?limit=N` traces.
fn tracez(query: &str) -> HttpResponse {
    let trace = match opt_trace_id(query) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let limit = match opt_usize(query, "limit") {
        Ok(l) => l,
        Err(resp) => return resp,
    };
    let mut events = crate::trace::journal().snapshot();
    if let Some(id) = trace {
        events.retain(|e| e.trace.0 == id);
    }
    if let Some(n) = limit {
        // Keep the N traces with the newest activity (max seq), in full.
        let mut latest: Vec<(u64, u64)> = Vec::new(); // (trace, max seq)
        for e in &events {
            match latest.iter_mut().find(|(t, _)| *t == e.trace.0) {
                Some((_, s)) => *s = (*s).max(e.seq),
                None => latest.push((e.trace.0, e.seq)),
            }
        }
        latest.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
        latest.truncate(n);
        events.retain(|e| latest.iter().any(|(t, _)| *t == e.trace.0));
    }
    HttpResponse::text(crate::trace::render_tree(&events))
}

/// `/profilez`: folds the journal into the global profiler, then serves
/// collapsed stacks (default), the profile as JSON (`?format=json`), or
/// the top-K costliest queries (`?top=K`).
fn profilez(query: &str) -> HttpResponse {
    let top = match opt_usize(query, "top") {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    crate::profile::profiler().fold(crate::trace::journal());
    if let Some(k) = top {
        return HttpResponse::json(crate::profile::ledger().render_top_json(k));
    }
    match query_param(query, "format") {
        Some("json") => HttpResponse::json(crate::profile::profiler().render_json()),
        Some(other) => HttpResponse::bad_param(&format!("format={other} (want json)")),
        None => HttpResponse::text(crate::profile::profiler().render_collapsed()),
    }
}

/// `/metrics.json`: the JSON snapshot, optionally truncated to the first
/// `?limit=N` metrics (sorted by `name{labels}`).
fn metrics_json(query: &str, registry: &'static Registry) -> HttpResponse {
    let limit = match opt_usize(query, "limit") {
        Ok(l) => l,
        Err(resp) => return resp,
    };
    crate::process::touch_uptime();
    match limit {
        None => HttpResponse::json(registry.render_json()),
        Some(n) => {
            let mut snap = registry.snapshot();
            snap.metrics.truncate(n);
            HttpResponse::json(crate::export::render_json(&snap))
        }
    }
}

fn dispatch(
    path: &str,
    query: &str,
    registry: &'static Registry,
    routes: &[(String, Handler)],
) -> HttpResponse {
    if let Some((_, handler)) = routes.iter().find(|(p, _)| p == path) {
        return handler();
    }
    match path {
        "/metrics" => {
            crate::process::touch_uptime();
            HttpResponse {
                status: 200,
                content_type: CONTENT_TYPE_PROMETHEUS,
                body: registry.render_prometheus(),
            }
        }
        "/metrics.json" => metrics_json(query, registry),
        "/healthz" => {
            let report = health::monitor().report();
            HttpResponse {
                status: report.http_status(),
                content_type: "application/json",
                body: report.render_json(),
            }
        }
        "/tracez" => tracez(query),
        "/profilez" => profilez(query),
        "/sloz" => {
            // A scrape is a sample: burn rates move even without the
            // background health sampler running.
            crate::slo::engine().sample(registry);
            HttpResponse::json(crate::slo::engine().render_json())
        }
        "/" => HttpResponse::text(
            "secndp telemetry\n\
             routes: /metrics /metrics.json /healthz /tracez /profilez /sloz\n",
        ),
        other => HttpResponse::not_found(other),
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, resp: &HttpResponse) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_target_parsing() {
        assert_eq!(
            request_target("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("/metrics".to_string(), String::new()))
        );
        assert_eq!(
            request_target("GET /healthz?verbose=1 HTTP/1.0\r\n\r\n"),
            Some(("/healthz".to_string(), "verbose=1".to_string()))
        );
        assert_eq!(
            request_target("GET /tracez?trace=t7&limit=2 HTTP/1.1\r\n\r\n"),
            Some(("/tracez".to_string(), "trace=t7&limit=2".to_string()))
        );
        assert_eq!(
            request_target("POST /inject/tamper HTTP/1.1\r\n\r\n"),
            Some(("/inject/tamper".to_string(), String::new()))
        );
        assert_eq!(request_target(""), None);
        assert_eq!(request_target("GET\r\n"), None);
        assert_eq!(request_target("GET metrics HTTP/1.1\r\n"), None);
        assert_eq!(request_target("GET /metrics SMTP\r\n"), None);
    }

    #[test]
    fn query_param_extraction() {
        assert_eq!(query_param("trace=t7&limit=2", "trace"), Some("t7"));
        assert_eq!(query_param("trace=t7&limit=2", "limit"), Some("2"));
        assert_eq!(query_param("trace=t7", "limit"), None);
        assert_eq!(query_param("", "limit"), None);
        assert_eq!(opt_trace_id("trace=t7").unwrap(), Some(7));
        assert_eq!(opt_trace_id("trace=7").unwrap(), Some(7));
        assert!(opt_trace_id("trace=xyz").is_err());
        assert!(opt_trace_id("trace=t0").is_err());
        assert!(opt_usize("limit=banana", "limit").is_err());
    }

    #[test]
    fn dispatch_builtin_routes() {
        let reg = crate::global();
        let m = dispatch("/metrics", "", reg, &[]);
        assert_eq!(m.status, 200);
        assert_eq!(m.content_type, CONTENT_TYPE_PROMETHEUS);
        let j = dispatch("/metrics.json", "", reg, &[]);
        assert_eq!(j.content_type, "application/json");
        assert!(j.body.starts_with('{'));
        let h = dispatch("/healthz", "", reg, &[]);
        assert!(h.body.contains("\"status\""));
        assert_eq!(dispatch("/tracez", "", reg, &[]).status, 200);
        assert_eq!(dispatch("/nope", "", reg, &[]).status, 404);
        let custom: Vec<(String, Handler)> = vec![(
            "/metrics".to_string(),
            Arc::new(|| HttpResponse::text("override")),
        )];
        assert_eq!(dispatch("/metrics", "", reg, &custom).body, "override");
    }

    #[test]
    fn dispatch_profilez_and_sloz() {
        let reg = crate::global();
        let p = dispatch("/profilez", "", reg, &[]);
        assert_eq!(p.status, 200);
        assert_eq!(p.content_type, "text/plain; charset=utf-8");
        let pj = dispatch("/profilez", "format=json", reg, &[]);
        assert_eq!(pj.status, 200);
        assert!(pj.body.contains("\"nodes\""));
        let top = dispatch("/profilez", "top=5", reg, &[]);
        assert_eq!(top.status, 200);
        assert!(top.body.contains("\"top\""));
        assert_eq!(dispatch("/profilez", "top=x", reg, &[]).status, 400);
        assert_eq!(dispatch("/profilez", "format=xml", reg, &[]).status, 400);
        let s = dispatch("/sloz", "", reg, &[]);
        assert_eq!(s.status, 200);
        assert!(s.body.contains("\"objectives\""));
    }

    #[test]
    fn dispatch_rejects_malformed_params() {
        let reg = crate::global();
        assert_eq!(dispatch("/tracez", "trace=banana", reg, &[]).status, 400);
        assert_eq!(dispatch("/tracez", "limit=-1", reg, &[]).status, 400);
        assert_eq!(dispatch("/metrics.json", "limit=zz", reg, &[]).status, 400);
        assert_eq!(
            dispatch("/tracez", "trace=t9&limit=1", reg, &[]).status,
            200
        );
        assert_eq!(dispatch("/metrics.json", "limit=1", reg, &[]).status, 200);
    }
}
