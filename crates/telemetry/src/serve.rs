//! Zero-dependency HTTP scrape server for live observability.
//!
//! A tiny `std::net::TcpListener` HTTP/1.1 server — no hyper, no tokio,
//! matching the workspace's offline-build constraint — exposing the
//! telemetry surface while the process runs:
//!
//! | route | content |
//! |-------|---------|
//! | `/metrics` | Prometheus text exposition of the registry |
//! | `/metrics.json` | the JSON snapshot ([`Registry::render_json`]) |
//! | `/healthz` | [`HealthMonitor::report`](crate::health::HealthMonitor::report) as JSON; 503 when failing |
//! | `/tracez` | the span journal rendered as an indented tree |
//! | `/` | a plain-text index of the routes |
//!
//! Start it with [`Registry::serve`] (typically
//! `telemetry::global().serve("127.0.0.1:9184")`) or through a
//! [`ServerBuilder`] to add custom routes. The returned [`ServeHandle`]
//! owns the accept thread: dropping it shuts the server down and joins the
//! thread, so no thread outlives the handle.
//!
//! Requests are served inline on the accept thread, one at a time — a
//! scrape endpoint serving `curl` and Prometheus needs no concurrency, and
//! the inline design makes clean shutdown trivial. Connections carry short
//! read/write timeouts so a stuck client cannot wedge the server.

use crate::health;
use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The Prometheus text exposition content type.
pub const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Maximum accepted request-head size; larger requests get a 400.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// An HTTP response produced by a route handler.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, 503, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A 200 response with `text/plain; charset=utf-8` content.
    pub fn text(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A 200 response with `application/json` content.
    pub fn json(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    fn not_found(path: &str) -> Self {
        Self {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("no such route: {path}\n"),
        }
    }

    fn bad_request() -> Self {
        Self {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "malformed request\n".to_string(),
        }
    }
}

type Handler = Arc<dyn Fn() -> HttpResponse + Send + Sync>;

/// Builds a scrape server over a registry, with optional custom routes.
pub struct ServerBuilder {
    registry: &'static Registry,
    routes: Vec<(String, Handler)>,
}

impl std::fmt::Debug for ServerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let routes: Vec<&str> = self.routes.iter().map(|(p, _)| p.as_str()).collect();
        f.debug_struct("ServerBuilder")
            .field("routes", &routes)
            .finish()
    }
}

impl ServerBuilder {
    /// A builder serving `registry` (plus the process-wide health monitor
    /// and span journal) on the built-in routes.
    pub fn new(registry: &'static Registry) -> Self {
        Self {
            registry,
            routes: Vec::new(),
        }
    }

    /// Adds a custom route (exact path match, query string ignored).
    /// Custom routes take precedence over the built-ins.
    pub fn route<F>(mut self, path: &str, handler: F) -> Self
    where
        F: Fn() -> HttpResponse + Send + Sync + 'static,
    {
        self.routes.push((path.to_string(), Arc::new(handler)));
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for an ephemeral
    /// port) and spawns the accept thread.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn I/O errors.
    pub fn bind<A: ToSocketAddrs>(self, addr: A) -> std::io::Result<ServeHandle> {
        crate::process::init_process_metrics();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = Arc::clone(&shutdown);
        let registry = self.registry;
        let routes = self.routes;
        let thread = std::thread::Builder::new()
            .name("secndp-metrics".into())
            .spawn(move || accept_loop(&listener, registry, &routes, &sd))?;
        Ok(ServeHandle {
            addr: local,
            shutdown,
            thread: Some(thread),
        })
    }
}

impl Registry {
    /// Starts the HTTP scrape server on `addr` with the built-in routes
    /// (`/metrics`, `/metrics.json`, `/healthz`, `/tracez`). See
    /// [`serve`](crate::serve) for the route table and
    /// [`ServerBuilder`] for custom routes.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn I/O errors.
    pub fn serve<A: ToSocketAddrs>(&'static self, addr: A) -> std::io::Result<ServeHandle> {
        ServerBuilder::new(self).bind(addr)
    }
}

/// Handle owning the scrape server; dropping it stops the accept loop and
/// joins the thread.
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server now (equivalent to dropping the handle).
    pub fn shutdown(self) {}
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection so the
        // loop observes the flag; bind-all addresses are woken via
        // loopback.
        let ip = if self.addr.ip().is_unspecified() {
            IpAddr::V4(Ipv4Addr::LOCALHOST)
        } else {
            self.addr.ip()
        };
        let wake = SocketAddr::new(ip, self.addr.port());
        let _ = TcpStream::connect_timeout(&wake, Duration::from_millis(250));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    registry: &'static Registry,
    routes: &[(String, Handler)],
    shutdown: &AtomicBool,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let _ = serve_conn(&mut stream, registry, routes);
    }
}

/// Reads one request head, dispatches, writes one response.
fn serve_conn(
    stream: &mut TcpStream,
    registry: &'static Registry,
    routes: &[(String, Handler)],
) -> std::io::Result<()> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !contains_blank_line(&head) && head.len() < MAX_HEAD_BYTES {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&head);
    let resp = match request_path(&text) {
        Some(path) => dispatch(&path, registry, routes),
        None => HttpResponse::bad_request(),
    };
    write_response(stream, &resp)
}

fn contains_blank_line(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

/// The request-target path of `GET /path?query HTTP/1.1`, without the
/// query string; `None` for anything that is not a plausible request line.
fn request_path(head: &str) -> Option<String> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let _method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") || !target.starts_with('/') {
        return None;
    }
    Some(target.split('?').next().unwrap_or(target).to_string())
}

fn dispatch(path: &str, registry: &'static Registry, routes: &[(String, Handler)]) -> HttpResponse {
    if let Some((_, handler)) = routes.iter().find(|(p, _)| p == path) {
        return handler();
    }
    match path {
        "/metrics" => {
            crate::process::touch_uptime();
            HttpResponse {
                status: 200,
                content_type: CONTENT_TYPE_PROMETHEUS,
                body: registry.render_prometheus(),
            }
        }
        "/metrics.json" => {
            crate::process::touch_uptime();
            HttpResponse::json(registry.render_json())
        }
        "/healthz" => {
            let report = health::monitor().report();
            HttpResponse {
                status: report.http_status(),
                content_type: "application/json",
                body: report.render_json(),
            }
        }
        "/tracez" => HttpResponse::text(crate::trace::journal().render_tree()),
        "/" => HttpResponse::text(
            "secndp telemetry\n\
             routes: /metrics /metrics.json /healthz /tracez\n",
        ),
        other => HttpResponse::not_found(other),
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, resp: &HttpResponse) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_path_parsing() {
        assert_eq!(
            request_path("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").as_deref(),
            Some("/metrics")
        );
        assert_eq!(
            request_path("GET /healthz?verbose=1 HTTP/1.0\r\n\r\n").as_deref(),
            Some("/healthz")
        );
        assert_eq!(
            request_path("POST /inject/tamper HTTP/1.1\r\n\r\n").as_deref(),
            Some("/inject/tamper")
        );
        assert_eq!(request_path(""), None);
        assert_eq!(request_path("GET\r\n"), None);
        assert_eq!(request_path("GET metrics HTTP/1.1\r\n"), None);
        assert_eq!(request_path("GET /metrics SMTP\r\n"), None);
    }

    #[test]
    fn dispatch_builtin_routes() {
        let reg = crate::global();
        let m = dispatch("/metrics", reg, &[]);
        assert_eq!(m.status, 200);
        assert_eq!(m.content_type, CONTENT_TYPE_PROMETHEUS);
        let j = dispatch("/metrics.json", reg, &[]);
        assert_eq!(j.content_type, "application/json");
        assert!(j.body.starts_with('{'));
        let h = dispatch("/healthz", reg, &[]);
        assert!(h.body.contains("\"status\""));
        assert_eq!(dispatch("/tracez", reg, &[]).status, 200);
        assert_eq!(dispatch("/nope", reg, &[]).status, 404);
        let custom: Vec<(String, Handler)> = vec![(
            "/metrics".to_string(),
            Arc::new(|| HttpResponse::text("override")),
        )];
        assert_eq!(dispatch("/metrics", reg, &custom).body, "override");
    }
}
