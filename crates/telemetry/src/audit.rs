//! Security audit log: a bounded record of protocol-integrity events.
//!
//! In SecNDP the device is *untrusted*: a failed verification is not an
//! operational hiccup but a security signal — possibly an active tamper
//! attempt against the checksum scheme of Algorithm 5. Aggregate counters
//! (`secndp_verify_failures_total`) say *how many*; this log says *which
//! query* (trace id), *which table* (address / region / version) and
//! *under which checksum scheme* each event happened.
//!
//! Events are recorded by the error-constructor helpers in
//! `secndp-core::metrics` whenever a `VerificationFailed`,
//! `MalformedResponse` or `ShapeMismatch` error is built, stamping the
//! calling thread's current [`trace`](crate::trace) context so audit
//! records join the same timeline as the span journal.
//!
//! The log is a fixed-capacity FIFO behind a plain mutex — integrity
//! events are rare by construction (an honest deployment records none), so
//! lock cost is irrelevant and boundedness matters more than speed. With
//! the `enabled` feature off, recording is a no-op and snapshots are
//! empty.

use crate::trace::{self, SpanId, TraceId};

#[cfg(feature = "enabled")]
use std::collections::VecDeque;
#[cfg(feature = "enabled")]
use std::sync::Mutex;

/// Default bound on retained audit events.
pub const DEFAULT_AUDIT_CAPACITY: usize = 1024;

/// One recorded integrity event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    /// Monotonic per-process sequence number (unique even after eviction).
    pub seq: u64,
    /// Trace the offending query belonged to (`TraceId(0)` if untraced).
    pub trace: TraceId,
    /// Innermost span open when the event was recorded.
    pub span: SpanId,
    /// Event kind: `"verification_failed"`, `"malformed_response"` or
    /// `"shape_mismatch"`.
    pub kind: &'static str,
    /// Base address of the table involved (0 when not applicable).
    pub table_addr: u64,
    /// OTP region id of the table (0 when not applicable).
    pub region: u64,
    /// OTP stream version in use (0 when not applicable).
    pub version: u64,
    /// Checksum scheme name (`"single_s"`/`"multi_s"`, "" when n/a).
    pub scheme: &'static str,
    /// Free-form static detail (e.g. the malformed-response reason).
    pub detail: &'static str,
}

#[cfg(feature = "enabled")]
struct AuditState {
    events: VecDeque<AuditEvent>,
    next_seq: u64,
    evicted: u64,
}

/// A bounded FIFO of [`AuditEvent`]s. The process-wide instance is
/// [`audit_log()`].
pub struct AuditLog {
    #[cfg(feature = "enabled")]
    inner: Mutex<AuditState>,
    #[cfg(feature = "enabled")]
    capacity: usize,
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditLog")
            .field("len", &self.len())
            .finish()
    }
}

impl AuditLog {
    /// A log retaining at most `capacity` events (oldest evicted first).
    pub fn with_capacity(capacity: usize) -> Self {
        #[cfg(feature = "enabled")]
        {
            Self {
                inner: Mutex::new(AuditState {
                    events: VecDeque::new(),
                    next_seq: 0,
                    evicted: 0,
                }),
                capacity: capacity.max(1),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = capacity;
            Self {}
        }
    }

    /// Records an integrity event, stamping the calling thread's current
    /// trace context. `kind`, `scheme` and `detail` are static so the hot
    /// (error) path never allocates strings.
    pub fn record(
        &self,
        kind: &'static str,
        table_addr: u64,
        region: u64,
        version: u64,
        scheme: &'static str,
        detail: &'static str,
    ) {
        #[cfg(feature = "enabled")]
        {
            let ctx = trace::current();
            let mut inner = self.inner.lock().unwrap();
            let seq = inner.next_seq;
            inner.next_seq += 1;
            if inner.events.len() == self.capacity {
                inner.events.pop_front();
                inner.evicted += 1;
            }
            inner.events.push_back(AuditEvent {
                seq,
                trace: ctx.trace,
                span: ctx.span,
                kind,
                table_addr,
                region,
                version,
                scheme,
                detail,
            });
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (kind, table_addr, region, version, scheme, detail);
            let _ = trace::current();
        }
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.inner.lock().unwrap().events.len()
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded, including evicted ones.
    pub fn total(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.inner.lock().unwrap().next_seq
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// A point-in-time copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<AuditEvent> {
        #[cfg(feature = "enabled")]
        {
            self.inner.lock().unwrap().events.iter().cloned().collect()
        }
        #[cfg(not(feature = "enabled"))]
        Vec::new()
    }

    /// Drops all retained events (sequence numbers keep advancing).
    pub fn clear(&self) {
        #[cfg(feature = "enabled")]
        self.inner.lock().unwrap().events.clear();
    }

    /// Renders the log as a JSON document in the same spirit as
    /// [`Registry::render_json`](crate::Registry::render_json):
    ///
    /// ```json
    /// {"audit_events":[{"seq":0,"trace":3,"span":7,
    ///   "kind":"verification_failed","table_addr":4096,"region":1,
    ///   "version":2,"scheme":"single_s","detail":"checksum tag mismatch"},
    ///   …]}
    /// ```
    pub fn render_json(&self) -> String {
        let events: Vec<String> = self
            .snapshot()
            .iter()
            .map(|e| {
                format!(
                    "{{\"seq\":{},\"trace\":{},\"span\":{},\"kind\":\"{}\",\
                     \"table_addr\":{},\"region\":{},\"version\":{},\
                     \"scheme\":\"{}\",\"detail\":\"{}\"}}",
                    e.seq,
                    e.trace.0,
                    e.span.0,
                    crate::export::json_escape(e.kind),
                    e.table_addr,
                    e.region,
                    e.version,
                    crate::export::json_escape(e.scheme),
                    crate::export::json_escape(e.detail),
                )
            })
            .collect();
        format!("{{\"audit_events\":[{}]}}\n", events.join(","))
    }
}

/// The process-wide audit log.
pub fn audit_log() -> &'static AuditLog {
    #[cfg(feature = "enabled")]
    {
        static LOG: std::sync::OnceLock<AuditLog> = std::sync::OnceLock::new();
        LOG.get_or_init(|| AuditLog::with_capacity(DEFAULT_AUDIT_CAPACITY))
    }
    #[cfg(not(feature = "enabled"))]
    {
        static LOG: AuditLog = AuditLog {};
        &LOG
    }
}
