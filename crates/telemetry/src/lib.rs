//! End-to-end telemetry for the SecNDP pipeline.
//!
//! The paper's evaluation (§VI, Figures 7–11) is an exercise in knowing
//! where every cycle and byte goes: AES pad generation, NDP-side summation,
//! checksum verification, wire traffic. This crate gives the *runtime*
//! crates the same visibility the simulator's counters give the model —
//! without pulling in `prometheus` or `tracing` (the workspace builds
//! offline; like `crates/compat`, everything here is hand-rolled).
//!
//! # Building blocks
//!
//! - [`Counter`] — a monotonically increasing `AtomicU64`.
//! - [`Gauge`] / [`FloatGauge`] — last-value instruments (integer / `f64`).
//! - [`Histogram`] — log2-bucketed value distribution with
//!   p50/p95/p99 estimation and a cheap RAII [`Timer`] for latencies.
//! - [`Registry`] — a named collection of the above with two exporters:
//!   [Prometheus text exposition](Registry::render_prometheus) and a
//!   [JSON snapshot](Registry::render_json).
//! - [`trace`] — per-query distributed tracing: a fixed-capacity span
//!   journal with RAII [`trace::Span`] guards, wire-propagatable
//!   [`trace::SpanContext`]s, and Chrome-trace / tree exporters.
//! - [`audit`] — a bounded security audit log recording every integrity
//!   failure (verify / malformed-response / shape) with its trace id,
//!   region, version and checksum scheme.
//! - [`profile`] — a continuous profiler folding completed spans into a
//!   flamegraph-ready self-time call tree (`/profilez`), plus per-query
//!   cost attribution with a top-K-by-latency ledger.
//! - [`slo`] — declarative latency/error objectives scored as
//!   multi-window burn rates (`/sloz`), degrading `/healthz` on budget
//!   exhaustion.
//!
//! Metrics live in the process-wide [`global()`] registry and are looked up
//! once per call site through the [`counter!`], [`gauge!`],
//! [`float_gauge!`] and [`histogram!`] macros, which cache the `Arc` in a
//! `static OnceLock` — after first touch a metric access is one atomic
//! load.
//!
//! # Stage taxonomy
//!
//! Pipeline latencies share a single histogram family,
//! `secndp_stage_latency_ns{stage="…"}`, with the stage names of
//! [`stages`]: `encrypt` → `ndp_compute` → `verify` → `decrypt` mirror the
//! protocol arrows of Figure 4. See `DESIGN.md` § Telemetry for the full
//! metric-name taxonomy.
//!
//! # Compile-out
//!
//! The `enabled` cargo feature (default on, re-exported as the `telemetry`
//! feature of every runtime crate) gates all storage and timing. With the
//! feature off every instrument is zero-sized, every method body is empty
//! (and inlines to nothing), `Timer` never reads the clock, and the
//! exporters render empty snapshots — call sites need no `cfg` of their
//! own.
//!
//! # Example
//!
//! ```
//! use secndp_telemetry as telemetry;
//!
//! let reqs = telemetry::counter!("doc_requests_total", "Requests served");
//! reqs.inc();
//! let lat = telemetry::histogram!("doc_latency_ns", "Request latency");
//! {
//!     let _t = lat.start_timer(); // records on drop
//! }
//! let text = telemetry::global().render_prometheus();
//! # #[cfg(feature = "enabled")]
//! assert!(text.contains("doc_requests_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
mod export;
pub mod faultlog;
pub mod health;
mod metrics;
pub mod process;
pub mod profile;
pub mod recorder;
mod registry;
pub mod serve;
pub mod slo;
#[cfg(all(test, feature = "enabled"))]
mod tests;
pub mod trace;

pub use metrics::{
    Counter, FloatGauge, Gauge, Histogram, HistogramExemplar, HistogramSnapshot, Timer, BUCKETS,
};
pub use process::init_process_metrics;
pub use recorder::install_panic_hook;
pub use registry::{global, MetricKind, MetricSnapshot, Registry, Snapshot, Value};

/// Canonical stage names for `secndp_stage_latency_ns{stage="…"}`.
///
/// One name per protocol arrow of Figure 4: table encryption inside the
/// TEE, the untrusted NDP computation, tag verification, and OTP-share
/// regeneration + reconstruction ("decrypt").
pub mod stages {
    /// `ArithEnc`: table encryption and tag generation (Algorithms 1–3).
    pub const ENCRYPT: &str = "encrypt";
    /// The untrusted device computing `Σ aₖ·C_{iₖ}` (Algorithm 4 line 7).
    pub const NDP_COMPUTE: &str = "ndp_compute";
    /// Checksum recomputation and tag comparison (Algorithm 5).
    pub const VERIFY: &str = "verify";
    /// OTP-share regeneration and final reconstruction (Alg 4 lines 8–15).
    pub const DECRYPT: &str = "decrypt";
}

/// Looks up (registering on first use) a [`Counter`] in the global
/// registry, caching the handle in a call-site `static`. Expands to a
/// `&'static Counter`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $help:expr) => {
        $crate::counter!($name, &[], $help)
    };
    ($name:expr, $labels:expr, $help:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**CELL.get_or_init(|| $crate::global().counter($name, $labels, $help))
    }};
}

/// Looks up (registering on first use) a [`Gauge`] in the global registry.
/// Expands to a `&'static Gauge`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $help:expr) => {
        $crate::gauge!($name, &[], $help)
    };
    ($name:expr, $labels:expr, $help:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**CELL.get_or_init(|| $crate::global().gauge($name, $labels, $help))
    }};
}

/// Looks up (registering on first use) a [`FloatGauge`] in the global
/// registry. Expands to a `&'static FloatGauge`.
#[macro_export]
macro_rules! float_gauge {
    ($name:expr, $help:expr) => {
        $crate::float_gauge!($name, &[], $help)
    };
    ($name:expr, $labels:expr, $help:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::FloatGauge>> =
            ::std::sync::OnceLock::new();
        &**CELL.get_or_init(|| $crate::global().float_gauge($name, $labels, $help))
    }};
}

/// Looks up (registering on first use) a [`Histogram`] in the global
/// registry. Expands to a `&'static Histogram`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $help:expr) => {
        $crate::histogram!($name, &[], $help)
    };
    ($name:expr, $labels:expr, $help:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**CELL.get_or_init(|| $crate::global().histogram($name, $labels, $help))
    }};
}
