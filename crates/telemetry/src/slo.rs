//! Declarative SLOs with multi-window burn-rate tracking.
//!
//! The paper's pitch is *verified queries at near-native latency*; in
//! operation that promise has to be stated as an objective ("99% of wire
//! round trips under 2 ms", "99.9% of queries verify") and *watched*. This
//! module lets a deployment declare [`Objective`]s — via the
//! `SECNDP_SLO_LATENCY` / `SECNDP_SLO_ERRORS` environment knobs
//! ([`install_from_env`]) or the builder API
//! ([`crate::serve::ServerBuilder::slo`]) — and continuously scores them
//! against the metric registry.
//!
//! # Burn rate
//!
//! Each [`SloEngine::sample`] appends cumulative `(good, total)` event
//! counts per objective (latency objectives estimate *good* from the
//! histogram buckets via
//! [`count_at_or_below`](crate::HistogramSnapshot::count_at_or_below);
//! error objectives use `total − errors`). The burn rate over a window is
//!
//! ```text
//! burn = (bad events / total events in window) / (1 − target)
//! ```
//!
//! i.e. how many times faster than "exactly on objective" the error budget
//! is being spent: 1.0 spends the budget exactly at the allowed rate, > 1
//! exhausts it early, 0 spends nothing. Two windows are evaluated
//! ([`SloConfig`]: 5 minutes and 1 hour by default) following the
//! multi-window multi-burn-rate alerting practice — the fast window
//! catches an active incident, the slow window a smoulder.
//!
//! The engine is sampled from [`HealthMonitor::sample`]
//! ((crate::health::HealthMonitor::sample)) so the background health
//! sampler drives it for free, and freshly on every `/sloz` scrape.
//! [`register_slo_health`] folds "any objective's fast burn > 1" into the
//! process [`health monitor`](crate::health::monitor) as a `Degraded`
//! verdict — budget exhaustion degrades `/healthz` without ever claiming
//! the process is unable to serve (that stays the transports' call).

use crate::registry::{Registry, Snapshot, Value};
use std::sync::Mutex;

/// Default fast burn window: 5 minutes.
pub const DEFAULT_FAST_WINDOW_MS: u64 = 5 * 60 * 1000;
/// Default slow burn window: 1 hour.
pub const DEFAULT_SLOW_WINDOW_MS: u64 = 60 * 60 * 1000;
/// Hard cap on retained samples (a sampler at 1 s fills an hour in 3600).
const MAX_SAMPLES: usize = 8 * 1024;

/// A declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// "`target` fraction of `metric` samples at or under `threshold_ns`"
    /// — scored against a histogram family (summed across label sets).
    Latency {
        /// Objective name (reported at `/sloz` and in health verdicts).
        name: String,
        /// Histogram family name, e.g. `secndp_wire_round_trip_ns`.
        metric: String,
        /// Good-event latency bound, inclusive, in nanoseconds.
        threshold_ns: u64,
        /// Target good fraction in `(0, 1)`, e.g. `0.99`.
        target: f64,
    },
    /// "`target` fraction of `total` events not counted by `errors`" —
    /// scored against two counter families.
    ErrorRate {
        /// Objective name.
        name: String,
        /// Error-counter family, e.g. `secndp_verify_failures_total`.
        errors: String,
        /// Total-counter family, e.g. `secndp_queries_total`.
        total: String,
        /// Target good fraction in `(0, 1)`, e.g. `0.999`.
        target: f64,
    },
}

impl Objective {
    /// The objective's name.
    pub fn name(&self) -> &str {
        match self {
            Objective::Latency { name, .. } | Objective::ErrorRate { name, .. } => name,
        }
    }

    /// The target good fraction.
    pub fn target(&self) -> f64 {
        match self {
            Objective::Latency { target, .. } | Objective::ErrorRate { target, .. } => *target,
        }
    }

    /// Cumulative `(good, total)` event estimates from a registry
    /// snapshot.
    fn counts(&self, snap: &Snapshot) -> (f64, f64) {
        match self {
            Objective::Latency {
                metric,
                threshold_ns,
                ..
            } => {
                let mut good = 0.0;
                let mut total = 0.0;
                for m in snap.metrics.iter().filter(|m| m.name == metric) {
                    if let Value::Histogram(h) = &m.value {
                        good += h.count_at_or_below(*threshold_ns);
                        total += h.count as f64;
                    }
                }
                (good, total)
            }
            Objective::ErrorRate { errors, total, .. } => {
                let t = snap.counter_total(total) as f64;
                let e = (snap.counter_total(errors) as f64).min(t);
                (t - e, t)
            }
        }
    }
}

/// Burn-window configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// Fast (incident) burn window in milliseconds.
    pub fast_window_ms: u64,
    /// Slow (smoulder / budget) burn window in milliseconds.
    pub slow_window_ms: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            fast_window_ms: DEFAULT_FAST_WINDOW_MS,
            slow_window_ms: DEFAULT_SLOW_WINDOW_MS,
        }
    }
}

impl SloConfig {
    /// Reads `SECNDP_SLO_FAST_WINDOW_MS` / `SECNDP_SLO_SLOW_WINDOW_MS`,
    /// falling back to the defaults (5 m / 1 h).
    pub fn from_env() -> Self {
        let d = Self::default();
        let parse = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
                .max(1)
        };
        Self {
            fast_window_ms: parse("SECNDP_SLO_FAST_WINDOW_MS", d.fast_window_ms),
            slow_window_ms: parse("SECNDP_SLO_SLOW_WINDOW_MS", d.slow_window_ms),
        }
    }
}

/// One sample: cumulative `(good, total)` per objective, index-aligned
/// with the engine's objective list.
#[derive(Debug, Clone)]
struct SloSample {
    t_ms: u64,
    counts: Vec<(f64, f64)>,
}

/// A scored objective as reported at `/sloz`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveStatus {
    /// Objective name.
    pub name: String,
    /// `"latency"` or `"error_rate"`.
    pub kind: &'static str,
    /// Target good fraction.
    pub target: f64,
    /// Burn rate over the fast window (0 with < 2 samples or no traffic).
    pub burn_fast: f64,
    /// Burn rate over the slow window.
    pub burn_slow: f64,
    /// Error budget left over the slow window: `1 − burn_slow` (negative
    /// = overspent).
    pub budget_remaining: f64,
    /// Cumulative good events at the newest sample.
    pub good: f64,
    /// Cumulative total events at the newest sample.
    pub total: f64,
}

impl ObjectiveStatus {
    /// Whether the fast window is burning budget faster than allowed.
    pub fn breached(&self) -> bool {
        self.burn_fast > 1.0
    }
}

#[derive(Debug, Default)]
struct EngineState {
    objectives: Vec<Objective>,
    samples: Vec<SloSample>,
    cfg: Option<SloConfig>,
}

/// The SLO scoring engine. The process-wide instance is [`engine()`];
/// tests can build private ones.
#[derive(Debug, Default)]
pub struct SloEngine {
    state: Mutex<EngineState>,
}

/// Burn rate between two cumulative `(good, total)` readings.
fn burn_between(old: (f64, f64), new: (f64, f64), target: f64) -> f64 {
    let dtotal = new.1 - old.1;
    if dtotal <= 0.0 {
        return 0.0;
    }
    let dgood = (new.0 - old.0).clamp(0.0, dtotal);
    let bad_frac = 1.0 - dgood / dtotal;
    bad_frac / (1.0 - target).max(1e-9)
}

impl SloEngine {
    /// An empty engine (no objectives, default windows).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the burn-window configuration.
    pub fn configure(&self, cfg: SloConfig) {
        self.state.lock().unwrap().cfg = Some(cfg);
    }

    /// The active configuration (env-resolved on first read if never set).
    pub fn config(&self) -> SloConfig {
        let mut s = self.state.lock().unwrap();
        *s.cfg.get_or_insert_with(SloConfig::from_env)
    }

    /// Adds an objective (deduplicated by name — re-adding replaces).
    /// Changing the objective list restarts sampling, since samples are
    /// index-aligned with it.
    pub fn add(&self, obj: Objective) {
        let mut s = self.state.lock().unwrap();
        if let Some(existing) = s.objectives.iter_mut().find(|o| o.name() == obj.name()) {
            *existing = obj;
        } else {
            s.objectives.push(obj);
        }
        s.samples.clear();
    }

    /// Names of the configured objectives.
    pub fn objectives(&self) -> Vec<String> {
        self.state
            .lock()
            .unwrap()
            .objectives
            .iter()
            .map(|o| o.name().to_string())
            .collect()
    }

    /// Removes every objective and sample (tests).
    pub fn clear(&self) {
        let mut s = self.state.lock().unwrap();
        s.objectives.clear();
        s.samples.clear();
    }

    /// Takes one sample from `registry` at the current process uptime.
    pub fn sample(&self, registry: &Registry) {
        self.sample_snapshot(crate::health::uptime_ms(), &registry.snapshot());
    }

    /// Takes one sample from an explicit snapshot at an explicit
    /// timestamp — the deterministic entry point tests drive directly.
    pub fn sample_snapshot(&self, t_ms: u64, snap: &Snapshot) {
        let mut s = self.state.lock().unwrap();
        if s.objectives.is_empty() {
            return;
        }
        let counts: Vec<(f64, f64)> = s.objectives.iter().map(|o| o.counts(snap)).collect();
        // Monotonic guard: a sample stamped earlier than the newest one
        // (clock quirks in tests) is appended with the newest stamp.
        let t_ms = s.samples.last().map_or(t_ms, |l| t_ms.max(l.t_ms));
        s.samples.push(SloSample { t_ms, counts });
        // Prune beyond the slow window (with one sample of slack to keep a
        // baseline at the window edge) and the hard cap.
        let keep_after = t_ms.saturating_sub(self.config_locked(&mut s).slow_window_ms);
        let first_inside = s.samples.partition_point(|x| x.t_ms < keep_after);
        let drop_n = first_inside.saturating_sub(1);
        if drop_n > 0 {
            s.samples.drain(..drop_n);
        }
        if s.samples.len() > MAX_SAMPLES {
            let excess = s.samples.len() - MAX_SAMPLES;
            s.samples.drain(..excess);
        }
        drop(s);
        crate::counter!(
            "secndp_slo_samples_total",
            "Samples folded into the SLO burn-rate engine."
        )
        .inc();
    }

    fn config_locked(&self, s: &mut EngineState) -> SloConfig {
        *s.cfg.get_or_insert_with(SloConfig::from_env)
    }

    /// Scores every objective over both windows against the samples taken
    /// so far.
    pub fn status(&self) -> Vec<ObjectiveStatus> {
        let mut s = self.state.lock().unwrap();
        let cfg = self.config_locked(&mut s);
        let Some(latest) = s.samples.last().cloned() else {
            return s
                .objectives
                .iter()
                .map(|o| ObjectiveStatus {
                    name: o.name().to_string(),
                    kind: kind_of(o),
                    target: o.target(),
                    burn_fast: 0.0,
                    burn_slow: 0.0,
                    budget_remaining: 1.0,
                    good: 0.0,
                    total: 0.0,
                })
                .collect();
        };
        // Baseline for a window: the oldest sample at or after the window
        // cutoff that is not the newest sample itself (burn needs an
        // interval). `None` with a single sample.
        let baseline = |window_ms: u64| -> Option<SloSample> {
            let cutoff = latest.t_ms.saturating_sub(window_ms);
            let i = s.samples.partition_point(|x| x.t_ms < cutoff);
            (i + 1 < s.samples.len()).then(|| s.samples[i].clone())
        };
        let fast = baseline(cfg.fast_window_ms);
        let slow = baseline(cfg.slow_window_ms);
        s.objectives
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let new = latest.counts.get(i).copied().unwrap_or((0.0, 0.0));
                let burn = |b: &Option<SloSample>| -> f64 {
                    match b {
                        Some(b) => burn_between(
                            b.counts.get(i).copied().unwrap_or((0.0, 0.0)),
                            new,
                            o.target(),
                        ),
                        None => 0.0,
                    }
                };
                let burn_fast = burn(&fast);
                let burn_slow = burn(&slow);
                ObjectiveStatus {
                    name: o.name().to_string(),
                    kind: kind_of(o),
                    target: o.target(),
                    burn_fast,
                    burn_slow,
                    budget_remaining: 1.0 - burn_slow,
                    good: new.0,
                    total: new.1,
                }
            })
            .collect()
    }

    /// Renders the `/sloz` JSON document:
    ///
    /// ```json
    /// {"fast_window_ms":300000,"slow_window_ms":3600000,"samples":12,
    ///  "objectives":[{"name":"...","kind":"latency","target":0.99,
    ///    "burn_fast":0.0,"burn_slow":0.0,"budget_remaining":1.0,
    ///    "good":100,"total":100,"breached":false}]}
    /// ```
    pub fn render_json(&self) -> String {
        let cfg = self.config();
        let n_samples = self.state.lock().unwrap().samples.len();
        let objectives: Vec<String> = self
            .status()
            .iter()
            .map(|st| {
                format!(
                    "{{\"name\":\"{}\",\"kind\":\"{}\",\"target\":{},\
                     \"burn_fast\":{},\"burn_slow\":{},\"budget_remaining\":{},\
                     \"good\":{},\"total\":{},\"breached\":{}}}",
                    crate::export::json_escape(&st.name),
                    st.kind,
                    fmt_f64(st.target),
                    fmt_f64(st.burn_fast),
                    fmt_f64(st.burn_slow),
                    fmt_f64(st.budget_remaining),
                    fmt_f64(st.good),
                    fmt_f64(st.total),
                    st.breached(),
                )
            })
            .collect();
        format!(
            "{{\"fast_window_ms\":{},\"slow_window_ms\":{},\"samples\":{},\
             \"objectives\":[{}]}}\n",
            cfg.fast_window_ms,
            cfg.slow_window_ms,
            n_samples,
            objectives.join(",")
        )
    }
}

fn kind_of(o: &Objective) -> &'static str {
    match o {
        Objective::Latency { .. } => "latency",
        Objective::ErrorRate { .. } => "error_rate",
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// The process-wide SLO engine behind `/sloz`.
pub fn engine() -> &'static SloEngine {
    static ENGINE: std::sync::OnceLock<SloEngine> = std::sync::OnceLock::new();
    ENGINE.get_or_init(SloEngine::new)
}

/// Parses `name:metric:threshold_ns:target` items (`;`-separated) from
/// `SECNDP_SLO_LATENCY` and `name:errors:total:target` items from
/// `SECNDP_SLO_ERRORS` into the global engine. Returns how many
/// objectives were installed; malformed items are skipped.
pub fn install_from_env() -> usize {
    let mut installed = 0;
    if let Ok(v) = std::env::var("SECNDP_SLO_LATENCY") {
        for item in v.split(';').filter(|s| !s.trim().is_empty()) {
            let parts: Vec<&str> = item.split(':').collect();
            if let [name, metric, threshold, target] = parts[..] {
                if let (Ok(threshold_ns), Ok(target)) = (
                    threshold.trim().parse::<u64>(),
                    target.trim().parse::<f64>(),
                ) {
                    if (0.0..1.0).contains(&target) {
                        engine().add(Objective::Latency {
                            name: name.trim().to_string(),
                            metric: metric.trim().to_string(),
                            threshold_ns,
                            target,
                        });
                        installed += 1;
                    }
                }
            }
        }
    }
    if let Ok(v) = std::env::var("SECNDP_SLO_ERRORS") {
        for item in v.split(';').filter(|s| !s.trim().is_empty()) {
            let parts: Vec<&str> = item.split(':').collect();
            if let [name, errors, total, target] = parts[..] {
                if let Ok(target) = target.trim().parse::<f64>() {
                    if (0.0..1.0).contains(&target) {
                        engine().add(Objective::ErrorRate {
                            name: name.trim().to_string(),
                            errors: errors.trim().to_string(),
                            total: total.trim().to_string(),
                            target,
                        });
                        installed += 1;
                    }
                }
            }
        }
    }
    engine().configure(SloConfig::from_env());
    installed
}

/// Registers (once per process) the `"slo"` component with the health
/// monitor: any objective whose fast-window burn exceeds 1 folds to
/// [`Degraded`](crate::health::HealthStatus::Degraded). Deliberately never
/// `Failing` — a burned error budget means the service is missing its
/// objective, not that it cannot serve.
pub fn register_slo_health() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        crate::health::monitor()
            .register("slo", |_ctx| {
                let statuses = engine().status();
                if statuses.is_empty() {
                    return (
                        crate::health::HealthStatus::Ok,
                        "no objectives configured".to_string(),
                    );
                }
                let breached: Vec<String> = statuses
                    .iter()
                    .filter(|s| s.breached())
                    .map(|s| format!("{} burn {:.2}", s.name, s.burn_fast))
                    .collect();
                if breached.is_empty() {
                    (
                        crate::health::HealthStatus::Ok,
                        format!("{} objectives within budget", statuses.len()),
                    )
                } else {
                    (
                        crate::health::HealthStatus::Degraded,
                        format!("error budget burning: {}", breached.join(", ")),
                    )
                }
            })
            .leak();
    });
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    fn lat_snapshot(values: &[u64]) -> Snapshot {
        let r = Registry::new();
        let h = r.histogram("slo_test_ns", &[], "t");
        for &v in values {
            h.observe(v);
        }
        r.snapshot()
    }

    fn lat_objective(threshold_ns: u64, target: f64) -> Objective {
        Objective::Latency {
            name: "lat".into(),
            metric: "slo_test_ns".into(),
            threshold_ns,
            target,
        }
    }

    #[test]
    fn burn_is_zero_when_within_objective() {
        let e = SloEngine::new();
        e.configure(SloConfig {
            fast_window_ms: 1000,
            slow_window_ms: 10_000,
        });
        e.add(lat_objective(1 << 20, 0.99)); // every sample is "good"
        e.sample_snapshot(0, &lat_snapshot(&[100]));
        e.sample_snapshot(500, &lat_snapshot(&[100, 200, 300]));
        let st = &e.status()[0];
        assert!(st.burn_fast < 0.2, "burn_fast={}", st.burn_fast);
        assert!(!st.breached());
        assert!(st.budget_remaining > 0.8);
    }

    #[test]
    fn breach_flips_fast_burn_above_one() {
        let e = SloEngine::new();
        e.configure(SloConfig {
            fast_window_ms: 1000,
            slow_window_ms: 10_000,
        });
        // Impossible threshold: nothing is good → bad_frac 1 → burn 1/0.01.
        e.add(lat_objective(0, 0.99));
        e.sample_snapshot(0, &lat_snapshot(&[100]));
        e.sample_snapshot(500, &lat_snapshot(&[100, 200, 300]));
        let st = &e.status()[0];
        assert!(st.burn_fast > 50.0, "burn_fast={}", st.burn_fast);
        assert!(st.breached());
        assert!(st.budget_remaining < 0.0);
        let json = e.render_json();
        assert!(json.contains("\"breached\":true"), "{json}");
    }

    #[test]
    fn no_traffic_means_no_burn() {
        let e = SloEngine::new();
        e.add(lat_objective(0, 0.99));
        let snap = lat_snapshot(&[100]);
        e.sample_snapshot(0, &snap);
        e.sample_snapshot(500, &snap); // identical cumulative counts
        let st = &e.status()[0];
        assert_eq!(st.burn_fast, 0.0);
        assert_eq!(st.burn_slow, 0.0);
    }

    #[test]
    fn error_rate_objective_counts_failures() {
        let e = SloEngine::new();
        e.configure(SloConfig {
            fast_window_ms: 1000,
            slow_window_ms: 10_000,
        });
        e.add(Objective::ErrorRate {
            name: "verify".into(),
            errors: "slo_err_total".into(),
            total: "slo_all_total".into(),
            target: 0.9,
        });
        let snap_at = |errs: u64, all: u64| {
            let r = Registry::new();
            r.counter("slo_err_total", &[], "t").add(errs);
            r.counter("slo_all_total", &[], "t").add(all);
            r.snapshot()
        };
        e.sample_snapshot(0, &snap_at(0, 10));
        // 5 of the next 10 events fail: bad_frac 0.5, budget 0.1 → burn 5.
        e.sample_snapshot(500, &snap_at(5, 20));
        let st = &e.status()[0];
        assert!((st.burn_fast - 5.0).abs() < 1e-9, "burn={}", st.burn_fast);
        assert!(st.breached());
    }

    #[test]
    fn windows_see_different_baselines() {
        let e = SloEngine::new();
        e.configure(SloConfig {
            fast_window_ms: 1_000,
            slow_window_ms: 100_000,
        });
        e.add(lat_objective(1000, 0.5));
        // Old sample: all good. Then a long quiet gap. Then a bad burst
        // inside the fast window only.
        e.sample_snapshot(0, &lat_snapshot(&[100]));
        e.sample_snapshot(99_500, &lat_snapshot(&[100, 100, 100]));
        e.sample_snapshot(
            99_900,
            &lat_snapshot(&[100, 100, 100, 1 << 30, 1 << 30, 1 << 30]),
        );
        let st = &e.status()[0];
        // Fast window: 3 events, all bad → burn 1/0.5 = 2.
        assert!((st.burn_fast - 2.0).abs() < 1e-9, "fast={}", st.burn_fast);
        // Slow window: 5 events, 2 good 3 bad → 0.6/0.5 = 1.2.
        assert!((st.burn_slow - 1.2).abs() < 1e-9, "slow={}", st.burn_slow);
    }

    #[test]
    fn adding_objectives_resets_samples_and_dedups_by_name() {
        let e = SloEngine::new();
        e.add(lat_objective(10, 0.9));
        e.sample_snapshot(0, &lat_snapshot(&[1]));
        assert_eq!(e.state.lock().unwrap().samples.len(), 1);
        e.add(lat_objective(20, 0.9)); // same name "lat" → replace + reset
        assert_eq!(e.objectives(), vec!["lat".to_string()]);
        assert_eq!(e.state.lock().unwrap().samples.len(), 0);
    }

    #[test]
    fn status_without_samples_is_idle() {
        let e = SloEngine::new();
        e.add(lat_objective(10, 0.9));
        let st = &e.status()[0];
        assert_eq!((st.burn_fast, st.burn_slow), (0.0, 0.0));
        assert_eq!(st.budget_remaining, 1.0);
        assert!(e.render_json().contains("\"samples\":0"));
    }
}
