//! Flight recorder: a bounded ring of metric snapshots plus crash dumps.
//!
//! When something goes wrong in a live SecNDP deployment — a verify-failure
//! burst signalling tampering, a stalled transport rank, a crash — the
//! counters alone say *that* it happened, not *how it unfolded*. The flight
//! recorder keeps the last N registry snapshots (sampled by the
//! [`health`](crate::health) background thread) in a ring, and on demand
//! serializes them **together with the span journal and the security audit
//! log** into one self-contained JSON artifact:
//!
//! ```json
//! {"flight_recorder":{
//!    "reason":"verify-failure-burst: …",
//!    "t_ms":12345,
//!    "snapshots":[{"t_ms":11900,"metrics":{"counters":[…],…}}, …],
//!    "spans":{"displayTimeUnit":"ns","traceEvents":[…]},
//!    "audit":{"audit_events":[…]},
//!    "faults":{"fault_events":[…]}
//! }}
//! ```
//!
//! Dumps are written by the anomaly detectors of
//! [`HealthMonitor::sample`](crate::health::HealthMonitor::sample), by
//! [`HealthMonitor::trigger_dump`](crate::health::HealthMonitor::trigger_dump),
//! and by the panic hook installed with [`install_panic_hook`], which ships
//! the same artifact as `secndp-crash-<pid>.json` before unwinding.

use crate::registry::Snapshot;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// One timestamped registry snapshot inside the recorder ring.
#[derive(Debug, Clone)]
pub struct WindowSample {
    /// Milliseconds since the process epoch
    /// ([`health::uptime_ms`](crate::health::uptime_ms)) when sampled.
    pub t_ms: u64,
    /// The full registry snapshot at that instant.
    pub snapshot: Snapshot,
}

/// A bounded ring of [`WindowSample`]s, oldest evicted first.
///
/// The recorder itself is not synchronized; the process-wide instance
/// lives inside the [`HealthMonitor`](crate::health::HealthMonitor)'s
/// mutex.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<WindowSample>,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` snapshots (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
        }
    }

    /// Changes the retention bound, evicting oldest samples if shrinking.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.ring.len() > self.capacity {
            self.ring.pop_front();
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: WindowSample) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(sample);
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The newest `n` samples, oldest first, as a contiguous slice.
    pub fn window(&mut self, n: usize) -> &[WindowSample] {
        let s = self.ring.make_contiguous();
        &s[s.len().saturating_sub(n)..]
    }

    /// A copy of every retained sample, oldest first.
    pub fn samples(&self) -> Vec<WindowSample> {
        self.ring.iter().cloned().collect()
    }
}

/// Renders a flight-recorder artifact: `reason`, the given metric
/// snapshots, the current span journal (Chrome `trace_event` form, trace
/// ids in `args.trace`) and the current audit log.
pub fn render_flight_json(reason: &str, samples: &[WindowSample]) -> String {
    let snaps: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"t_ms\":{},\"metrics\":{}}}",
                s.t_ms,
                crate::export::render_json(&s.snapshot)
            )
        })
        .collect();
    let spans = crate::trace::journal().render_chrome_trace();
    let audit = crate::audit::audit_log().render_json();
    let faults = crate::faultlog::fault_log().render_json();
    format!(
        "{{\"flight_recorder\":{{\"reason\":\"{}\",\"t_ms\":{},\"snapshots\":[{}],\
         \"spans\":{},\"audit\":{},\"faults\":{}}}}}\n",
        crate::export::json_escape(reason),
        crate::health::uptime_ms(),
        snaps.join(","),
        spans.trim_end(),
        audit.trim_end(),
        faults.trim_end(),
    )
}

/// Writes [`render_flight_json`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_flight_dump(
    path: &Path,
    reason: &str,
    samples: &[WindowSample],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_flight_json(reason, samples))
}

/// The directory flight-recorder and crash dumps default to:
/// `$SECNDP_FLIGHT_DIR`, or the current directory when unset.
pub fn default_flight_dir() -> PathBuf {
    std::env::var_os("SECNDP_FLIGHT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Installs a process-wide panic hook that dumps the flight recorder (plus
/// span journal and audit log) to `secndp-crash-<pid>.json` in
/// [`default_flight_dir`] before unwinding, then chains to the previously
/// installed hook. Idempotent: only the first call installs anything.
pub fn install_panic_hook() {
    install_panic_hook_in(default_flight_dir());
}

/// [`install_panic_hook`] with an explicit dump directory (the first call
/// wins; later calls are no-ops).
pub fn install_panic_hook_in(dir: impl Into<PathBuf>) {
    static ONCE: Once = Once::new();
    let dir: PathBuf = dir.into();
    ONCE.call_once(move || {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Re-entrancy guard: a panic inside the dump itself must not
            // recurse into another dump attempt.
            static IN_HOOK: AtomicBool = AtomicBool::new(false);
            if !IN_HOOK.swap(true, Ordering::SeqCst) {
                let reason = format!("panic: {}", panic_message(info));
                // `try_samples` never blocks: if the monitor lock is held
                // (e.g. the panic originated under it), the dump still
                // ships the span journal and audit log.
                let samples = crate::health::monitor().try_samples();
                let path = dir.join(format!("secndp-crash-{}.json", std::process::id()));
                let _ = write_flight_dump(&path, &reason, &samples);
                IN_HOOK.store(false, Ordering::SeqCst);
            }
            prev(info);
        }));
    });
}

/// Best-effort panic payload + location rendering for the crash dump.
fn panic_message(info: &std::panic::PanicHookInfo<'_>) -> String {
    let payload = if let Some(s) = info.payload().downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = info.payload().downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    match info.location() {
        Some(loc) => format!("{payload} at {}:{}", loc.file(), loc.line()),
        None => payload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ms: u64) -> WindowSample {
        WindowSample {
            t_ms,
            snapshot: crate::global().snapshot(),
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let mut r = FlightRecorder::with_capacity(3);
        assert!(r.is_empty());
        for t in 0..5 {
            r.push(sample(t));
        }
        assert_eq!(r.len(), 3);
        let ts: Vec<u64> = r.samples().iter().map(|s| s.t_ms).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        assert_eq!(r.window(2).len(), 2);
        assert_eq!(r.window(2)[0].t_ms, 3);
        assert_eq!(r.window(99).len(), 3);
        r.set_capacity(1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.samples()[0].t_ms, 4);
    }

    #[test]
    fn flight_json_embeds_all_four_sources() {
        let json = render_flight_json("unit \"test\"", &[sample(7)]);
        assert!(json.starts_with("{\"flight_recorder\":{"));
        assert!(json.contains("\"reason\":\"unit \\\"test\\\"\""));
        assert!(json.contains("\"t_ms\":7"));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"audit_events\""));
        assert!(json.contains("\"fault_events\""));
        // Balanced braces — the embedded documents splice in cleanly.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in {json}");
    }
}
