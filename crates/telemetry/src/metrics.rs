//! The instruments: counters, gauges, histograms, and the RAII timer.
//!
//! All instruments are lock-free (`Relaxed` atomics — each metric is an
//! independent statistic, so no cross-metric ordering is needed) and
//! compile to zero-sized no-ops without the `enabled` feature.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Number of histogram buckets: one for zero plus one per power of two of
/// the `u64` range (`[2^(i-1), 2^i − 1]` for bucket `i ≥ 1`).
pub const BUCKETS: usize = 65;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(n, Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current value (0 when telemetry is compiled out).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    pub(crate) fn reset(&self) {
        #[cfg(feature = "enabled")]
        self.value.store(0, Relaxed);
    }
}

/// A last-value instrument for integer quantities that go up and down
/// (queue depths, live regions).
#[derive(Debug, Default)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(feature = "enabled")]
        self.value.store(v, Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(d, Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = d;
    }

    /// Current value (0 when telemetry is compiled out).
    pub fn get(&self) -> i64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    pub(crate) fn reset(&self) {
        #[cfg(feature = "enabled")]
        self.value.store(0, Relaxed);
    }
}

/// A last-value instrument for fractional quantities (hit rates, ratios);
/// stores the `f64` bit pattern in an atomic word.
#[derive(Debug, Default)]
pub struct FloatGauge {
    #[cfg(feature = "enabled")]
    bits: AtomicU64,
}

impl FloatGauge {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        #[cfg(feature = "enabled")]
        self.bits.store(v.to_bits(), Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Current value (0.0 when telemetry is compiled out).
    pub fn get(&self) -> f64 {
        #[cfg(feature = "enabled")]
        {
            f64::from_bits(self.bits.load(Relaxed))
        }
        #[cfg(not(feature = "enabled"))]
        0.0
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    pub(crate) fn reset(&self) {
        #[cfg(feature = "enabled")]
        self.bits.store(0, Relaxed);
    }
}

/// A log2-bucketed distribution of `u64` samples (typically nanoseconds).
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i − 1]`. 65 buckets cover the full `u64` range, so
/// recording never saturates or clips, and a bucket index is one
/// `leading_zeros` instruction — cheap enough for per-query hot paths.
/// Quantiles are estimated from the bucket counts with linear
/// interpolation inside the target bucket (see
/// [`HistogramSnapshot::quantile`]).
#[derive(Debug)]
pub struct Histogram {
    #[cfg(feature = "enabled")]
    buckets: [AtomicU64; BUCKETS],
    #[cfg(feature = "enabled")]
    count: AtomicU64,
    #[cfg(feature = "enabled")]
    sum: AtomicU64,
    /// Per-bucket `(value, trace_id)` exemplar latches — see
    /// [`HistogramExemplar`]. Fixed size: exemplar memory is bounded at
    /// `2 × 65` atomic words per histogram regardless of sample volume.
    #[cfg(feature = "enabled")]
    exemplars: [ExemplarSlot; BUCKETS],
}

/// One exemplar latch: the largest value seen in the bucket while a trace
/// was ambient, plus that trace's id. The two words are updated without a
/// lock (`fetch_max` on the value, plain store of the trace), so a reader
/// racing two writers can observe a `(value, trace)` pair from different
/// samples — both still point at real tail samples in the same bucket,
/// which is all an exemplar promises.
#[cfg(feature = "enabled")]
#[derive(Debug, Default)]
struct ExemplarSlot {
    value: AtomicU64,
    /// 0 = no exemplar latched (works for bucket 0 too: presence is keyed
    /// on the trace id, not the value).
    trace: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: 0 for 0, else `64 − leading_zeros(v)`.
#[cfg(feature = "enabled")]
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`0`, `2^i − 1`, …, `u64::MAX`).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            #[cfg(feature = "enabled")]
            count: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            sum: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            exemplars: std::array::from_fn(|_| ExemplarSlot::default()),
        }
    }

    /// Records one sample. When the calling thread has an ambient trace
    /// ([`crate::trace::current`]), the sample's bucket latches a
    /// `(value, trace_id)` exemplar if the value is at least the bucket's
    /// current exemplar — so every occupied bucket links to a replayable
    /// trace for (one of) its largest samples.
    #[inline]
    pub fn observe(&self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            let i = bucket_index(v);
            self.buckets[i].fetch_add(1, Relaxed);
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
            let trace = crate::trace::current().trace.0;
            if trace != 0 {
                let slot = &self.exemplars[i];
                let prev = slot.value.fetch_max(v, Relaxed);
                if v >= prev {
                    slot.trace.store(trace, Relaxed);
                }
            }
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Starts an RAII timer that records the elapsed wall-clock nanoseconds
    /// into this histogram when dropped. When telemetry is compiled out the
    /// timer is a ZST and the clock is never read.
    #[inline]
    pub fn start_timer(&self) -> Timer<'_> {
        Timer {
            #[cfg(feature = "enabled")]
            hist: self,
            #[cfg(feature = "enabled")]
            start: Instant::now(),
            #[cfg(not(feature = "enabled"))]
            _hist: std::marker::PhantomData,
        }
    }

    /// Number of recorded samples (0 when telemetry is compiled out).
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.count.load(Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// A point-in-time copy of the bucket counts. Buckets are read one by
    /// one without a global lock, so a snapshot taken during concurrent
    /// recording may be torn by a handful of in-flight samples — fine for
    /// reporting, which is the only consumer.
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(feature = "enabled")]
        {
            HistogramSnapshot {
                count: self.count.load(Relaxed),
                sum: self.sum.load(Relaxed),
                buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
                exemplars: self
                    .exemplars
                    .iter()
                    .map(|s| {
                        let trace_id = s.trace.load(Relaxed);
                        (trace_id != 0).then(|| HistogramExemplar {
                            value: s.value.load(Relaxed),
                            trace_id,
                        })
                    })
                    .collect(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS],
            exemplars: vec![None; BUCKETS],
        }
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    pub(crate) fn reset(&self) {
        #[cfg(feature = "enabled")]
        {
            for b in &self.buckets {
                b.store(0, Relaxed);
            }
            self.count.store(0, Relaxed);
            self.sum.store(0, Relaxed);
            for s in &self.exemplars {
                s.value.store(0, Relaxed);
                s.trace.store(0, Relaxed);
            }
        }
    }
}

/// RAII latency timer returned by [`Histogram::start_timer`]; records on
/// drop.
#[must_use = "a timer records when dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Timer<'a> {
    #[cfg(feature = "enabled")]
    hist: &'a Histogram,
    #[cfg(feature = "enabled")]
    start: Instant,
    #[cfg(not(feature = "enabled"))]
    _hist: std::marker::PhantomData<&'a Histogram>,
}

impl Timer<'_> {
    /// Stops the timer now (equivalent to dropping it).
    pub fn stop(self) {}
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        self.hist
            .observe(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// A `(value, trace_id)` exemplar latched by a histogram bucket — the
/// OpenMetrics hook linking a tail bucket to the trace that filled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramExemplar {
    /// The exemplar sample value.
    pub value: u64,
    /// The trace id ambient when the sample was recorded (never 0).
    pub trace_id: u64,
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Per-bucket (non-cumulative) counts; `buckets[i]` covers
    /// `[2^(i-1), 2^i − 1]` (bucket 0 is exact zeros).
    pub buckets: Vec<u64>,
    /// Per-bucket exemplars (`None` where no traced sample landed).
    pub exemplars: Vec<Option<HistogramExemplar>>,
}

impl HistogramSnapshot {
    /// Inclusive upper bound of bucket `i`.
    pub fn upper_bound(i: usize) -> u64 {
        bucket_upper_bound(i)
    }

    /// Mean sample value, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`).
    ///
    /// Interpolation rule: the target rank is the *nearest rank*
    /// `ceil(count · q)`, clamped to `[1, count]` (so `q = 0` targets the
    /// first sample and `q = 1` the last). The estimate is a linear
    /// interpolation between the lower and upper bound of the bucket
    /// containing that rank, at fraction `(rank − seen) / bucket_count`
    /// through the bucket. With power-of-two buckets the result is exact
    /// to within one power of two; an empty histogram returns 0.0.
    ///
    /// Consequences worth knowing:
    /// - a single observation yields the same estimate for every `q`
    ///   (always the bucket's upper bound, since `frac = 1`), which may
    ///   be *above* the observed value but never above its bucket bound;
    /// - `q = 0` does **not** return the bucket lower bound — it returns
    ///   the rank-1 interpolation point, strictly inside the first
    ///   non-empty bucket.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let lb = bucket_lower_bound(i) as f64;
                let ub = bucket_upper_bound(i) as f64;
                let frac = (target - seen) as f64 / n as f64;
                return lb + (ub - lb) * frac;
            }
            seen += n;
        }
        bucket_upper_bound(BUCKETS - 1) as f64
    }

    /// The pre-interpolation quantile estimate: the inclusive *upper
    /// bound* of the bucket containing the nearest-rank sample
    /// (`ceil(count · q)` clamped to `[1, count]`). Always ≥
    /// [`quantile`](Self::quantile) for the same `q`, and biased high by
    /// up to 2× on log2 buckets — kept for consumers that want a
    /// conservative (never-underestimating) latency bound.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile_upper_bound(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= target {
                return bucket_upper_bound(i) as f64;
            }
        }
        bucket_upper_bound(BUCKETS - 1) as f64
    }

    /// Estimated number of samples with value ≤ `threshold`, assuming
    /// samples are uniformly distributed within their bucket: buckets
    /// wholly below the threshold count fully, the bucket containing it
    /// counts the fraction of its range at or below it. This is the SLO
    /// engine's "good events" estimator for latency objectives.
    pub fn count_at_or_below(&self, threshold: u64) -> f64 {
        let mut total = 0.0;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lb = bucket_lower_bound(i);
            let ub = bucket_upper_bound(i);
            if ub <= threshold {
                total += n as f64;
            } else if lb <= threshold {
                let width = (ub - lb) as f64 + 1.0;
                let covered = (threshold - lb) as f64 + 1.0;
                total += n as f64 * covered / width;
            }
        }
        total
    }
}
