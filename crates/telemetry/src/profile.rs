//! Continuous profiling and per-query cost attribution.
//!
//! The span journal ([`crate::trace`]) answers "what happened on *this*
//! query"; the metric histograms answer "how slow is this stage on
//! average". Neither answers the operator's question under sustained
//! load: *where does the process spend its time right now, and what did
//! each query cost?* This module closes that gap with two always-on,
//! recording-side-wait-free facilities:
//!
//! - A [`Profiler`] that **folds completed spans** from a
//!   [`SpanJournal`](crate::trace::SpanJournal) into a live call-tree
//!   profile. Each node is a semicolon-joined stack path (e.g.
//!   `weighted_sum_batch;pad_gen;pad_cache`) carrying *self time* (time in
//!   the span minus time in its children), *total time* and a call count.
//!   The fold is incremental — a persistent cursor over the journal's
//!   sequence numbers means each event is consumed once — and runs on the
//!   scrape thread, so recording stays exactly as wait-free as the journal
//!   itself. Rendered as flamegraph-ready collapsed-stack text
//!   ([`Profiler::render_collapsed`]) and JSON ([`Profiler::render_json`])
//!   behind the `/profilez` endpoint.
//! - A [`QueryCost`] ledger: protocol entry points open a
//!   [`QueryCostGuard`]; the layers underneath attribute stage
//!   nanoseconds, AES blocks (generated vs cache-served), wire bytes,
//!   device-busy time and transport retries to the guard through the
//!   ambient thread-local collector ([`add_stage_ns`] and friends). On
//!   drop the finished record — stamped with its trace id — lands in the
//!   global [`CostLedger`], which keeps a recent ring plus a
//!   top-K-by-latency digest surfaced at `/profilez?top=K`.
//!
//! # Self-time algorithm
//!
//! On a span `End` the span's duration is added to both its own node's
//! `self` and `total`, and *subtracted* from the `self` of its (still
//! open) parent's node. Because every child subtracts exactly what it
//! adds, the self times of a subtree always sum to the root's total time
//! — the invariant the `/profilez` acceptance check relies on. Self time
//! is accumulated as `i64` (a parent's self goes transiently negative
//! while its children fold before it) and clamped at render time.
//!
//! # Bounds
//!
//! The open-span map is capped at [`MAX_OPEN_SPANS`] (oldest entry
//! evicted; its eventual `End` counts as lost). Spans whose `Begin` was
//! overwritten by the journal ring before a fold are counted in
//! `lost_spans` rather than silently dropped. The ledger keeps at most
//! [`RECENT_CAPACITY`] recent records and [`TOP_K_CAPACITY`] digest
//! entries, so memory is bounded regardless of query volume.
//!
//! With the `enabled` feature off everything here is a no-op: guards are
//! zero-sized, folds consume nothing, and the renderers produce valid
//! empty documents.

use crate::trace::SpanJournal;

#[cfg(feature = "enabled")]
use crate::trace::SpanEventKind;
#[cfg(feature = "enabled")]
use std::collections::{BTreeMap, HashMap, VecDeque};
#[cfg(feature = "enabled")]
use std::sync::Mutex;
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Maximum spans the profiler keeps open (begun, not yet ended) before
/// evicting the oldest; bounds fold-state memory under journal loss.
pub const MAX_OPEN_SPANS: usize = 8 * 1024;

/// Recent [`QueryCost`] records retained by the ledger.
pub const RECENT_CAPACITY: usize = 256;

/// Top-by-latency [`QueryCost`] digests retained by the ledger.
pub const TOP_K_CAPACITY: usize = 64;

/// One node of the folded call-tree profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Semicolon-joined stack path, root first (collapsed-stack syntax).
    pub stack: String,
    /// Nanoseconds spent in this node excluding folded children. May be
    /// negative transiently (children folded before their parent ended);
    /// clamp with `.max(0)` for display.
    pub self_ns: i64,
    /// Nanoseconds spent in this node including children.
    pub total_ns: u64,
    /// Completed spans folded into this node.
    pub count: u64,
}

/// A point-in-time copy of the folded profile.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// All nodes, sorted by stack path.
    pub nodes: Vec<ProfileNode>,
    /// Journal events consumed by folds so far.
    pub folded_events: u64,
    /// Spans lost to ring overwrites or open-map eviction.
    pub lost_spans: u64,
}

#[cfg(feature = "enabled")]
struct OpenSpan {
    path: String,
    parent: u64,
    begin_ns: u64,
}

#[cfg(feature = "enabled")]
#[derive(Default)]
struct NodeAcc {
    self_ns: i64,
    total_ns: u64,
    count: u64,
}

#[cfg(feature = "enabled")]
#[derive(Default)]
struct FoldState {
    /// Next journal sequence number to consume.
    cursor: u64,
    /// Begun-but-not-ended spans, keyed by span id.
    open: HashMap<u64, OpenSpan>,
    /// Accumulated profile, keyed by stack path.
    nodes: BTreeMap<String, NodeAcc>,
    folded_events: u64,
    lost_spans: u64,
}

/// The incremental span-folding profiler. The process-wide instance is
/// [`profiler()`]; tests can build private ones over private journals.
pub struct Profiler {
    #[cfg(feature = "enabled")]
    state: Mutex<FoldState>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Profiler")
            .field("nodes", &snap.nodes.len())
            .field("folded_events", &snap.folded_events)
            .finish()
    }
}

impl Profiler {
    /// An empty profiler (cursor at the journal's next unseen event once
    /// first folded).
    pub fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            state: Mutex::new(FoldState::default()),
        }
    }

    /// Folds every journal event recorded since the previous fold into the
    /// profile. Returns the number of events consumed. Folding is
    /// serialized on the profiler's own lock; the journal's recording path
    /// is never touched.
    pub fn fold(&self, journal: &SpanJournal) -> u64 {
        #[cfg(feature = "enabled")]
        {
            let events = journal.snapshot();
            let mut s = self.state.lock().unwrap();
            // Events older than the cursor were folded already; events
            // whose seq jumped past the cursor were lost to the ring
            // (2 events per span).
            if let Some(first) = events.iter().find(|e| e.seq >= s.cursor) {
                if s.cursor > 0 && first.seq > s.cursor {
                    s.lost_spans += (first.seq - s.cursor).div_ceil(2);
                }
            }
            let mut consumed = 0u64;
            let start_cursor = s.cursor;
            for ev in events.iter().filter(|e| e.seq >= start_cursor) {
                consumed += 1;
                match ev.kind {
                    SpanEventKind::Begin => {
                        let path = match s.open.get(&ev.parent.0) {
                            Some(p) => format!("{};{}", p.path, ev.name),
                            None => ev.name.to_string(),
                        };
                        s.open.insert(
                            ev.span.0,
                            OpenSpan {
                                path,
                                parent: ev.parent.0,
                                begin_ns: ev.t_ns,
                            },
                        );
                        if s.open.len() > MAX_OPEN_SPANS {
                            // Evict the stalest open span; its End will
                            // count as lost when (if) it arrives.
                            if let Some(oldest) = s
                                .open
                                .iter()
                                .min_by_key(|(_, o)| o.begin_ns)
                                .map(|(&id, _)| id)
                            {
                                s.open.remove(&oldest);
                                s.lost_spans += 1;
                            }
                        }
                    }
                    SpanEventKind::End => match s.open.remove(&ev.span.0) {
                        Some(o) => {
                            let dur = ev.t_ns.saturating_sub(o.begin_ns);
                            let parent_path = s.open.get(&o.parent).map(|p| p.path.clone());
                            if let Some(ppath) = parent_path {
                                s.nodes.entry(ppath).or_default().self_ns -= dur as i64;
                            }
                            let n = s.nodes.entry(o.path).or_default();
                            n.self_ns += dur as i64;
                            n.total_ns += dur;
                            n.count += 1;
                        }
                        None => s.lost_spans += 1,
                    },
                }
                s.cursor = ev.seq + 1;
            }
            s.folded_events += consumed;
            drop(s);
            crate::counter!(
                "secndp_profile_folds_total",
                "Incremental profile folds over the span journal."
            )
            .inc();
            crate::counter!(
                "secndp_profile_events_folded_total",
                "Span-journal events consumed by the continuous profiler."
            )
            .add(consumed);
            consumed
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = journal;
            0
        }
    }

    /// A point-in-time copy of the folded profile.
    pub fn snapshot(&self) -> ProfileSnapshot {
        #[cfg(feature = "enabled")]
        {
            let s = self.state.lock().unwrap();
            ProfileSnapshot {
                nodes: s
                    .nodes
                    .iter()
                    .map(|(stack, n)| ProfileNode {
                        stack: stack.clone(),
                        self_ns: n.self_ns,
                        total_ns: n.total_ns,
                        count: n.count,
                    })
                    .collect(),
                folded_events: s.folded_events,
                lost_spans: s.lost_spans,
            }
        }
        #[cfg(not(feature = "enabled"))]
        ProfileSnapshot::default()
    }

    /// Clears the accumulated profile and loss counters. The cursor is
    /// kept, so already-folded events are not re-folded.
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        {
            let mut s = self.state.lock().unwrap();
            s.open.clear();
            s.nodes.clear();
            s.folded_events = 0;
            s.lost_spans = 0;
        }
    }

    /// Renders the profile as collapsed-stack text — one
    /// `stack;path self_ns` line per node, directly consumable by
    /// `flamegraph.pl` (self time plays the "sample count" role).
    pub fn render_collapsed(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for n in &snap.nodes {
            out.push_str(&format!("{} {}\n", n.stack, n.self_ns.max(0)));
        }
        out
    }

    /// Renders the profile as JSON:
    /// `{"folded_events":…,"lost_spans":…,"nodes":[{"stack":…,"self_ns":…,
    /// "total_ns":…,"count":…}]}`.
    pub fn render_json(&self) -> String {
        let snap = self.snapshot();
        let nodes: Vec<String> = snap
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"stack\":\"{}\",\"self_ns\":{},\"total_ns\":{},\"count\":{}}}",
                    crate::export::json_escape(&n.stack),
                    n.self_ns.max(0),
                    n.total_ns,
                    n.count
                )
            })
            .collect();
        format!(
            "{{\"folded_events\":{},\"lost_spans\":{},\"nodes\":[{}]}}\n",
            snap.folded_events,
            snap.lost_spans,
            nodes.join(",")
        )
    }
}

/// The process-wide profiler behind `/profilez` (folds the global
/// [`journal`](crate::trace::journal)).
pub fn profiler() -> &'static Profiler {
    #[cfg(feature = "enabled")]
    {
        static PROFILER: std::sync::OnceLock<Profiler> = std::sync::OnceLock::new();
        PROFILER.get_or_init(Profiler::new)
    }
    #[cfg(not(feature = "enabled"))]
    {
        static PROFILER: Profiler = Profiler {};
        &PROFILER
    }
}

// ─── Per-query cost attribution ─────────────────────────────────────────

/// Everything one protocol-level query (or batch call) cost, assembled by
/// the layers it passed through.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryCost {
    /// Trace id of the query's root span (0 when untraced).
    pub trace_id: u64,
    /// The protocol entry point (`"weighted_sum"`, `"weighted_sum_batch"`,
    /// …).
    pub op: &'static str,
    /// Wall-clock nanoseconds from guard open to close.
    pub total_ns: u64,
    /// Per-stage nanoseconds, accumulation order (`pad_gen`, `encrypt`,
    /// `ndp_compute`, `verify`, `decrypt`, …).
    pub stage_ns: Vec<(&'static str, u64)>,
    /// AES pad blocks freshly generated for this query.
    pub aes_blocks_generated: u64,
    /// AES pad blocks served from the cross-query pad cache.
    pub aes_blocks_cached: u64,
    /// Request bytes shipped over the device wire.
    pub wire_tx_bytes: u64,
    /// Reply bytes received over the device wire.
    pub wire_rx_bytes: u64,
    /// Nanoseconds spent waiting on the untrusted device (the
    /// `ndp_compute` arrows, including the wire).
    pub device_busy_ns: u64,
    /// Transport retries this query triggered.
    pub retries: u64,
}

impl QueryCost {
    fn render_json(&self) -> String {
        let stages: Vec<String> = self
            .stage_ns
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", crate::export::json_escape(k)))
            .collect();
        format!(
            "{{\"trace_id\":{},\"op\":\"{}\",\"total_ns\":{},\"stages\":{{{}}},\
             \"aes_blocks_generated\":{},\"aes_blocks_cached\":{},\
             \"wire_tx_bytes\":{},\"wire_rx_bytes\":{},\
             \"device_busy_ns\":{},\"retries\":{}}}",
            self.trace_id,
            crate::export::json_escape(self.op),
            self.total_ns,
            stages.join(","),
            self.aes_blocks_generated,
            self.aes_blocks_cached,
            self.wire_tx_bytes,
            self.wire_rx_bytes,
            self.device_busy_ns,
            self.retries,
        )
    }
}

#[cfg(feature = "enabled")]
struct ActiveCost {
    cost: QueryCost,
    start: Instant,
    prev: Option<Box<ActiveCost>>,
}

#[cfg(feature = "enabled")]
thread_local! {
    static ACTIVE: std::cell::RefCell<Option<Box<ActiveCost>>> =
        const { std::cell::RefCell::new(None) };
}

/// RAII guard opened by a protocol entry point; while alive, the
/// attribution functions below feed this thread's cost record. On drop the
/// finished [`QueryCost`] is pushed into the global [`ledger`]. Guards
/// nest (an inner guard shadows the outer until dropped). Zero-sized and
/// clock-free with telemetry compiled out.
#[must_use = "a query cost records when dropped; binding it to `_` drops it immediately"]
#[derive(Debug, Default)]
pub struct QueryCostGuard {
    #[cfg(feature = "enabled")]
    armed: bool,
}

/// Opens a per-query cost collector for the calling thread. The trace id
/// is captured from the ambient [`trace::current`](crate::trace::current)
/// context (refreshed at drop if a trace starts later).
pub fn begin_query(op: &'static str) -> QueryCostGuard {
    #[cfg(feature = "enabled")]
    {
        let trace_id = crate::trace::current().trace.0;
        ACTIVE.with(|a| {
            let prev = a.borrow_mut().take();
            *a.borrow_mut() = Some(Box::new(ActiveCost {
                cost: QueryCost {
                    trace_id,
                    op,
                    ..QueryCost::default()
                },
                start: Instant::now(),
                prev,
            }));
        });
        QueryCostGuard { armed: true }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = op;
        QueryCostGuard::default()
    }
}

impl Drop for QueryCostGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            if !self.armed {
                return;
            }
            let finished = ACTIVE.with(|a| {
                let mut slot = a.borrow_mut();
                match slot.take() {
                    Some(mut active) => {
                        *slot = active.prev.take();
                        Some(active)
                    }
                    None => None,
                }
            });
            if let Some(mut active) = finished {
                active.cost.total_ns =
                    u64::try_from(active.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if active.cost.trace_id == 0 {
                    active.cost.trace_id = crate::trace::current().trace.0;
                }
                ledger().record(active.cost);
            }
        }
    }
}

#[cfg(feature = "enabled")]
fn with_active(f: impl FnOnce(&mut QueryCost)) {
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            f(&mut active.cost);
        }
    });
}

/// Attributes `ns` nanoseconds of pipeline stage `stage` to the active
/// query cost (no-op without one).
pub fn add_stage_ns(stage: &'static str, ns: u64) {
    #[cfg(feature = "enabled")]
    with_active(|c| match c.stage_ns.iter_mut().find(|(s, _)| *s == stage) {
        Some((_, v)) => *v += ns,
        None => c.stage_ns.push((stage, ns)),
    });
    #[cfg(not(feature = "enabled"))]
    let _ = (stage, ns);
}

/// Attributes AES pad blocks (freshly `generated` vs `cached`-served) to
/// the active query cost.
pub fn add_aes_blocks(generated: u64, cached: u64) {
    #[cfg(feature = "enabled")]
    with_active(|c| {
        c.aes_blocks_generated += generated;
        c.aes_blocks_cached += cached;
    });
    #[cfg(not(feature = "enabled"))]
    let _ = (generated, cached);
}

/// Attributes wire traffic (`tx` request bytes, `rx` reply bytes) to the
/// active query cost.
pub fn add_wire_bytes(tx: u64, rx: u64) {
    #[cfg(feature = "enabled")]
    with_active(|c| {
        c.wire_tx_bytes += tx;
        c.wire_rx_bytes += rx;
    });
    #[cfg(not(feature = "enabled"))]
    let _ = (tx, rx);
}

/// Attributes time spent waiting on the untrusted device to the active
/// query cost.
pub fn add_device_busy_ns(ns: u64) {
    #[cfg(feature = "enabled")]
    with_active(|c| c.device_busy_ns += ns);
    #[cfg(not(feature = "enabled"))]
    let _ = ns;
}

/// Attributes `n` transport retries to the active query cost.
pub fn add_retries(n: u64) {
    #[cfg(feature = "enabled")]
    with_active(|c| c.retries += n);
    #[cfg(not(feature = "enabled"))]
    let _ = n;
}

#[cfg(feature = "enabled")]
#[derive(Default)]
struct LedgerState {
    recent: VecDeque<QueryCost>,
    /// Sorted descending by `total_ns`, truncated at [`TOP_K_CAPACITY`].
    top: Vec<QueryCost>,
    recorded: u64,
}

/// The global store of finished [`QueryCost`] records: a bounded recent
/// ring plus a top-K-by-latency digest.
pub struct CostLedger {
    #[cfg(feature = "enabled")]
    state: Mutex<LedgerState>,
}

impl std::fmt::Debug for CostLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostLedger")
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl CostLedger {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            state: Mutex::new(LedgerState::default()),
        }
    }

    /// Records one finished query cost.
    pub fn record(&self, cost: QueryCost) {
        #[cfg(feature = "enabled")]
        {
            crate::counter!(
                "secndp_profile_query_costs_total",
                "Per-query cost records collected by the profiler ledger."
            )
            .inc();
            let mut s = self.state.lock().unwrap();
            s.recorded += 1;
            if s.recent.len() == RECENT_CAPACITY {
                s.recent.pop_front();
            }
            s.recent.push_back(cost.clone());
            let pos = s.top.partition_point(|c| c.total_ns >= cost.total_ns);
            if pos < TOP_K_CAPACITY {
                s.top.insert(pos, cost);
                s.top.truncate(TOP_K_CAPACITY);
            }
        }
        #[cfg(not(feature = "enabled"))]
        let _ = cost;
    }

    /// Total records ever recorded (0 when telemetry is compiled out).
    pub fn recorded(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.state.lock().unwrap().recorded
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// The `k` highest-latency records, descending.
    pub fn top(&self, k: usize) -> Vec<QueryCost> {
        #[cfg(feature = "enabled")]
        {
            let s = self.state.lock().unwrap();
            s.top.iter().take(k).cloned().collect()
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = k;
            Vec::new()
        }
    }

    /// The newest `n` records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<QueryCost> {
        #[cfg(feature = "enabled")]
        {
            let s = self.state.lock().unwrap();
            let skip = s.recent.len().saturating_sub(n);
            s.recent.iter().skip(skip).cloned().collect()
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = n;
            Vec::new()
        }
    }

    /// Clears the ledger (tests and bench sweep boundaries).
    pub fn clear(&self) {
        #[cfg(feature = "enabled")]
        {
            let mut s = self.state.lock().unwrap();
            s.recent.clear();
            s.top.clear();
            s.recorded = 0;
        }
    }

    /// Renders the top-`k` digest as JSON:
    /// `{"recorded":…,"top":[…]}` (each entry a full [`QueryCost`]).
    pub fn render_top_json(&self, k: usize) -> String {
        let entries: Vec<String> = self.top(k).iter().map(QueryCost::render_json).collect();
        format!(
            "{{\"recorded\":{},\"top\":[{}]}}\n",
            self.recorded(),
            entries.join(",")
        )
    }
}

/// The process-wide query-cost ledger behind `/profilez?top=K`.
pub fn ledger() -> &'static CostLedger {
    #[cfg(feature = "enabled")]
    {
        static LEDGER: std::sync::OnceLock<CostLedger> = std::sync::OnceLock::new();
        LEDGER.get_or_init(CostLedger::new)
    }
    #[cfg(not(feature = "enabled"))]
    {
        static LEDGER: CostLedger = CostLedger {};
        &LEDGER
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::trace::{SpanEvent, SpanEventKind, SpanId, TraceId};

    fn ev(
        seq: u64,
        kind: SpanEventKind,
        span: u64,
        parent: u64,
        name: &'static str,
        t_ns: u64,
    ) -> SpanEvent {
        SpanEvent {
            seq,
            kind,
            trace: TraceId(1),
            span: SpanId(span),
            parent: SpanId(parent),
            name,
            t_ns,
            attrs: Vec::new(),
        }
    }

    /// A synthetic well-nested tree with known self/total times:
    ///
    /// ```text
    /// root   [0 ns .. 100 ns]              total 100, self 30
    ///   a    [10 .. 50]                    total 40,  self 25
    ///     b  [20 .. 35]                    total 15,  self 15
    ///   a    [60 .. 90]  (second call)     (folds into the same node)
    /// ```
    #[test]
    fn fold_reproduces_known_tree_exactly() {
        let j = SpanJournal::with_capacity(64);
        j.record_event(ev(0, SpanEventKind::Begin, 1, 0, "root", 0));
        j.record_event(ev(0, SpanEventKind::Begin, 2, 1, "a", 10));
        j.record_event(ev(0, SpanEventKind::Begin, 3, 2, "b", 20));
        j.record_event(ev(0, SpanEventKind::End, 3, 2, "b", 35));
        j.record_event(ev(0, SpanEventKind::End, 2, 1, "a", 50));
        j.record_event(ev(0, SpanEventKind::Begin, 4, 1, "a", 60));
        j.record_event(ev(0, SpanEventKind::End, 4, 1, "a", 90));
        j.record_event(ev(0, SpanEventKind::End, 1, 0, "root", 100));
        let p = Profiler::new();
        assert_eq!(p.fold(&j), 8);
        let snap = p.snapshot();
        let get = |stack: &str| {
            snap.nodes
                .iter()
                .find(|n| n.stack == stack)
                .unwrap_or_else(|| panic!("missing node {stack}"))
        };
        let root = get("root");
        assert_eq!((root.self_ns, root.total_ns, root.count), (30, 100, 1));
        let a = get("root;a");
        assert_eq!((a.self_ns, a.total_ns, a.count), (55, 70, 2));
        let b = get("root;a;b");
        assert_eq!((b.self_ns, b.total_ns, b.count), (15, 15, 1));
        // Self-time decomposition: subtree self sums to the root total.
        let self_sum: i64 = snap.nodes.iter().map(|n| n.self_ns).sum();
        assert_eq!(self_sum, root.total_ns as i64);
        assert_eq!(snap.lost_spans, 0);
        // Idempotent: a second fold consumes nothing and changes nothing.
        assert_eq!(p.fold(&j), 0);
        assert_eq!(p.snapshot().nodes, snap.nodes);
        // Collapsed output carries the same numbers.
        let collapsed = p.render_collapsed();
        assert!(collapsed.contains("root 30\n"), "{collapsed}");
        assert!(collapsed.contains("root;a 55\n"), "{collapsed}");
        assert!(collapsed.contains("root;a;b 15\n"), "{collapsed}");
    }

    #[test]
    fn fold_counts_ring_loss_and_orphan_ends() {
        let j = SpanJournal::with_capacity(64);
        let p = Profiler::new();
        // An End whose Begin was never journaled (simulates ring loss).
        j.record_event(ev(0, SpanEventKind::End, 9, 0, "ghost", 5));
        p.fold(&j);
        assert_eq!(p.snapshot().lost_spans, 1);
    }

    #[test]
    fn incremental_fold_spans_open_across_folds() {
        let j = SpanJournal::with_capacity(64);
        let p = Profiler::new();
        j.record_event(ev(0, SpanEventKind::Begin, 1, 0, "root", 0));
        p.fold(&j);
        assert!(p.snapshot().nodes.is_empty(), "open span must not render");
        j.record_event(ev(0, SpanEventKind::End, 1, 0, "root", 40));
        p.fold(&j);
        let snap = p.snapshot();
        assert_eq!(snap.nodes.len(), 1);
        assert_eq!(snap.nodes[0].total_ns, 40);
    }

    #[test]
    fn concurrent_fold_while_recording() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let j = Arc::new(SpanJournal::with_capacity(4096));
        let p = Arc::new(Profiler::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..3)
            .map(|w| {
                let j = Arc::clone(&j);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut id = w * 1_000_000 + 1;
                    while !stop.load(Ordering::Relaxed) {
                        j.record_event(ev(0, SpanEventKind::Begin, id, 0, "work", 0));
                        j.record_event(ev(0, SpanEventKind::End, id, 0, "work", 100));
                        id += 1;
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            p.fold(&j);
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        p.fold(&j);
        let snap = p.snapshot();
        // Whatever survived the ring folded cleanly: every folded span is
        // a complete 100 ns "work" span.
        if let Some(n) = snap.nodes.iter().find(|n| n.stack == "work") {
            assert_eq!(n.total_ns, 100 * n.count);
            assert_eq!(n.self_ns, (100 * n.count) as i64);
        }
    }

    #[test]
    fn ledger_top_k_is_latency_sorted_and_bounded() {
        let l = CostLedger::new();
        for ns in [50u64, 10, 90, 30, 70] {
            l.record(QueryCost {
                op: "t",
                total_ns: ns,
                ..QueryCost::default()
            });
        }
        let top = l.top(3);
        let lat: Vec<u64> = top.iter().map(|c| c.total_ns).collect();
        assert_eq!(lat, vec![90, 70, 50]);
        assert_eq!(l.recorded(), 5);
        for i in 0..(RECENT_CAPACITY + 10) {
            l.record(QueryCost {
                op: "bulk",
                total_ns: i as u64,
                ..QueryCost::default()
            });
        }
        let s = l.state.lock().unwrap();
        assert_eq!(s.recent.len(), RECENT_CAPACITY);
        assert!(s.top.len() <= TOP_K_CAPACITY);
    }

    #[test]
    fn cost_guard_collects_attributions() {
        let before = ledger().recorded();
        {
            let _g = begin_query("unit_test_op");
            add_stage_ns("pad_gen", 100);
            add_stage_ns("pad_gen", 50);
            add_stage_ns("verify", 25);
            add_aes_blocks(8, 24);
            add_wire_bytes(512, 128);
            add_device_busy_ns(1000);
            add_retries(2);
        }
        assert_eq!(ledger().recorded(), before + 1);
        let rec = ledger()
            .recent(64)
            .into_iter()
            .rev()
            .find(|c| c.op == "unit_test_op")
            .expect("recorded cost");
        assert_eq!(rec.stage_ns, vec![("pad_gen", 150), ("verify", 25)]);
        assert_eq!((rec.aes_blocks_generated, rec.aes_blocks_cached), (8, 24));
        assert_eq!((rec.wire_tx_bytes, rec.wire_rx_bytes), (512, 128));
        assert_eq!(rec.device_busy_ns, 1000);
        assert_eq!(rec.retries, 2);
        assert!(rec.render_json().contains("\"pad_gen\":150"));
    }

    #[test]
    fn attribution_without_guard_is_a_noop() {
        let before = ledger().recorded();
        add_stage_ns("pad_gen", 1);
        add_aes_blocks(1, 1);
        assert_eq!(ledger().recorded(), before);
    }
}
