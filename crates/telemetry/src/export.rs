//! Exporters: Prometheus text exposition format and a JSON snapshot.

use crate::metrics::HistogramSnapshot;
use crate::registry::{MetricKind, MetricSnapshot, Snapshot, Value};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Escapes a label *value* per the Prometheus text exposition format:
/// backslash, double-quote, and line-feed become `\\`, `\"`, and `\n`.
/// (Label names and metric names are `[a-zA-Z0-9_:]` by construction and
/// need no escaping.)
pub(crate) fn prom_escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",…}` (with `extra` appended), or "" with no labels.
/// Label values are escaped with [`prom_escape_label`].
fn label_block(labels: &[(&'static str, &'static str)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", prom_escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders a snapshot in the Prometheus text exposition format: one
/// `# HELP` / `# TYPE` pair per metric family, histograms as cumulative
/// `_bucket{le=…}` series plus `_sum` / `_count`.
pub(crate) fn render_prometheus(snap: &Snapshot) -> String {
    // Group series by family name so multi-label families (e.g. the stage
    // histograms) emit their header exactly once.
    let mut families: BTreeMap<&str, Vec<&MetricSnapshot>> = BTreeMap::new();
    for m in &snap.metrics {
        families.entry(m.name).or_default().push(m);
    }
    let mut out = String::new();
    for (name, series) in families {
        let kind = match series[0].kind() {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        let _ = writeln!(out, "# HELP {name} {}", series[0].help);
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for m in series {
            match &m.value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "{name}{} {v}", label_block(&m.labels, None));
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {v}", label_block(&m.labels, None));
                }
                Value::Float(v) => {
                    let _ = writeln!(out, "{name}{} {v}", label_block(&m.labels, None));
                }
                Value::Histogram(h) => render_prometheus_histogram(&mut out, name, m, h),
            }
        }
    }
    out
}

fn render_prometheus_histogram(
    out: &mut String,
    name: &str,
    m: &MetricSnapshot,
    h: &HistogramSnapshot,
) {
    // Emit cumulative buckets up to the highest occupied one; trailing
    // empty buckets collapse into `+Inf` (Prometheus buckets need not be
    // exhaustive, only cumulative).
    let last = h.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
    let mut cum = 0u64;
    for (i, &n) in h.buckets.iter().enumerate().take(last + 1) {
        cum += n;
        let le = HistogramSnapshot::upper_bound(i).to_string();
        // OpenMetrics exemplar suffix: ` # {trace_id="t7"} value` links the
        // bucket to a replayable trace (resolve it at /tracez?trace=t7).
        let exemplar = match h.exemplars.get(i).and_then(|e| e.as_ref()) {
            Some(e) => format!(" # {{trace_id=\"t{}\"}} {}", e.trace_id, e.value),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "{name}_bucket{} {cum}{exemplar}",
            label_block(&m.labels, Some(("le", &le)))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        label_block(&m.labels, Some(("le", "+Inf"))),
        h.count
    );
    let _ = writeln!(out, "{name}_sum{} {}", label_block(&m.labels, None), h.sum);
    let _ = writeln!(
        out,
        "{name}_count{} {}",
        label_block(&m.labels, None),
        h.count
    );
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(&'static str, &'static str)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

/// Formats an `f64` for JSON (no NaN/Inf — both render as 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders a snapshot as a JSON document:
///
/// ```json
/// {
///   "counters":   [ {"name": "...", "labels": {...}, "value": 1}, ... ],
///   "gauges":     [ {"name": "...", "labels": {...}, "value": 2.5}, ... ],
///   "histograms": [ {"name": "...", "labels": {...}, "count": 3,
///                    "sum": 99, "mean": 33.0,
///                    "p50": 30.0, "p95": 60.0, "p99": 62.0,
///                    "buckets": [{"le": 63, "count": 3}, ...]}, ... ]
/// }
/// ```
///
/// Quantiles are precomputed so downstream trend tracking needs no
/// knowledge of the bucket layout; `buckets` lists occupied buckets only.
pub(crate) fn render_json(snap: &Snapshot) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for m in &snap.metrics {
        let head = format!(
            "\"name\":\"{}\",\"labels\":{}",
            json_escape(m.name),
            json_labels(&m.labels)
        );
        match &m.value {
            Value::Counter(v) => counters.push(format!("{{{head},\"value\":{v}}}")),
            Value::Gauge(v) => gauges.push(format!("{{{head},\"value\":{v}}}")),
            Value::Float(v) => gauges.push(format!("{{{head},\"value\":{}}}", json_f64(*v))),
            Value::Histogram(h) => {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(i, &n)| {
                        format!(
                            "{{\"le\":{},\"count\":{n}}}",
                            HistogramSnapshot::upper_bound(i)
                        )
                    })
                    .collect();
                histograms.push(format!(
                    "{{{head},\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                    h.count,
                    h.sum,
                    json_f64(h.mean()),
                    json_f64(h.quantile(0.50)),
                    json_f64(h.quantile(0.95)),
                    json_f64(h.quantile(0.99)),
                    buckets.join(",")
                ));
            }
        }
    }
    format!(
        "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(",")
    )
}
