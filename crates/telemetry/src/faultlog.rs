//! Fault journal: a bounded record of deliberately injected faults.
//!
//! The chaos harness (`secndp-core::fault`) injects faults — bit flips,
//! replays, dropped replies, rank stalls — into the untrusted-device path
//! and must later prove that **every single one** was either masked or
//! detected. That proof needs a ground-truth ledger of what was injected,
//! where, and under which query; this journal is that ledger.
//!
//! Each record stamps the injecting thread's current
//! [`trace`](crate::trace) context (device-side injections run inside the
//! worker's `ndp_serve` span, so the query's trace id is ambient) plus the
//! harness-assigned operation index, the rank the fault landed on, and a
//! static kind name matching `FaultKind` in `secndp-core`. The
//! `InvariantChecker` reconciles these records against query outcomes and
//! the [audit log](crate::audit).
//!
//! Unlike the metrics registry, the journal works even with the
//! `enabled` feature off: the masked-or-detected invariant is a
//! correctness property of the chaos suite, not an observability nicety,
//! so it must hold in `--no-default-features` builds too. (Trace ids are
//! then zero — context propagation is a telemetry feature — but op-index
//! reconciliation still works.)

use crate::trace::{self, SpanId, TraceId};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default bound on retained fault records.
pub const DEFAULT_FAULT_CAPACITY: usize = 4096;

/// One injected fault, as journaled at the injection site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Monotonic per-process sequence number (unique even after eviction).
    pub seq: u64,
    /// Harness-assigned operation index the fault was scheduled for.
    pub op: u64,
    /// Device rank the fault landed on (`u32::MAX` for host-side faults
    /// such as pad-cache corruption).
    pub rank: u32,
    /// Static fault-kind name (e.g. `"flip_response_bit"`, `"drop_reply"`),
    /// matching `FaultKind::name()` in `secndp-core`.
    pub kind: &'static str,
    /// Trace the affected query belonged to (`TraceId(0)` if untraced).
    pub trace: TraceId,
    /// Innermost span open at the injection site.
    pub span: SpanId,
    /// Static detail string (e.g. `"no stale image; served fresh"`).
    pub detail: &'static str,
}

struct FaultState {
    records: VecDeque<FaultRecord>,
    next_seq: u64,
}

/// A bounded FIFO of [`FaultRecord`]s. The process-wide instance is
/// [`fault_log()`].
pub struct FaultLog {
    inner: Mutex<FaultState>,
    capacity: usize,
}

impl std::fmt::Debug for FaultLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultLog")
            .field("len", &self.len())
            .finish()
    }
}

impl FaultLog {
    /// A journal retaining at most `capacity` records (oldest evicted
    /// first).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(FaultState {
                records: VecDeque::new(),
                next_seq: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Journals an injected fault, stamping the calling thread's current
    /// trace context. When the injection site has no ambient context (the
    /// transport worker outside its serve span), callers pass the trace id
    /// recovered from the request frame via `trace_override`.
    pub fn record(
        &self,
        op: u64,
        rank: u32,
        kind: &'static str,
        detail: &'static str,
        trace_override: Option<u64>,
    ) {
        let ctx = trace::current();
        let trace = match trace_override {
            Some(t) if ctx.trace.0 == 0 => TraceId(t),
            _ => ctx.trace,
        };
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
        }
        inner.records.push_back(FaultRecord {
            seq,
            op,
            rank,
            kind,
            trace,
            span: ctx.span,
            detail,
        });
    }

    /// Number of currently retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever journaled, including evicted ones.
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// A point-in-time copy of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<FaultRecord> {
        self.inner.lock().unwrap().records.iter().cloned().collect()
    }

    /// Drops all retained records (sequence numbers keep advancing).
    pub fn clear(&self) {
        self.inner.lock().unwrap().records.clear();
    }

    /// Renders the journal as a JSON document:
    ///
    /// ```json
    /// {"fault_events":[{"seq":0,"op":17,"rank":1,
    ///   "kind":"drop_reply","trace":9,"span":12,"detail":""}, …]}
    /// ```
    pub fn render_json(&self) -> String {
        let records: Vec<String> = self
            .snapshot()
            .iter()
            .map(|r| {
                format!(
                    "{{\"seq\":{},\"op\":{},\"rank\":{},\"kind\":\"{}\",\
                     \"trace\":{},\"span\":{},\"detail\":\"{}\"}}",
                    r.seq,
                    r.op,
                    r.rank,
                    crate::export::json_escape(r.kind),
                    r.trace.0,
                    r.span.0,
                    crate::export::json_escape(r.detail),
                )
            })
            .collect();
        format!("{{\"fault_events\":[{}]}}\n", records.join(","))
    }
}

/// The process-wide fault journal.
pub fn fault_log() -> &'static FaultLog {
    static LOG: std::sync::OnceLock<FaultLog> = std::sync::OnceLock::new();
    LOG.get_or_init(|| FaultLog::with_capacity(DEFAULT_FAULT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_is_bounded_and_sequenced() {
        let log = FaultLog::with_capacity(3);
        for op in 0..5u64 {
            log.record(op, 0, "flip_response_bit", "", None);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total(), 5);
        let ops: Vec<u64> = log.snapshot().iter().map(|r| r.op).collect();
        assert_eq!(ops, vec![2, 3, 4]);
        let seqs: Vec<u64> = log.snapshot().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.total(), 5, "clear must not rewind sequence numbers");
    }

    #[test]
    fn trace_override_applies_only_without_ambient_context() {
        let log = FaultLog::with_capacity(8);
        log.record(0, 1, "drop_reply", "", Some(0xABCD));
        let rec = &log.snapshot()[0];
        // Outside any span the override wins (ambient trace is 0).
        assert_eq!(rec.trace, TraceId(0xABCD));
        assert_eq!(rec.rank, 1);
    }

    #[test]
    fn render_json_is_well_formed() {
        let log = FaultLog::with_capacity(8);
        log.record(7, 2, "rank_stall", "300ms", None);
        let json = log.render_json();
        assert!(json.starts_with("{\"fault_events\":["));
        assert!(json.contains("\"op\":7"));
        assert!(json.contains("\"kind\":\"rank_stall\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
