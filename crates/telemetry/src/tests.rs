//! Unit tests for the instruments, registry, and exporters (compiled only
//! with the `enabled` feature; without it every instrument is a no-op and
//! there is nothing to test).

use crate::metrics::{Histogram, HistogramSnapshot, BUCKETS};
use crate::registry::Registry;

/// Returns the single bucket index a value lands in.
fn bucket_of(v: u64) -> usize {
    let h = Histogram::new();
    h.observe(v);
    let snap = h.snapshot();
    let hits: Vec<usize> = (0..BUCKETS).filter(|&i| snap.buckets[i] == 1).collect();
    assert_eq!(hits.len(), 1, "value {v} landed in {} buckets", hits.len());
    hits[0]
}

#[test]
fn bucket_boundaries() {
    // Zero gets its own bucket.
    assert_eq!(bucket_of(0), 0);
    // 1 = 2^0 starts bucket 1.
    assert_eq!(bucket_of(1), 1);
    // For every k: 2^k−1 closes bucket k; 2^k opens bucket k+1, which
    // also holds 2^k+1.
    for k in 1..63 {
        let p = 1u64 << k;
        assert_eq!(bucket_of(p - 1), k, "2^{k}-1");
        assert_eq!(bucket_of(p), k + 1, "2^{k}");
        assert_eq!(bucket_of(p + 1), k + 1, "2^{k}+1");
    }
    // The top of the range: 2^63 and u64::MAX share the last bucket.
    assert_eq!(bucket_of(1u64 << 63), 64);
    assert_eq!(bucket_of(u64::MAX), 64);
    // Upper bounds are inclusive and cover the whole u64 range.
    assert_eq!(HistogramSnapshot::upper_bound(0), 0);
    assert_eq!(HistogramSnapshot::upper_bound(1), 1);
    assert_eq!(HistogramSnapshot::upper_bound(8), 255);
    assert_eq!(HistogramSnapshot::upper_bound(64), u64::MAX);
}

#[test]
fn histogram_count_sum_mean() {
    let h = Histogram::new();
    for v in [10u64, 20, 30] {
        h.observe(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 3);
    assert_eq!(s.sum, 60);
    assert!((s.mean() - 20.0).abs() < 1e-12);
}

#[test]
fn quantiles_are_ordered_and_bracketed() {
    let h = Histogram::new();
    // 100 samples spread over two decades.
    for i in 1..=100u64 {
        h.observe(i * 10);
    }
    let s = h.snapshot();
    let (p50, p95, p99) = (s.quantile(0.5), s.quantile(0.95), s.quantile(0.99));
    assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    // Bucketed estimates are exact to within one power of two.
    assert!((256.0..=1023.0).contains(&p50), "p50={p50}");
    assert!(p99 <= 1023.0, "p99={p99}");
    // Degenerate cases.
    assert_eq!(
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS]
        }
        .quantile(0.5),
        0.0
    );
    let one = {
        let h = Histogram::new();
        h.observe(7);
        h.snapshot()
    };
    assert!(one.quantile(0.0) >= 4.0 && one.quantile(1.0) <= 7.0);
}

#[test]
fn concurrent_counter_increments() {
    let reg = Registry::new();
    let c = reg.counter("concurrent_total", &[], "scoped-thread hammering");
    let h = reg.histogram("concurrent_ns", &[], "scoped-thread samples");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = &c;
            let h = &h;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    h.observe(t as u64 * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(h.snapshot().count, THREADS as u64 * PER_THREAD);
}

#[test]
fn registration_is_idempotent_and_shared() {
    let reg = Registry::new();
    let a = reg.counter("shared_total", &[("x", "1")], "help");
    let b = reg.counter("shared_total", &[("x", "1")], "help");
    a.inc();
    b.inc();
    assert_eq!(a.get(), 2);
    // Different labels are a different series.
    let c = reg.counter("shared_total", &[("x", "2")], "help");
    assert_eq!(c.get(), 0);
    assert_eq!(reg.snapshot().counter_total("shared_total"), 2);
}

#[test]
#[should_panic(expected = "different kind")]
fn kind_mismatch_panics() {
    let reg = Registry::new();
    let _ = reg.counter("mixed", &[], "help");
    let _ = reg.gauge("mixed", &[], "help");
}

#[test]
fn reset_zeroes_but_keeps_instruments() {
    let reg = Registry::new();
    let c = reg.counter("r_total", &[], "h");
    let g = reg.float_gauge("r_rate", &[], "h");
    let h = reg.histogram("r_ns", &[], "h");
    c.add(5);
    g.set(0.75);
    h.observe(9);
    reg.reset();
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0.0);
    assert_eq!(h.snapshot().count, 0);
    // The same Arc still feeds the same registry entry.
    c.inc();
    assert_eq!(reg.snapshot().counter_total("r_total"), 1);
}

#[test]
fn timer_records_into_histogram() {
    let reg = Registry::new();
    let h = reg.histogram("t_ns", &[], "h");
    {
        let _t = h.start_timer();
        std::hint::black_box(0u64);
    }
    let explicit = h.start_timer();
    explicit.stop();
    assert_eq!(h.snapshot().count, 2);
}

/// Golden test: the exact Prometheus text exposition output for a small
/// registry. Locks the format (header order, label rendering, cumulative
/// buckets, +Inf, _sum/_count) against accidental drift.
#[test]
fn prometheus_exposition_golden() {
    let reg = Registry::new();
    reg.counter("requests_total", &[], "Requests served.")
        .add(3);
    reg.gauge("queue_depth", &[], "Packets queued.").set(-2);
    reg.float_gauge("hit_rate", &[], "Row-buffer hit rate.")
        .set(0.5);
    let h = reg.histogram(
        "latency_ns",
        &[("stage", "verify")],
        "Stage latency in nanoseconds.",
    );
    h.observe(0); // bucket 0, le="0"
    h.observe(3); // bucket 2, le="3"
    h.observe(4); // bucket 3, le="7"
    let want = "\
# HELP hit_rate Row-buffer hit rate.
# TYPE hit_rate gauge
hit_rate 0.5
# HELP latency_ns Stage latency in nanoseconds.
# TYPE latency_ns histogram
latency_ns_bucket{stage=\"verify\",le=\"0\"} 1
latency_ns_bucket{stage=\"verify\",le=\"1\"} 1
latency_ns_bucket{stage=\"verify\",le=\"3\"} 2
latency_ns_bucket{stage=\"verify\",le=\"7\"} 3
latency_ns_bucket{stage=\"verify\",le=\"+Inf\"} 3
latency_ns_sum{stage=\"verify\"} 7
latency_ns_count{stage=\"verify\"} 3
# HELP queue_depth Packets queued.
# TYPE queue_depth gauge
queue_depth -2
# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total 3
";
    assert_eq!(reg.render_prometheus(), want);
}

#[test]
fn json_snapshot_shape() {
    let reg = Registry::new();
    reg.counter("j_total", &[("kind", "x")], "h").add(2);
    reg.histogram("j_ns", &[], "h").observe(100);
    let json = reg.render_json();
    assert_eq!(
        json,
        "{\"counters\":[{\"name\":\"j_total\",\"labels\":{\"kind\":\"x\"},\"value\":2}],\
         \"gauges\":[],\
         \"histograms\":[{\"name\":\"j_ns\",\"labels\":{},\"count\":1,\"sum\":100,\
         \"mean\":100,\"p50\":127,\"p95\":127,\"p99\":127,\
         \"buckets\":[{\"le\":127,\"count\":1}]}]}"
    );
}

#[test]
fn global_registry_macros_share_state() {
    let c = crate::counter!("global_macro_test_total", "macro cache test");
    let before = c.get();
    crate::counter!("global_macro_test_total", "macro cache test").inc();
    // Another *call site* for the same name reaches the same instrument
    // through the global registry.
    assert!(c.get() > before);
}
