//! Unit tests for the instruments, registry, and exporters (compiled only
//! with the `enabled` feature; without it every instrument is a no-op and
//! there is nothing to test).

use crate::audit::AuditLog;
use crate::metrics::{Histogram, HistogramSnapshot, BUCKETS};
use crate::registry::Registry;
use crate::trace::{
    self, render_chrome_trace, render_tree, AttrValue, SpanContext, SpanEvent, SpanEventKind,
    SpanId, SpanJournal, TraceId,
};

/// Returns the single bucket index a value lands in.
fn bucket_of(v: u64) -> usize {
    let h = Histogram::new();
    h.observe(v);
    let snap = h.snapshot();
    let hits: Vec<usize> = (0..BUCKETS).filter(|&i| snap.buckets[i] == 1).collect();
    assert_eq!(hits.len(), 1, "value {v} landed in {} buckets", hits.len());
    hits[0]
}

#[test]
fn bucket_boundaries() {
    // Zero gets its own bucket.
    assert_eq!(bucket_of(0), 0);
    // 1 = 2^0 starts bucket 1.
    assert_eq!(bucket_of(1), 1);
    // For every k: 2^k−1 closes bucket k; 2^k opens bucket k+1, which
    // also holds 2^k+1.
    for k in 1..63 {
        let p = 1u64 << k;
        assert_eq!(bucket_of(p - 1), k, "2^{k}-1");
        assert_eq!(bucket_of(p), k + 1, "2^{k}");
        assert_eq!(bucket_of(p + 1), k + 1, "2^{k}+1");
    }
    // The top of the range: 2^63 and u64::MAX share the last bucket.
    assert_eq!(bucket_of(1u64 << 63), 64);
    assert_eq!(bucket_of(u64::MAX), 64);
    // Upper bounds are inclusive and cover the whole u64 range.
    assert_eq!(HistogramSnapshot::upper_bound(0), 0);
    assert_eq!(HistogramSnapshot::upper_bound(1), 1);
    assert_eq!(HistogramSnapshot::upper_bound(8), 255);
    assert_eq!(HistogramSnapshot::upper_bound(64), u64::MAX);
}

#[test]
fn histogram_count_sum_mean() {
    let h = Histogram::new();
    for v in [10u64, 20, 30] {
        h.observe(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 3);
    assert_eq!(s.sum, 60);
    assert!((s.mean() - 20.0).abs() < 1e-12);
}

#[test]
fn quantiles_are_ordered_and_bracketed() {
    let h = Histogram::new();
    // 100 samples spread over two decades.
    for i in 1..=100u64 {
        h.observe(i * 10);
    }
    let s = h.snapshot();
    let (p50, p95, p99) = (s.quantile(0.5), s.quantile(0.95), s.quantile(0.99));
    assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    // Bucketed estimates are exact to within one power of two.
    assert!((256.0..=1023.0).contains(&p50), "p50={p50}");
    assert!(p99 <= 1023.0, "p99={p99}");
    // Degenerate cases.
    assert_eq!(
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS],
            exemplars: vec![None; BUCKETS]
        }
        .quantile(0.5),
        0.0
    );
    let one = {
        let h = Histogram::new();
        h.observe(7);
        h.snapshot()
    };
    assert!(one.quantile(0.0) >= 4.0 && one.quantile(1.0) <= 7.0);
}

#[test]
fn concurrent_counter_increments() {
    let reg = Registry::new();
    let c = reg.counter("concurrent_total", &[], "scoped-thread hammering");
    let h = reg.histogram("concurrent_ns", &[], "scoped-thread samples");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = &c;
            let h = &h;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    h.observe(t as u64 * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(h.snapshot().count, THREADS as u64 * PER_THREAD);
}

#[test]
fn registration_is_idempotent_and_shared() {
    let reg = Registry::new();
    let a = reg.counter("shared_total", &[("x", "1")], "help");
    let b = reg.counter("shared_total", &[("x", "1")], "help");
    a.inc();
    b.inc();
    assert_eq!(a.get(), 2);
    // Different labels are a different series.
    let c = reg.counter("shared_total", &[("x", "2")], "help");
    assert_eq!(c.get(), 0);
    assert_eq!(reg.snapshot().counter_total("shared_total"), 2);
}

#[test]
#[should_panic(expected = "different kind")]
fn kind_mismatch_panics() {
    let reg = Registry::new();
    let _ = reg.counter("mixed", &[], "help");
    let _ = reg.gauge("mixed", &[], "help");
}

#[test]
fn reset_zeroes_but_keeps_instruments() {
    let reg = Registry::new();
    let c = reg.counter("r_total", &[], "h");
    let g = reg.float_gauge("r_rate", &[], "h");
    let h = reg.histogram("r_ns", &[], "h");
    c.add(5);
    g.set(0.75);
    h.observe(9);
    reg.reset();
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0.0);
    assert_eq!(h.snapshot().count, 0);
    // The same Arc still feeds the same registry entry.
    c.inc();
    assert_eq!(reg.snapshot().counter_total("r_total"), 1);
}

#[test]
fn timer_records_into_histogram() {
    let reg = Registry::new();
    let h = reg.histogram("t_ns", &[], "h");
    {
        let _t = h.start_timer();
        std::hint::black_box(0u64);
    }
    let explicit = h.start_timer();
    explicit.stop();
    assert_eq!(h.snapshot().count, 2);
}

/// Golden test: the exact Prometheus text exposition output for a small
/// registry. Locks the format (header order, label rendering, cumulative
/// buckets, +Inf, _sum/_count) against accidental drift.
#[test]
fn prometheus_exposition_golden() {
    let reg = Registry::new();
    reg.counter("requests_total", &[], "Requests served.")
        .add(3);
    reg.gauge("queue_depth", &[], "Packets queued.").set(-2);
    reg.float_gauge("hit_rate", &[], "Row-buffer hit rate.")
        .set(0.5);
    let h = reg.histogram(
        "latency_ns",
        &[("stage", "verify")],
        "Stage latency in nanoseconds.",
    );
    h.observe(0); // bucket 0, le="0"
    h.observe(3); // bucket 2, le="3"
    h.observe(4); // bucket 3, le="7"
    let want = "\
# HELP hit_rate Row-buffer hit rate.
# TYPE hit_rate gauge
hit_rate 0.5
# HELP latency_ns Stage latency in nanoseconds.
# TYPE latency_ns histogram
latency_ns_bucket{stage=\"verify\",le=\"0\"} 1
latency_ns_bucket{stage=\"verify\",le=\"1\"} 1
latency_ns_bucket{stage=\"verify\",le=\"3\"} 2
latency_ns_bucket{stage=\"verify\",le=\"7\"} 3
latency_ns_bucket{stage=\"verify\",le=\"+Inf\"} 3
latency_ns_sum{stage=\"verify\"} 7
latency_ns_count{stage=\"verify\"} 3
# HELP queue_depth Packets queued.
# TYPE queue_depth gauge
queue_depth -2
# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total 3
";
    assert_eq!(reg.render_prometheus(), want);
}

#[test]
fn json_snapshot_shape() {
    let reg = Registry::new();
    reg.counter("j_total", &[("kind", "x")], "h").add(2);
    reg.histogram("j_ns", &[], "h").observe(100);
    let json = reg.render_json();
    assert_eq!(
        json,
        "{\"counters\":[{\"name\":\"j_total\",\"labels\":{\"kind\":\"x\"},\"value\":2}],\
         \"gauges\":[],\
         \"histograms\":[{\"name\":\"j_ns\",\"labels\":{},\"count\":1,\"sum\":100,\
         \"mean\":100,\"p50\":127,\"p95\":127,\"p99\":127,\
         \"buckets\":[{\"le\":127,\"count\":1}]}]}"
    );
}

#[test]
fn global_registry_macros_share_state() {
    let c = crate::counter!("global_macro_test_total", "macro cache test");
    let before = c.get();
    crate::counter!("global_macro_test_total", "macro cache test").inc();
    // Another *call site* for the same name reaches the same instrument
    // through the global registry.
    assert!(c.get() > before);
}

// ─── quantile edge cases ────────────────────────────────────────────────

#[test]
fn quantile_empty_histogram_is_zero() {
    let empty = HistogramSnapshot {
        count: 0,
        sum: 0,
        buckets: vec![0; BUCKETS],
        exemplars: vec![None; BUCKETS],
    };
    assert_eq!(empty.quantile(0.0), 0.0);
    assert_eq!(empty.quantile(0.5), 0.0);
    assert_eq!(empty.quantile(1.0), 0.0);
}

#[test]
fn quantile_single_observation_is_flat() {
    // One sample: every q targets rank 1 at frac 1, i.e. the upper bound
    // of the sample's bucket — identical for q = 0, 0.5, and 1.
    let h = Histogram::new();
    h.observe(100); // bucket (64, 127]
    let s = h.snapshot();
    assert_eq!(s.quantile(0.0), 127.0);
    assert_eq!(s.quantile(0.5), 127.0);
    assert_eq!(s.quantile(1.0), 127.0);
}

#[test]
fn quantile_extremes_hit_first_and_last_buckets() {
    let h = Histogram::new();
    h.observe(0); // bucket [0, 0]
    h.observe(1000); // bucket (512, 1023]
    let s = h.snapshot();
    // q = 0 targets rank 1 → the zero bucket, whose bounds collapse to 0.
    assert_eq!(s.quantile(0.0), 0.0);
    // q = 1 targets the last rank → upper bound of the last sample's
    // bucket (frac = 1 within it).
    assert_eq!(s.quantile(1.0), 1023.0);
}

#[test]
#[should_panic(expected = "outside [0, 1]")]
fn quantile_rejects_out_of_range() {
    let h = Histogram::new();
    h.observe(1);
    let _ = h.snapshot().quantile(1.5);
}

#[test]
fn quantile_upper_bound_is_conservative() {
    let empty = HistogramSnapshot {
        count: 0,
        sum: 0,
        buckets: vec![0; BUCKETS],
        exemplars: vec![None; BUCKETS],
    };
    assert_eq!(empty.quantile_upper_bound(0.5), 0.0);
    let h = Histogram::new();
    h.observe(100); // bucket (64, 127]
    let s = h.snapshot();
    // A single observation answers the bucket upper bound for every q.
    assert_eq!(s.quantile_upper_bound(0.0), 127.0);
    assert_eq!(s.quantile_upper_bound(0.5), 127.0);
    assert_eq!(s.quantile_upper_bound(1.0), 127.0);
    // Never below the interpolated estimate, across a spread of samples.
    let h = Histogram::new();
    for i in 1..=100u64 {
        h.observe(i * 10);
    }
    let s = h.snapshot();
    for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
        assert!(
            s.quantile_upper_bound(q) >= s.quantile(q),
            "q={q}: ub {} < interpolated {}",
            s.quantile_upper_bound(q),
            s.quantile(q)
        );
    }
    // Zeros land in the zero bucket whose bound is 0.
    let h = Histogram::new();
    h.observe(0);
    assert_eq!(h.snapshot().quantile_upper_bound(1.0), 0.0);
}

#[test]
#[should_panic(expected = "outside [0, 1]")]
fn quantile_upper_bound_rejects_out_of_range() {
    let h = Histogram::new();
    h.observe(1);
    let _ = h.snapshot().quantile_upper_bound(-0.1);
}

#[test]
fn count_at_or_below_interpolates_within_bucket() {
    let h = Histogram::new();
    h.observe(0); // zero bucket
    h.observe(100); // bucket [64, 127]
    let s = h.snapshot();
    assert_eq!(s.count_at_or_below(0), 1.0);
    assert_eq!(s.count_at_or_below(63), 1.0);
    assert_eq!(s.count_at_or_below(127), 2.0);
    assert_eq!(s.count_at_or_below(u64::MAX), 2.0);
    // Halfway through [64, 127]: 64 of the bucket's 64 values covered at
    // 127, 32 at 95 → half the bucket's single sample.
    let mid = s.count_at_or_below(95);
    assert!((mid - 1.5).abs() < 1e-9, "mid={mid}");
}

// ─── label escaping (Prometheus exposition) ─────────────────────────────

#[test]
fn prometheus_escapes_label_values_round_trip() {
    let reg = Registry::new();
    let tricky = "a\\b\"c\nd";
    reg.counter("esc_total", &[("path", tricky)], "Escaping test.")
        .inc();
    let text = reg.render_prometheus();
    let line = text
        .lines()
        .find(|l| l.starts_with("esc_total{"))
        .expect("series line");
    assert_eq!(line, "esc_total{path=\"a\\\\b\\\"c\\nd\"} 1");
    // Round-trip: un-escaping the emitted value recovers the original.
    let start = line.find("path=\"").unwrap() + 6;
    let end = line.rfind('"').unwrap();
    let escaped = &line[start..end];
    let mut unescaped = String::new();
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => unescaped.push('\\'),
                Some('"') => unescaped.push('"'),
                Some('n') => unescaped.push('\n'),
                other => panic!("unknown escape \\{other:?}"),
            }
        } else {
            unescaped.push(c);
        }
    }
    assert_eq!(unescaped, tricky);
}

// ─── histogram exemplars ────────────────────────────────────────────────

#[test]
fn exemplar_latches_max_value_trace_in_bucket() {
    let reg = Registry::new();
    let h = reg.histogram("exemplar_ns", &[], "h");
    // Three traced samples in the same bucket (64..=127); the exemplar
    // must carry the trace of the *largest*.
    let _t_small = {
        let sp = trace::span("exemplar_small");
        h.observe(70);
        sp.trace_id()
    };
    let t_max = {
        let sp = trace::span("exemplar_max");
        h.observe(101);
        sp.trace_id()
    };
    let _t_mid = {
        let sp = trace::span("exemplar_mid");
        h.observe(80);
        sp.trace_id()
    };
    let snap = h.snapshot();
    let bucket = 7; // values 64..=127
    assert_eq!(snap.buckets[bucket], 3);
    let ex = snap.exemplars[bucket].expect("exemplar latched");
    assert_eq!(ex.value, 101);
    assert_eq!(ex.trace_id, t_max);
    // Untraced samples never latch.
    h.observe(5); // bucket 3, no ambient span
    assert!(h.snapshot().exemplars[3].is_none());
    // Prometheus exposition carries the OpenMetrics exemplar suffix.
    let text = reg.render_prometheus();
    assert!(
        text.contains(&format!("# {{trace_id=\"t{t_max}\"}} 101")),
        "{text}"
    );
}

#[test]
fn exemplar_reset_clears_latches() {
    let reg = Registry::new();
    let h = reg.histogram("exemplar_reset_ns", &[], "h");
    {
        let _sp = trace::span("exemplar_reset");
        h.observe(9);
    }
    assert!(h.snapshot().exemplars.iter().any(|e| e.is_some()));
    reg.reset();
    assert!(h.snapshot().exemplars.iter().all(|e| e.is_none()));
}

// ─── span journal ───────────────────────────────────────────────────────

/// A synthetic journal event with everything pinned.
#[allow(clippy::too_many_arguments)]
fn ev(
    seq: u64,
    kind: SpanEventKind,
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    t_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
) -> SpanEvent {
    SpanEvent {
        seq,
        kind,
        trace: TraceId(trace),
        span: SpanId(span),
        parent: SpanId(parent),
        name,
        t_ns,
        attrs,
    }
}

#[test]
fn span_guards_nest_and_restore_thread_context() {
    // The ambient context is thread-local, so this test is immune to
    // parallel tests opening their own spans.
    assert_eq!(trace::current(), SpanContext::NONE);
    let root = trace::span("test_root");
    let root_ctx = root.context();
    assert!(root_ctx.trace.0 != 0 && root_ctx.span.0 != 0);
    assert_eq!(trace::current(), root_ctx);
    {
        let child = trace::span("test_child");
        assert_eq!(child.context().trace, root_ctx.trace, "same trace");
        assert_ne!(child.context().span, root_ctx.span, "fresh span id");
        assert_eq!(trace::current(), child.context());
    }
    assert_eq!(trace::current(), root_ctx, "child drop restores parent");
    drop(root);
    assert_eq!(trace::current(), SpanContext::NONE);
}

#[test]
fn span_child_of_stitches_remote_context() {
    let root = trace::span("test_remote_root");
    let carried = root.context();
    drop(root); // the "remote" side has no ambient span from the root
    assert_eq!(trace::current(), SpanContext::NONE);
    let remote = trace::span_child_of("test_remote_child", carried);
    assert_eq!(remote.context().trace, carried.trace);
    let remote_span = remote.context().span;
    drop(remote);
    // The journal recorded the child with the carried span as parent.
    let evs = trace::journal().snapshot();
    let begin = evs
        .iter()
        .find(|e| e.span == remote_span && e.kind == SpanEventKind::Begin)
        .expect("remote begin journaled");
    assert_eq!(begin.parent, carried.span);
    assert_eq!(begin.trace, carried.trace);
}

#[test]
fn journal_records_begin_end_pairs_with_attrs() {
    let tid = {
        let mut sp = trace::span("test_attrs");
        sp.attr_u64("rows", 8);
        sp.attr_str("mode", "batch");
        sp.trace_id()
    };
    let evs: Vec<SpanEvent> = trace::journal()
        .snapshot()
        .into_iter()
        .filter(|e| e.trace.0 == tid)
        .collect();
    assert_eq!(evs.len(), 2);
    assert_eq!(evs[0].kind, SpanEventKind::Begin);
    assert_eq!(evs[1].kind, SpanEventKind::End);
    assert_eq!(evs[0].span, evs[1].span);
    assert!(evs[0].seq < evs[1].seq);
    assert!(evs[0].t_ns <= evs[1].t_ns, "monotonic timestamps");
    assert!(evs[0].attrs.is_empty(), "attrs ride on the End record");
    assert_eq!(
        evs[1].attrs,
        vec![
            ("rows", AttrValue::U64(8)),
            ("mode", AttrValue::Str("batch"))
        ]
    );
}

#[test]
fn journal_ring_wraps_and_counts_drops() {
    let j = SpanJournal::with_capacity(4);
    for i in 0..10u64 {
        j.record_event(ev(
            0,
            SpanEventKind::Begin,
            1,
            i + 1,
            0,
            "w",
            i * 10,
            vec![],
        ));
    }
    assert_eq!(j.capacity(), 4);
    assert_eq!(j.recorded(), 10);
    assert_eq!(j.dropped(), 6);
    let snap = j.snapshot();
    assert_eq!(snap.len(), 4);
    // Only the newest events survive, in seq order.
    assert_eq!(snap.iter().map(|e| e.seq).collect::<Vec<_>>(), [6, 7, 8, 9]);
    j.clear();
    assert!(j.snapshot().is_empty());
    assert_eq!(j.recorded(), 10, "clear keeps the sequence counter");
}

#[test]
fn chrome_trace_export_golden() {
    let events = [
        ev(
            0,
            SpanEventKind::Begin,
            7,
            1,
            0,
            "wire_round_trip",
            1000,
            vec![],
        ),
        ev(
            1,
            SpanEventKind::End,
            7,
            1,
            0,
            "wire_round_trip",
            3500,
            vec![
                ("tx_bytes", AttrValue::U64(42)),
                ("op", AttrValue::Str("load")),
            ],
        ),
    ];
    let want = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\
        {\"name\":\"wire_round_trip\",\"cat\":\"secndp\",\"ph\":\"B\",\"pid\":1,\
        \"tid\":7,\"ts\":1.000,\"args\":{\"trace\":7,\"span\":1,\"parent\":0}},\
        {\"name\":\"wire_round_trip\",\"cat\":\"secndp\",\"ph\":\"E\",\"pid\":1,\
        \"tid\":7,\"ts\":3.500,\"args\":{\"trace\":7,\"span\":1,\"parent\":0,\
        \"tx_bytes\":42,\"op\":\"load\"}}]}\n";
    assert_eq!(render_chrome_trace(&events), want);
}

#[test]
fn chrome_trace_drops_unpaired_events() {
    let events = [
        // Complete span.
        ev(0, SpanEventKind::Begin, 1, 1, 0, "a", 0, vec![]),
        ev(1, SpanEventKind::End, 1, 1, 0, "a", 10, vec![]),
        // Still-open span: begin without end.
        ev(2, SpanEventKind::Begin, 1, 2, 1, "open", 5, vec![]),
        // Begin overwritten by the ring: end without begin.
        ev(3, SpanEventKind::End, 1, 3, 1, "lost", 8, vec![]),
    ];
    let json = render_chrome_trace(&events);
    assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
    assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
    assert!(!json.contains("open") && !json.contains("lost"));
    // And the degenerate case renders a valid empty document.
    assert_eq!(
        render_chrome_trace(&[]),
        "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n"
    );
}

#[test]
fn tree_export_golden() {
    let events = [
        ev(
            0,
            SpanEventKind::Begin,
            5,
            1,
            0,
            "weighted_sum",
            1000,
            vec![],
        ),
        ev(1, SpanEventKind::Begin, 5, 2, 1, "verify", 1200, vec![]),
        ev(
            2,
            SpanEventKind::End,
            5,
            2,
            1,
            "verify",
            1700,
            vec![("rows", AttrValue::U64(3))],
        ),
        ev(3, SpanEventKind::End, 5, 1, 0, "weighted_sum", 2000, vec![]),
    ];
    let want = "t5\n  weighted_sum [s1] 1000ns\n    verify [s2] 500ns  rows=3\n";
    assert_eq!(render_tree(&events), want);
}

// ─── audit log ──────────────────────────────────────────────────────────

#[test]
fn audit_log_is_bounded_fifo_with_stable_seq() {
    let log = AuditLog::with_capacity(2);
    log.record("verification_failed", 0x1000, 1, 2, "single_s", "tag");
    log.record("malformed_response", 0, 0, 0, "", "short frame");
    log.record("shape_mismatch", 0, 0, 0, "", "bad length");
    assert_eq!(log.len(), 2);
    assert_eq!(log.total(), 3, "total counts evicted events");
    let snap = log.snapshot();
    // Oldest evicted first; sequence numbers survive eviction.
    assert_eq!(snap[0].seq, 1);
    assert_eq!(snap[0].kind, "malformed_response");
    assert_eq!(snap[1].seq, 2);
    assert_eq!(snap[1].kind, "shape_mismatch");
    log.clear();
    assert!(log.is_empty());
    log.record("verification_failed", 0, 0, 0, "single_s", "x");
    assert_eq!(log.snapshot()[0].seq, 3, "seq keeps advancing after clear");
}

#[test]
fn audit_events_stamp_the_current_trace() {
    let log = AuditLog::with_capacity(8);
    let sp = trace::span("test_audit_span");
    log.record("verification_failed", 0x9000, 4, 7, "multi_s", "tamper");
    let e = &log.snapshot()[0];
    assert_eq!(e.trace, sp.context().trace);
    assert_eq!(e.span, sp.context().span);
    assert_eq!((e.table_addr, e.region, e.version), (0x9000, 4, 7));
    assert_eq!(e.scheme, "multi_s");
    drop(sp);
    log.record("malformed_response", 0, 0, 0, "", "r");
    assert_eq!(
        log.snapshot()[1].trace,
        TraceId(0),
        "untraced outside spans"
    );
}

#[test]
fn audit_json_export_golden() {
    let log = AuditLog::with_capacity(4);
    log.record(
        "verification_failed",
        4096,
        1,
        2,
        "single_s",
        "checksum tag mismatch",
    );
    let want = "{\"audit_events\":[{\"seq\":0,\"trace\":0,\"span\":0,\
        \"kind\":\"verification_failed\",\"table_addr\":4096,\"region\":1,\
        \"version\":2,\"scheme\":\"single_s\",\
        \"detail\":\"checksum tag mismatch\"}]}\n";
    assert_eq!(log.render_json(), want);
    assert_eq!(
        AuditLog::with_capacity(1).render_json(),
        "{\"audit_events\":[]}\n"
    );
}
