//! Component health scoring and sliding-window anomaly detection.
//!
//! SecNDP's threat model makes *operational* signals *security* signals: a
//! verify-failure spike is possible active tampering (paper §V), a stalled
//! transport rank is an unresponsive untrusted device, a collapsing
//! pad-cache hit rate silently multiplies AES work. This module watches
//! all of them live:
//!
//! - Components (the async transport endpoints, the protocol core, the
//!   pad cache) [`register`](HealthMonitor::register) a check closure with
//!   the process-wide [`monitor`]. Each check folds its component into
//!   [`HealthStatus::Ok`]/[`Degraded`](HealthStatus::Degraded)/
//!   [`Failing`](HealthStatus::Failing) with a human-readable reason;
//!   [`HealthMonitor::report`] aggregates them (worst status wins) and
//!   drives the `/healthz` endpoint of [`serve`](crate::serve).
//! - A background sampler ([`HealthMonitor::start_sampler`]) snapshots the
//!   registry every [`HealthConfig::interval`] into the flight-recorder
//!   ring. Checks read **windowed counter deltas** from those snapshots
//!   through [`HealthCtx`], so a burst ages out of the verdict once the
//!   window slides past it.
//! - [`AnomalyDetector`]s (rate-over-threshold and delta-spike rules) run
//!   on every sample; on trigger the monitor dumps a
//!   [flight-recorder artifact](crate::recorder) to
//!   [`HealthConfig::flight_dir`] so the incident is diagnosable after the
//!   fact.
//!
//! Everything here works with telemetry compiled out: snapshots are then
//! empty (all deltas zero), but liveness-style checks that consult their
//! own state — e.g. transport worker heartbeats — still score honestly.

use crate::recorder::{FlightRecorder, WindowSample};
use crate::registry::{Registry, Snapshot};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Milliseconds since the process-wide monotonic epoch (pinned on first
/// call). Shared by the sampler timestamps, uptime gauge and dumps.
pub fn uptime_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// A component's folded health state, worst-wins ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Operating normally.
    Ok,
    /// Alive but impaired (recent integrity failures, a stalled rank,
    /// cache thrash); `/healthz` still answers 200.
    Degraded,
    /// Unable to make progress (e.g. every transport rank stalled);
    /// `/healthz` answers 503.
    Failing,
}

impl HealthStatus {
    /// The lowercase wire name (`"ok"` / `"degraded"` / `"failing"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Failing => "failing",
        }
    }
}

/// One component's verdict inside a [`HealthReport`].
#[derive(Debug, Clone)]
pub struct ComponentHealth {
    /// Component name as registered (e.g. `"transport-ep0"`).
    pub component: String,
    /// Folded status.
    pub status: HealthStatus,
    /// Human-readable explanation of the status.
    pub reason: String,
}

/// Aggregated output of every registered check.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Worst status across components ([`HealthStatus::Ok`] with none).
    pub status: HealthStatus,
    /// Per-component verdicts, registration order.
    pub components: Vec<ComponentHealth>,
}

impl HealthReport {
    /// The HTTP status `/healthz` answers with: 200 while the process can
    /// serve (ok or degraded), 503 when failing.
    pub fn http_status(&self) -> u16 {
        match self.status {
            HealthStatus::Failing => 503,
            _ => 200,
        }
    }

    /// Renders the report as JSON:
    /// `{"status":"ok","uptime_ms":…,"components":[…]}`.
    pub fn render_json(&self) -> String {
        let comps: Vec<String> = self
            .components
            .iter()
            .map(|c| {
                format!(
                    "{{\"component\":\"{}\",\"status\":\"{}\",\"reason\":\"{}\"}}",
                    crate::export::json_escape(&c.component),
                    c.status.as_str(),
                    crate::export::json_escape(&c.reason),
                )
            })
            .collect();
        format!(
            "{{\"status\":\"{}\",\"uptime_ms\":{},\"components\":[{}]}}\n",
            self.status.as_str(),
            uptime_ms(),
            comps.join(","),
        )
    }
}

/// The sliding window a health check scores against: the newest
/// [`HealthConfig::window`] snapshots from the sampler ring (possibly
/// empty before the sampler has run).
pub struct HealthCtx<'a> {
    samples: &'a [WindowSample],
}

impl HealthCtx<'_> {
    /// Number of snapshots in the window.
    pub fn window_len(&self) -> usize {
        self.samples.len()
    }

    /// Wall-clock span of the window in milliseconds (0 with < 2 samples).
    pub fn window_ms(&self) -> u64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.t_ms.saturating_sub(a.t_ms),
            _ => 0,
        }
    }

    /// How much the counter family `name` (summed across label sets) rose
    /// across the window. Saturates to 0 on < 2 samples or a registry
    /// reset mid-window.
    pub fn counter_delta(&self, name: &str) -> u64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b
                .snapshot
                .counter_total(name)
                .saturating_sub(a.snapshot.counter_total(name)),
            _ => 0,
        }
    }

    /// [`counter_delta`](Self::counter_delta) per second of window span.
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        let ms = self.window_ms();
        if ms == 0 {
            0.0
        } else {
            self.counter_delta(name) as f64 * 1000.0 / ms as f64
        }
    }

    /// The newest snapshot in the window, if any.
    pub fn latest(&self) -> Option<&Snapshot> {
        self.samples.last().map(|s| &s.snapshot)
    }
}

/// An anomaly rule evaluated over the sampler window.
#[derive(Debug, Clone, Copy)]
pub enum DetectorRule {
    /// Triggers when a counter family rises by at least `threshold` across
    /// the window.
    RateOver {
        /// Counter family name.
        metric: &'static str,
        /// Minimum windowed rise that triggers.
        threshold: u64,
    },
    /// Triggers when the newest inter-sample delta is at least `min` *and*
    /// exceeds `factor ×` the mean of the window's earlier deltas — a
    /// sudden spike against recent history (a quiet history counts as
    /// mean 0, so the first burst ≥ `min` triggers).
    DeltaSpike {
        /// Counter family name.
        metric: &'static str,
        /// Spike factor over the mean of prior deltas.
        factor: f64,
        /// Minimum newest delta that can trigger.
        min: u64,
    },
}

/// A named anomaly detector; triggering dumps a flight-recorder artifact.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyDetector {
    /// Detector name, used in the dump reason and for deduplication.
    pub name: &'static str,
    /// The rule evaluated each sample.
    pub rule: DetectorRule,
}

impl AnomalyDetector {
    /// Evaluates the rule over `window` (oldest first); `Some(reason)` on
    /// trigger.
    fn evaluate(&self, window: &[WindowSample]) -> Option<String> {
        if window.len() < 2 {
            return None;
        }
        match self.rule {
            DetectorRule::RateOver { metric, threshold } => {
                let first = window.first()?.snapshot.counter_total(metric);
                let last = window.last()?.snapshot.counter_total(metric);
                let delta = last.saturating_sub(first);
                (delta >= threshold).then(|| {
                    format!("{metric} rose by {delta} (threshold {threshold}) within the window")
                })
            }
            DetectorRule::DeltaSpike {
                metric,
                factor,
                min,
            } => {
                if window.len() < 3 {
                    return None;
                }
                let deltas: Vec<u64> = window
                    .windows(2)
                    .map(|p| {
                        p[1].snapshot
                            .counter_total(metric)
                            .saturating_sub(p[0].snapshot.counter_total(metric))
                    })
                    .collect();
                let (latest, prior) = deltas.split_last()?;
                let mean = prior.iter().sum::<u64>() as f64 / prior.len() as f64;
                (*latest >= min && *latest as f64 > factor * mean).then(|| {
                    format!(
                        "{metric} jumped by {latest} in one sample \
                         (vs mean {mean:.1} over the prior window, factor {factor})"
                    )
                })
            }
        }
    }
}

/// Sampler and flight-recorder tuning.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Background sampling period (default 1 s).
    pub interval: Duration,
    /// Snapshots per detector / check window (default 5).
    pub window: usize,
    /// Snapshots retained in the flight-recorder ring (default 64).
    pub retain: usize,
    /// Directory anomaly dumps are written to (default
    /// [`default_flight_dir`](crate::recorder::default_flight_dir)).
    pub flight_dir: PathBuf,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(1000),
            window: 5,
            retain: 64,
            flight_dir: crate::recorder::default_flight_dir(),
        }
    }
}

impl HealthConfig {
    /// Reads the `SECNDP_HEALTH_INTERVAL_MS`, `SECNDP_HEALTH_WINDOW`,
    /// `SECNDP_FLIGHT_RETAIN` and `SECNDP_FLIGHT_DIR` environment knobs,
    /// falling back to the defaults.
    pub fn from_env() -> Self {
        let d = Self::default();
        let parse = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Self {
            interval: Duration::from_millis(
                parse("SECNDP_HEALTH_INTERVAL_MS", d.interval.as_millis() as u64).max(10),
            ),
            window: parse("SECNDP_HEALTH_WINDOW", d.window as u64).max(2) as usize,
            retain: parse("SECNDP_FLIGHT_RETAIN", d.retain as u64).max(2) as usize,
            flight_dir: crate::recorder::default_flight_dir(),
        }
    }
}

type CheckFn = Box<dyn Fn(&HealthCtx<'_>) -> (HealthStatus, String) + Send + Sync>;

struct CheckEntry {
    id: u64,
    component: String,
    check: CheckFn,
}

struct DetectorState {
    det: AnomalyDetector,
    /// Samples to skip before this detector may re-trigger.
    cooldown: u32,
}

struct MonitorState {
    checks: Vec<CheckEntry>,
    detectors: Vec<DetectorState>,
    recorder: FlightRecorder,
    cfg: HealthConfig,
    last_dump: Option<PathBuf>,
    dump_seq: u64,
    next_id: u64,
}

/// The per-component health registry plus the sampling/anomaly engine.
/// The process-wide instance is [`monitor()`].
pub struct HealthMonitor {
    state: Mutex<MonitorState>,
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.lock();
        f.debug_struct("HealthMonitor")
            .field("checks", &s.checks.len())
            .field("detectors", &s.detectors.len())
            .field("samples", &s.recorder.len())
            .finish()
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthMonitor {
    /// An empty monitor with the default [`HealthConfig`].
    pub fn new() -> Self {
        let cfg = HealthConfig::default();
        Self {
            state: Mutex::new(MonitorState {
                checks: Vec::new(),
                detectors: Vec::new(),
                recorder: FlightRecorder::with_capacity(cfg.retain),
                cfg,
                last_dump: None,
                dump_seq: 0,
                next_id: 1,
            }),
        }
    }

    /// Locks the state, recovering from poisoning: health reporting must
    /// keep working after a panicked check closure.
    fn lock(&self) -> MutexGuard<'_, MonitorState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Replaces the sampler/recorder configuration (resizing the ring).
    pub fn configure(&self, cfg: HealthConfig) {
        let mut s = self.lock();
        s.recorder.set_capacity(cfg.retain);
        s.cfg = cfg;
    }

    /// Registers a component check; the returned handle unregisters it on
    /// drop (call [`HealthCheckHandle::leak`] for process-lifetime
    /// components). The closure maps the current window to a status and a
    /// reason string.
    pub fn register<F>(&'static self, component: &str, check: F) -> HealthCheckHandle
    where
        F: Fn(&HealthCtx<'_>) -> (HealthStatus, String) + Send + Sync + 'static,
    {
        let mut s = self.lock();
        let id = s.next_id;
        s.next_id += 1;
        s.checks.push(CheckEntry {
            id,
            component: component.to_string(),
            check: Box::new(check),
        });
        HealthCheckHandle { id, monitor: self }
    }

    fn unregister(&self, id: u64) {
        self.lock().checks.retain(|c| c.id != id);
    }

    /// Names of the currently registered components, registration order.
    pub fn components(&self) -> Vec<String> {
        self.lock()
            .checks
            .iter()
            .map(|c| c.component.clone())
            .collect()
    }

    /// Adds (or replaces, matched by name) an anomaly detector.
    pub fn add_detector(&self, det: AnomalyDetector) {
        let mut s = self.lock();
        if let Some(existing) = s.detectors.iter_mut().find(|d| d.det.name == det.name) {
            existing.det = det;
        } else {
            s.detectors.push(DetectorState { det, cooldown: 0 });
        }
    }

    /// Installs the stock detectors (idempotent, matched by name):
    ///
    /// | name | rule |
    /// |------|------|
    /// | `verify-failure-burst` | ≥ 4 verify failures within one window |
    /// | `malformed-burst` | ≥ 8 malformed device replies within one window |
    /// | `timeout-spike` | newest-sample timeout delta ≥ 8 and > 4× the prior mean |
    ///
    /// The verify threshold sits above the single deliberate failure the
    /// service bench's tampering self-test records, so a healthy run never
    /// dumps.
    pub fn install_default_detectors(&self) {
        self.add_detector(AnomalyDetector {
            name: "verify-failure-burst",
            rule: DetectorRule::RateOver {
                metric: "secndp_verify_failures_total",
                threshold: 4,
            },
        });
        self.add_detector(AnomalyDetector {
            name: "malformed-burst",
            rule: DetectorRule::RateOver {
                metric: "secndp_malformed_responses_total",
                threshold: 8,
            },
        });
        self.add_detector(AnomalyDetector {
            name: "timeout-spike",
            rule: DetectorRule::DeltaSpike {
                metric: "secndp_transport_timeouts_total",
                factor: 4.0,
                min: 8,
            },
        });
    }

    /// Runs every registered check against the current window and folds
    /// the verdicts (worst status wins; an empty monitor reports Ok).
    pub fn report(&self) -> HealthReport {
        let mut s = self.lock();
        let window = s.cfg.window;
        // Split the borrow: the window slice lives in the recorder, the
        // checks alongside it.
        let MonitorState {
            ref mut recorder,
            ref checks,
            ..
        } = *s;
        let ctx = HealthCtx {
            samples: recorder.window(window),
        };
        let components: Vec<ComponentHealth> = checks
            .iter()
            .map(|c| {
                let (status, reason) = (c.check)(&ctx);
                ComponentHealth {
                    component: c.component.clone(),
                    status,
                    reason,
                }
            })
            .collect();
        let status = components
            .iter()
            .map(|c| c.status)
            .max()
            .unwrap_or(HealthStatus::Ok);
        HealthReport { status, components }
    }

    /// Takes one sample: snapshots `registry` into the recorder ring,
    /// refreshes the uptime gauge, and evaluates every detector over the
    /// new window. Triggered detectors (outside their cooldown of one
    /// window) dump a flight-recorder artifact to
    /// [`HealthConfig::flight_dir`] and count in
    /// `secndp_anomaly_dumps_total`.
    pub fn sample(&self, registry: &Registry) {
        crate::process::touch_uptime();
        // The health sampler doubles as the SLO engine's clock: every
        // window sample also advances the burn-rate baselines.
        crate::slo::engine().sample(registry);
        let sample = WindowSample {
            t_ms: uptime_ms(),
            snapshot: registry.snapshot(),
        };
        let dump = {
            let mut s = self.lock();
            s.recorder.push(sample);
            let window_n = s.cfg.window;
            let MonitorState {
                ref mut recorder,
                ref mut detectors,
                ..
            } = *s;
            let window = recorder.window(window_n);
            let mut reasons = Vec::new();
            for d in detectors.iter_mut() {
                if d.cooldown > 0 {
                    d.cooldown -= 1;
                    continue;
                }
                if let Some(reason) = d.det.evaluate(window) {
                    d.cooldown = window_n as u32;
                    reasons.push(format!("{}: {reason}", d.det.name));
                }
            }
            if reasons.is_empty() {
                None
            } else {
                let reason = reasons.join("; ");
                s.dump_seq += 1;
                let path = s
                    .cfg
                    .flight_dir
                    .join(format!("secndp-flight-{:04}.json", s.dump_seq));
                Some((reason, path, s.recorder.samples()))
            }
        };
        if let Some((reason, path, samples)) = dump {
            crate::counter!(
                "secndp_anomaly_dumps_total",
                "Flight-recorder dumps triggered by anomaly detectors."
            )
            .inc();
            if crate::recorder::write_flight_dump(&path, &reason, &samples).is_ok() {
                self.lock().last_dump = Some(path);
            }
        }
    }

    /// Writes a flight-recorder dump now, regardless of detectors.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write.
    pub fn trigger_dump(&self, reason: &str) -> std::io::Result<PathBuf> {
        let (path, samples) = {
            let mut s = self.lock();
            s.dump_seq += 1;
            let path = s
                .cfg
                .flight_dir
                .join(format!("secndp-flight-{:04}.json", s.dump_seq));
            (path, s.recorder.samples())
        };
        crate::recorder::write_flight_dump(&path, reason, &samples)?;
        self.lock().last_dump = Some(path.clone());
        Ok(path)
    }

    /// Path of the most recent successful dump, if any.
    pub fn last_flight_dump(&self) -> Option<PathBuf> {
        self.lock().last_dump.clone()
    }

    /// The recorder ring contents without blocking: empty when the monitor
    /// lock is held (used by the panic hook, which must never deadlock).
    pub fn try_samples(&self) -> Vec<WindowSample> {
        match self.state.try_lock() {
            Ok(s) => s.recorder.samples(),
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner().recorder.samples(),
            Err(std::sync::TryLockError::WouldBlock) => Vec::new(),
        }
    }

    /// Starts the background sampler: one [`sample`](Self::sample) every
    /// `cfg.interval` until the returned handle drops. Also applies `cfg`
    /// via [`configure`](Self::configure).
    pub fn start_sampler(
        &'static self,
        registry: &'static Registry,
        cfg: HealthConfig,
    ) -> SamplerHandle {
        let interval = cfg.interval;
        self.configure(cfg);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("secndp-health".into())
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    self.sample(registry);
                    // Sleep in short slices so dropping the handle stops
                    // the thread promptly even with a long interval.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !stop2.load(Ordering::SeqCst) {
                        let slice = remaining.min(Duration::from_millis(25));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn health sampler");
        SamplerHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Unregisters its check on drop; see [`HealthMonitor::register`].
pub struct HealthCheckHandle {
    id: u64,
    monitor: &'static HealthMonitor,
}

impl HealthCheckHandle {
    /// Keeps the check registered for the rest of the process (consumes
    /// the handle without unregistering) — for components that live as
    /// long as the process, like the protocol core.
    pub fn leak(self) {
        std::mem::forget(self);
    }
}

impl std::fmt::Debug for HealthCheckHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthCheckHandle")
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for HealthCheckHandle {
    fn drop(&mut self) {
        self.monitor.unregister(self.id);
    }
}

/// Stops the background sampler (and joins its thread) on drop.
#[derive(Debug)]
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The process-wide health monitor `/healthz` reports from.
pub fn monitor() -> &'static HealthMonitor {
    static MONITOR: OnceLock<HealthMonitor> = OnceLock::new();
    MONITOR.get_or_init(HealthMonitor::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(counter: &'static str, value: u64) -> Snapshot {
        // Build a snapshot through a private registry so tests don't
        // disturb the global one.
        let r = Registry::new();
        r.counter(counter, &[], "test").add(value);
        r.snapshot()
    }

    fn window_of(metric: &'static str, values: &[u64]) -> Vec<WindowSample> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| WindowSample {
                t_ms: i as u64 * 100,
                snapshot: snap_with(metric, v),
            })
            .collect()
    }

    #[test]
    fn ctx_deltas_and_rates() {
        let w = window_of("x_total", &[10, 12, 19]);
        let ctx = HealthCtx { samples: &w };
        assert_eq!(ctx.window_len(), 3);
        assert_eq!(ctx.window_ms(), 200);
        #[cfg(feature = "enabled")]
        {
            assert_eq!(ctx.counter_delta("x_total"), 9);
            assert!((ctx.rate_per_sec("x_total") - 45.0).abs() < 1e-9);
        }
        assert_eq!(ctx.counter_delta("missing_total"), 0);
        let empty = HealthCtx { samples: &[] };
        assert_eq!(empty.counter_delta("x_total"), 0);
        assert_eq!(empty.window_ms(), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn rate_over_detector_triggers_on_burst() {
        let det = AnomalyDetector {
            name: "t",
            rule: DetectorRule::RateOver {
                metric: "x_total",
                threshold: 4,
            },
        };
        assert!(det.evaluate(&window_of("x_total", &[0, 1, 3])).is_none());
        let reason = det.evaluate(&window_of("x_total", &[0, 1, 5])).unwrap();
        assert!(reason.contains("rose by 5"), "{reason}");
        // A registry reset mid-window saturates instead of underflowing.
        assert!(det.evaluate(&window_of("x_total", &[9, 0, 2])).is_none());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn delta_spike_detector_wants_a_quiet_history() {
        let det = AnomalyDetector {
            name: "t",
            rule: DetectorRule::DeltaSpike {
                metric: "x_total",
                factor: 4.0,
                min: 8,
            },
        };
        // Steady growth: newest delta (10) is not 4× the mean (10).
        assert!(det
            .evaluate(&window_of("x_total", &[0, 10, 20, 30]))
            .is_none());
        // Quiet then a burst ≥ min.
        assert!(det
            .evaluate(&window_of("x_total", &[5, 5, 5, 15]))
            .is_some());
        // Burst below min never triggers.
        assert!(det.evaluate(&window_of("x_total", &[0, 0, 0, 7])).is_none());
        // Too little history.
        assert!(det.evaluate(&window_of("x_total", &[0, 50])).is_none());
    }

    /// A private leaked monitor, so concurrent unit tests never race on
    /// the global one's fold.
    fn private_monitor() -> &'static HealthMonitor {
        Box::leak(Box::new(HealthMonitor::new()))
    }

    #[test]
    fn report_folds_worst_status_and_handles_unregister() {
        let m = private_monitor();
        let h1 = m.register("unit-ok", |_| (HealthStatus::Ok, "fine".into()));
        let h2 = m.register("unit-degraded", |_| {
            (HealthStatus::Degraded, "limping".into())
        });
        let r = m.report();
        assert_eq!(r.status, HealthStatus::Degraded);
        let mine: Vec<_> = r
            .components
            .iter()
            .filter(|c| c.component.starts_with("unit-"))
            .collect();
        assert_eq!(mine.len(), 2);
        assert!(r.render_json().contains("\"component\":\"unit-degraded\""));
        assert_eq!(r.http_status(), 200);
        drop(h2);
        let r = m.report();
        assert!(!r.components.iter().any(|c| c.component == "unit-degraded"));
        drop(h1);
        assert!(!m.components().iter().any(|c| c.starts_with("unit-")));
    }

    #[test]
    fn failing_reports_503() {
        let m = private_monitor();
        let h = m.register("unit-failing", |_| (HealthStatus::Failing, "dead".into()));
        let r = m.report();
        assert_eq!(r.status, HealthStatus::Failing);
        assert_eq!(r.http_status(), 503);
        drop(h);
    }

    #[test]
    fn detector_dedup_by_name() {
        let m = HealthMonitor::new();
        m.add_detector(AnomalyDetector {
            name: "dup",
            rule: DetectorRule::RateOver {
                metric: "a",
                threshold: 1,
            },
        });
        m.add_detector(AnomalyDetector {
            name: "dup",
            rule: DetectorRule::RateOver {
                metric: "b",
                threshold: 2,
            },
        });
        assert_eq!(m.lock().detectors.len(), 1);
        m.install_default_detectors();
        m.install_default_detectors();
        assert_eq!(m.lock().detectors.len(), 4);
    }
}
