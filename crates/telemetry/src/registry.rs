//! The metric registry: named instruments plus snapshot extraction.

use crate::metrics::{Counter, FloatGauge, Gauge, Histogram, HistogramSnapshot};
#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
use std::sync::Arc;
#[cfg(feature = "enabled")]
use std::sync::Mutex;

/// Label set type: a small static slice of `(key, value)` pairs.
pub type Labels = [(&'static str, &'static str)];

/// What kind of instrument a metric is (drives the Prometheus `# TYPE`
/// line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Integer or float last-value gauge.
    Gauge,
    /// Log2-bucketed histogram.
    Histogram,
}

#[cfg(feature = "enabled")]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    FloatGauge(Arc<FloatGauge>),
    Histogram(Arc<Histogram>),
}

#[cfg(feature = "enabled")]
struct Entry {
    name: &'static str,
    labels: Vec<(&'static str, &'static str)>,
    help: &'static str,
    metric: Metric,
}

/// A collection of named metrics.
///
/// The process-wide instance is [`global()`]; tests and tools can build
/// private registries. Registration is idempotent: looking up an existing
/// `(name, labels)` returns the same shared instrument.
#[derive(Default)]
pub struct Registry {
    #[cfg(feature = "enabled")]
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.snapshot().metrics.len())
            .finish()
    }
}

/// Renders the canonical identity `name{k="v",…}` of a metric.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn render_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", pairs.join(","))
}

macro_rules! register_fn {
    ($fn_name:ident, $ty:ident, $variant:ident, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Returns the existing instrument if `(name, labels)` was already
        /// registered.
        ///
        /// # Panics
        ///
        /// Panics if the same `(name, labels)` was registered as a
        /// different instrument kind.
        pub fn $fn_name(
            &self,
            name: &'static str,
            labels: &Labels,
            help: &'static str,
        ) -> Arc<$ty> {
            #[cfg(feature = "enabled")]
            {
                let key = render_key(name, labels);
                let mut inner = self.inner.lock().unwrap();
                let entry = inner.entry(key).or_insert_with(|| Entry {
                    name,
                    labels: labels.to_vec(),
                    help,
                    metric: Metric::$variant(Arc::new($ty::new())),
                });
                match &entry.metric {
                    Metric::$variant(m) => Arc::clone(m),
                    _ => panic!(
                        "metric {:?} re-registered as a different kind",
                        render_key(name, labels)
                    ),
                }
            }
            #[cfg(not(feature = "enabled"))]
            {
                let _ = (name, labels, help);
                Arc::new($ty::new())
            }
        }
    };
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    register_fn!(
        counter,
        Counter,
        Counter,
        "Registers or looks up a counter."
    );
    register_fn!(
        gauge,
        Gauge,
        Gauge,
        "Registers or looks up an integer gauge."
    );
    register_fn!(
        float_gauge,
        FloatGauge,
        FloatGauge,
        "Registers or looks up a float gauge."
    );
    register_fn!(
        histogram,
        Histogram,
        Histogram,
        "Registers or looks up a histogram."
    );

    /// A point-in-time copy of every registered metric, sorted by
    /// `name{labels}`. Empty when telemetry is compiled out.
    pub fn snapshot(&self) -> Snapshot {
        #[cfg(feature = "enabled")]
        {
            let inner = self.inner.lock().unwrap();
            Snapshot {
                metrics: inner
                    .values()
                    .map(|e| MetricSnapshot {
                        name: e.name,
                        labels: e.labels.clone(),
                        help: e.help,
                        value: match &e.metric {
                            Metric::Counter(c) => Value::Counter(c.get()),
                            Metric::Gauge(g) => Value::Gauge(g.get()),
                            Metric::FloatGauge(g) => Value::Float(g.get()),
                            Metric::Histogram(h) => Value::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        Snapshot {
            metrics: Vec::new(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        crate::export::render_prometheus(&self.snapshot())
    }

    /// Renders the registry as a JSON document (see `DESIGN.md` §
    /// Telemetry for the schema).
    pub fn render_json(&self) -> String {
        crate::export::render_json(&self.snapshot())
    }

    /// Zeroes every registered metric (instruments stay registered and
    /// shared). Used between benchmark sweep rows and in tests.
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        for e in self.inner.lock().unwrap().values() {
            match &e.metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::FloatGauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-wide registry every [`counter!`](crate::counter!)-style
/// macro registers into.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// A point-in-time copy of a [`Registry`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All metrics, sorted by `name{labels}`.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// The metric with exactly this `(name, labels)` identity, if present.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| {
            m.name == name && m.labels.len() == labels.len() && {
                m.labels
                    .iter()
                    .zip(labels)
                    .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
            }
        })
    }

    /// Sum of all counter series sharing `name` (across label sets).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match m.value {
                Value::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// The histogram snapshot for `(name, labels)`, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.get(name, labels)?.value {
            Value::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// One metric inside a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Label pairs (possibly empty).
    pub labels: Vec<(&'static str, &'static str)>,
    /// Help text.
    pub help: &'static str,
    /// The captured value.
    pub value: Value,
}

impl MetricSnapshot {
    /// The instrument kind.
    pub fn kind(&self) -> MetricKind {
        match self.value {
            Value::Counter(_) => MetricKind::Counter,
            Value::Gauge(_) | Value::Float(_) => MetricKind::Gauge,
            Value::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A captured metric value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Counter value.
    Counter(u64),
    /// Integer gauge value.
    Gauge(i64),
    /// Float gauge value.
    Float(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}
