//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network and no crate
//! registry, so external dependencies cannot be resolved. This crate vendors
//! the *small* slice of the `rand` 0.9 API the workspace actually uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`] and
//! [`Rng::random_range`] — on top of xoshiro256++ seeded via SplitMix64.
//!
//! It is deterministic and statistically adequate for generating synthetic
//! workloads, traces and test data. It is **not** cryptographically secure;
//! nothing in SecNDP derives key material from it (keys come from
//! caller-supplied bytes, pads from AES).

/// Uniformly samplable types for [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — used to expand a 64-bit seed into xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator (xoshiro256++).
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not a CSPRNG;
    /// the workspace only uses it for synthetic data, never for secrets.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5u32..5);
    }
}
