//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network and no crate registry, so the real
//! `criterion` cannot be resolved. This crate implements the subset the
//! workspace's benches use — [`black_box`], [`criterion_group!`],
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::throughput`] / [`bench_function`](BenchmarkGroup::bench_function) /
//! [`finish`](BenchmarkGroup::finish), and [`Bencher::iter`] — on top of a
//! simple wall-clock timer.
//!
//! Methodology: each benchmark is warmed up for ~50 ms, then measured over
//! ~400 ms of batched runs; the *median* batch time is reported together
//! with derived throughput. No statistical regression analysis, plots, or
//! saved baselines — numbers are printed to stdout only. Passing `--test`
//! (as `cargo test --benches` does) runs every benchmark exactly once as a
//! smoke test.

use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting
/// benchmark bodies or hoisting their inputs.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration annotation used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`];
/// [`iter`](Bencher::iter) runs and times the benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark registry/driver, handed to each function named in
/// [`criterion_group!`].
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing a [`Throughput`] annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration used for throughput reporting on
    /// subsequent [`bench_function`](Self::bench_function) calls.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if self.criterion.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {full} ... ok (1 iteration, test mode)");
            return;
        }

        // Calibration: grow the batch size until one batch costs >= 1 ms.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(4);
        }

        // Warm-up: ~50 ms of batches.
        let warm_deadline = Instant::now() + Duration::from_millis(50);
        while Instant::now() < warm_deadline {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
        }

        // Measurement: ~400 ms of batches, at least 5 samples.
        let mut samples: Vec<f64> = Vec::new();
        let deadline = Instant::now() + Duration::from_millis(400);
        while Instant::now() < deadline || samples.len() < 5 {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = samples[samples.len() / 2];

        let per_iter = format_time(median);
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / median / (1024.0 * 1024.0 * 1024.0);
                println!("{full:<48} {per_iter:>12}/iter  {gib:>10.3} GiB/s");
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / median / 1.0e6;
                println!("{full:<48} {per_iter:>12}/iter  {meps:>10.3} Melem/s");
            }
            None => println!("{full:<48} {per_iter:>12}/iter"),
        }
    }

    /// Ends the group (separator line; kept for API compatibility).
    pub fn finish(self) {
        println!();
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group: `criterion_group!(name, fn_a, fn_b, ...)`
/// produces a `name()` runner invoking each function with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $(
                $target(&mut c);
            )+
        }
    };
}

/// Declares the bench binary's `main`, running each group from
/// [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_runs() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2.0e-3).ends_with(" ms"));
        assert!(format_time(2.0e-6).ends_with(" µs"));
        assert!(format_time(2.0e-9).ends_with(" ns"));
    }
}
