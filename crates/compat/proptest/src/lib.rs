//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network and no crate registry, so the real
//! `proptest` cannot be resolved. This crate reimplements the subset the
//! workspace's tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! - [`strategy::Strategy`] with `prop_map`, implemented for integer/float
//!   ranges, `any::<T>()`, tuples, and [`collection::vec`],
//! - [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test name, so failures reproduce). **No shrinking** is
//! performed — a failing case reports the values that failed as-is. That is
//! a quality-of-diagnostics regression versus real proptest, not a coverage
//! one.

use rand::rngs::StdRng;

/// Strategy trait and combinators.
pub mod strategy {
    use super::TestRng;

    /// A generator of values of `Self::Value` — the proptest `Strategy`
    /// trait, minus shrinking.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`; gives up (panics) after
        /// 1000 consecutive rejections.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                whence,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.whence
            )
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! signed_range_strategy {
        ($($t:ty as $u:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    let off = rand::Rng::random_range(rng, 0..span as u64) as $u;
                    (self.start as $u).wrapping_add(off) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::Rng::random(rng)
                }
            }
        )*};
    }

    arb_via_standard!(
        u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
    );

    /// The strategy returned by [`any`](super::any).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// A strategy generating any value of `T` (uniform over the representable
/// values for primitives).
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Length specifications accepted by [`vec`]: an exact `usize`, a
    /// `Range<usize>`, or a `RangeInclusive<usize>`.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections tolerated.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(&'static str),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given reason (mirrors proptest's
        /// `TestCaseError::fail`).
        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }

        /// A rejection with the given reason (mirrors proptest's
        /// `TestCaseError::reject`); the case is retried.
        pub fn reject(_reason: impl Into<String>) -> Self {
            Self::Reject("explicit reject")
        }
    }

    /// FNV-1a over the test name — the deterministic per-test seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// The RNG handed to strategies (the compat `rand::rngs::StdRng`).
pub type TestRng = StdRng;

/// Everything a proptest-based test module needs.
pub mod prelude {
    pub use super::any;
    pub use super::arbitrary::Arbitrary;
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = <$crate::TestRng as ::rand::SeedableRng>::seed_from_u64(
                    $crate::test_runner::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case_no: u32 = 0;
                while passed < config.cases {
                    case_no += 1;
                    let __values = ($(
                        $crate::strategy::Strategy::generate(&{ $strat }, &mut rng),
                    )+);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            let ($($arg,)+) = __values;
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match __outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest {}: too many prop_assume! rejections ({why})",
                                stringify!($name),
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {case_no}: {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    l,
                    r
                );
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                    stringify!($lhs),
                    stringify!($rhs),
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    l
                );
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}\n  {}",
                    stringify!($lhs),
                    stringify!($rhs),
                    l,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Rejects the current case (retried with fresh inputs) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn mapped_strategy_applies(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..100, 0u64..100)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn exact_len_vec(v in crate::collection::vec(any::<u32>(), 12)) {
            prop_assert_eq!(v.len(), 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_accepted(x in 0u8..=255) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #[test]
            fn inner(x in 0u32..10) {
                prop_assert!(x < 5);
            }
        }
        inner();
    }
}
