//! Criterion benchmarks of the cycle-level simulator itself (simulation
//! throughput, not simulated performance), plus an NDP_reg ablation that
//! reports the simulated cycle counts as auxiliary output.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use secndp_sim::config::{NdpConfig, SimConfig};
use secndp_sim::exec::{simulate, Mode};
use secndp_sim::trace::WorkloadTrace;

fn bench_simulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    let trace = WorkloadTrace::uniform_sls(1 << 24, 128, 80, 16, 3);
    let lines = trace.total_data_bytes() / 64;
    g.throughput(Throughput::Elements(lines));
    for (name, mode) in [
        ("non_ndp", Mode::NonNdp),
        ("ndp", Mode::UnprotectedNdp),
        ("secndp_enc", Mode::SecNdpEnc),
    ] {
        let cfg = SimConfig::paper_default(NdpConfig {
            ndp_rank: 8,
            ndp_reg: 8,
        });
        g.bench_function(name, |b| {
            b.iter(|| black_box(simulate(black_box(&trace), mode, &cfg)))
        });
    }
    g.finish();
}

fn bench_reg_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: NDP_reg load-balancing effect on irregular SLS.
    let trace = WorkloadTrace::uniform_sls(1 << 24, 128, 80, 32, 5);
    let mut g = c.benchmark_group("ndp_reg_ablation");
    for reg in [1usize, 4, 8, 16] {
        let cfg = SimConfig::paper_default(NdpConfig {
            ndp_rank: 8,
            ndp_reg: reg,
        });
        // Report simulated cycles once per configuration.
        let cycles = simulate(&trace, Mode::UnprotectedNdp, &cfg).total_cycles;
        println!("ndp_reg={reg}: simulated {cycles} cycles");
        g.bench_function(format!("reg{reg}"), |b| {
            b.iter(|| black_box(simulate(black_box(&trace), Mode::UnprotectedNdp, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulate, bench_reg_ablation);
criterion_main!(benches);
