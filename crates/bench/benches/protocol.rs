//! Criterion benchmarks of the full offload protocol (Algorithms 4/5):
//! weighted summation across pooling factors, with and without
//! verification, and the checksum-scheme ablation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use secndp_core::checksum::ChecksumScheme;
use secndp_core::{HonestNdp, SecretKey, TrustedProcessor, VersionManager};

fn setup(
    scheme: ChecksumScheme,
    rows: usize,
    cols: usize,
) -> (TrustedProcessor, HonestNdp, secndp_core::TableHandle) {
    let mut cpu = TrustedProcessor::with_options(
        SecretKey::from_bytes([9; 16]),
        scheme,
        VersionManager::new(),
    );
    let mut ndp = HonestNdp::new();
    let pt: Vec<u32> = (0..rows * cols).map(|x| (x % 1000) as u32).collect();
    let table = cpu.encrypt_table(&pt, rows, cols, 0x1000).unwrap();
    let handle = cpu.publish(&table, &mut ndp).unwrap();
    (cpu, ndp, handle)
}

fn bench_weighted_sum(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_weighted_sum");
    for pf in [10usize, 40, 80] {
        let (cpu, ndp, handle) = setup(ChecksumScheme::SingleS, 1024, 32);
        let idx: Vec<usize> = (0..pf).map(|k| (k * 131) % 1024).collect();
        let w = vec![3u32; pf];
        g.throughput(Throughput::Bytes((pf * 32 * 4) as u64));
        g.bench_function(format!("pf{pf}_unverified"), |b| {
            b.iter(|| {
                black_box(
                    cpu.weighted_sum(&handle, &ndp, black_box(&idx), &w, false)
                        .unwrap(),
                )
            })
        });
        g.bench_function(format!("pf{pf}_verified"), |b| {
            b.iter(|| {
                black_box(
                    cpu.weighted_sum(&handle, &ndp, black_box(&idx), &w, true)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_checksum_scheme_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: single-s (Alg 2) vs multi-s (Alg 8) tags.
    let mut g = c.benchmark_group("protocol_scheme_ablation");
    for (name, scheme) in [
        ("single_s", ChecksumScheme::SingleS),
        ("multi_s4", ChecksumScheme::MultiS { cnt: 4 }),
    ] {
        let (cpu, ndp, handle) = setup(scheme, 512, 32);
        let idx: Vec<usize> = (0..40).map(|k| (k * 37) % 512).collect();
        let w = vec![2u32; 40];
        g.bench_function(format!("verify_{name}"), |b| {
            b.iter(|| {
                black_box(
                    cpu.weighted_sum(&handle, &ndp, black_box(&idx), &w, true)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_encrypt_publish(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_init");
    g.throughput(Throughput::Bytes(1024 * 32 * 4));
    g.bench_function("encrypt_table_1024x32_with_tags", |b| {
        let pt: Vec<u32> = (0..1024 * 32).map(|x| x as u32).collect();
        b.iter(|| {
            // A large-capacity manager so iterations don't exhaust regions.
            let mut cpu = TrustedProcessor::with_options(
                SecretKey::from_bytes([9; 16]),
                ChecksumScheme::SingleS,
                VersionManager::with_capacity(usize::MAX),
            );
            black_box(cpu.encrypt_table(black_box(&pt), 1024, 32, 0).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_weighted_sum,
    bench_checksum_scheme_ablation,
    bench_encrypt_publish
);
criterion_main!(benches);
