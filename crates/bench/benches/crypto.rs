//! Criterion microbenchmarks for the cryptographic kernels: AES, pad
//! generation, field arithmetic, checksums, and table encryption.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use secndp_arith::mersenne::Fq;
use secndp_cipher::aes::{Aes128, BlockCipher};
use secndp_cipher::aes_fast::Aes128Fast;
use secndp_cipher::otp::{Domain, OtpGenerator, PadPlanner};
use secndp_core::checksum::{row_checksum, ChecksumScheme};
use secndp_core::encrypt::encrypt_elements;
use secndp_core::layout::TableLayout;

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new(&[7u8; 16]);
    let mut g = c.benchmark_group("aes");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        let blk = [0x42u8; 16];
        b.iter(|| black_box(aes.encrypt_block(black_box(&blk))))
    });
    g.finish();
}

fn bench_otp(c: &mut Criterion) {
    let otp = OtpGenerator::new(Aes128::new(&[7u8; 16]));
    let mut g = c.benchmark_group("otp");
    for bytes in [128usize, 4096] {
        g.throughput(Throughput::Bytes(bytes as u64));
        g.bench_function(format!("pad_{bytes}B"), |b| {
            b.iter(|| black_box(otp.data_pad_bytes(black_box(0x1000), bytes, 3)))
        });
    }
    g.finish();
}

/// Pad generation for an NDP packet of 64 rows × 256 u32 columns (64 KiB,
/// 4096 cipher blocks): the seed scalar path (reference AES, one call per
/// block) against the batched and planner paths introduced with the
/// `PadPlanner`.
fn bench_pad_batch(c: &mut Criterion) {
    let rows = 64usize;
    let row_bytes = 256usize * 4;
    let reference = OtpGenerator::new(Aes128::new(&[7u8; 16]));
    let fast = OtpGenerator::new(Aes128Fast::new(&[7u8; 16]));
    let mut g = c.benchmark_group("pad_batch_64x256_u32");
    g.throughput(Throughput::Bytes((rows * row_bytes) as u64));
    // The seed hot path: byte-oriented reference AES, scalar block loop.
    g.bench_function("scalar_reference", |b| {
        b.iter(|| {
            for i in 0..rows {
                black_box(reference.data_pad_bytes_scalar((i * row_bytes) as u64, row_bytes, 3));
            }
        })
    });
    g.bench_function("scalar_fast", |b| {
        b.iter(|| {
            for i in 0..rows {
                black_box(fast.data_pad_bytes_scalar((i * row_bytes) as u64, row_bytes, 3));
            }
        })
    });
    // Per-row batches through encrypt_blocks_into (4-way interleaved).
    g.bench_function("batched_per_row", |b| {
        b.iter(|| {
            for i in 0..rows {
                black_box(fast.data_pad_bytes((i * row_bytes) as u64, row_bytes, 3));
            }
        })
    });
    // One planned batch for the whole packet: a single 4096-block pass,
    // thread-parallel above PARALLEL_THRESHOLD_BLOCKS on multi-core hosts.
    g.bench_function("planned_batch_parallel", |b| {
        let mut planner = PadPlanner::new();
        b.iter(|| {
            planner.reset();
            let ranges: Vec<_> = (0..rows)
                .map(|i| planner.request_bytes(Domain::Data, (i * row_bytes) as u64, row_bytes, 3))
                .collect();
            planner.execute(fast.cipher());
            for r in &ranges {
                black_box(planner.pad_bytes(r));
            }
        })
    });
    g.finish();
}

fn bench_field(c: &mut Criterion) {
    let mut g = c.benchmark_group("mersenne_fq");
    let a = Fq::new(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
    let b_ = Fq::new(0xfedc_ba98_7654_3210_fedc_ba98_7654_3210);
    g.bench_function("mul", |b| {
        b.iter(|| black_box(black_box(a) * black_box(b_)))
    });
    g.bench_function("add", |b| {
        b.iter(|| black_box(black_box(a) + black_box(b_)))
    });
    g.bench_function("inv", |b| b.iter(|| black_box(black_box(a).inv())));
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    let row: Vec<u32> = (0..1024).collect();
    let single = [Fq::new(0xdeadbeef)];
    let multi: Vec<Fq> = (0..4u64).map(|k| Fq::new(k as u128 + 99)).collect();
    g.throughput(Throughput::Elements(1024));
    // Ablation: Algorithm 2 (single s) vs Algorithm 8 (multi s).
    g.bench_function("alg2_single_s_m1024", |b| {
        b.iter(|| black_box(row_checksum(black_box(&row), &single)))
    });
    g.bench_function("alg8_multi_s4_m1024", |b| {
        b.iter(|| black_box(row_checksum(black_box(&row), &multi)))
    });
    g.finish();
    let _ = ChecksumScheme::SingleS; // linked for doc purposes
}

fn bench_encrypt(c: &mut Criterion) {
    let otp = OtpGenerator::new(Aes128::new(&[7u8; 16]));
    let mut g = c.benchmark_group("arith_encrypt");
    for (rows, cols) in [(64usize, 32usize), (256, 32)] {
        let layout = TableLayout::new::<u32>(0, rows, cols).unwrap();
        let pt: Vec<u32> = (0..rows * cols).map(|x| x as u32).collect();
        g.throughput(Throughput::Bytes((rows * cols * 4) as u64));
        g.bench_function(format!("alg1_{rows}x{cols}_u32"), |b| {
            b.iter(|| black_box(encrypt_elements(&otp, black_box(&pt), &layout, 5).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_aes,
    bench_otp,
    bench_pad_batch,
    bench_field,
    bench_checksum,
    bench_encrypt
);
criterion_main!(benches);
