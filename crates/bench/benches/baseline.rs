//! Criterion benchmarks comparing SecNDP against the conventional TEE
//! memory-protection baseline (Figure 2), plus the integrity-tree and
//! fast-AES substrates.
//!
//! The headline comparison: serving one PF = 80 pooling query.
//! - Conventional TEE: fetch + XOR-decrypt + MAC-verify all 80 rows (two
//!   64-byte lines each), then sum on the CPU.
//! - SecNDP: the device sums ciphertext; the processor regenerates pads
//!   for the same 80 rows and adds once — same pad work, *no per-line MAC
//!   checks, and the data never crosses the bus* (the bus saving is what
//!   the cycle-level simulator quantifies; here we measure the on-chip
//!   crypto work).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use secndp_cipher::aes::{Aes128, BlockCipher};
use secndp_cipher::aes_fast::Aes128Fast;
use secndp_core::baseline::{ProtectedMemory, LINE};
use secndp_core::integrity_tree::CounterTree;
use secndp_core::{HonestNdp, SecretKey, TrustedProcessor};

const PF: usize = 80;
const ROWS: usize = 1024;
const COLS: usize = 32; // 32 × u32 = 128 B = 2 lines

fn bench_query_tee_vs_secndp(c: &mut Criterion) {
    let mut g = c.benchmark_group("one_query_pf80");
    g.throughput(Throughput::Bytes((PF * COLS * 4) as u64));

    // Conventional TEE: protected memory holding the table line by line.
    let mut mem = ProtectedMemory::new([0x55; 16]);
    for i in 0..(ROWS * COLS * 4 / LINE) {
        let line: [u8; LINE] = core::array::from_fn(|b| (i * 7 + b) as u8);
        mem.write_line((i * LINE) as u64, &line);
    }
    let indices: Vec<usize> = (0..PF).map(|k| (k * 131) % ROWS).collect();
    g.bench_function("tee_fetch_decrypt_verify_sum", |b| {
        b.iter(|| {
            let mut acc = vec![0u32; COLS];
            for &i in &indices {
                // Two lines per 128-byte row.
                for half in 0..2 {
                    let addr = (i * COLS * 4 + half * LINE) as u64;
                    let line = mem.read_line(black_box(addr)).unwrap();
                    for (j, chunk) in line.chunks_exact(4).enumerate() {
                        acc[half * 16 + j] = acc[half * 16 + j]
                            .wrapping_add(u32::from_le_bytes(chunk.try_into().unwrap()));
                    }
                }
            }
            black_box(acc)
        })
    });

    // SecNDP: device-side sum + processor pad regeneration + verify.
    let mut cpu = TrustedProcessor::new(SecretKey::from_bytes([0x55; 16]));
    let mut ndp = HonestNdp::new();
    let pt: Vec<u32> = (0..ROWS * COLS).map(|x| x as u32).collect();
    let table = cpu.encrypt_table(&pt, ROWS, COLS, 0x1000).unwrap();
    let handle = cpu.publish(&table, &mut ndp).unwrap();
    let weights = vec![1u32; PF];
    g.bench_function("secndp_offload_verified", |b| {
        b.iter(|| {
            black_box(
                cpu.weighted_sum(&handle, &ndp, black_box(&indices), &weights, true)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_aes_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("aes_backends");
    g.throughput(Throughput::Bytes(16));
    let blk = [0x42u8; 16];
    let slow = Aes128::new(&[7; 16]);
    g.bench_function("reference", |b| {
        b.iter(|| black_box(slow.encrypt_block(black_box(&blk))))
    });
    let fast = Aes128Fast::new(&[7; 16]);
    g.bench_function("t_table", |b| {
        b.iter(|| black_box(fast.encrypt_block(black_box(&blk))))
    });
    g.finish();
}

fn bench_integrity_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("integrity_tree");
    for n in [64usize, 4096] {
        let mut tree = CounterTree::new([9; 16], n);
        g.bench_function(format!("increment_n{n}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 17) % n;
                black_box(tree.increment(black_box(i)).unwrap())
            })
        });
        let tree = CounterTree::new([9; 16], n);
        g.bench_function(format!("verified_read_n{n}"), |b| {
            b.iter(|| black_box(tree.read(black_box(n / 2)).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_query_tee_vs_secndp,
    bench_aes_backends,
    bench_integrity_tree
);
criterion_main!(benches);
