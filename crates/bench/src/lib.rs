//! Shared harness for the per-table / per-figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table3` | Table III — end-to-end speedups vs non-NDP, SGX reference |
//! | `fig7`   | Figure 7 — SLS/analytics speedup vs #AES engines × NDP knobs |
//! | `fig8`   | Figure 8 — % packets bottlenecked by decryption bandwidth |
//! | `fig9`   | Figure 9 — verification-tag placement comparison |
//! | `fig10`  | Figure 10 — decryption bottleneck per placement |
//! | `fig11`  | Figure 11 — end-to-end breakdown and batch scaling |
//! | `table4` | Table IV — quantization accuracy (LogLoss) |
//! | `table5` | Table V — memory energy, plus engine area (§VII-C) |
//! | `ablation` | DESIGN.md ablations: address mapping, scheduler, checksum scheme |
//! | `simulate` | free-form CLI simulation (built-in workloads or trace files) |
//! | `service`  | open-loop load sweep with response-time percentiles |
//!
//! All binaries accept an optional first argument scaling the batch/query
//! count (default chosen so each binary finishes in seconds in release
//! mode; the paper's full batch of 256 can be requested explicitly).

use secndp_sim::config::{NdpConfig, SimConfig};
use secndp_sim::exec::{simulate, Mode, SimReport};
use secndp_sim::trace::WorkloadTrace;
use secndp_workloads::dlrm::model::{end_to_end_ns, sls_trace};
use secndp_workloads::dlrm::DlrmConfig;
use secndp_workloads::medical::GeneDataset;

/// Pooling factor used for the headline DLRM results (paper: PF = 80).
pub const HEADLINE_PF: usize = 80;

/// Default batch size for the harness (paper Table III uses 256; the
/// speedups are batch-insensitive for SLS-bound workloads, so the default
/// keeps runtimes short).
pub const DEFAULT_BATCH: usize = 64;

/// Flags that consume a following value (so the batch-size scan can skip
/// them in either `--flag value` or `--flag=value` form).
const VALUE_FLAGS: &[&str] = &[
    "--metrics-json",
    "--trace-out",
    "--profile-out",
    "--pad-cache-blocks",
    "--transport-ranks",
    "--transport-window",
    "--transport-timeout-ms",
    "--serve-metrics",
    "--hold-secs",
];

/// Parses the optional batch-size CLI argument: the first argument that is
/// not a `--flag` (so `--metrics-json out.json 256` and
/// `256 --trace-out trace.json` both work).
pub fn batch_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            let _ = args.next(); // skip the flag's value
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        if let Ok(v) = a.parse() {
            return v;
        }
    }
    DEFAULT_BATCH
}

/// The path given via `--<flag> <path>` (or `--<flag>=<path>`), if any.
fn flag_path(flag: &str) -> Option<std::path::PathBuf> {
    let prefixed = format!("{flag}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(p) = a.strip_prefix(&prefixed) {
            return Some(std::path::PathBuf::from(p));
        }
    }
    None
}

/// The path given via `--metrics-json <path>` (or `--metrics-json=<path>`),
/// if any.
pub fn metrics_json_path() -> Option<std::path::PathBuf> {
    flag_path("--metrics-json")
}

/// The path given via `--trace-out <path>` (or `--trace-out=<path>`), if
/// any.
pub fn trace_out_path() -> Option<std::path::PathBuf> {
    flag_path("--trace-out")
}

/// The path given via `--profile-out <path>` (or `--profile-out=<path>`),
/// if any.
pub fn profile_out_path() -> Option<std::path::PathBuf> {
    flag_path("--profile-out")
}

/// The cross-query pad-cache capacity requested via
/// `--pad-cache-blocks <n>` (or `--pad-cache-blocks=<n>`), if any.
/// `0` keeps the cache compiled in but disabled. Without the flag,
/// binaries use the processor default (on, `SECNDP_PAD_CACHE_BLOCKS`
/// overridable).
pub fn pad_cache_blocks_from_args() -> Option<usize> {
    parse_pad_cache_blocks(std::env::args().skip(1))
}

fn parse_pad_cache_blocks(args: impl Iterator<Item = String>) -> Option<usize> {
    parse_value_flag("--pad-cache-blocks", args)
}

/// Parses `--<flag> <v>` / `--<flag>=<v>` from an argument stream.
/// Public so single-purpose binaries (e.g. the chaos `soak` driver) can
/// reuse it for their own flags.
pub fn parse_value_flag<T: std::str::FromStr>(
    flag: &str,
    args: impl Iterator<Item = String>,
) -> Option<T> {
    let prefixed = format!("{flag}=");
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix(&prefixed) {
            return v.parse().ok();
        }
    }
    None
}

/// Device-rank count for the async-transport bench leg, via
/// `--transport-ranks <n>` (or `--transport-ranks=<n>`), if any.
pub fn transport_ranks_from_args() -> Option<usize> {
    parse_value_flag("--transport-ranks", std::env::args().skip(1))
}

/// In-flight window for the async-transport bench leg, via
/// `--transport-window <n>`, if any.
pub fn transport_window_from_args() -> Option<usize> {
    parse_value_flag("--transport-window", std::env::args().skip(1))
}

/// Per-request deadline for the async-transport bench leg, via
/// `--transport-timeout-ms <ms>`, if any.
pub fn transport_timeout_ms_from_args() -> Option<u64> {
    parse_value_flag("--transport-timeout-ms", std::env::args().skip(1))
}

/// The live-scrape address for the `service` bench, via
/// `--serve-metrics <addr>` (or `--serve-metrics=<addr>`), falling back to
/// the `SECNDP_METRICS_ADDR` environment variable. `None` leaves the
/// scrape server off.
pub fn serve_metrics_addr() -> Option<String> {
    parse_value_flag("--serve-metrics", std::env::args().skip(1))
        .or_else(|| std::env::var("SECNDP_METRICS_ADDR").ok())
}

/// How long the `service` bench should stay alive (serving scrapes) after
/// the sweep completes, via `--hold-secs <n>`, if any. Used by the CI
/// health-smoke job to keep `/healthz` up while it curls.
pub fn hold_secs_from_args() -> Option<u64> {
    parse_value_flag("--hold-secs", std::env::args().skip(1))
}

/// Writes the global telemetry registry as JSON to the `--metrics-json`
/// path, when the flag is present. Every reproduction binary calls this
/// once on exit; without the flag (or with telemetry compiled out, which
/// yields an empty snapshot) it does nothing observable beyond the write.
pub fn write_metrics_json_if_requested() {
    if let Some(path) = metrics_json_path() {
        let json = secndp_telemetry::global().render_json();
        match std::fs::write(&path, &json) {
            Ok(()) => println!("\nmetrics snapshot written to {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// Writes the continuous profile as flamegraph-ready collapsed-stack text
/// to the `--profile-out` path, when the flag is present (pipe the file
/// through `flamegraph.pl` or drop it into <https://www.speedscope.app>).
/// Folds whatever is still pending in the span journal first, so the dump
/// covers every completed span. With telemetry compiled out the file is
/// empty but valid.
pub fn write_profile_if_requested() {
    if let Some(path) = profile_out_path() {
        let profiler = secndp_telemetry::profile::profiler();
        profiler.fold(secndp_telemetry::trace::journal());
        let collapsed = profiler.render_collapsed();
        match std::fs::write(&path, &collapsed) {
            Ok(()) => println!(
                "collapsed-stack profile written to {} ({} stacks)",
                path.display(),
                collapsed.lines().count()
            ),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// Writes the span journal as Chrome `trace_event` JSON to the
/// `--trace-out` path, when the flag is present (open the file in
/// `chrome://tracing` or <https://ui.perfetto.dev>). Like
/// [`write_metrics_json_if_requested`], every reproduction binary calls
/// this once on exit; with tracing compiled out the file is a valid empty
/// trace.
pub fn write_trace_if_requested() {
    if let Some(path) = trace_out_path() {
        let journal = secndp_telemetry::trace::journal();
        let json = journal.render_chrome_trace();
        match std::fs::write(&path, &json) {
            Ok(()) => {
                println!(
                    "trace written to {} ({} events, {} dropped)",
                    path.display(),
                    journal.recorded().min(journal.capacity() as u64),
                    journal.dropped()
                );
            }
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// The medical-analytics trace at paper scale: m = 1024 genes, PF = 10 000
/// patients (40 MB per query).
pub fn analytics_trace(queries: usize) -> WorkloadTrace {
    GeneDataset::perf_trace(500_000, 1024, 10_000, queries, 0xA11A)
}

/// The Table II / §VII-A system: `NDP_rank = 8`, `NDP_reg = 8`, 12 AES
/// engines.
pub fn headline_config() -> SimConfig {
    SimConfig::paper_default(NdpConfig {
        ndp_rank: 8,
        ndp_reg: 8,
    })
    .with_aes_engines(12)
}

/// Simulates one trace under several modes against a shared non-NDP
/// baseline, returning `(mode, report, speedup)` rows.
pub fn speedups(
    trace: &WorkloadTrace,
    cfg: &SimConfig,
    modes: &[Mode],
) -> (SimReport, Vec<(Mode, SimReport, f64)>) {
    let base = simulate(trace, Mode::NonNdp, cfg);
    let rows = modes
        .iter()
        .map(|&m| {
            let r = simulate(trace, m, cfg);
            let s = r.speedup_vs(&base);
            (m, r, s)
        })
        .collect();
    (base, rows)
}

/// End-to-end DLRM time (CPU MLP portion + SLS portion) under one SLS
/// execution mode, in nanoseconds.
pub fn dlrm_end_to_end_ns(
    cfg: &DlrmConfig,
    sim: &SimConfig,
    mode: Mode,
    pf: usize,
    batch: usize,
    in_tee: bool,
) -> f64 {
    let trace = sls_trace(cfg, pf, batch, 0x5105);
    let sls = simulate(&trace, mode, sim).total_ns();
    end_to_end_ns(cfg, batch, sls, in_tee)
}

/// Prints a header row followed by aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_cache_blocks_flag_forms() {
        let parse = |args: &[&str]| parse_pad_cache_blocks(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["--pad-cache-blocks", "4096"]), Some(4096));
        assert_eq!(parse(&["--pad-cache-blocks=0"]), Some(0));
        assert_eq!(parse(&["256", "--pad-cache-blocks", "8"]), Some(8));
        assert_eq!(parse(&["--metrics-json", "m.json"]), None);
        assert_eq!(parse(&["--pad-cache-blocks", "nope"]), None);
        assert_eq!(parse(&[]), None);
    }

    #[test]
    fn transport_flag_forms() {
        let parse = |flag, args: &[&str]| -> Option<u64> {
            parse_value_flag(flag, args.iter().map(|s| s.to_string()))
        };
        assert_eq!(
            parse("--transport-ranks", &["--transport-ranks", "4"]),
            Some(4)
        );
        assert_eq!(
            parse("--transport-window", &["--transport-window=16"]),
            Some(16)
        );
        assert_eq!(
            parse(
                "--transport-timeout-ms",
                &["256", "--transport-timeout-ms", "50"]
            ),
            Some(50)
        );
        assert_eq!(
            parse("--transport-ranks", &["--transport-window", "4"]),
            None
        );
        assert_eq!(
            parse("--transport-ranks", &["--transport-ranks", "nope"]),
            None
        );
    }

    #[test]
    fn serve_and_hold_flag_forms() {
        let parse_addr = |args: &[&str]| -> Option<String> {
            parse_value_flag("--serve-metrics", args.iter().map(|s| s.to_string()))
        };
        assert_eq!(
            parse_addr(&["--serve-metrics", "127.0.0.1:9184"]).as_deref(),
            Some("127.0.0.1:9184")
        );
        assert_eq!(
            parse_addr(&["64", "--serve-metrics=0.0.0.0:0"]).as_deref(),
            Some("0.0.0.0:0")
        );
        assert_eq!(parse_addr(&["--hold-secs", "30"]), None);
        let parse_hold = |args: &[&str]| -> Option<u64> {
            parse_value_flag("--hold-secs", args.iter().map(|s| s.to_string()))
        };
        assert_eq!(parse_hold(&["--hold-secs", "30"]), Some(30));
        assert_eq!(parse_hold(&["--hold-secs=5"]), Some(5));
        assert_eq!(parse_hold(&["--hold-secs", "soon"]), None);
    }

    #[test]
    fn analytics_trace_shape() {
        let t = analytics_trace(2);
        assert_eq!(t.queries.len(), 2);
        assert_eq!(t.total_data_bytes(), 2 * 10_000 * 4096);
    }

    #[test]
    fn speedups_run_all_modes() {
        let t = WorkloadTrace::uniform_sls(1 << 22, 128, 20, 8, 1);
        let cfg = headline_config();
        let (base, rows) = speedups(&t, &cfg, &[Mode::UnprotectedNdp, Mode::SecNdpEnc]);
        assert!(base.total_cycles > 0);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(_, _, s)| *s > 1.0));
    }

    #[test]
    fn end_to_end_is_positive_and_tee_slower() {
        let cfg = DlrmConfig::rmc1_small();
        let sim = headline_config();
        let plain = dlrm_end_to_end_ns(&cfg, &sim, Mode::UnprotectedNdp, 20, 4, false);
        let tee = dlrm_end_to_end_ns(&cfg, &sim, Mode::SecNdpEnc, 20, 4, true);
        assert!(plain > 0.0);
        assert!(tee >= plain * 0.99);
    }
}
