//! Figure 9: speedup of the SecNDP encryption and verification variants
//! (Enc-only, Ver-coloc, Ver-sep, Ver-ECC) over the unprotected non-NDP
//! baseline, at NDP_rank=8, NDP_reg=8 with twelve AES engines.
//!
//! Run with: `cargo run --release -p secndp-bench --bin fig9 [batch]`

use secndp_bench::{
    analytics_trace, batch_from_args, headline_config, print_table, speedups, HEADLINE_PF,
};
use secndp_sim::config::VerifPlacement;
use secndp_sim::exec::Mode;
use secndp_workloads::dlrm::model::{sls_trace, sls_trace_quantized};
use secndp_workloads::dlrm::DlrmConfig;

fn main() {
    let batch = batch_from_args();
    let sim = headline_config();
    let cfg = DlrmConfig::rmc1_small();

    let workloads = [
        ("SLS 32-bit", sls_trace(&cfg, HEADLINE_PF, batch, 7), false),
        (
            "SLS 8-bit quant",
            sls_trace_quantized(&cfg, HEADLINE_PF, batch, 7),
            true,
        ),
        (
            "data analytics",
            analytics_trace((batch / 16).max(2)),
            false,
        ),
    ];

    let mut rows = Vec::new();
    for (name, trace, quantized) in &workloads {
        let mut modes = vec![
            Mode::UnprotectedNdp,
            Mode::SecNdpEnc,
            Mode::SecNdpVer(VerifPlacement::Coloc),
            Mode::SecNdpVer(VerifPlacement::Sep),
        ];
        // Quantized rows: tags no longer fit the ECC chip (paper §VII-A).
        if !quantized {
            modes.push(Mode::SecNdpVer(VerifPlacement::Ecc));
        }
        let (_, results) = speedups(trace, &sim, &modes);
        let mut row = vec![name.to_string()];
        for (mode, _, s) in &results {
            row.push(format!("{mode}: {s:.2}x"));
        }
        if *quantized {
            row.push("Ver-ECC: N/A".into());
        }
        rows.push(row);
    }
    print_table(
        &format!("Figure 9: verification variants (rank=8, reg=8, 12 AES engines, batch={batch})"),
        &[
            "workload",
            "NDP",
            "Enc-only",
            "Ver-coloc",
            "Ver-sep",
            "Ver-ECC",
        ],
        &rows,
    );
    println!("\npaper reference: Ver-ECC matches Enc-only; Ver-coloc close behind");
    println!("(misaligned rows); Ver-sep worst (~40% degradation: extra row");
    println!("activation per tag fetch); analytics barely affected (large rows).");

    secndp_bench::write_metrics_json_if_requested();
    secndp_bench::write_trace_if_requested();
}
