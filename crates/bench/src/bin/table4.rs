//! Table IV: accuracy (LogLoss) of the precision/quantization schemes on a
//! synthetic production-like recommendation model with 40 K samples.
//!
//! Run with: `cargo run --release -p secndp-bench --bin table4 [samples]`

use secndp_bench::print_table;
use secndp_workloads::dlrm::accuracy::table4;

fn main() {
    let nsamples = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let rows = table4(nsamples, 0x7AB4);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.precision.to_string(),
                format!("{:.5}", r.logloss),
                if r.degradation == 0.0 {
                    "0".to_string()
                } else if r.degradation.abs() < 1e-5 {
                    format!("{:+.1e}", r.degradation)
                } else {
                    format!("{:+.3}%", 100.0 * r.degradation)
                },
            ]
        })
        .collect();
    print_table(
        &format!("Table IV: accuracy of quantization schemes ({nsamples} samples)"),
        &["configuration", "LogLoss", "degradation"],
        &printable,
    );
    println!("\npaper reference: fp32 0.64013; 32-bit fixed −3.6e−10; table-wise");
    println!("8-bit +0.07%; column-wise 8-bit +0.02% (row-wise not reported —");
    println!("it cannot run over ciphertext).");

    // Footprint context (paper Fig 6: quantization reduces memory
    // footprint — 2 cache lines to ~0.5 per vector).
    use secndp_arith::quant::{Granularity, Quantized8};
    let rows = 4096;
    let cols = 32;
    let matrix: Vec<f32> = (0..rows * cols).map(|x| (x as f32 * 0.37).sin()).collect();
    let fp32 = rows * cols * 4;
    println!(
        "\nmemory footprint, {rows}×{cols} table: fp32 {} KiB",
        fp32 / 1024
    );
    for g in [
        Granularity::TableWise,
        Granularity::ColumnWise,
        Granularity::RowWise,
    ] {
        let q = Quantized8::quantize(&matrix, rows, cols, g);
        println!(
            "  8-bit {g:<12} {} KiB ({:.1}x smaller)",
            q.footprint_bytes() / 1024,
            fp32 as f64 / q.footprint_bytes() as f64
        );
    }

    secndp_bench::write_metrics_json_if_requested();
    secndp_bench::write_trace_if_requested();
}
