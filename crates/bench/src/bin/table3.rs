//! Table III: end-to-end speedup of unprotected NDP, SGX (CFL/ICL) and
//! SecNDP over the unprotected non-NDP baseline, for the four DLRM
//! configurations and the medical-analytics workload.
//!
//! Run with: `cargo run --release -p secndp-bench --bin table3 [batch]`

use secndp_bench::{
    analytics_trace, batch_from_args, dlrm_end_to_end_ns, headline_config, print_table, HEADLINE_PF,
};
use secndp_sim::config::VerifPlacement;
use secndp_sim::exec::{simulate, Mode};
use secndp_sim::sgx::SgxModel;
use secndp_workloads::dlrm::DlrmConfig;

fn main() {
    let batch = batch_from_args();
    let sim = headline_config();
    let secndp_mode = Mode::SecNdpVer(VerifPlacement::Ecc); // paper: Ver-ECC
    let mut rows = Vec::new();

    for cfg in DlrmConfig::all() {
        let base = dlrm_end_to_end_ns(&cfg, &sim, Mode::NonNdp, HEADLINE_PF, batch, false);
        let ndp = dlrm_end_to_end_ns(&cfg, &sim, Mode::UnprotectedNdp, HEADLINE_PF, batch, false);
        let sec = dlrm_end_to_end_ns(&cfg, &sim, secndp_mode, HEADLINE_PF, batch, true);
        let ws = cfg.total_emb_bytes;
        let (cfl, icl) = if cfg.name.starts_with("RMC1") {
            (
                format!("{:.4}x", SgxModel::cfl().relative_performance(ws)),
                format!("{:.2}x", SgxModel::icl().relative_performance(ws)),
            )
        } else {
            // The paper could not fit RMC2 in the SGX malloc limit.
            ("N/A".into(), "N/A".into())
        };
        rows.push(vec![
            cfg.name.to_string(),
            "1x".into(),
            format!("{:.2}x", base / ndp),
            cfl,
            icl,
            format!("{:.2}x", base / sec),
        ]);
    }

    // Medical data analytics: pure NDP-portion workload, 40 MB working set.
    let queries = (batch / 16).max(2);
    let trace = analytics_trace(queries);
    let base = simulate(&trace, Mode::NonNdp, &sim);
    let ndp = simulate(&trace, Mode::UnprotectedNdp, &sim);
    let sec = simulate(&trace, secndp_mode, &sim);
    rows.push(vec![
        "Data Analytics".into(),
        "1x".into(),
        format!("{:.2}x", ndp.speedup_vs(&base)),
        format!("{:.4}x", SgxModel::cfl().relative_performance(40 << 20)),
        format!("{:.2}x", SgxModel::icl().relative_performance(40 << 20)),
        format!("{:.2}x", sec.speedup_vs(&base)),
    ]);

    print_table(
        &format!("Table III: speedup vs unprotected non-NDP (batch={batch}, PF={HEADLINE_PF}, NDP_rank=8, NDP_reg=8, Ver-ECC)"),
        &["workload", "non-NDP", "unprot NDP", "SGX-CFL", "SGX-ICL", "SecNDP"],
        &rows,
    );
    println!("\npaper reference: unprot NDP {{2.46, 3.11, 4.05, 4.44, 7.46}}x;");
    println!("SGX-CFL 0.0038x / 0.1738x; SGX-ICL ~0.59x; SecNDP {{2.36, 3.02, 3.95, 4.33, 7.46}}x");

    secndp_bench::write_metrics_json_if_requested();
    secndp_bench::write_trace_if_requested();
}
